#!/usr/bin/env python3
"""Fails when a benchmark regresses past a threshold vs the committed baseline.

Usage:
    check_perf_regression.py --baseline BENCH_baseline.json \
        --current bench_dp_window.json [--max-regression 0.25]

Compares `real_time` per FULL benchmark name — including aggregate
suffixes such as `_mean`/`_median` produced by --benchmark_repetitions —
against the baseline (single-thread entries only). A benchmark is a
regression when

    current_real_time > baseline_real_time * (1 + max_regression)

Keying rules:

  * The key is the row's `name` field verbatim. Aggregate rows keep
    their suffix, so a `_median` in the baseline only ever compares
    against a `_median` in the current run.
  * Repetition rows of one benchmark share a name; they are merged
    deterministically by taking the MEDIAN real_time. The minimum
    (the previous rule) is the classic least-noise statistic on a
    quiet machine, but on a contended CI runner it keeps whichever
    repetition got the luckiest scheduling slice — one lucky rep can
    mask a real regression, and the statistic only ever moves DOWN
    with more repetitions. The median is stable under both tails:
    one descheduled rep and one lucky rep both land in the discarded
    halves. Order-independence is preserved (rows are collected, then
    reduced).
  * Dispersion aggregates (`_stddev`, `_cv`) are not times and are
    skipped; `real_time` is normalized through the row's `time_unit`,
    so a harness switching from ns to ms reporting cannot fake a win
    or a loss.

Benchmarks present on only one side are reported but never fail the
check: the baseline is a trajectory, and new benchmarks join it by
having their first measured point committed.

Every row is printed in one aligned table and ALL regressions are
listed before the non-zero exit — a partial report that stops at the
first failure hides whether a regression is local or across the board.

The committed baseline predates the incremental-cursor rewrites (PR 3
for the DP, PR 4 for the counter/join), the significance-ensemble
rewrite (PR 5), and the skeleton record/replay rewrite (PR 6:
record-once traces + sweep queries, gated through
bench_fig14_significance / bench_fig9_delta / bench_fig10_phi), so
today's code sits far below it; the threshold exists to catch a rewrite
that quietly gives those wins back. Cross-machine noise between the
reference container and CI runners is real — that is why the threshold
is a generous 25% and the gate compares against the slow pre-rewrite
numbers rather than a same-machine previous run.
"""

import argparse
import json
import statistics
import sys

# Multipliers to nanoseconds for google-benchmark's time_unit values.
_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Aggregate rows that carry dispersion, not a representative time.
_NON_TIME_AGGREGATES = {"stddev", "cv"}


def load_benchmarks(path):
    """Returns {full benchmark name: real_time in ns} for one JSON file.

    Repetition rows sharing a name are merged by median; aggregate rows
    keep their suffixed name as the key.
    """
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        if bench.get("threads", 1) != 1:
            continue  # the gate tracks single-thread time
        if bench.get("aggregate_name") in _NON_TIME_AGGREGATES:
            continue
        name = bench["name"]
        unit = bench.get("time_unit", "ns")
        if unit not in _UNIT_TO_NS:
            raise ValueError(f"{path}: unknown time_unit {unit!r} for {name}")
        samples.setdefault(name, []).append(
            float(bench["real_time"]) * _UNIT_TO_NS[unit])
    return {name: statistics.median(times) for name, times in samples.items()}


def format_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f}us"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional slowdown allowed (default 0.25)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    rows = []  # (status, name, baseline text, current text, ratio text)
    regressions = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            rows.append(("NEW", name, "-", format_ns(cur), "-"))
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "OK"
        if cur > base * (1.0 + args.max_regression):
            status = "REGRESSED"
            regressions.append((name, base, cur, ratio))
        rows.append((status, name, format_ns(base), format_ns(cur),
                     f"{ratio:.2f}x"))
    for name in sorted(set(baseline) - set(current)):
        rows.append(("MISSING", name, format_ns(baseline[name]), "-", "-"))

    if rows:
        headers = ("status", "benchmark", "baseline", "current", "ratio")
        widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
                  for i in range(5)]
        def emit(cells):
            print("  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip())
        emit(headers)
        emit(tuple("-" * w for w in widths))
        for r in rows:
            emit(r)
    else:
        print("no comparable benchmarks found")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%} vs the committed baseline:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {format_ns(base)} -> {format_ns(cur)} "
                  f"({ratio:.2f}x)")
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
