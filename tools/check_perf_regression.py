#!/usr/bin/env python3
"""Fails when a benchmark regresses past a threshold vs the committed baseline.

Usage:
    check_perf_regression.py --baseline BENCH_baseline.json \
        --current bench_dp_window.json [--max-regression 0.25]

Compares `real_time` per benchmark name (single-thread entries only)
against the baseline. A benchmark is a regression when

    current_real_time > baseline_real_time * (1 + max_regression)

Benchmarks present on only one side are reported but never fail the
check: the baseline is a trajectory, and new benchmarks join it by
having their first measured point committed.

The committed baseline predates the incremental-cursor rewrites (PR 3
for the DP, PR 4 for the counter/join) and the significance-ensemble
rewrite (PR 5: flow-permutation views + one cross-graph window cache,
gated through bench_fig14_significance), so today's code sits far below
it; the threshold exists to catch a rewrite that quietly gives those
wins back. Cross-machine noise between the reference container and CI
runners is real — that is why the threshold is a generous 25% and the
gate compares against the slow pre-rewrite numbers rather than a
same-machine previous run.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions)
        # and anything multi-threaded: the gate tracks single-thread time.
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("threads", 1) != 1:
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional slowdown allowed (default 0.25)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"NEW       {name}: {cur:.3f} (no baseline entry)")
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "OK"
        if cur > base * (1.0 + args.max_regression):
            status = "REGRESSED"
            regressions.append((name, base, cur, ratio))
        print(f"{status:9} {name}: baseline={base:.3f} current={cur:.3f} "
              f"ratio={ratio:.2f}x")
    for name in sorted(set(baseline) - set(current)):
        print(f"MISSING   {name}: in baseline but not measured")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%} vs the committed baseline:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {base:.3f} -> {cur:.3f} ({ratio:.2f}x)")
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
