#!/usr/bin/env python3
"""Fails when a benchmark regresses past a threshold vs the committed baseline.

Usage:
    check_perf_regression.py --baseline BENCH_baseline.json \
        --current bench_dp_window.json [--max-regression 0.25]
    check_perf_regression.py --current bench_micro.json \
        --overhead-pair BM_DpMatchLoop_Control:BM_DpMatchLoop_NoControl:0.01

Two independent gates share the loader:

  * The BASELINE gate (--baseline) compares each current row against the
    committed history, allowing --max-regression fractional slowdown.
  * The OVERHEAD-PAIR gate (--overhead-pair WITH:WITHOUT:MAX, repeatable)
    compares two rows of the SAME current JSON — e.g. a hot loop with an
    active QueryControl vs the null-control path — and fails when
    with > without * (1 + MAX). Because both sides come from one run on
    one machine, the threshold can be far tighter (1%) than the
    cross-machine baseline gate's 25%. Either side missing from the
    current JSON fails the gate: a silently absent row would turn the
    check into a no-op.

Compares `real_time` per FULL benchmark name — including aggregate
suffixes such as `_mean`/`_median` produced by --benchmark_repetitions —
against the baseline (single-thread entries only). A benchmark is a
regression when

    current_real_time > baseline_real_time * (1 + max_regression)

Keying rules:

  * The key is the row's `name` field verbatim. Aggregate rows keep
    their suffix, so a `_median` in the baseline only ever compares
    against a `_median` in the current run.
  * Repetition rows of one benchmark share a name; they are merged
    deterministically by taking the MEDIAN real_time. The minimum
    (the previous rule) is the classic least-noise statistic on a
    quiet machine, but on a contended CI runner it keeps whichever
    repetition got the luckiest scheduling slice — one lucky rep can
    mask a real regression, and the statistic only ever moves DOWN
    with more repetitions. The median is stable under both tails:
    one descheduled rep and one lucky rep both land in the discarded
    halves. Order-independence is preserved (rows are collected, then
    reduced).
  * Dispersion aggregates (`_stddev`, `_cv`) are not times and are
    skipped; `real_time` is normalized through the row's `time_unit`,
    so a harness switching from ns to ms reporting cannot fake a win
    or a loss.

Benchmarks present on only one side are reported but never fail the
check: the baseline is a trajectory, and new benchmarks join it by
having their first measured point committed.

Every row is printed in one aligned table and ALL regressions are
listed before the non-zero exit — a partial report that stops at the
first failure hides whether a regression is local or across the board.

The committed baseline predates the incremental-cursor rewrites (PR 3
for the DP, PR 4 for the counter/join), the significance-ensemble
rewrite (PR 5), and the skeleton record/replay rewrite (PR 6:
record-once traces + sweep queries, gated through
bench_fig14_significance / bench_fig9_delta / bench_fig10_phi), so
today's code sits far below it; the threshold exists to catch a rewrite
that quietly gives those wins back. Cross-machine noise between the
reference container and CI runners is real — that is why the threshold
is a generous 25% and the gate compares against the slow pre-rewrite
numbers rather than a same-machine previous run.
"""

import argparse
import json
import statistics
import sys

# Multipliers to nanoseconds for google-benchmark's time_unit values.
_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Aggregate rows that carry dispersion, not a representative time.
_NON_TIME_AGGREGATES = {"stddev", "cv"}


def load_benchmarks(path):
    """Returns {full benchmark name: real_time in ns} for one JSON file.

    Repetition rows sharing a name are merged by median; aggregate rows
    keep their suffixed name as the key.
    """
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for bench in data.get("benchmarks", []):
        if bench.get("threads", 1) != 1:
            continue  # the gate tracks single-thread time
        if bench.get("aggregate_name") in _NON_TIME_AGGREGATES:
            continue
        name = bench["name"]
        unit = bench.get("time_unit", "ns")
        if unit not in _UNIT_TO_NS:
            raise ValueError(f"{path}: unknown time_unit {unit!r} for {name}")
        samples.setdefault(name, []).append(
            float(bench["real_time"]) * _UNIT_TO_NS[unit])
    return {name: statistics.median(times) for name, times in samples.items()}


def format_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f}us"
    return f"{ns:.0f}ns"


def parse_overhead_pair(spec):
    """Parses "WITH:WITHOUT:MAXFRAC" into its three components."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--overhead-pair expects WITH:WITHOUT:MAXFRAC, got {spec!r}")
    try:
        max_frac = float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--overhead-pair max fraction not a number: {parts[2]!r}")
    return parts[0], parts[1], max_frac


def check_overhead_pairs(current, pairs):
    """Returns the number of failed same-run overhead pairs (prints all)."""
    failures = 0
    for with_name, without_name, max_frac in pairs:
        with_ns = current.get(with_name)
        without_ns = current.get(without_name)
        if with_ns is None or without_ns is None:
            missing = [n for n, v in ((with_name, with_ns),
                                      (without_name, without_ns))
                       if v is None]
            print(f"OVERHEAD MISSING  {' and '.join(missing)} "
                  "not in the current JSON")
            failures += 1
            continue
        overhead = with_ns / without_ns - 1.0 if without_ns > 0 \
            else float("inf")
        status = "OK" if overhead <= max_frac else "EXCEEDED"
        print(f"OVERHEAD {status:9s} {with_name} vs {without_name}: "
              f"{format_ns(without_ns)} -> {format_ns(with_ns)} "
              f"({overhead:+.2%}, allowed {max_frac:.2%})")
        if status != "OK":
            failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional slowdown allowed (default 0.25)")
    parser.add_argument("--overhead-pair", type=parse_overhead_pair,
                        action="append", default=[],
                        metavar="WITH:WITHOUT:MAXFRAC",
                        help="same-run pair gate: fail when the WITH row is "
                             "more than MAXFRAC slower than WITHOUT")
    args = parser.parse_args()
    if args.baseline is None and not args.overhead_pair:
        parser.error("nothing to check: pass --baseline and/or "
                     "--overhead-pair")

    current = load_benchmarks(args.current)

    pair_failures = check_overhead_pairs(current, args.overhead_pair)
    if args.overhead_pair:
        print()
    if args.baseline is None:
        if pair_failures:
            print(f"{pair_failures} overhead pair(s) failed")
            return 1
        print("all overhead pairs within bounds")
        return 0

    baseline = load_benchmarks(args.baseline)

    rows = []  # (status, name, baseline text, current text, ratio text)
    regressions = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            rows.append(("NEW", name, "-", format_ns(cur), "-"))
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "OK"
        if cur > base * (1.0 + args.max_regression):
            status = "REGRESSED"
            regressions.append((name, base, cur, ratio))
        rows.append((status, name, format_ns(base), format_ns(cur),
                     f"{ratio:.2f}x"))
    for name in sorted(set(baseline) - set(current)):
        rows.append(("MISSING", name, format_ns(baseline[name]), "-", "-"))

    if rows:
        headers = ("status", "benchmark", "baseline", "current", "ratio")
        widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
                  for i in range(5)]
        def emit(cells):
            print("  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip())
        emit(headers)
        emit(tuple("-" * w for w in widths))
        for r in rows:
            emit(r)
    else:
        print("no comparable benchmarks found")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%} vs the committed baseline:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {format_ns(base)} -> {format_ns(cur)} "
                  f"({ratio:.2f}x)")
        return 1
    if pair_failures:
        print(f"\n{pair_failures} overhead pair(s) failed")
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
