// Live-maintenance benchmark: the cost of keeping a standing motif
// query current over a growing stream (stream/streaming_monitor.h)
// versus the naive alternative of recomputing the batch answer from
// scratch at every epoch.
//
// One shared schedule drives both sides: a bitcoin-preset trace is
// replayed time-ordered, the first half seeds the monitor/engine as
// historical backfill, and the rest arrives in kEpochs (>= 100) sealed
// batches. The incremental side appends and seals; the recompute side
// rebuilds the prefix graph and runs a batch kCount per epoch — exactly
// what a deployment without streaming support would do. Both sides are
// CHECKed against the same final batch count, so the speedup ratio the
// perf trajectory tracks is between answers that are provably equal.
//
// Run with --benchmark_format=json to emit the rows merged into the
// repo root's BENCH_baseline.json and checked by the CI perf-smoke
// step.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "stream/streaming_monitor.h"
#include "util/logging.h"

namespace flowmotif {
namespace {

constexpr int kEpochs = 120;        // sealed batches after the backfill
constexpr double kTraceScale = 0.05;  // preset scale; small but non-trivial

/// The replayed stream both benchmark sides consume.
struct StreamSchedule {
  InteractionGraph seed;                        // historical backfill
  std::vector<InteractionGraph::Edge> tail;     // arrives after the seed
  std::vector<size_t> epoch_ends;               // exclusive index per epoch
  Motif motif = *MotifCatalog::ByName("M(3,2)");
  Timestamp delta = 0;
  Flow phi = 0.0;
  int64_t expected_final_count = 0;  // batch kCount on the full trace
};

const StreamSchedule& Schedule() {
  static const StreamSchedule* schedule = [] {
    auto* s = new StreamSchedule();
    const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
    s->delta = preset.default_delta;
    s->phi = preset.default_phi;
    const TimeSeriesGraph full =
        GenerateDataset(preset, kTraceScale * bench::BenchScale());

    // Flatten back into the time-ordered transfer trace.
    std::vector<InteractionGraph::Edge> trace;
    for (const TimeSeriesGraph::PairEdge& pair : full.pairs()) {
      for (size_t i = 0; i < pair.series.size(); ++i) {
        const Interaction x = pair.series.at(i);
        trace.push_back({pair.src, pair.dst, x.t, x.f});
      }
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const InteractionGraph::Edge& a,
                        const InteractionGraph::Edge& b) { return a.t < b.t; });
    FLOWMOTIF_CHECK(trace.size() >= 4 * kEpochs)
        << "trace too small for " << kEpochs << " epochs: " << trace.size();

    const size_t backfill = trace.size() / 2;
    s->seed.EnsureVertices(full.num_vertices());
    for (size_t i = 0; i < backfill; ++i) {
      const InteractionGraph::Edge& e = trace[i];
      const Status status = s->seed.AddEdge(e.src, e.dst, e.t, e.f);
      FLOWMOTIF_CHECK(status.ok()) << status;
    }
    s->tail.assign(trace.begin() + static_cast<std::ptrdiff_t>(backfill),
                   trace.end());
    for (int e = 1; e <= kEpochs; ++e) {
      s->epoch_ends.push_back(s->tail.size() * static_cast<size_t>(e) /
                              kEpochs);
    }

    QueryEngine engine(full);
    const QueryResult result = engine.Run(
        s->motif, bench::BenchQueryOptions(QueryMode::kCount, s->delta,
                                           s->phi));
    s->expected_final_count = result.stats.num_instances;
    FLOWMOTIF_CHECK(s->expected_final_count > 0);
    return s;
  }();
  return *schedule;
}

/// Incremental side: one seeded monitor, kEpochs append+seal rounds on
/// the clock. Monitor construction (the backfill's full P1 + scan) is
/// excluded — it is the one-time cost both deployments pay.
void BM_Streaming_IncrementalSeal(benchmark::State& state) {
  const StreamSchedule& s = Schedule();
  StreamOptions options;
  options.delta = s.delta;
  options.phi = s.phi;
  options.k = 10;
  int64_t revisited = 0;
  for (auto _ : state) {
    state.PauseTiming();
    StreamingMotifMonitor monitor(s.motif, options, s.seed);
    state.ResumeTiming();
    size_t cursor = 0;
    revisited = 0;
    for (const size_t end : s.epoch_ends) {
      for (; cursor < end; ++cursor) monitor.Append(s.tail[cursor]);
      const StreamingMotifMonitor::EpochStats stats = monitor.SealEpoch();
      revisited += static_cast<int64_t>(stats.num_matches_revisited);
    }
    FLOWMOTIF_CHECK_EQ(monitor.TotalInstances(), s.expected_final_count);
    benchmark::DoNotOptimize(monitor.TotalInstances());
  }
  state.counters["epochs"] = benchmark::Counter(kEpochs);
  state.counters["matches_revisited"] =
      benchmark::Counter(static_cast<double>(revisited));
  state.counters["epochs/s"] = benchmark::Counter(
      static_cast<double>(kEpochs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Streaming_IncrementalSeal)->Unit(benchmark::kMillisecond);

/// Recompute side: at every epoch, rebuild the prefix graph from the
/// raw trace and run the batch engine — the per-epoch cost a
/// no-streaming deployment pays for the same always-current answer.
void BM_Streaming_RecomputePerEpoch(benchmark::State& state) {
  const StreamSchedule& s = Schedule();
  const QueryOptions options =
      bench::BenchQueryOptions(QueryMode::kCount, s.delta, s.phi);
  for (auto _ : state) {
    int64_t count = 0;
    for (const size_t end : s.epoch_ends) {
      InteractionGraph prefix = s.seed;
      for (size_t i = 0; i < end; ++i) {
        const InteractionGraph::Edge& e = s.tail[i];
        const Status status = prefix.AddEdge(e.src, e.dst, e.t, e.f);
        FLOWMOTIF_CHECK(status.ok()) << status;
      }
      const TimeSeriesGraph graph = TimeSeriesGraph::Build(prefix);
      const QueryEngine engine(graph);
      count = engine.Run(s.motif, options).stats.num_instances;
    }
    FLOWMOTIF_CHECK_EQ(count, s.expected_final_count);
    benchmark::DoNotOptimize(count);
  }
  state.counters["epochs"] = benchmark::Counter(kEpochs);
  state.counters["epochs/s"] = benchmark::Counter(
      static_cast<double>(kEpochs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Streaming_RecomputePerEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
