// Reproduces Table 3 (dataset statistics) on the synthetic stand-in
// datasets: vertex count, connected node pairs (|ET|), interaction count
// (|E|), and average flow per interaction.
//
// Paper reference values (real datasets, full scale):
//   Bitcoin:   24.6M nodes, 88.9M pairs, 123M edges, avg flow 4.845
//   Facebook:  45800 nodes, 264000 pairs, 856000 edges, avg flow 3.014
//   Passenger: 289 nodes, 77896 pairs, 215175 edges, avg flow 1.933
// Ours are scaled-down synthetic substitutes: compare the *relative*
// shape (sparse vs dense, avg flows), not absolute sizes.
#include <iostream>

#include "bench_common.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  PrintHeader("Table 3: statistics of datasets (synthetic, scale=" +
              FormatDouble(BenchScale(), 2) + ")");
  PrintRow({"dataset", "#nodes", "#pairs", "#edges", "avgflow", "paperavg"});
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    TimeSeriesGraph::Stats stats = graph.ComputeStats();
    double paper_avg = preset.kind == DatasetKind::kBitcoin    ? 4.845
                       : preset.kind == DatasetKind::kFacebook ? 3.014
                                                               : 1.933;
    PrintRow({preset.name, FormatCount(stats.num_vertices),
              FormatCount(stats.num_connected_pairs),
              FormatCount(stats.num_interactions),
              FormatDouble(stats.avg_flow_per_edge, 3),
              FormatDouble(paper_avg, 3)});
  }
  std::cout << "\nShape check: bitcoin sparse w/ heavy-tail amounts, "
               "facebook mid-size integer counts,\npassenger dense small "
               "zone graph with ~2 passengers/trip.\n";
  return 0;
}
