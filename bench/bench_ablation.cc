// Ablation study for the design choices DESIGN.md calls out:
//  1. prefix phi-pruning (Algorithm 1 line 16) on vs off;
//  2. the window novelty-skip rule on vs off (off also shows how many
//     redundant, non-maximal instances the rule prevents);
//  3. structural-match reuse across randomized graphs in the
//     significance analysis on vs off;
//  4. the strict Def. 3.3 maximality post-filter cost.
// Run on the facebook dataset (the most instance-dense one) with the
// default parameters; M(3,2), M(3,3) and M(4,3) cover chain and cycle
// behavior.
#include <iostream>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/significance.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  const DatasetPreset& preset = GetPreset(DatasetKind::kFacebook);
  const TimeSeriesGraph& graph = BenchGraph(preset);
  const std::vector<std::string> motif_names{"M(3,2)", "M(3,3)", "M(4,3)"};

  // --- 1. phi-pruning ------------------------------------------------------
  // Measured at the top of the paper's phi sweep, where the constraint
  // actually bites (at low phi almost every prefix passes and the check
  // is near-free either way).
  const Flow ablation_phi = preset.phi_sweep[preset.phi_sweep.size() / 2];
  PrintHeader("Ablation 1 (" + preset.name +
              "): prefix phi-pruning, delta=" +
              std::to_string(preset.default_delta) +
              " phi=" + FormatDouble(ablation_phi, 1));
  PrintRow({"motif", "pruned", "unpruned", "slowdown", "#inst"});
  for (const std::string& name : motif_names) {
    Motif motif = *MotifCatalog::ByName(name);
    EnumerationOptions options;
    options.delta = preset.default_delta;
    options.phi = ablation_phi;

    WallTimer on_timer;
    EnumerationResult with_pruning =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double on_seconds = on_timer.ElapsedSeconds();

    options.ablation_no_prefix_phi_pruning = true;
    WallTimer off_timer;
    EnumerationResult without_pruning =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double off_seconds = off_timer.ElapsedSeconds();

    if (with_pruning.num_instances != without_pruning.num_instances) {
      std::cout << "!! pruning changed results on " << name << "\n";
      return 1;
    }
    PrintRow({name, FormatSeconds(on_seconds), FormatSeconds(off_seconds),
              FormatDouble(off_seconds / std::max(1e-9, on_seconds), 2) + "x",
              FormatCount(with_pruning.num_instances)});
  }

  // --- 2. window novelty-skip ---------------------------------------------
  PrintHeader("Ablation 2 (" + preset.name + "): window novelty-skip rule");
  PrintRow({"motif", "skip-on", "skip-off", "windows+", "redundant"});
  for (const std::string& name : motif_names) {
    Motif motif = *MotifCatalog::ByName(name);
    EnumerationOptions options;
    options.delta = preset.default_delta;
    options.phi = preset.default_phi;

    WallTimer on_timer;
    EnumerationResult with_skip =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double on_seconds = on_timer.ElapsedSeconds();

    options.ablation_no_window_skip = true;
    WallTimer off_timer;
    EnumerationResult without_skip =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double off_seconds = off_timer.ElapsedSeconds();

    PrintRow({name, FormatSeconds(on_seconds), FormatSeconds(off_seconds),
              FormatCount(without_skip.num_windows_processed -
                          with_skip.num_windows_processed),
              FormatCount(without_skip.num_redundant_instances)});
  }

  // --- 3. match reuse in the significance analysis -------------------------
  PrintHeader("Ablation 3 (" + preset.name +
              "): match reuse across randomized graphs (5 permutations)");
  PrintRow({"motif", "reuse", "recompute", "speedup"});
  for (const std::string& name : motif_names) {
    Motif motif = *MotifCatalog::ByName(name);
    SignificanceAnalyzer::Options options;
    options.num_random_graphs = 5;
    options.seed = 7;
    options.delta = preset.default_delta;
    options.phi = preset.default_phi;

    options.reuse_matches = true;
    SignificanceAnalyzer with_reuse(graph, options);
    WallTimer reuse_timer;
    SignificanceAnalyzer::MotifReport a = with_reuse.Analyze(motif);
    const double reuse_seconds = reuse_timer.ElapsedSeconds();

    options.reuse_matches = false;
    SignificanceAnalyzer without_reuse(graph, options);
    WallTimer recompute_timer;
    SignificanceAnalyzer::MotifReport b = without_reuse.Analyze(motif);
    const double recompute_seconds = recompute_timer.ElapsedSeconds();

    if (a.random_counts != b.random_counts) {
      std::cout << "!! match reuse changed results on " << name << "\n";
      return 1;
    }
    PrintRow({name, FormatSeconds(reuse_seconds),
              FormatSeconds(recompute_seconds),
              FormatDouble(recompute_seconds / std::max(1e-9, reuse_seconds),
                           2) + "x"});
  }

  // --- 4. strict maximality post-filter ------------------------------------
  PrintHeader("Ablation 4 (" + preset.name +
              "): Def. 3.3 strict maximality post-filter");
  PrintRow({"motif", "faithful", "strict", "overhead", "rejected"});
  for (const std::string& name : motif_names) {
    Motif motif = *MotifCatalog::ByName(name);
    EnumerationOptions options;
    options.delta = preset.default_delta;
    options.phi = preset.default_phi;

    WallTimer faithful_timer;
    EnumerationResult faithful =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double faithful_seconds = faithful_timer.ElapsedSeconds();
    (void)faithful;

    options.strict_maximality = true;
    WallTimer strict_timer;
    EnumerationResult strict =
        FlowMotifEnumerator(graph, motif, options).Run();
    const double strict_seconds = strict_timer.ElapsedSeconds();

    PrintRow({name, FormatSeconds(faithful_seconds),
              FormatSeconds(strict_seconds),
              FormatDouble(strict_seconds / std::max(1e-9, faithful_seconds),
                           2) + "x",
              FormatCount(strict.num_strict_rejects)});
  }

  std::cout << "\nEach optimization leaves results identical (checked) and "
               "only changes cost;\nthe skip rule additionally suppresses "
               "redundant non-maximal instances.\n";
  return 0;
}
