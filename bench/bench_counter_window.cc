// Micro-benchmarks of the construction-free counting path
// (core/counter.cc) and the join baseline (core/join_baseline.cc) —
// the two per-window evaluation paths ported to the shared
// window-cursor layer after the DP (bench_dp_window.cc).
//
// Presets mirror bench_dp_window so the perf trajectory reads across
// harnesses:
//  * dense_path — the same directed ring; counting M(4,3) slides
//    ~kPerEdge windows per match and the recursion visits every
//    in-window element of every motif edge. This is the preset the
//    ISSUE-4 ≥3x target and the CI regression threshold track.
//  * fanout — hub graph, general motif 0>1,0>2, same counting
//    recursion on per-first-edge matches.
//  * join — the Sec. 4 join baseline on a smaller ring (its quintuple
//    tables grow ~quadratically with density, so the dense preset
//    would swamp the timer).
//
// Run with --benchmark_out_format=json; the CI perf step compares
// real_time per benchmark name against the committed
// BENCH_baseline.json (pre-rewrite counter/join on the reference
// container) and fails on >25% single-thread regression.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/counter.h"
#include "core/join_baseline.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {
namespace {

constexpr Timestamp kSpan = 1000000;  // event horizon of all presets
constexpr int kPerEdge = 1200;        // interactions per topology edge

/// Evenly spreads `per_edge` jittered interactions over [0, span).
void FillEdge(InteractionGraph* g, VertexId src, VertexId dst,
              int per_edge, Rng* rng) {
  const Timestamp slot = kSpan / per_edge;
  for (int i = 0; i < per_edge; ++i) {
    const Timestamp t =
        slot * i + static_cast<Timestamp>(rng->NextBounded(
                       static_cast<uint64_t>(slot)));
    const Flow f = rng->UniformDouble(0.5, 10.0);
    const Status s = g->AddEdge(src, dst, t, f);
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
  }
}

/// Directed ring 0 -> 1 -> ... -> size-1 -> 0, every edge `per_edge`
/// dense.
TimeSeriesGraph MakeRing(int size, int per_edge, uint64_t seed) {
  InteractionGraph g;
  Rng rng(seed);
  for (VertexId v = 0; v < size; ++v) {
    FillEdge(&g, v, (v + 1) % size, per_edge, &rng);
  }
  return TimeSeriesGraph::Build(g);
}

const TimeSeriesGraph& DenseRingGraph() {
  static const TimeSeriesGraph* graph =
      new TimeSeriesGraph(MakeRing(8, kPerEdge, 7));
  return *graph;
}

/// Hub 0 with dense out-edges to leaves 1..kLeaves.
const TimeSeriesGraph& FanoutGraph() {
  static const TimeSeriesGraph* graph = [] {
    constexpr int kLeaves = 5;
    InteractionGraph g;
    Rng rng(13);
    for (VertexId leaf = 1; leaf <= kLeaves; ++leaf) {
      FillEdge(&g, 0, leaf, kPerEdge, &rng);
    }
    return new TimeSeriesGraph(TimeSeriesGraph::Build(g));
  }();
  return *graph;
}

/// Sparser triangle for the join baseline: quintuple tables scale with
/// density squared, so the join preset keeps the step-1 tables sane,
/// and a 3-ring actually closes M(3,3) instances.
const TimeSeriesGraph& JoinRingGraph() {
  static const TimeSeriesGraph* graph =
      new TimeSeriesGraph(MakeRing(3, 600, 29));
  return *graph;
}

/// One RunOnMatches counting pass per iteration; matches precomputed so
/// only the per-window counting recursion is on the clock.
void RunCounterBenchmark(benchmark::State& state,
                         const TimeSeriesGraph& graph, const Motif& motif) {
  const Timestamp delta = state.range(0);
  const Flow phi = 5.0;  // moderate: prunes some prefixes, not all
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  FLOWMOTIF_CHECK(!matches.empty());
  const InstanceCounter counter(graph, motif, delta, phi);

  InstanceCounter::Result result;
  for (auto _ : state) {
    result = counter.RunOnMatches(matches);
    benchmark::DoNotOptimize(result.num_instances);
  }
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(matches.size()));
  state.counters["windows"] =
      benchmark::Counter(static_cast<double>(result.num_windows));
  state.counters["instances"] =
      benchmark::Counter(static_cast<double>(result.num_instances));
  state.counters["windows/s"] = benchmark::Counter(
      static_cast<double>(result.num_windows) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_CounterWindow_DensePath(benchmark::State& state) {
  RunCounterBenchmark(state, DenseRingGraph(),
                      *MotifCatalog::ByName("M(4,3)"));
}
BENCHMARK(BM_CounterWindow_DensePath)
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

void BM_CounterWindow_Fanout(benchmark::State& state) {
  RunCounterBenchmark(state, FanoutGraph(),
                      *Motif::Parse("0>1,0>2", "fanout"));
}
BENCHMARK(BM_CounterWindow_Fanout)
    ->Arg(2000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Full join-baseline run (count only): step-1 quintuples, the
/// hierarchical joins, and the anchor-novelty filter.
void BM_JoinBaseline_Ring(benchmark::State& state) {
  const Timestamp delta = state.range(0);
  const TimeSeriesGraph& graph = JoinRingGraph();
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  const JoinMotifEnumerator join(graph, motif, delta, /*phi=*/5.0);

  JoinMotifEnumerator::Result result;
  for (auto _ : state) {
    result = join.Run();
    benchmark::DoNotOptimize(result.num_instances);
  }
  state.counters["quintuples"] =
      benchmark::Counter(static_cast<double>(result.num_quintuples));
  state.counters["partials"] =
      benchmark::Counter(static_cast<double>(result.num_partials));
  state.counters["instances"] =
      benchmark::Counter(static_cast<double>(result.num_instances));
}
BENCHMARK(BM_JoinBaseline_Ring)
    ->Arg(2000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
