// Benchmarks for the paper's future-work directions (Sec. 7), which this
// library implements:
//  1. counting instances without constructing them (InstanceCounter's
//     memoized counting vs full enumeration);
//  2. shared-prefix structural matching across a motif set
//     (MultiStructuralMatcher vs ten independent P1 runs);
//  3. general motifs beyond paths: a fan-out "smurfing distribution"
//     query on the bitcoin-like network.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/counter.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/multi_enumerator.h"
#include "core/multi_matcher.h"
#include "core/structural_match.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  // --- 1. Counting vs enumerating. ----------------------------------------
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Future work 1 (" + preset.name +
                "): count-only vs enumerate, delta=" +
                std::to_string(preset.default_delta) +
                " phi=" + FormatDouble(preset.default_phi, 1));
    PrintRow({"motif", "enumerate", "count", "speedup", "#inst", "memohit"});
    for (const char* name : {"M(3,2)", "M(3,3)", "M(4,3)", "M(5,4)"}) {
      Motif motif = *MotifCatalog::ByName(name);
      StructuralMatcher matcher(graph, motif);
      const std::vector<MatchBinding> matches = matcher.FindAllMatches();

      EnumerationOptions options;
      options.delta = preset.default_delta;
      options.phi = preset.default_phi;
      FlowMotifEnumerator enumerator(graph, motif, options);
      WallTimer enum_timer;
      EnumerationResult enumerated = enumerator.RunOnMatches(matches);
      const double enum_seconds = enum_timer.ElapsedSeconds();

      InstanceCounter counter(graph, motif, options.delta, options.phi);
      WallTimer count_timer;
      InstanceCounter::Result counted = counter.RunOnMatches(matches);
      const double count_seconds = count_timer.ElapsedSeconds();

      if (counted.num_instances != enumerated.num_instances) {
        std::cout << "!! count mismatch on " << name << "\n";
        return 1;
      }
      PrintRow({name, FormatSeconds(enum_seconds),
                FormatSeconds(count_seconds),
                FormatDouble(enum_seconds / std::max(1e-9, count_seconds),
                             2) + "x",
                FormatCount(counted.num_instances),
                FormatCount(counted.memo_hits)});
    }
  }

  // --- 1b. Counting on the paper's worst case (Sec. 4 complexity
  // analysis): phi = 0 and edges assigned round-robin in one window, so
  // the number of instances is exponential in the motif length. The
  // memoized counter collapses shared suffixes and stays polynomial. ----
  PrintHeader("Future work 1b: count-only on the Sec. 4 worst case "
              "(round-robin window, phi=0)");
  PrintRow({"chain", "#inst", "enumerate", "count", "speedup", "memohit"});
  for (const auto& [m, per_edge] :
       std::vector<std::pair<int, int>>{{3, 200}, {4, 60}, {5, 30}}) {
    InteractionGraph mg;
    // Chain 0 -> 1 -> ... -> m with interactions interleaved round-robin:
    // edge i carries times i, m+i, 2m+i, ...
    for (int r = 0; r < per_edge; ++r) {
      for (int e = 0; e < m; ++e) {
        Status s = mg.AddEdge(e, e + 1, r * m + e, 1.0);
        if (!s.ok()) return 1;
      }
    }
    TimeSeriesGraph stress = TimeSeriesGraph::Build(mg);
    std::vector<MotifNode> path;
    for (int v = 0; v <= m; ++v) path.push_back(v);
    Motif chain = *Motif::FromSpanningPath(path);

    EnumerationOptions options;
    options.delta = static_cast<Timestamp>(per_edge) * m + 1;
    options.phi = 0.0;
    FlowMotifEnumerator enumerator(stress, chain, options);
    WallTimer enum_timer;
    EnumerationResult enumerated = enumerator.Run();
    const double enum_seconds = enum_timer.ElapsedSeconds();

    InstanceCounter counter(stress, chain, options.delta, options.phi);
    WallTimer count_timer;
    InstanceCounter::Result counted = counter.Run();
    const double count_seconds = count_timer.ElapsedSeconds();

    if (counted.num_instances != enumerated.num_instances) {
      std::cout << "!! stress count mismatch\n";
      return 1;
    }
    PrintRow({"len-" + std::to_string(m),
              FormatCount(counted.num_instances),
              FormatSeconds(enum_seconds), FormatSeconds(count_seconds),
              FormatDouble(enum_seconds / std::max(1e-9, count_seconds), 1) +
                  "x",
              FormatCount(counted.memo_hits)});
  }

  // --- 2. Shared-prefix P1 over the whole catalog. -------------------------
  PrintHeader("Future work 2: shared-prefix P1 (all 10 motifs at once)");
  PrintRow({"dataset", "10 runs", "shared", "speedup", "trie"});
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);

    WallTimer individual_timer;
    std::vector<int64_t> individual_counts;
    for (const Motif& motif : MotifCatalog::All()) {
      individual_counts.push_back(
          StructuralMatcher(graph, motif).CountMatches());
    }
    const double individual_seconds = individual_timer.ElapsedSeconds();

    StatusOr<MultiStructuralMatcher> multi =
        MultiStructuralMatcher::Create(graph, MotifCatalog::All());
    if (!multi.ok()) {
      std::cout << "!! " << multi.status().ToString() << "\n";
      return 1;
    }
    WallTimer shared_timer;
    std::vector<int64_t> shared_counts = multi->CountAll();
    const double shared_seconds = shared_timer.ElapsedSeconds();

    if (shared_counts != individual_counts) {
      std::cout << "!! shared-prefix matching changed counts\n";
      return 1;
    }
    PrintRow({preset.name, FormatSeconds(individual_seconds),
              FormatSeconds(shared_seconds),
              FormatDouble(individual_seconds /
                               std::max(1e-9, shared_seconds),
                           2) + "x",
              FormatCount(multi->num_trie_nodes())});
  }

  // --- 2b. Full catalog query: per-motif P1+P2 vs the combined
  // MultiMotifEnumerator (shared P1 feeding per-motif P2). ------------------
  PrintHeader("Future work 2b: full 10-motif query, separate vs combined");
  PrintRow({"dataset", "separate", "combined", "speedup"});
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    EnumerationOptions options;
    options.delta = preset.default_delta;
    options.phi = preset.default_phi;

    WallTimer separate_timer;
    std::vector<int64_t> separate_counts;
    for (const Motif& motif : MotifCatalog::All()) {
      separate_counts.push_back(
          FlowMotifEnumerator(graph, motif, options).Run().num_instances);
    }
    const double separate_seconds = separate_timer.ElapsedSeconds();

    StatusOr<MultiMotifEnumerator> multi =
        MultiMotifEnumerator::Create(graph, MotifCatalog::All(), options);
    if (!multi.ok()) {
      std::cout << "!! " << multi.status().ToString() << "\n";
      return 1;
    }
    WallTimer combined_timer;
    std::vector<EnumerationResult> combined = multi->Run();
    const double combined_seconds = combined_timer.ElapsedSeconds();

    for (size_t i = 0; i < combined.size(); ++i) {
      if (combined[i].num_instances != separate_counts[i]) {
        std::cout << "!! combined query changed counts\n";
        return 1;
      }
    }
    PrintRow({preset.name, FormatSeconds(separate_seconds),
              FormatSeconds(combined_seconds),
              FormatDouble(separate_seconds /
                               std::max(1e-9, combined_seconds),
                           2) + "x"});
  }

  // --- 3. General motifs: smurfing fan-out on the bitcoin network. ---------
  {
    const DatasetPreset& preset = GetPreset(DatasetKind::kBitcoin);
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Future work 3 (bitcoin): fan-out distribution motifs");
    PrintRow({"motif", "#matches", "#inst", "time"});
    for (const char* spec : {"0>1,0>2", "0>1,0>2,0>3", "0>1,1>2,1>3"}) {
      StatusOr<Motif> motif = Motif::Parse(spec);
      if (!motif.ok()) {
        std::cout << "!! " << motif.status().ToString() << "\n";
        return 1;
      }
      EnumerationOptions options;
      options.delta = preset.default_delta;
      options.phi = preset.default_phi;
      WallTimer timer;
      StructuralMatcher matcher(graph, *motif);
      const int64_t matches = matcher.CountMatches();
      EnumerationResult result =
          FlowMotifEnumerator(graph, *motif, options).Run();
      PrintRow({spec, FormatCount(matches),
                FormatCount(result.num_instances),
                FormatSeconds(timer.ElapsedSeconds())});
    }
  }

  std::cout << "\nAll three Sec. 7 directions verified against the "
               "reference implementations (identical results).\n";
  return 0;
}
