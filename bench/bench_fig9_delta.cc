// Fig. 9 workload (instance counts as the duration constraint delta
// varies, phi fixed at the dataset default) as a google-benchmark
// harness comparing how the whole curve is produced:
//
//  * per_point_enumerate — the pre-rewrite harness behavior: one full
//    two-phase enumeration query per delta point (phase P1 re-derives
//    the same structural matches at every point, and every instance is
//    expanded to obtain a count);
//  * per_point_count — the strongest per-point baseline: one kCount
//    query (memoized counting recursion) per delta point, still paying
//    P1 per point;
//  * sweep — one QueryEngine::RunSweep for the whole curve: P1 once,
//    one skeleton recording per delta, one replay kernel pass per cell
//    (core/skeleton.h). Counts are byte-identical to the per-point
//    families (sweep_equivalence_test locks this in).
//
// The benchmark arg selects the dataset preset (0 = bitcoin,
// 1 = facebook, 2 = passenger); each iteration produces the full
// delta-sweep curve for M(3,3). The CI perf step compares real_time per
// name against BENCH_baseline.json; the sweep-vs-per-point ratio is the
// number the ISSUE-6 >=3x target tracks.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"

namespace flowmotif {
namespace {

const Motif& CurveMotif() {
  static const Motif* motif = new Motif(*MotifCatalog::ByName("M(3,3)"));
  return *motif;
}

const DatasetPreset& PresetArg(const benchmark::State& state) {
  return AllPresets()[static_cast<size_t>(state.range(0))];
}

/// Sums the curve's counts so the whole grid feeds DoNotOptimize and
/// the families can cross-check each other in the counters.
void ReportCurve(benchmark::State& state, int64_t total_count) {
  state.counters["curve_total"] =
      benchmark::Counter(static_cast<double>(total_count));
}

void BM_Fig9DeltaCurve_PerPointEnumerate(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  int64_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const Timestamp delta : preset.delta_sweep) {
      const QueryOptions options = bench::BenchQueryOptions(
          QueryMode::kEnumerate, delta, preset.default_phi);
      total += engine.Run(CurveMotif(), options).stats.num_instances;
    }
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig9DeltaCurve_PerPointEnumerate)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Fig9DeltaCurve_PerPointCount(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  int64_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const Timestamp delta : preset.delta_sweep) {
      const QueryOptions options = bench::BenchQueryOptions(
          QueryMode::kCount, delta, preset.default_phi);
      total += engine.Run(CurveMotif(), options).stats.num_instances;
    }
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig9DeltaCurve_PerPointCount)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Fig9DeltaCurve_Sweep(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  const SweepQuery sweep{preset.delta_sweep, {preset.default_phi}};
  const QueryOptions options = bench::BenchQueryOptions(
      QueryMode::kCount, preset.default_delta, preset.default_phi);
  int64_t total = 0;
  for (auto _ : state) {
    const SweepResult result = engine.RunSweep(CurveMotif(), sweep, options);
    total = 0;
    for (const int64_t c : result.counts) total += c;
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig9DeltaCurve_Sweep)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
