// Reproduces Fig. 9: the number of instances and the runtime of the
// two-phase algorithm as the duration constraint delta varies (phi fixed
// at its default). One table per dataset; rows are motifs, columns the
// delta sweep used in the paper ({200..1000}s for bitcoin/facebook,
// {300..1500}s for passenger).
//
// Paper shape: both the instance count and the runtime grow with delta,
// with the runtime growing at a lower pace than the result count.
#include <iostream>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);

    PrintHeader("Fig. 9 (" + preset.name + "): #instances vs delta, phi=" +
                FormatDouble(preset.default_phi, 1));
    std::vector<std::string> header{"motif"};
    for (Timestamp delta : preset.delta_sweep) {
      header.push_back("d=" + std::to_string(delta));
    }
    PrintRow(header);

    // Collected timings printed as a second table below.
    std::vector<std::vector<std::string>> time_rows;
    for (const Motif& motif : MotifCatalog::All()) {
      std::vector<std::string> count_row{motif.name()};
      std::vector<std::string> time_row{motif.name()};
      for (Timestamp delta : preset.delta_sweep) {
        EnumerationOptions options;
        options.delta = delta;
        options.phi = preset.default_phi;
        WallTimer timer;
        EnumerationResult result =
            FlowMotifEnumerator(graph, motif, options).Run();
        count_row.push_back(FormatCount(result.num_instances));
        time_row.push_back(FormatSeconds(timer.ElapsedSeconds()));
      }
      PrintRow(count_row);
      time_rows.push_back(time_row);
    }

    PrintHeader("Fig. 9 (" + preset.name + "): runtime vs delta");
    PrintRow(header);
    for (const auto& row : time_rows) PrintRow(row);
  }
  std::cout << "\nPaper shape: counts and time increase with delta; cost "
               "grows slower than results.\n";
  return 0;
}
