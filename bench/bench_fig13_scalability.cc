// Reproduces Fig. 13: scalability to dataset size using time-prefix
// samples — B1..B5 (bitcoin), F1..F5 (facebook), T1..T4 (passenger) —
// each covering a growing prefix of the dataset's time span, like the
// paper's month-prefix samples. Reports instances and runtime per motif
// per sample at default delta/phi.
//
// Paper shape: cost grows with data size but at a slower pace than the
// number of instances.
#include <iostream>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "graph/time_slice.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    const std::vector<Timestamp> cuts =
        EqualTimePrefixes(graph, preset.num_time_samples);
    // B1..B5, F1..F5, T1..T4 as in the paper ("T" for the taxi network).
    const char sample_letter =
        preset.kind == DatasetKind::kBitcoin    ? 'B'
        : preset.kind == DatasetKind::kFacebook ? 'F'
                                                : 'T';

    std::vector<TimeSeriesGraph> samples;
    std::vector<std::string> header{"motif"};
    for (size_t i = 0; i < cuts.size(); ++i) {
      samples.push_back(SliceByMaxTime(graph, cuts[i]));
      header.push_back(std::string(1, sample_letter) +
                       std::to_string(i + 1));
    }

    PrintHeader("Fig. 13 (" + preset.name + "): sample sizes");
    {
      std::vector<std::string> row{"#edges"};
      for (const auto& sample : samples) {
        row.push_back(FormatCount(sample.ComputeStats().num_interactions));
      }
      PrintRow(row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): #instances per sample");
    PrintRow(header);
    std::vector<std::vector<std::string>> time_rows;
    for (const Motif& motif : MotifCatalog::All()) {
      std::vector<std::string> count_row{motif.name()};
      std::vector<std::string> time_row{motif.name()};
      for (const auto& sample : samples) {
        EnumerationOptions options;
        options.delta = preset.default_delta;
        options.phi = preset.default_phi;
        WallTimer timer;
        EnumerationResult result =
            FlowMotifEnumerator(sample, motif, options).Run();
        count_row.push_back(FormatCount(result.num_instances));
        time_row.push_back(FormatSeconds(timer.ElapsedSeconds()));
      }
      PrintRow(count_row);
      time_rows.push_back(time_row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): runtime per sample");
    PrintRow(header);
    for (const auto& row : time_rows) PrintRow(row);
  }
  std::cout << "\nPaper shape: instances and cost grow with the sample; "
               "cost grows at the slower pace.\n";
  return 0;
}
