// Reproduces Fig. 13: scalability to dataset size using time-prefix
// samples — B1..B5 (bitcoin), F1..F5 (facebook), T1..T4 (passenger) —
// each covering a growing prefix of the dataset's time span, like the
// paper's month-prefix samples. Reports instances and runtime per motif
// per sample at default delta/phi, all through the QueryEngine facade
// (so --threads=N parallelizes every cell).
//
// A second section goes beyond the paper: per-phase thread scalability.
// For each preset it times phase P1 (structural matching) serial vs
// parallel over the work-unit decomposition, checks the match lists are
// byte-identical, then runs threshold enumeration and top-k over the
// precomputed matches with one thread and with --threads workers
// (isolating the phase-P2 speedup), checking that instance counts and
// top-k flows are byte-identical too.
//
// Paper shape: cost grows with data size but at a slower pace than the
// number of instances.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "engine/query_engine.h"
#include "graph/time_slice.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

namespace {

std::string Speedup(double serial_seconds, double parallel_seconds) {
  return FormatDouble(serial_seconds / std::max(parallel_seconds, 1e-9), 2) +
         "x";
}

/// One serial-vs-parallel comparison; returns false on any mismatch.
bool CompareThreadScaling(const TimeSeriesGraph& graph, const Motif& motif,
                          const DatasetPreset& preset) {
  const QueryEngine engine(graph);
  const StructuralMatcher matcher(graph, motif);

  // Phase P1: serial reference vs the work-unit-parallel path.
  WallTimer p1_serial_timer;
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  const double p1_serial = p1_serial_timer.ElapsedSeconds();

  ThreadPool p1_pool(BenchThreads());
  WallTimer p1_parallel_timer;
  const std::vector<MatchBinding> parallel_matches =
      matcher.FindAllMatchesParallel(&p1_pool);
  const double p1_parallel = p1_parallel_timer.ElapsedSeconds();
  bool identical = parallel_matches == matches;

  // Phase P2 in isolation, over the precomputed matches.
  QueryOptions enumerate = BenchQueryOptions(
      QueryMode::kEnumerate, preset.default_delta, preset.default_phi);
  QueryOptions topk =
      BenchQueryOptions(QueryMode::kTopK, preset.default_delta, 0.0);
  topk.k = 10;

  enumerate.num_threads = 1;
  topk.num_threads = 1;
  const QueryResult serial_enum =
      engine.RunOnMatches(motif, matches, enumerate);
  const QueryResult serial_topk = engine.RunOnMatches(motif, matches, topk);

  enumerate.num_threads = BenchThreads();
  topk.num_threads = BenchThreads();
  const QueryResult parallel_enum =
      engine.RunOnMatches(motif, matches, enumerate);
  const QueryResult parallel_topk =
      engine.RunOnMatches(motif, matches, topk);

  identical = identical &&
              serial_enum.stats.num_instances ==
                  parallel_enum.stats.num_instances &&
              serial_topk.topk.size() == parallel_topk.topk.size();
  if (identical) {
    for (size_t i = 0; i < serial_topk.topk.size(); ++i) {
      identical = identical &&
                  serial_topk.topk[i].flow == parallel_topk.topk[i].flow;
    }
  }

  PrintRow({motif.name(), FormatCount(serial_enum.stats.num_instances),
            FormatSeconds(p1_serial), FormatSeconds(p1_parallel),
            Speedup(p1_serial, p1_parallel),
            FormatSeconds(serial_enum.wall_seconds),
            FormatSeconds(parallel_enum.wall_seconds),
            Speedup(serial_enum.wall_seconds, parallel_enum.wall_seconds),
            FormatSeconds(serial_topk.wall_seconds),
            FormatSeconds(parallel_topk.wall_seconds),
            Speedup(serial_topk.wall_seconds, parallel_topk.wall_seconds),
            identical ? "yes" : "MISMATCH"});
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchFlags(argc, argv);

  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    const std::vector<Timestamp> cuts =
        EqualTimePrefixes(graph, preset.num_time_samples);
    // B1..B5, F1..F5, T1..T4 as in the paper ("T" for the taxi network).
    const char sample_letter =
        preset.kind == DatasetKind::kBitcoin    ? 'B'
        : preset.kind == DatasetKind::kFacebook ? 'F'
                                                : 'T';

    std::vector<TimeSeriesGraph> samples;
    std::vector<std::string> header{"motif"};
    for (size_t i = 0; i < cuts.size(); ++i) {
      samples.push_back(SliceByMaxTime(graph, cuts[i]));
      header.push_back(std::string(1, sample_letter) +
                       std::to_string(i + 1));
    }

    PrintHeader("Fig. 13 (" + preset.name + "): sample sizes");
    {
      std::vector<std::string> row{"#edges"};
      for (const auto& sample : samples) {
        row.push_back(FormatCount(sample.ComputeStats().num_interactions));
      }
      PrintRow(row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): #instances per sample");
    PrintRow(header);
    std::vector<std::vector<std::string>> time_rows;
    for (const Motif& motif : MotifCatalog::All()) {
      std::vector<std::string> count_row{motif.name()};
      std::vector<std::string> time_row{motif.name()};
      for (const auto& sample : samples) {
        const QueryEngine engine(sample);
        const QueryResult result = engine.Run(
            motif, BenchQueryOptions(QueryMode::kEnumerate,
                                     preset.default_delta,
                                     preset.default_phi));
        count_row.push_back(FormatCount(result.stats.num_instances));
        time_row.push_back(FormatSeconds(result.wall_seconds));
      }
      PrintRow(count_row);
      time_rows.push_back(time_row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): runtime per sample");
    PrintRow(header);
    for (const auto& row : time_rows) PrintRow(row);
  }

  // Beyond the paper: per-phase thread scalability on the full datasets.
  bool all_identical = true;
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Per-phase thread scalability (" + preset.name + "): 1 vs " +
                std::to_string(BenchThreads()) + " threads");
    PrintRow({"motif", "#inst", "P1 1t", "P1 Nt", "P1 spd", "enum 1t",
              "enum Nt", "enum spd", "topk 1t", "topk Nt", "topk spd",
              "identical"});
    for (const std::string& name : {std::string("M(3,2)"),
                                    std::string("M(3,3)")}) {
      all_identical =
          CompareThreadScaling(graph, *MotifCatalog::ByName(name), preset) &&
          all_identical;
    }
  }

  std::cout << "\nPaper shape: instances and cost grow with the sample; "
               "cost grows at the slower pace.\n";
  if (!all_identical) {
    std::cout << "ERROR: parallel results diverged from serial.\n";
    return 1;
  }
  std::cout << "Parallel results byte-identical to serial for every "
               "preset and motif.\n";
  return 0;
}
