// Reproduces Fig. 13: scalability to dataset size using time-prefix
// samples — B1..B5 (bitcoin), F1..F5 (facebook), T1..T4 (passenger) —
// each covering a growing prefix of the dataset's time span, like the
// paper's month-prefix samples. Reports instances and runtime per motif
// per sample at default delta/phi, all through the QueryEngine facade
// (so --threads=N parallelizes every cell).
//
// A second section goes beyond the paper: thread scalability of phase
// P2. For each preset it runs threshold enumeration and top-k with one
// thread and with --threads workers, checks that instance counts and
// top-k flows are byte-identical, and reports the speedup.
//
// Paper shape: cost grows with data size but at a slower pace than the
// number of instances.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "graph/time_slice.h"

using namespace flowmotif;
using namespace flowmotif::bench;

namespace {

/// One serial-vs-parallel comparison; returns false on any mismatch.
bool CompareThreadScaling(const TimeSeriesGraph& graph, const Motif& motif,
                          const DatasetPreset& preset) {
  const QueryEngine engine(graph);

  // Phase P1 is serial by design; computing the matches once and timing
  // RunOnMatches isolates the phase-P2 speedup (what the threads
  // actually scale) instead of diluting it by Amdahl's law.
  const std::vector<MatchBinding> matches =
      StructuralMatcher(graph, motif).FindAllMatches();

  QueryOptions enumerate = BenchQueryOptions(
      QueryMode::kEnumerate, preset.default_delta, preset.default_phi);
  QueryOptions topk =
      BenchQueryOptions(QueryMode::kTopK, preset.default_delta, 0.0);
  topk.k = 10;

  enumerate.num_threads = 1;
  topk.num_threads = 1;
  const QueryResult serial_enum =
      engine.RunOnMatches(motif, matches, enumerate);
  const QueryResult serial_topk = engine.RunOnMatches(motif, matches, topk);

  enumerate.num_threads = BenchThreads();
  topk.num_threads = BenchThreads();
  const QueryResult parallel_enum =
      engine.RunOnMatches(motif, matches, enumerate);
  const QueryResult parallel_topk =
      engine.RunOnMatches(motif, matches, topk);

  bool identical = serial_enum.stats.num_instances ==
                       parallel_enum.stats.num_instances &&
                   serial_topk.topk.size() == parallel_topk.topk.size();
  if (identical) {
    for (size_t i = 0; i < serial_topk.topk.size(); ++i) {
      identical = identical &&
                  serial_topk.topk[i].flow == parallel_topk.topk[i].flow;
    }
  }

  PrintRow({motif.name(), FormatCount(serial_enum.stats.num_instances),
            FormatSeconds(serial_enum.wall_seconds),
            FormatSeconds(parallel_enum.wall_seconds),
            FormatDouble(
                serial_enum.wall_seconds /
                    std::max(parallel_enum.wall_seconds, 1e-9),
                2) + "x",
            FormatSeconds(serial_topk.wall_seconds),
            FormatSeconds(parallel_topk.wall_seconds),
            FormatDouble(
                serial_topk.wall_seconds /
                    std::max(parallel_topk.wall_seconds, 1e-9),
                2) + "x",
            identical ? "yes" : "MISMATCH"});
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  InitBenchFlags(argc, argv);

  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    const std::vector<Timestamp> cuts =
        EqualTimePrefixes(graph, preset.num_time_samples);
    // B1..B5, F1..F5, T1..T4 as in the paper ("T" for the taxi network).
    const char sample_letter =
        preset.kind == DatasetKind::kBitcoin    ? 'B'
        : preset.kind == DatasetKind::kFacebook ? 'F'
                                                : 'T';

    std::vector<TimeSeriesGraph> samples;
    std::vector<std::string> header{"motif"};
    for (size_t i = 0; i < cuts.size(); ++i) {
      samples.push_back(SliceByMaxTime(graph, cuts[i]));
      header.push_back(std::string(1, sample_letter) +
                       std::to_string(i + 1));
    }

    PrintHeader("Fig. 13 (" + preset.name + "): sample sizes");
    {
      std::vector<std::string> row{"#edges"};
      for (const auto& sample : samples) {
        row.push_back(FormatCount(sample.ComputeStats().num_interactions));
      }
      PrintRow(row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): #instances per sample");
    PrintRow(header);
    std::vector<std::vector<std::string>> time_rows;
    for (const Motif& motif : MotifCatalog::All()) {
      std::vector<std::string> count_row{motif.name()};
      std::vector<std::string> time_row{motif.name()};
      for (const auto& sample : samples) {
        const QueryEngine engine(sample);
        const QueryResult result = engine.Run(
            motif, BenchQueryOptions(QueryMode::kEnumerate,
                                     preset.default_delta,
                                     preset.default_phi));
        count_row.push_back(FormatCount(result.stats.num_instances));
        time_row.push_back(FormatSeconds(result.wall_seconds));
      }
      PrintRow(count_row);
      time_rows.push_back(time_row);
    }

    PrintHeader("Fig. 13 (" + preset.name + "): runtime per sample");
    PrintRow(header);
    for (const auto& row : time_rows) PrintRow(row);
  }

  // Beyond the paper: phase-P2 thread scalability on the full datasets.
  bool all_identical = true;
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Thread scalability (" + preset.name + "): 1 vs " +
                std::to_string(BenchThreads()) + " threads");
    PrintRow({"motif", "#inst", "enum 1t", "enum Nt", "speedup", "topk 1t",
              "topk Nt", "speedup", "identical"});
    for (const std::string& name : {std::string("M(3,2)"),
                                    std::string("M(3,3)")}) {
      all_identical =
          CompareThreadScaling(graph, *MotifCatalog::ByName(name), preset) &&
          all_identical;
    }
  }

  std::cout << "\nPaper shape: instances and cost grow with the sample; "
               "cost grows at the slower pace.\n";
  if (!all_identical) {
    std::cout << "ERROR: parallel results diverged from serial.\n";
    return 1;
  }
  std::cout << "Parallel results byte-identical to serial for every "
               "preset and motif.\n";
  return 0;
}
