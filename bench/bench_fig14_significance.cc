// Reproduces Fig. 14: motif significance against randomized networks.
// For each dataset and motif, 20 flow-permuted copies of the graph are
// generated (structure and timestamps fixed, flow multiset shuffled);
// the real instance count is compared against the randomized counts via
// box-plot statistics, z-scores, and empirical p-values.
//
// Paper shape: real counts far exceed randomized ones (p = 0 for all
// motifs); z-scores differ per motif and network, with cyclic motifs
// over-represented on bitcoin/passenger and chains on facebook.
#include <iostream>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "core/significance.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);

    SignificanceAnalyzer::Options options;
    options.num_random_graphs = 20;  // as in the paper
    options.seed = 424242;
    options.delta = preset.default_delta;
    options.phi = preset.default_phi;
    SignificanceAnalyzer analyzer(graph, options);

    PrintHeader("Fig. 14 (" + preset.name +
                "): real vs 20 randomized graphs, delta=" +
                std::to_string(options.delta) +
                " phi=" + FormatDouble(options.phi, 1));
    PrintRow({"motif", "real", "rnd-mean", "rnd-sd", "rnd-q1", "rnd-q3",
              "z-score", "p-value"});

    WallTimer timer;
    for (const Motif& motif : MotifCatalog::All()) {
      SignificanceAnalyzer::MotifReport report = analyzer.Analyze(motif);
      PrintRow({report.motif_name, FormatCount(report.real_count),
                FormatDouble(report.random_summary.mean, 1),
                FormatDouble(report.random_summary.stddev, 1),
                FormatDouble(report.random_summary.q1, 1),
                FormatDouble(report.random_summary.q3, 1),
                FormatDouble(report.z_score, 2),
                FormatDouble(report.p_value, 3)});
    }
    std::cout << "(" << FormatSeconds(timer.ElapsedSeconds())
              << " for 10 motifs x 20 randomizations)\n";
  }
  std::cout << "\nPaper shape: real >> randomized with p=0 everywhere — "
               "flow travels along paths instead of being generated "
               "independently per edge.\n";
  return 0;
}
