// Significance-ensemble micro-benchmarks (Fig. 14 workload): one
// SignificanceAnalyzer::Analyze is the real graph plus N flow-permuted
// graphs (structure and timestamps fixed, flow multiset shuffled), each
// enumerated with the same motif — the null-model ensemble that Sec. 6.3
// and the related motif-significance literature (Paranjape et al.,
// Kovanen et al.) treat as the dominant cost, N+1 times the enumeration
// price.
//
// Presets:
//  * hub_fanin — K sparse 3-edge chains a_i > b_i > c_i > D feeding one
//    ultra-dense hub edge D > E; motif M(5,4) (node 2 interior, so the
//    window cache is live). Every match's (first, last) pair is distinct
//    and its window list costs O(|R(D,E)|) to compute, so the per-
//    permutation window work is the dominant ensemble cost — the shape
//    (many sparse paths ending in one high-traffic edge) mirrors
//    exchange hubs in the bitcoin network. This is the preset the
//    ISSUE-5 >=1.5x target and the CI regression threshold track.
//  * hub_chain — same graph, M(4,3): no interior node, the shape that
//    historically had no window cache at all.
//  * ring_chain — dense directed ring, M(4,3): recursion-dominated
//    counter-preset where window lists are a small fraction; guards
//    against the ensemble machinery taxing sweep-bound workloads.
//  * analyze_all — AnalyzeAll over three catalog motifs on the hub
//    graph: the paper randomizes the dataset once and evaluates every
//    motif against the same ensemble.
//  * permute_only — WithPermutedFlows generation alone: the storage
//    split turns full-graph copies into flow-array views.
//
// Run with --benchmark_out_format=json; the CI perf step compares
// real_time per benchmark name against the committed BENCH_baseline.json
// (pre-refactor significance path on the reference container) and fails
// on >25% single-thread regression.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/motif_catalog.h"
#include "core/significance.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {
namespace {

constexpr Timestamp kSpan = 1000000;  // event horizon of all presets
constexpr int kNumRandomGraphs = 20;  // as in the paper

/// Evenly spreads `per_edge` jittered interactions over [0, span).
void FillEdge(InteractionGraph* g, VertexId src, VertexId dst, int per_edge,
              Rng* rng) {
  const Timestamp slot = kSpan / per_edge;
  for (int i = 0; i < per_edge; ++i) {
    const Timestamp t =
        slot * i + static_cast<Timestamp>(
                       rng->NextBounded(static_cast<uint64_t>(slot)));
    const Flow f = rng->UniformDouble(0.5, 10.0);
    const Status s = g->AddEdge(src, dst, t, f);
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
  }
}

/// K sparse chains a_i > b_i > c_i > D converging on one dense hub edge
/// D > E. M(5,4) matches once per chain, each match with its own
/// (first, last) = (R(a_i,b_i), R(D,E)) cache key whose window list
/// scans the whole dense hub series.
TimeSeriesGraph MakeHubFanIn(int num_chains, int per_chain_edge,
                             int per_hub_edge, uint64_t seed) {
  InteractionGraph g;
  Rng rng(seed);
  // Vertices: chains use 3*num_chains ids, hub D and sink E follow.
  const VertexId hub = static_cast<VertexId>(3 * num_chains);
  const VertexId sink = hub + 1;
  for (int i = 0; i < num_chains; ++i) {
    const VertexId a = static_cast<VertexId>(3 * i);
    FillEdge(&g, a, a + 1, per_chain_edge, &rng);
    FillEdge(&g, a + 1, a + 2, per_chain_edge, &rng);
    FillEdge(&g, a + 2, hub, per_chain_edge, &rng);
  }
  FillEdge(&g, hub, sink, per_hub_edge, &rng);
  return TimeSeriesGraph::Build(g);
}

/// Directed ring 0 -> 1 -> ... -> size-1 -> 0, every edge `per_edge`
/// dense: the recursion-heavy counter-preset.
TimeSeriesGraph MakeRing(int size, int per_edge, uint64_t seed) {
  InteractionGraph g;
  Rng rng(seed);
  for (VertexId v = 0; v < size; ++v) {
    FillEdge(&g, v, (v + 1) % size, per_edge, &rng);
  }
  return TimeSeriesGraph::Build(g);
}

const TimeSeriesGraph& HubFanInGraph() {
  // Thin chains, heavy hub: the flow-dependent recursion stays small
  // while the flow-independent ensemble costs — the O(|R(D,E)|) window
  // scan per (first, last) pair and the per-permutation storage — carry
  // the run, which is the regime real hub-dominated datasets (bitcoin
  // exchange edges) put the significance pipeline in.
  static const TimeSeriesGraph* graph = new TimeSeriesGraph(
      MakeHubFanIn(/*num_chains=*/40, /*per_chain_edge=*/60,
                   /*per_hub_edge=*/240000, /*seed=*/7));
  return *graph;
}

const TimeSeriesGraph& DenseRingGraph() {
  static const TimeSeriesGraph* graph =
      new TimeSeriesGraph(MakeRing(8, 1200, 11));
  return *graph;
}

SignificanceAnalyzer::Options AnalyzerOptions(Timestamp delta, Flow phi) {
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = kNumRandomGraphs;
  options.seed = 424242;
  options.delta = delta;
  options.phi = phi;
  return options;
}

/// One full Analyze per iteration: ensemble generation + real count +
/// kNumRandomGraphs randomized counts (serial, 1 thread — the number the
/// CI gate tracks).
void RunSignificanceBenchmark(benchmark::State& state,
                              const TimeSeriesGraph& graph,
                              const Motif& motif, Flow phi) {
  const Timestamp delta = state.range(0);
  const SignificanceAnalyzer analyzer(graph, AnalyzerOptions(delta, phi));

  SignificanceAnalyzer::MotifReport report;
  for (auto _ : state) {
    report = analyzer.Analyze(motif);
    benchmark::DoNotOptimize(report.real_count);
  }
  state.counters["real"] =
      benchmark::Counter(static_cast<double>(report.real_count));
  state.counters["rnd_mean"] = benchmark::Counter(report.random_summary.mean);
  state.counters["z"] = benchmark::Counter(report.z_score);
  state.counters["graphs/s"] = benchmark::Counter(
      static_cast<double>(kNumRandomGraphs + 1) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Fig14Significance_HubFanIn(benchmark::State& state) {
  RunSignificanceBenchmark(state, HubFanInGraph(),
                           *MotifCatalog::ByName("M(5,4)"), /*phi=*/6.0);
}
BENCHMARK(BM_Fig14Significance_HubFanIn)
    ->Arg(30000)
    ->Arg(60000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig14Significance_HubChain(benchmark::State& state) {
  RunSignificanceBenchmark(state, HubFanInGraph(),
                           *MotifCatalog::ByName("M(4,3)"), /*phi=*/6.0);
}
BENCHMARK(BM_Fig14Significance_HubChain)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig14Significance_RingChain(benchmark::State& state) {
  RunSignificanceBenchmark(state, DenseRingGraph(),
                           *MotifCatalog::ByName("M(4,3)"), /*phi=*/12.0);
}
BENCHMARK(BM_Fig14Significance_RingChain)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

/// AnalyzeAll over a motif set: the paper's setup randomizes the dataset
/// once and evaluates every motif against the same ensemble.
void BM_Fig14Significance_AnalyzeAll(benchmark::State& state) {
  const Timestamp delta = state.range(0);
  const TimeSeriesGraph& graph = HubFanInGraph();
  const SignificanceAnalyzer analyzer(graph,
                                      AnalyzerOptions(delta, /*phi=*/6.0));
  const std::vector<Motif> motifs = {*MotifCatalog::ByName("M(3,2)"),
                                     *MotifCatalog::ByName("M(4,3)"),
                                     *MotifCatalog::ByName("M(5,4)")};

  for (auto _ : state) {
    const std::vector<SignificanceAnalyzer::MotifReport> reports =
        analyzer.AnalyzeAll(motifs);
    benchmark::DoNotOptimize(reports.size());
  }
}
BENCHMARK(BM_Fig14Significance_AnalyzeAll)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

/// Ensemble generation alone: kNumRandomGraphs WithPermutedFlows calls
/// from one serial RNG stream, exactly as the analyzer draws them.
void BM_Fig14Significance_PermuteOnly(benchmark::State& state) {
  const TimeSeriesGraph& graph = HubFanInGraph();
  for (auto _ : state) {
    Rng rng(424242);
    for (int i = 0; i < kNumRandomGraphs; ++i) {
      const TimeSeriesGraph permuted = graph.WithPermutedFlows(&rng);
      benchmark::DoNotOptimize(permuted.num_pairs());
    }
  }
}
BENCHMARK(BM_Fig14Significance_PermuteOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
