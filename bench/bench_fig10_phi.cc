// Reproduces Fig. 10: the number of instances and the runtime of the
// two-phase algorithm as the flow constraint phi varies (delta fixed at
// its default). Sweeps follow the paper: {5..25} bitcoin, {3..11}
// facebook, {1..5} passenger.
//
// Paper shape: both the instance count and the runtime drop as phi
// increases, because partial instances failing phi are pruned early.
#include <iostream>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);

    PrintHeader("Fig. 10 (" + preset.name + "): #instances vs phi, delta=" +
                std::to_string(preset.default_delta));
    std::vector<std::string> header{"motif"};
    for (Flow phi : preset.phi_sweep) {
      header.push_back("p=" + FormatDouble(phi, 0));
    }
    PrintRow(header);

    std::vector<std::vector<std::string>> time_rows;
    std::vector<std::vector<std::string>> prune_rows;
    for (const Motif& motif : MotifCatalog::All()) {
      std::vector<std::string> count_row{motif.name()};
      std::vector<std::string> time_row{motif.name()};
      std::vector<std::string> prune_row{motif.name()};
      for (Flow phi : preset.phi_sweep) {
        EnumerationOptions options;
        options.delta = preset.default_delta;
        options.phi = phi;
        WallTimer timer;
        EnumerationResult result =
            FlowMotifEnumerator(graph, motif, options).Run();
        count_row.push_back(FormatCount(result.num_instances));
        time_row.push_back(FormatSeconds(timer.ElapsedSeconds()));
        prune_row.push_back(FormatCount(result.num_phi_prunes));
      }
      PrintRow(count_row);
      time_rows.push_back(time_row);
      prune_rows.push_back(prune_row);
    }

    PrintHeader("Fig. 10 (" + preset.name + "): runtime vs phi");
    PrintRow(header);
    for (const auto& row : time_rows) PrintRow(row);

    PrintHeader("Fig. 10 (" + preset.name + "): phi prunes (extra)");
    PrintRow(header);
    for (const auto& row : prune_rows) PrintRow(row);
  }
  std::cout << "\nPaper shape: counts and time drop as phi grows; pruning "
               "does the work.\n";
  return 0;
}
