// Fig. 10 workload (instance counts as the flow constraint phi varies,
// delta fixed at the dataset default) as a google-benchmark harness
// comparing how the whole curve is produced:
//
//  * per_point_enumerate — the pre-rewrite harness behavior: one full
//    two-phase enumeration query per phi point;
//  * per_point_count — one kCount query per phi point (memoized
//    counting, still P1 + a full counting pass per point);
//  * sweep — one QueryEngine::RunSweep for the curve: P1 once, ONE
//    skeleton recording (the trace is phi-free), one EvaluateFlows
//    pass, then each phi is a linear DP over the cached slice flows
//    (SkeletonReplayer::CountWithFlows). The phi dimension is where
//    record-once/replay-many pays most: every point after the first
//    costs a kernel pass, not an enumeration.
//
// The benchmark arg selects the dataset preset (0 = bitcoin,
// 1 = facebook, 2 = passenger); each iteration produces the full
// phi-sweep curve for M(3,3). Counts are byte-identical across families
// (sweep_equivalence_test). CI gates real_time per name against
// BENCH_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"

namespace flowmotif {
namespace {

const Motif& CurveMotif() {
  static const Motif* motif = new Motif(*MotifCatalog::ByName("M(3,3)"));
  return *motif;
}

const DatasetPreset& PresetArg(const benchmark::State& state) {
  return AllPresets()[static_cast<size_t>(state.range(0))];
}

void ReportCurve(benchmark::State& state, int64_t total_count) {
  state.counters["curve_total"] =
      benchmark::Counter(static_cast<double>(total_count));
}

void BM_Fig10PhiCurve_PerPointEnumerate(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  int64_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const Flow phi : preset.phi_sweep) {
      const QueryOptions options = bench::BenchQueryOptions(
          QueryMode::kEnumerate, preset.default_delta, phi);
      total += engine.Run(CurveMotif(), options).stats.num_instances;
    }
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig10PhiCurve_PerPointEnumerate)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Fig10PhiCurve_PerPointCount(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  int64_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const Flow phi : preset.phi_sweep) {
      const QueryOptions options = bench::BenchQueryOptions(
          QueryMode::kCount, preset.default_delta, phi);
      total += engine.Run(CurveMotif(), options).stats.num_instances;
    }
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig10PhiCurve_PerPointCount)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Fig10PhiCurve_Sweep(benchmark::State& state) {
  const DatasetPreset& preset = PresetArg(state);
  const TimeSeriesGraph& graph = bench::BenchGraph(preset);
  const QueryEngine engine(graph);
  const SweepQuery sweep{{preset.default_delta}, preset.phi_sweep};
  const QueryOptions options = bench::BenchQueryOptions(
      QueryMode::kCount, preset.default_delta, preset.default_phi);
  int64_t total = 0;
  for (auto _ : state) {
    const SweepResult result = engine.RunSweep(CurveMotif(), sweep, options);
    total = 0;
    for (const int64_t c : result.counts) total += c;
    benchmark::DoNotOptimize(total);
  }
  ReportCurve(state, total);
}
BENCHMARK(BM_Fig10PhiCurve_Sweep)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
