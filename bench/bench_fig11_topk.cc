// Reproduces Fig. 11: the flow of the k-th best instance for
// k in {1, 5, 10, 50, 100, 500} at the default delta (phi = 0). The
// x-axis is intentionally non-linear, like the paper's.
//
// Paper shape: the k-th flow decreases with k and the drop rate flattens
// for large k.
#include <iostream>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "core/topk.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  const std::vector<int64_t> ks{1, 5, 10, 50, 100, 500};
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);

    PrintHeader("Fig. 11 (" + preset.name +
                "): flow of the k-th instance, delta=" +
                std::to_string(preset.default_delta));
    std::vector<std::string> header{"motif"};
    for (int64_t k : ks) header.push_back("k=" + std::to_string(k));
    PrintRow(header);

    for (const Motif& motif : MotifCatalog::All()) {
      // One search at max k yields every column (top-k flows are
      // prefix-stable in k).
      TopKSearcher searcher(graph, motif, preset.default_delta, ks.back());
      TopKSearcher::Result result = searcher.Run();
      std::vector<std::string> row{motif.name()};
      for (int64_t k : ks) {
        const Flow flow = result.KthFlow(static_cast<size_t>(k));
        row.push_back(flow > 0 ? FormatDouble(flow, 2) : "-");
      }
      PrintRow(row);
    }
  }
  std::cout << "\nPaper shape: k-th flow decreases in k; drop rate "
               "flattens at large k ('-' = fewer than k instances).\n";
  return 0;
}
