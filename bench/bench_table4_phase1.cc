// Reproduces Table 4: the number of structural matches and the phase-P1
// runtime per motif per dataset (independent of delta and phi).
//
// Paper shape to verify: match counts decrease as motifs grow; cyclic
// motifs have counts comparable to chains of the same size on bitcoin
// and facebook; the passenger row is flat-ish across sizes; P1 time
// increases with motif complexity.
#include <iostream>

#include "bench_common.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Table 4 (" + preset.name +
                "): structural matches and P1 time");
    PrintRow({"motif", "#matches", "P1-time"});
    for (const Motif& motif : MotifCatalog::All()) {
      StructuralMatcher matcher(graph, motif);
      WallTimer timer;
      const int64_t matches = matcher.CountMatches();
      PrintRow({motif.name(), FormatCount(matches),
                FormatSeconds(timer.ElapsedSeconds())});
    }
  }
  std::cout << "\nPaper shape: counts decrease with motif size; cyclic ~ "
               "acyclic on bitcoin/facebook; passenger flat-ish.\n";
  return 0;
}
