// Reproduces Fig. 12: phase-P2 time of top-1 search using the general
// top-k algorithm (k=1) vs the dynamic-programming module of Sec. 5.1.
// Structural matches are computed once and shared so that only P2 is
// measured, exactly as in the paper's bar charts.
//
// Paper shape: the DP module cuts P2 time by roughly 20-40%.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/dp.h"
#include "core/motif_catalog.h"
#include "core/structural_match.h"
#include "core/topk.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Fig. 12 (" + preset.name +
                "): P2 time, top-k(k=1) vs DP module, delta=" +
                std::to_string(preset.default_delta));
    PrintRow({"motif", "topk(k=1)", "DP", "saving", "flow"});

    for (const Motif& motif : MotifCatalog::All()) {
      StructuralMatcher matcher(graph, motif);
      const std::vector<MatchBinding> matches = matcher.FindAllMatches();

      TopKSearcher topk(graph, motif, preset.default_delta, 1);
      WallTimer topk_timer;
      TopKSearcher::Result topk_result = topk.RunOnMatches(matches);
      const double topk_seconds = topk_timer.ElapsedSeconds();

      MaxFlowDpSearcher dp(graph, motif, preset.default_delta);
      WallTimer dp_timer;
      MaxFlowDpSearcher::Result dp_result = dp.RunOnMatches(matches);
      const double dp_seconds = dp_timer.ElapsedSeconds();

      const Flow topk_flow =
          topk_result.entries.empty() ? 0.0 : topk_result.entries[0].flow;
      if (dp_result.found != !topk_result.entries.empty() ||
          (dp_result.found && dp_result.max_flow != topk_flow)) {
        std::cout << "!! top-1 flow mismatch on " << motif.name() << "\n";
        return 1;
      }
      PrintRow({motif.name(), FormatSeconds(topk_seconds),
                FormatSeconds(dp_seconds),
                FormatDouble((1.0 - dp_seconds /
                                        std::max(1e-9, topk_seconds)) *
                                 100.0,
                             0) + "%",
                dp_result.found ? FormatDouble(dp_result.max_flow, 2) : "-"});
    }
  }
  std::cout << "\nPaper shape: DP reduces P2 time by ~20-40% (best on the "
               "passenger network).\n";
  return 0;
}
