// Reproduces Fig. 8: runtime of the paper's two-phase algorithm vs the
// join-based baseline for all ten motifs on the three datasets at the
// default delta/phi. The paper's shape: the two-phase algorithm is
// roughly 2x faster everywhere because the join materializes sub-motif
// instances that never contribute to final results.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/enumerator.h"
#include "core/join_baseline.h"
#include "core/motif_catalog.h"
#include "util/timer.h"

using namespace flowmotif;
using namespace flowmotif::bench;

int main() {
  for (const DatasetPreset& preset : AllPresets()) {
    const TimeSeriesGraph& graph = BenchGraph(preset);
    PrintHeader("Fig. 8 (" + preset.name + "): join vs two-phase, delta=" +
                std::to_string(preset.default_delta) +
                " phi=" + FormatDouble(preset.default_phi, 1));
    PrintRow({"motif", "2phase", "join", "speedup", "#inst", "join#"});

    for (const Motif& motif : MotifCatalog::All()) {
      EnumerationOptions options;
      options.delta = preset.default_delta;
      options.phi = preset.default_phi;

      WallTimer two_phase_timer;
      EnumerationResult two_phase =
          FlowMotifEnumerator(graph, motif, options).Run();
      const double two_phase_seconds = two_phase_timer.ElapsedSeconds();

      JoinMotifEnumerator join(graph, motif, options.delta, options.phi);
      WallTimer join_timer;
      JoinMotifEnumerator::Result join_result = join.Run();
      const double join_seconds = join_timer.ElapsedSeconds();

      PrintRow({motif.name(), FormatSeconds(two_phase_seconds),
                FormatSeconds(join_seconds),
                FormatDouble(join_seconds / std::max(1e-9, two_phase_seconds),
                             2) + "x",
                FormatCount(two_phase.num_instances),
                FormatCount(join_result.num_instances)});
      if (two_phase.num_instances != join_result.num_instances) {
        std::cout << "!! instance count mismatch\n";
        return 1;
      }
    }
  }
  std::cout << "\nPaper shape: two-phase ~2x faster than join on every "
               "motif and dataset.\n";
  return 0;
}
