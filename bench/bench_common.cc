#include "bench_common.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "util/flags.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace flowmotif {
namespace bench {

double BenchScale() {
  static const double kScale = [] {
    const char* env = std::getenv("FLOWMOTIF_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || v <= 0.0) {
      FLOWMOTIF_LOG(Warning) << "ignoring bad FLOWMOTIF_BENCH_SCALE=" << env;
      return 1.0;
    }
    return v;
  }();
  return kScale;
}

namespace {
int g_bench_threads = 1;
}  // namespace

void InitBenchFlags(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddInt64("threads", 1,
                 "worker threads for both engine phases "
                 "(0 = all hardware threads)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status << "\n" << flags.HelpString();
    std::exit(1);
  }
  // A clear rejection, not an aborting CHECK: a typo'd --threads=-1 is
  // operator error, and it must not reach ThreadPool's CHECK either.
  const int64_t threads = flags.GetInt64("threads");
  const Status threads_status = ValidateThreadsFlag(threads);
  if (!threads_status.ok()) {
    std::cerr << threads_status << "\n";
    std::exit(1);
  }
  g_bench_threads = static_cast<int>(threads);
  // Resolve "all hardware threads" here so reports print the real
  // count instead of "0 threads".
  if (g_bench_threads == 0) {
    g_bench_threads = ThreadPool::DefaultParallelism();
  }
}

int BenchThreads() { return g_bench_threads; }

QueryOptions BenchQueryOptions(QueryMode mode, Timestamp delta, Flow phi) {
  QueryOptions options;
  options.mode = mode;
  options.delta = delta;
  options.phi = phi;
  options.num_threads = BenchThreads();
  return options;
}

const TimeSeriesGraph& BenchGraph(const DatasetPreset& preset) {
  static std::map<std::string, TimeSeriesGraph>* const kCache =
      new std::map<std::string, TimeSeriesGraph>();
  auto it = kCache->find(preset.name);
  if (it == kCache->end()) {
    FLOWMOTIF_LOG(Info) << "generating dataset '" << preset.name
                        << "' at scale " << BenchScale();
    it = kCache->emplace(preset.name, GenerateDataset(preset, BenchScale()))
             .first;
  }
  return it->second;
}

void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

void PrintRow(const std::vector<std::string>& cells) {
  std::ostringstream os;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 0) {
      os << std::left << std::setw(12) << cells[i] << std::right;
    } else {
      os << " | " << std::setw(10) << cells[i];
    }
  }
  std::cout << os.str() << "\n";
}

std::string FormatCount(int64_t value) { return std::to_string(value); }

std::string FormatSeconds(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << seconds << "s";
  return os.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace bench
}  // namespace flowmotif
