// Google-benchmark microbenchmarks of the core building blocks:
//  * EdgeSeries range-flow queries — prefix sums vs a naive scan (the
//    data-structure ablation behind Eq. 2's O(1) flow([tj,ti],k));
//  * structural matching throughput (phase P1);
//  * window computation (the sliding/skip logic);
//  * phase P2 on one structural match.
//  * cancellation-check overhead in the DP / counter hot loops — the
//    same loop with a null control vs an active never-tripping
//    QueryControl, gated < 1% as a same-run pair by
//    check_perf_regression.py --overhead-pair.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/counter.h"
#include "core/dp.h"
#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "gen/presets.h"
#include "graph/edge_series.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace flowmotif {
namespace {

EdgeSeries MakeSeries(size_t n) {
  Rng rng(99);
  std::vector<Interaction> interactions;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBounded(20));
    interactions.push_back({t, 1.0 + static_cast<Flow>(rng.NextBounded(9))});
  }
  return EdgeSeries(interactions);
}

// Args: {series length, query window width in ticks}. Narrow windows
// favor the naive scan (few elements); wide windows are where the
// prefix sums earn their keep — the DP's flow([tj,ti],k) lookups span
// arbitrarily wide ranges.
void BM_EdgeSeriesFlowPrefixSum(benchmark::State& state) {
  const EdgeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  const Timestamp max_t = series.time(series.size() - 1);
  const Timestamp width = state.range(1);
  Rng rng(7);
  for (auto _ : state) {
    Timestamp lo = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(max_t)));
    benchmark::DoNotOptimize(series.FlowInClosed(lo, lo + width));
  }
}
BENCHMARK(BM_EdgeSeriesFlowPrefixSum)
    ->Args({1000, 200})
    ->Args({100000, 200})
    ->Args({100000, 100000});

void BM_EdgeSeriesFlowNaiveScan(benchmark::State& state) {
  const EdgeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  const Timestamp max_t = series.time(series.size() - 1);
  const Timestamp width = state.range(1);
  Rng rng(7);
  for (auto _ : state) {
    Timestamp lo = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(max_t)));
    Timestamp hi = lo + width;
    // The naive alternative the prefix sums replace.
    double sum = 0.0;
    for (size_t i = series.LowerBound(lo);
         i < series.size() && series.time(i) <= hi; ++i) {
      sum += series.flow(i);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EdgeSeriesFlowNaiveScan)
    ->Args({1000, 200})
    ->Args({100000, 200})
    ->Args({100000, 100000});

const TimeSeriesGraph& MicroGraph() {
  static const TimeSeriesGraph* const kGraph = new TimeSeriesGraph(
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.5));
  return *kGraph;
}

void BM_StructuralMatching(benchmark::State& state) {
  const TimeSeriesGraph& graph = MicroGraph();
  const Motif& motif =
      MotifCatalog::All()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    StructuralMatcher matcher(graph, motif);
    benchmark::DoNotOptimize(matcher.CountMatches());
  }
  state.SetLabel(motif.name());
}
BENCHMARK(BM_StructuralMatching)->Arg(0)->Arg(1)->Arg(6);

void BM_WindowComputation(benchmark::State& state) {
  const EdgeSeries first = MakeSeries(static_cast<size_t>(state.range(0)));
  const EdgeSeries last = MakeSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeProcessedWindows(first, last, 600));
  }
}
BENCHMARK(BM_WindowComputation)->Arg(1000)->Arg(10000);

void BM_Phase2PerMatch(benchmark::State& state) {
  const TimeSeriesGraph& graph = MicroGraph();
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  EnumerationOptions options;
  options.delta = 900;
  options.phi = 2.0;
  FlowMotifEnumerator enumerator(graph, motif, options);
  size_t cursor = 0;
  for (auto _ : state) {
    EnumerationResult result;
    enumerator.EnumerateMatch(matches[cursor % matches.size()], nullptr,
                              &result);
    benchmark::DoNotOptimize(result.num_instances);
    ++cursor;
  }
}
BENCHMARK(BM_Phase2PerMatch);

// ---------------------------------------------------------------------
// Cancellation-check overhead. Each pair runs the identical hot loop
// twice: once on the zero-overhead null-control path, once under an
// active QueryControl whose deadline is hours away — every per-match
// cooperative check executes but never trips. CI gates
// Control vs NoControl at < 1% with check_perf_regression.py
// --overhead-pair: both rows come from one JSON of one run on one
// machine, so the comparison dodges the cross-machine noise the
// absolute baseline gate has to absorb with its 25% threshold.

const std::vector<MatchBinding>& MicroMatches() {
  static const std::vector<MatchBinding>* const kMatches = [] {
    StructuralMatcher matcher(MicroGraph(), *MotifCatalog::ByName("M(3,2)"));
    return new std::vector<MatchBinding>(matcher.FindAllMatches());
  }();
  return *kMatches;
}

// The kTop1 hot path: MaxFlowDpSearcher::RunOnMatches checks site
// "dp.match" once per structural match.
void RunDpMatchLoop(benchmark::State& state, QueryControl* control) {
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const MaxFlowDpSearcher searcher(MicroGraph(), motif, 900);
  const std::vector<MatchBinding>& matches = MicroMatches();
  MaxFlowDpSearcher::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.RunOnMatches(
        matches.data(), matches.data() + matches.size(), &scratch, control));
  }
}

void BM_DpMatchLoop_NoControl(benchmark::State& state) {
  RunDpMatchLoop(state, nullptr);
}
BENCHMARK(BM_DpMatchLoop_NoControl);

void BM_DpMatchLoop_Control(benchmark::State& state) {
  QueryControl control(nullptr, QueryDeadline::AfterSeconds(3600.0),
                       WorkBudget());
  RunDpMatchLoop(state, &control);
}
BENCHMARK(BM_DpMatchLoop_Control);

// The kCount hot path: the engine's per-batch loop checks site
// "p2.batch" once per structural match around CountMatch.
void RunCountMatchLoop(benchmark::State& state, QueryControl* control) {
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const InstanceCounter counter(MicroGraph(), motif, 900, 2.0);
  const std::vector<MatchBinding>& matches = MicroMatches();
  for (auto _ : state) {
    InstanceCounter::Result result;
    WindowListMru mru;
    for (const MatchBinding& m : matches) {
      if (control != nullptr && control->CheckAt(failpoint::kP2Batch)) break;
      counter.CountMatch(m, &result, &mru);
    }
    benchmark::DoNotOptimize(result.num_instances);
  }
}

void BM_CountMatchLoop_NoControl(benchmark::State& state) {
  RunCountMatchLoop(state, nullptr);
}
BENCHMARK(BM_CountMatchLoop_NoControl);

void BM_CountMatchLoop_Control(benchmark::State& state) {
  QueryControl control(nullptr, QueryDeadline::AfterSeconds(3600.0),
                       WorkBudget());
  RunCountMatchLoop(state, &control);
}
BENCHMARK(BM_CountMatchLoop_Control);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
