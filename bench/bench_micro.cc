// Google-benchmark microbenchmarks of the core building blocks:
//  * EdgeSeries range-flow queries — prefix sums vs a naive scan (the
//    data-structure ablation behind Eq. 2's O(1) flow([tj,ti],k));
//  * structural matching throughput (phase P1);
//  * window computation (the sliding/skip logic);
//  * phase P2 on one structural match.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "gen/presets.h"
#include "graph/edge_series.h"
#include "util/random.h"

namespace flowmotif {
namespace {

EdgeSeries MakeSeries(size_t n) {
  Rng rng(99);
  std::vector<Interaction> interactions;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBounded(20));
    interactions.push_back({t, 1.0 + static_cast<Flow>(rng.NextBounded(9))});
  }
  return EdgeSeries(interactions);
}

// Args: {series length, query window width in ticks}. Narrow windows
// favor the naive scan (few elements); wide windows are where the
// prefix sums earn their keep — the DP's flow([tj,ti],k) lookups span
// arbitrarily wide ranges.
void BM_EdgeSeriesFlowPrefixSum(benchmark::State& state) {
  const EdgeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  const Timestamp max_t = series.time(series.size() - 1);
  const Timestamp width = state.range(1);
  Rng rng(7);
  for (auto _ : state) {
    Timestamp lo = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(max_t)));
    benchmark::DoNotOptimize(series.FlowInClosed(lo, lo + width));
  }
}
BENCHMARK(BM_EdgeSeriesFlowPrefixSum)
    ->Args({1000, 200})
    ->Args({100000, 200})
    ->Args({100000, 100000});

void BM_EdgeSeriesFlowNaiveScan(benchmark::State& state) {
  const EdgeSeries series = MakeSeries(static_cast<size_t>(state.range(0)));
  const Timestamp max_t = series.time(series.size() - 1);
  const Timestamp width = state.range(1);
  Rng rng(7);
  for (auto _ : state) {
    Timestamp lo = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(max_t)));
    Timestamp hi = lo + width;
    // The naive alternative the prefix sums replace.
    double sum = 0.0;
    for (size_t i = series.LowerBound(lo);
         i < series.size() && series.time(i) <= hi; ++i) {
      sum += series.flow(i);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EdgeSeriesFlowNaiveScan)
    ->Args({1000, 200})
    ->Args({100000, 200})
    ->Args({100000, 100000});

const TimeSeriesGraph& MicroGraph() {
  static const TimeSeriesGraph* const kGraph = new TimeSeriesGraph(
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.5));
  return *kGraph;
}

void BM_StructuralMatching(benchmark::State& state) {
  const TimeSeriesGraph& graph = MicroGraph();
  const Motif& motif =
      MotifCatalog::All()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    StructuralMatcher matcher(graph, motif);
    benchmark::DoNotOptimize(matcher.CountMatches());
  }
  state.SetLabel(motif.name());
}
BENCHMARK(BM_StructuralMatching)->Arg(0)->Arg(1)->Arg(6);

void BM_WindowComputation(benchmark::State& state) {
  const EdgeSeries first = MakeSeries(static_cast<size_t>(state.range(0)));
  const EdgeSeries last = MakeSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeProcessedWindows(first, last, 600));
  }
}
BENCHMARK(BM_WindowComputation)->Arg(1000)->Arg(10000);

void BM_Phase2PerMatch(benchmark::State& state) {
  const TimeSeriesGraph& graph = MicroGraph();
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  EnumerationOptions options;
  options.delta = 900;
  options.phi = 2.0;
  FlowMotifEnumerator enumerator(graph, motif, options);
  size_t cursor = 0;
  for (auto _ : state) {
    EnumerationResult result;
    enumerator.EnumerateMatch(matches[cursor % matches.size()], nullptr,
                              &result);
    benchmark::DoNotOptimize(result.num_instances);
    ++cursor;
  }
}
BENCHMARK(BM_Phase2PerMatch);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
