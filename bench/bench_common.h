#ifndef FLOWMOTIF_BENCH_BENCH_COMMON_H_
#define FLOWMOTIF_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/motif.h"
#include "engine/query_engine.h"
#include "gen/presets.h"
#include "graph/time_series_graph.h"

namespace flowmotif {
namespace bench {

/// Scale applied to every generated dataset; read from the
/// FLOWMOTIF_BENCH_SCALE environment variable (default 1.0). Lower it to
/// smoke-test the full bench suite quickly:
///   FLOWMOTIF_BENCH_SCALE=0.1 ./build/bench/bench_fig9_delta
double BenchScale();

/// Parses the shared bench command line. Currently one flag:
/// --threads=N (phase-P2 worker threads, 0 = all hardware threads,
/// default 1). Unknown flags abort with a usage message so typos don't
/// silently benchmark the wrong configuration. Call first in main().
void InitBenchFlags(int argc, const char* const* argv);

/// The --threads value of InitBenchFlags (1 when never parsed).
int BenchThreads();

/// QueryOptions preset for harnesses going through the QueryEngine
/// facade: the given mode and thresholds, plus BenchThreads() workers.
QueryOptions BenchQueryOptions(QueryMode mode, Timestamp delta, Flow phi);

/// Generates (and memoizes per process) the dataset for a preset at
/// BenchScale().
const TimeSeriesGraph& BenchGraph(const DatasetPreset& preset);

/// Prints a separator + title line for a table.
void PrintHeader(const std::string& title);

/// Prints one row of '|'-separated cells with fixed-width columns.
void PrintRow(const std::vector<std::string>& cells);

/// Formats helpers.
std::string FormatCount(int64_t value);
std::string FormatSeconds(double seconds);
std::string FormatDouble(double value, int precision);

}  // namespace bench
}  // namespace flowmotif

#endif  // FLOWMOTIF_BENCH_BENCH_COMMON_H_
