// Micro-benchmarks of the phase-P2 sliding-window DP hot path
// (core/dp.cc): RunOnMatches over precomputed structural matches, so
// only the per-window work — admissible bound, union timeline, DP table
// fill, traceback — is on the clock.
//
// Two synthetic presets stress the per-window cost directly:
//  * dense_path — a directed ring whose edges all carry `kPerEdge`
//    interactions; every match of the path motif M(4,3) slides ~kPerEdge
//    windows whose union timelines grow with delta (tau ~ 3 * kPerEdge *
//    delta / span). This is the preset the perf trajectory tracks.
//  * fanout — a hub with `kLeaves` out-edges; the general motif 0>1,0>2
//    exercises the same DP on per-first-edge matches.
//
// A delta sweep scales the per-window timeline length tau. Run with
//   bench_dp_window --benchmark_format=json
// to emit the JSON consumed by the CI perf-smoke step; the repo root's
// BENCH_baseline.json is the committed first point of the trajectory
// (generated on the reference container before the incremental-cursor
// rewrite of the DP).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/dp.h"
#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {
namespace {

constexpr Timestamp kSpan = 1000000;  // event horizon of both presets
constexpr int kPerEdge = 1200;        // interactions per topology edge

/// Evenly spreads `per_edge` jittered interactions over [0, span).
void FillEdge(InteractionGraph* g, VertexId src, VertexId dst,
              int per_edge, Rng* rng) {
  const Timestamp slot = kSpan / per_edge;
  for (int i = 0; i < per_edge; ++i) {
    const Timestamp t =
        slot * i + static_cast<Timestamp>(rng->NextBounded(
                       static_cast<uint64_t>(slot)));
    const Flow f = rng->UniformDouble(0.5, 10.0);
    const Status s = g->AddEdge(src, dst, t, f);
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
  }
}

/// Directed ring 0 -> 1 -> ... -> kRingSize-1 -> 0, every edge dense.
const TimeSeriesGraph& DenseRingGraph() {
  static const TimeSeriesGraph* graph = [] {
    constexpr int kRingSize = 8;
    InteractionGraph g;
    Rng rng(7);
    for (VertexId v = 0; v < kRingSize; ++v) {
      FillEdge(&g, v, (v + 1) % kRingSize, kPerEdge, &rng);
    }
    return new TimeSeriesGraph(TimeSeriesGraph::Build(g));
  }();
  return *graph;
}

/// Hub 0 with dense out-edges to leaves 1..kLeaves.
const TimeSeriesGraph& FanoutGraph() {
  static const TimeSeriesGraph* graph = [] {
    constexpr int kLeaves = 5;
    InteractionGraph g;
    Rng rng(13);
    for (VertexId leaf = 1; leaf <= kLeaves; ++leaf) {
      FillEdge(&g, 0, leaf, kPerEdge, &rng);
    }
    return new TimeSeriesGraph(TimeSeriesGraph::Build(g));
  }();
  return *graph;
}

/// One RunOnMatches pass per iteration; matches precomputed so the
/// benchmark isolates P2.
void RunDpBenchmark(benchmark::State& state, const TimeSeriesGraph& graph,
                    const Motif& motif) {
  const Timestamp delta = state.range(0);
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  FLOWMOTIF_CHECK(!matches.empty());
  const MaxFlowDpSearcher searcher(graph, motif, delta);

  int64_t windows = 0;
  for (auto _ : state) {
    const MaxFlowDpSearcher::Result result = searcher.RunOnMatches(matches);
    benchmark::DoNotOptimize(result.max_flow);
    windows = result.num_windows;
  }
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(matches.size()));
  state.counters["windows"] = benchmark::Counter(static_cast<double>(windows));
  state.counters["windows/s"] = benchmark::Counter(
      static_cast<double>(windows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_DpWindow_DensePath(benchmark::State& state) {
  RunDpBenchmark(state, DenseRingGraph(), *MotifCatalog::ByName("M(4,3)"));
}
BENCHMARK(BM_DpWindow_DensePath)
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(30000)
    ->Unit(benchmark::kMillisecond);

void BM_DpWindow_Fanout(benchmark::State& state) {
  RunDpBenchmark(state, FanoutGraph(), *Motif::Parse("0>1,0>2", "fanout"));
}
BENCHMARK(BM_DpWindow_Fanout)
    ->Arg(2000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Single-match per-window mode: tau grows with delta, no cross-match
/// amortization — the purest view of the per-window constant factor.
void BM_DpWindow_PerWindow(benchmark::State& state) {
  const Timestamp delta = state.range(0);
  const TimeSeriesGraph& graph = DenseRingGraph();
  const Motif motif = *MotifCatalog::ByName("M(4,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  const MaxFlowDpSearcher searcher(graph, motif, delta);
  for (auto _ : state) {
    const std::vector<MaxFlowDpSearcher::WindowBest> bests =
        searcher.RunPerWindow(matches.front());
    benchmark::DoNotOptimize(bests.data());
  }
}
BENCHMARK(BM_DpWindow_PerWindow)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// The window-position scan alone (ComputeProcessedWindows): the
/// two-pointer rewrite's target.
void BM_ComputeProcessedWindows(benchmark::State& state) {
  const Timestamp delta = state.range(0);
  const TimeSeriesGraph& graph = DenseRingGraph();
  const Motif motif = *MotifCatalog::ByName("M(4,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  const MatchBinding& binding = matches.front();
  const EdgeSeries* first = graph.FindSeries(binding[0], binding[1]);
  const EdgeSeries* last = graph.FindSeries(binding[2], binding[3]);
  FLOWMOTIF_CHECK(first != nullptr && last != nullptr);
  for (auto _ : state) {
    const std::vector<Window> windows =
        ComputeProcessedWindows(*first, *last, delta);
    benchmark::DoNotOptimize(windows.data());
  }
}
BENCHMARK(BM_ComputeProcessedWindows)
    ->Arg(2000)
    ->Arg(30000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
