// Serving-layer benchmarks (DESIGN.md Sec. 11): QueryService end-to-end
// rows for CI's perf gate plus the tier ablation the layer exists for.
//  * BM_ServeRepeatedCount_TierOn vs _TierOff — the same kCount query
//    submitted repeatedly through a 1-worker (inline, deterministic)
//    service with the cross-query window-cache tier enabled vs
//    disabled. The motif is non-interior, so without the tier every
//    run recomputes every window list privately; with the tier the
//    steady state is all hits. TierOn beating TierOff is the point of
//    the tier — the pair makes the win a gated number, not a claim.
//  * BM_DirectEngineCount — the same query through a bare
//    QueryEngine::Run, the floor the serving rows sit on; the gap to
//    TierOff is the service round-trip overhead (admission, future,
//    stats).
//  * BM_ServeMixedConcurrent — a batch of distinct queries per
//    iteration through a 4-worker service: the QPS row. Latency
//    percentiles ride along as counters (p50_ms / p99_ms) computed
//    from each submission's ServedResult.total_seconds; tier_hit_rate
//    reports the cross-query tier's steady-state effectiveness.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"
#include "gen/presets.h"
#include "graph/time_series_graph.h"
#include "serve/query_service.h"

namespace flowmotif {
namespace {

const TimeSeriesGraph& ServingGraph() {
  static const TimeSeriesGraph* const kGraph = new TimeSeriesGraph(
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.25));
  return *kGraph;
}

constexpr Timestamp kDelta = 900;

QueryOptions CountOptions() {
  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = kDelta;
  options.phi = 2.0;
  return options;
}

ServeRequest MakeRequest(const Motif& motif, const QueryOptions& options) {
  return ServeRequest{motif, options, std::string(), nullptr};
}

/// Sorts `latencies` and attaches p50/p99 (milliseconds) to the row.
void ReportLatencyCounters(benchmark::State& state,
                           std::vector<double>* latencies) {
  if (latencies->empty()) return;
  std::sort(latencies->begin(), latencies->end());
  const auto at = [&](double pct) {
    const size_t index = static_cast<size_t>(
        pct * static_cast<double>(latencies->size() - 1) + 0.5);
    return (*latencies)[index] * 1e3;
  };
  state.counters["p50_ms"] = at(0.50);
  state.counters["p99_ms"] = at(0.99);
}

void ReportTierHitRate(benchmark::State& state, const QueryService& service) {
  const ServiceStats stats = service.Stats();
  state.counters["tier_hit_rate"] =
      stats.tier_lookups > 0 ? static_cast<double>(stats.tier_hits) /
                                   static_cast<double>(stats.tier_lookups)
                             : 0.0;
}

// ---------------------------------------------------------------------
// Tier ablation: identical repeated query, tier on vs off. One worker
// means Submit runs the query inline on this thread — no scheduling
// noise, so the pair difference is the window-list recompute the tier
// removes. Dedup is off so every submission really executes. One
// untimed warm-up submission moves the tier's one-time fill out of the
// measured steady state.

void RunRepeatedCount(benchmark::State& state, bool tier_on) {
  ServiceConfig config;
  config.num_workers = 1;
  config.enable_cache_tier = tier_on;
  config.enable_dedup = false;
  QueryService service(ServingGraph(), config);
  const Motif motif = *MotifCatalog::ByName("M(3,2)");

  service.Submit(MakeRequest(motif, CountOptions())).get();  // warm-up

  std::vector<double> latencies;
  for (auto _ : state) {
    const ServedResult served =
        service.Submit(MakeRequest(motif, CountOptions())).get();
    benchmark::DoNotOptimize(served.result->stats.num_instances);
    latencies.push_back(served.total_seconds);
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyCounters(state, &latencies);
  ReportTierHitRate(state, service);
}

void BM_ServeRepeatedCount_TierOn(benchmark::State& state) {
  RunRepeatedCount(state, /*tier_on=*/true);
}
BENCHMARK(BM_ServeRepeatedCount_TierOn);

void BM_ServeRepeatedCount_TierOff(benchmark::State& state) {
  RunRepeatedCount(state, /*tier_on=*/false);
}
BENCHMARK(BM_ServeRepeatedCount_TierOff);

// The floor: the same query through a bare engine, no service.
void BM_DirectEngineCount(benchmark::State& state) {
  const QueryEngine engine(ServingGraph());
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const QueryOptions options = CountOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(motif, options).stats.num_instances);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectEngineCount);

// ---------------------------------------------------------------------
// Concurrent mixed workload: per iteration, a batch of distinct
// queries (two motifs x two deltas x two modes) fans out over four
// workers and the iteration completes when the whole batch has. The
// row's items/s is the service's QPS on this workload; p50/p99 are
// per-query submit-to-completion latencies.

void BM_ServeMixedConcurrent(benchmark::State& state) {
  ServiceConfig config;
  config.num_workers = 4;
  config.enable_dedup = false;  // every submission is a real run
  QueryService service(ServingGraph(), config);

  struct Case {
    const char* motif_name;
    QueryMode mode;
    Timestamp delta;
  };
  const std::vector<Case> cases = {
      {"M(3,2)", QueryMode::kCount, kDelta},
      {"M(3,2)", QueryMode::kTop1, kDelta},
      {"M(3,2)", QueryMode::kCount, kDelta / 2},
      {"M(5,4)", QueryMode::kCount, kDelta},
      {"M(5,4)", QueryMode::kTop1, kDelta},
      {"M(5,4)", QueryMode::kCount, kDelta / 2},
      {"M(3,3)", QueryMode::kCount, kDelta},
      {"M(3,3)", QueryMode::kTop1, kDelta},
  };

  std::vector<double> latencies;
  std::vector<std::future<ServedResult>> futures;
  futures.reserve(cases.size());
  for (auto _ : state) {
    for (const Case& c : cases) {
      QueryOptions options = CountOptions();
      options.mode = c.mode;
      options.delta = c.delta;
      futures.push_back(service.Submit(
          MakeRequest(*MotifCatalog::ByName(c.motif_name), options)));
    }
    for (std::future<ServedResult>& future : futures) {
      const ServedResult served = future.get();
      benchmark::DoNotOptimize(served.result->termination.code);
      latencies.push_back(served.total_seconds);
    }
    futures.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cases.size()));
  ReportLatencyCounters(state, &latencies);
  ReportTierHitRate(state, service);
}
BENCHMARK(BM_ServeMixedConcurrent)->UseRealTime();

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
