// Serving-layer benchmarks (DESIGN.md Sec. 11): QueryService end-to-end
// rows for CI's perf gate plus the tier ablation the layer exists for.
//  * BM_ServeRepeatedCount_TierOn vs _TierOff — the same kCount query
//    submitted repeatedly through a 1-worker (inline, deterministic)
//    service with the cross-query window-cache tier enabled vs
//    disabled. The motif is non-interior, so without the tier every
//    run recomputes every window list privately; with the tier the
//    steady state is all hits. TierOn beating TierOff is the point of
//    the tier — the pair makes the win a gated number, not a claim.
//  * BM_DirectEngineCount — the same query through a bare
//    QueryEngine::Run, the floor the serving rows sit on; the gap to
//    TierOff is the service round-trip overhead (admission, future,
//    stats).
//  * BM_ServeMixedConcurrent — a batch of distinct queries per
//    iteration through a 4-worker service: the QPS row. Latency
//    percentiles ride along as counters (p50_ms / p99_ms) computed
//    from each submission's ServedResult.total_seconds; tier_hit_rate
//    reports the cross-query tier's steady-state effectiveness.
//  * BM_ServeSealUnderLoad — per iteration: a query in flight, a burst
//    of appends, a SealEpoch, and a post-seal query. The row is the
//    cost of publishing a new epoch under live traffic (extend-build +
//    tier sweep + result-cache invalidation + the post-seal query on a
//    cold result cache).
//  * BM_ServeTierAcrossSeals — appends touch one hot pair per seal, so
//    the rest of the tier must stay warm: tier_hit_rate near 1 is the
//    gated claim that epoch-stamped identity keys survive seals.
//  * BM_ServeLongMixed_TierGenerational vs _TierSaturating — a mixed
//    workload over a deliberately undersized tier (1024 entries per
//    generation, under the workload's pair working set): the
//    generational clock rotates and then retains the re-touched
//    working set across two generations, where the saturating tier
//    freezes on whatever filled it first and serves the rest cold.
//
// The completed-result cache is off in every row that re-submits an
// identical query — these rows measure the execution path, and a
// result-cache hit would short-circuit it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"
#include "gen/presets.h"
#include "graph/time_series_graph.h"
#include "serve/query_service.h"

namespace flowmotif {
namespace {

const TimeSeriesGraph& ServingGraph() {
  static const TimeSeriesGraph* const kGraph = new TimeSeriesGraph(
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.25));
  return *kGraph;
}

constexpr Timestamp kDelta = 900;

QueryOptions CountOptions() {
  QueryOptions options;
  options.mode = QueryMode::kCount;
  options.delta = kDelta;
  options.phi = 2.0;
  return options;
}

ServeRequest MakeRequest(const Motif& motif, const QueryOptions& options) {
  return ServeRequest{motif, options, std::string(), nullptr};
}

/// Sorts `latencies` and attaches p50/p99 (milliseconds) to the row.
void ReportLatencyCounters(benchmark::State& state,
                           std::vector<double>* latencies) {
  if (latencies->empty()) return;
  std::sort(latencies->begin(), latencies->end());
  const auto at = [&](double pct) {
    const size_t index = static_cast<size_t>(
        pct * static_cast<double>(latencies->size() - 1) + 0.5);
    return (*latencies)[index] * 1e3;
  };
  state.counters["p50_ms"] = at(0.50);
  state.counters["p99_ms"] = at(0.99);
}

void ReportTierHitRate(benchmark::State& state, const QueryService& service) {
  const ServiceStats stats = service.Stats();
  state.counters["tier_hit_rate"] =
      stats.tier_lookups > 0 ? static_cast<double>(stats.tier_hits) /
                                   static_cast<double>(stats.tier_lookups)
                             : 0.0;
}

// ---------------------------------------------------------------------
// Tier ablation: identical repeated query, tier on vs off. One worker
// means Submit runs the query inline on this thread — no scheduling
// noise, so the pair difference is the window-list recompute the tier
// removes. Dedup is off so every submission really executes. One
// untimed warm-up submission moves the tier's one-time fill out of the
// measured steady state.

void RunRepeatedCount(benchmark::State& state, bool tier_on) {
  ServiceConfig config;
  config.num_workers = 1;
  config.enable_cache_tier = tier_on;
  config.enable_dedup = false;
  config.enable_result_cache = false;  // repeats must re-execute
  QueryService service(ServingGraph(), config);
  const Motif motif = *MotifCatalog::ByName("M(3,2)");

  service.Submit(MakeRequest(motif, CountOptions())).get();  // warm-up

  std::vector<double> latencies;
  for (auto _ : state) {
    const ServedResult served =
        service.Submit(MakeRequest(motif, CountOptions())).get();
    benchmark::DoNotOptimize(served.result->stats.num_instances);
    latencies.push_back(served.total_seconds);
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyCounters(state, &latencies);
  ReportTierHitRate(state, service);
}

void BM_ServeRepeatedCount_TierOn(benchmark::State& state) {
  RunRepeatedCount(state, /*tier_on=*/true);
}
BENCHMARK(BM_ServeRepeatedCount_TierOn);

void BM_ServeRepeatedCount_TierOff(benchmark::State& state) {
  RunRepeatedCount(state, /*tier_on=*/false);
}
BENCHMARK(BM_ServeRepeatedCount_TierOff);

// The floor: the same query through a bare engine, no service.
void BM_DirectEngineCount(benchmark::State& state) {
  const QueryEngine engine(ServingGraph());
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const QueryOptions options = CountOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(motif, options).stats.num_instances);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectEngineCount);

// ---------------------------------------------------------------------
// Concurrent mixed workload: per iteration, a batch of distinct
// queries (two motifs x two deltas x two modes) fans out over four
// workers and the iteration completes when the whole batch has. The
// row's items/s is the service's QPS on this workload; p50/p99 are
// per-query submit-to-completion latencies.

void BM_ServeMixedConcurrent(benchmark::State& state) {
  ServiceConfig config;
  config.num_workers = 4;
  config.enable_dedup = false;         // every submission is a real run
  config.enable_result_cache = false;  // idem across iterations
  QueryService service(ServingGraph(), config);

  struct Case {
    const char* motif_name;
    QueryMode mode;
    Timestamp delta;
  };
  const std::vector<Case> cases = {
      {"M(3,2)", QueryMode::kCount, kDelta},
      {"M(3,2)", QueryMode::kTop1, kDelta},
      {"M(3,2)", QueryMode::kCount, kDelta / 2},
      {"M(5,4)", QueryMode::kCount, kDelta},
      {"M(5,4)", QueryMode::kTop1, kDelta},
      {"M(5,4)", QueryMode::kCount, kDelta / 2},
      {"M(3,3)", QueryMode::kCount, kDelta},
      {"M(3,3)", QueryMode::kTop1, kDelta},
  };

  std::vector<double> latencies;
  std::vector<std::future<ServedResult>> futures;
  futures.reserve(cases.size());
  for (auto _ : state) {
    for (const Case& c : cases) {
      QueryOptions options = CountOptions();
      options.mode = c.mode;
      options.delta = c.delta;
      futures.push_back(service.Submit(
          MakeRequest(*MotifCatalog::ByName(c.motif_name), options)));
    }
    for (std::future<ServedResult>& future : futures) {
      const ServedResult served = future.get();
      benchmark::DoNotOptimize(served.result->termination.code);
      latencies.push_back(served.total_seconds);
    }
    futures.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cases.size()));
  ReportLatencyCounters(state, &latencies);
  ReportTierHitRate(state, service);
}
BENCHMARK(BM_ServeMixedConcurrent)->UseRealTime();

// ---------------------------------------------------------------------
// Live serving: seal latency under load, tier warmth across seals, and
// the generational-vs-saturating tier ablation. The log grows with
// every seal, so the seal rows rebuild the service every kRebuildEvery
// iterations (untimed) to keep the measured graph size bounded.

constexpr int kRebuildEvery = 64;

void BM_ServeSealUnderLoad(benchmark::State& state) {
  ServiceConfig config;
  config.num_workers = 2;
  config.enable_dedup = false;
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const Timestamp base_t = ServingGraph().ComputeStats().max_time;

  std::unique_ptr<QueryService> service;
  Timestamp next_t = base_t;
  int since_rebuild = kRebuildEvery;
  std::vector<double> latencies;
  for (auto _ : state) {
    if (since_rebuild == kRebuildEvery) {
      state.PauseTiming();
      service = std::make_unique<QueryService>(ServingGraph(), config);
      next_t = base_t;
      since_rebuild = 0;
      state.ResumeTiming();
    }
    // A query is in flight on one worker while the writer appends,
    // seals, and serves a post-seal query — the seal-under-load shape.
    std::future<ServedResult> inflight =
        service->Submit(MakeRequest(motif, CountOptions()));
    for (int i = 0; i < 8; ++i) {
      const Status s = service->Append(i % 16, (i + 1) % 16, next_t++, 1.0);
      if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    }
    const EpochLog::SealInfo info = service->SealEpoch();
    benchmark::DoNotOptimize(info.epoch);
    const ServedResult post =
        service->Submit(MakeRequest(motif, CountOptions())).get();
    benchmark::DoNotOptimize(post.result->termination.code);
    latencies.push_back(post.total_seconds);
    inflight.get();
    ++since_rebuild;
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyCounters(state, &latencies);
}
BENCHMARK(BM_ServeSealUnderLoad)->UseRealTime();

void BM_ServeTierAcrossSeals(benchmark::State& state) {
  // Each iteration dirties exactly one pair, seals, and re-runs the
  // same query: every series but the hot pair keeps its storage
  // identity, so the tier should answer almost every lookup —
  // tier_hit_rate is the row's claim.
  ServiceConfig config;
  config.num_workers = 1;
  config.enable_dedup = false;
  config.enable_result_cache = false;  // the repeat must re-execute
  const Motif motif = *MotifCatalog::ByName("M(3,2)");
  const Timestamp base_t = ServingGraph().ComputeStats().max_time;

  std::unique_ptr<QueryService> service;
  Timestamp next_t = base_t;
  int since_rebuild = kRebuildEvery;
  for (auto _ : state) {
    if (since_rebuild == kRebuildEvery) {
      state.PauseTiming();
      service = std::make_unique<QueryService>(ServingGraph(), config);
      next_t = base_t;
      service->Submit(MakeRequest(motif, CountOptions())).get();  // warm-up
      since_rebuild = 0;
      state.ResumeTiming();
    }
    const Status s = service->Append(0, 1, next_t++, 1.0);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    const EpochLog::SealInfo info = service->SealEpoch();
    benchmark::DoNotOptimize(info.epoch);
    const ServedResult served =
        service->Submit(MakeRequest(motif, CountOptions())).get();
    benchmark::DoNotOptimize(served.result->stats.num_instances);
    ++since_rebuild;
  }
  state.SetItemsProcessed(state.iterations());
  ReportTierHitRate(state, *service);
}
BENCHMARK(BM_ServeTierAcrossSeals);

// Long-lived mixed workload over a deliberately tiny tier: the
// generational clock keeps admitting the working set's recent pairs
// where a saturating tier freezes on whatever filled it first.
void RunLongMixed(benchmark::State& state, bool generational) {
  ServiceConfig config;
  config.num_workers = 1;
  config.enable_dedup = false;
  config.enable_result_cache = false;
  config.tier_max_entries = 1024;
  config.tier_generational = generational;
  QueryService service(ServingGraph(), config);

  struct Case {
    const char* motif_name;
    QueryMode mode;
  };
  const std::vector<Case> cases = {
      {"M(3,2)", QueryMode::kCount}, {"M(3,3)", QueryMode::kCount},
      {"M(5,4)", QueryMode::kCount}, {"M(3,2)", QueryMode::kTop1},
      {"M(5,4)", QueryMode::kTop1},
  };

  std::vector<double> latencies;
  for (auto _ : state) {
    for (const Case& c : cases) {
      QueryOptions options = CountOptions();
      options.mode = c.mode;
      const ServedResult served =
          service.Submit(MakeRequest(*MotifCatalog::ByName(c.motif_name),
                                     options))
              .get();
      benchmark::DoNotOptimize(served.result->termination.code);
      latencies.push_back(served.total_seconds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cases.size()));
  ReportLatencyCounters(state, &latencies);
  ReportTierHitRate(state, service);
  state.counters["tier_rotations"] =
      static_cast<double>(service.Stats().tier_rotations);
}

void BM_ServeLongMixed_TierGenerational(benchmark::State& state) {
  RunLongMixed(state, /*generational=*/true);
}
BENCHMARK(BM_ServeLongMixed_TierGenerational);

void BM_ServeLongMixed_TierSaturating(benchmark::State& state) {
  RunLongMixed(state, /*generational=*/false);
}
BENCHMARK(BM_ServeLongMixed_TierSaturating);

}  // namespace
}  // namespace flowmotif

BENCHMARK_MAIN();
