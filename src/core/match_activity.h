#ifndef FLOWMOTIF_CORE_MATCH_ACTIVITY_H_
#define FLOWMOTIF_CORE_MATCH_ACTIVITY_H_

#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/motif.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Groups motif instances per structural match — the analysis sketched in
/// the paper's future work (Sec. 7): "group the motif instances per
/// structural match, in order to identify the structural matches (sets of
/// vertices) with the largest activity and how this activity is spread
/// along the timeline".
class MatchActivityAnalyzer {
 public:
  /// Aggregate activity of one structural match.
  struct MatchActivity {
    MatchBinding binding;
    int64_t instance_count = 0;
    Flow max_instance_flow = 0.0;
    Flow total_instance_flow = 0.0;     // sum of f(GI) over instances
    Timestamp first_window_start = 0;   // earliest instance window
    Timestamp last_window_start = 0;    // latest instance window
  };

  /// Instance counts bucketed over the time axis (activity spread).
  struct TimelineHistogram {
    Timestamp bucket_width = 0;
    Timestamp origin = 0;               // start of bucket 0
    std::vector<int64_t> counts;        // instances per bucket
  };

  MatchActivityAnalyzer(const TimeSeriesGraph& graph, const Motif& motif,
                        const EnumerationOptions& options);
  // The analyzer keeps a reference to the graph: temporaries would dangle.
  MatchActivityAnalyzer(TimeSeriesGraph&&, const Motif&,
                        const EnumerationOptions&) = delete;

  /// Returns per-match activity for the `top_n` matches with the most
  /// instances (ties broken by total flow, then by binding), discarding
  /// matches with no instances.
  std::vector<MatchActivity> TopMatches(int64_t top_n) const;

  /// Buckets all instances (across matches) by window start time.
  TimelineHistogram Timeline(Timestamp bucket_width) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  EnumerationOptions options_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_MATCH_ACTIVITY_H_
