#ifndef FLOWMOTIF_CORE_DP_H_
#define FLOWMOTIF_CORE_DP_H_

#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "core/motif.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Dynamic-programming module for top-1 flow motif search (Sec. 5.1,
/// Algorithm 2). For a structural match and a window T with interaction
/// timestamps t1..t_tau, it computes
///
///   Flow([t1,ti],k) = max_{1<j<=i} min(Flow([t1,t_{j-1}],k-1),
///                                      flow([tj,ti],k))          (Eq. 2)
///
/// where flow([tj,ti],k) is the aggregated flow of the k-th edge's
/// elements inside [tj,ti] — a genuine O(1) prefix-sum subtraction here:
/// the per-window setup precomputes, for every motif edge and every
/// timeline entry, the series index bounds of that timestamp, so no DP
/// lookup ever binary-searches. The final Flow([t1,t_tau],m) is the best
/// instance flow in the window; maximizing over windows and matches
/// yields the global top-1. A traceback reconstructs the argmax instance
/// (the bold cells of Table 2).
///
/// Window processing is *incremental*: windows of a match are anchored
/// on the sorted first-series timestamps, so every per-series bound
/// (admissible range, timeline slice) is monotone as windows advance.
/// Per-match cursors slide forward instead of re-running binary
/// searches, and the union timeline is rebuilt by a k-way merge of the
/// advancing slices into one reusable buffer.
class MaxFlowDpSearcher {
 public:
  struct Result {
    bool found = false;
    Flow max_flow = 0.0;
    MotifInstance best;       // populated when found
    MatchBinding binding;     // match that produced the best instance
    Window window{0, 0};      // window that produced it
    int64_t num_windows = 0;  // windows processed
    double seconds = 0.0;     // phase-P2 time
  };

  /// Best instance flow per window position of one match — the paper's
  /// "top-1 instance for each position of the sliding window"
  /// extensibility mode.
  struct WindowBest {
    Window window{0, 0};
    bool found = false;
    Flow max_flow = 0.0;
  };

  /// Reusable cross-match state. The DP runs once per window and would
  /// otherwise spend most of its time reallocating the timeline, the
  /// offset maps, and the table rows; callers that process many batches
  /// (the engine) hand the same Scratch to successive RunOnMatches calls
  /// so the buffers and the window memo survive batch boundaries.
  ///
  /// A Scratch is bound to one (graph, delta) configuration on first use
  /// — the window memo keys on EdgeSeries pointers, which are only
  /// meaningful for one graph — and checked on every run. Scratch reuse
  /// never changes results: all per-window state is fully overwritten.
  struct Scratch {
    // Per-match series resolution (ResolveSeries target, one motif edge
    // per entry).
    std::vector<const EdgeSeries*> series;

    // Sliding cursors, one per motif edge: lo = LowerBound(window.start),
    // hi = UpperBound(window.end) of the current window. Invariants:
    // both are non-decreasing across a match's windows (starts and ends
    // are sorted), and lo <= hi for every window.
    std::vector<size_t> lo;
    std::vector<size_t> hi;
    std::vector<size_t> merge_pos;  // k-way merge heads

    // Union timeline of the current window (t1..t_tau).
    std::vector<Timestamp> timeline;

    // Flat m x tau maps, row stride tau: lower_idx[k*tau+i] /
    // upper_idx[k*tau+i] are series k's LowerBound / UpperBound of
    // timeline[i], filled by one monotone sweep per row. They turn every
    // flow([tj,ti],k) of Eq. 2 into
    // FlowInIndexRange(lower_idx[k,j], upper_idx[k,i]).
    std::vector<size_t> lower_idx;
    std::vector<size_t> upper_idx;

    // Flat m x tau DP tables, row stride tau (single allocation instead
    // of vector-of-vectors).
    std::vector<Flow> flow_table;
    std::vector<size_t> choice;

    // Per-match window list when the memo below is disabled.
    std::vector<Window> windows;

    // ComputeProcessedWindows memo across matches sharing the same
    // (first, last) EdgeSeries pair. Only populated for motifs with an
    // interior node (one absent from the first and last edges'
    // endpoints): without one, the two series pin the whole binding and
    // the memo could never hit. Size-capped — see BeginMatch.
    struct SeriesPairHash {
      size_t operator()(
          const std::pair<const EdgeSeries*, const EdgeSeries*>& p) const {
        const size_t h = std::hash<const void*>()(p.first);
        return h ^ (std::hash<const void*>()(p.second) + 0x9e3779b9u +
                    (h << 6) + (h >> 2));
      }
    };
    std::unordered_map<std::pair<const EdgeSeries*, const EdgeSeries*>,
                       std::vector<Window>, SeriesPairHash>
        window_cache;

    // First-use binding (graph + delta) guarding against accidental
    // reuse across incompatible searchers.
    const TimeSeriesGraph* bound_graph = nullptr;
    Timestamp bound_delta = 0;
  };

  MaxFlowDpSearcher(const TimeSeriesGraph& graph, const Motif& motif,
                    Timestamp delta);
  // The searcher keeps a reference to the graph: temporaries would dangle.
  MaxFlowDpSearcher(TimeSeriesGraph&&, const Motif&, Timestamp) = delete;

  /// Global top-1 over the whole graph (phase P1 + DP per match).
  Result Run() const;

  /// DP over precomputed matches only (isolates phase P2, Fig. 12).
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

  /// Same over a contiguous range [begin, end) — the engine's parallel
  /// path hands each batch its slice of the match array without
  /// copying. The incumbent best carries across the range, so the
  /// admissible window bound prunes within a batch exactly as the
  /// vector overload does.
  Result RunOnMatches(const MatchBinding* begin,
                      const MatchBinding* end) const;

  /// Same with caller-owned Scratch: successive calls (the engine's P2
  /// batches) reuse the buffers and the window memo. The Scratch must
  /// only ever be used with searchers on the same graph and delta.
  Result RunOnMatches(const MatchBinding* begin, const MatchBinding* end,
                      Scratch* scratch) const;

  /// Top-1 within a single structural match.
  Result RunOnMatch(const MatchBinding& binding) const;

  /// Top-1 per window position within a single structural match.
  std::vector<WindowBest> RunPerWindow(const MatchBinding& binding) const;

 private:
  /// Runs the DP for one window of one match, using the cursors and
  /// buffers in `scratch` (BeginMatch must have run for this match);
  /// updates `result` if a better instance is found. Returns the
  /// window's best flow (0 if no valid instance).
  Flow DpOverWindow(const MatchBinding& binding, const Window& window,
                    Scratch* scratch, Result* result) const;

  /// Resolves the match's per-edge series into scratch->series, resets
  /// the window cursors, and returns the memoized processed-window list.
  const std::vector<Window>& BeginMatch(const MatchBinding& binding,
                                        Scratch* scratch) const;

  /// Binds `scratch` to this searcher's (graph, delta) or checks the
  /// existing binding.
  void CheckScratch(Scratch* scratch) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  // Whether the motif has an interior node, i.e. whether the window
  // memo can ever hit (see Scratch::window_cache).
  bool memoize_windows_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_DP_H_
