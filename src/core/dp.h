#ifndef FLOWMOTIF_CORE_DP_H_
#define FLOWMOTIF_CORE_DP_H_

#include <vector>

#include "core/instance.h"
#include "core/motif.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Dynamic-programming module for top-1 flow motif search (Sec. 5.1,
/// Algorithm 2). For a structural match and a window T with interaction
/// timestamps t1..t_tau, it computes
///
///   Flow([t1,ti],k) = max_{1<j<=i} min(Flow([t1,t_{j-1}],k-1),
///                                      flow([tj,ti],k))          (Eq. 2)
///
/// where flow([tj,ti],k) is the aggregated flow of the k-th edge's
/// elements inside [tj,ti] — an O(1) prefix-sum lookup here. The final
/// Flow([t1,t_tau],m) is the best instance flow in the window; maximizing
/// over windows and matches yields the global top-1. A traceback
/// reconstructs the argmax instance (the bold cells of Table 2).
class MaxFlowDpSearcher {
 public:
  struct Result {
    bool found = false;
    Flow max_flow = 0.0;
    MotifInstance best;       // populated when found
    MatchBinding binding;     // match that produced the best instance
    Window window{0, 0};      // window that produced it
    int64_t num_windows = 0;  // windows processed
    double seconds = 0.0;     // phase-P2 time
  };

  /// Best instance flow per window position of one match — the paper's
  /// "top-1 instance for each position of the sliding window"
  /// extensibility mode.
  struct WindowBest {
    Window window{0, 0};
    bool found = false;
    Flow max_flow = 0.0;
  };

  MaxFlowDpSearcher(const TimeSeriesGraph& graph, const Motif& motif,
                    Timestamp delta);
  // The searcher keeps a reference to the graph: temporaries would dangle.
  MaxFlowDpSearcher(TimeSeriesGraph&&, const Motif&, Timestamp) = delete;

  /// Global top-1 over the whole graph (phase P1 + DP per match).
  Result Run() const;

  /// DP over precomputed matches only (isolates phase P2, Fig. 12).
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

  /// Same over a contiguous range [begin, end) — the engine's parallel
  /// path hands each batch its slice of the match array without
  /// copying. The incumbent best carries across the range, so the
  /// admissible window bound prunes within a batch exactly as the
  /// vector overload does.
  Result RunOnMatches(const MatchBinding* begin,
                      const MatchBinding* end) const;

  /// Top-1 within a single structural match.
  Result RunOnMatch(const MatchBinding& binding) const;

  /// Top-1 per window position within a single structural match.
  std::vector<WindowBest> RunPerWindow(const MatchBinding& binding) const;

 private:
  /// Reusable per-run buffers: the DP runs once per window and would
  /// otherwise spend most of its time reallocating the timeline and the
  /// table rows.
  struct Scratch {
    std::vector<Timestamp> timeline;
    std::vector<std::vector<Flow>> flow_table;
    std::vector<std::vector<size_t>> choice;
  };

  /// Runs the DP for one window of one match; updates `result` if a
  /// better instance is found. Returns the window's best flow (0 if no
  /// valid instance).
  Flow DpOverWindow(const std::vector<const EdgeSeries*>& series,
                    const MatchBinding& binding, const Window& window,
                    Scratch* scratch, Result* result) const;

  std::vector<const EdgeSeries*> ResolveSeries(
      const MatchBinding& binding) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_DP_H_
