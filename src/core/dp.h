#ifndef FLOWMOTIF_CORE_DP_H_
#define FLOWMOTIF_CORE_DP_H_

#include <memory>
#include <vector>

#include "core/instance.h"
#include "core/motif.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

class QueryControl;

/// Dynamic-programming module for top-1 flow motif search (Sec. 5.1,
/// Algorithm 2). For a structural match and a window T with interaction
/// timestamps t1..t_tau, it computes
///
///   Flow([t1,ti],k) = max_{1<j<=i} min(Flow([t1,t_{j-1}],k-1),
///                                      flow([tj,ti],k))          (Eq. 2)
///
/// where flow([tj,ti],k) is the aggregated flow of the k-th edge's
/// elements inside [tj,ti] — a genuine O(1) prefix-sum subtraction here:
/// the per-window setup precomputes, for every motif edge and every
/// timeline entry, the series index bounds of that timestamp, so no DP
/// lookup ever binary-searches. The final Flow([t1,t_tau],m) is the best
/// instance flow in the window; maximizing over windows and matches
/// yields the global top-1. A traceback reconstructs the argmax instance
/// (the bold cells of Table 2).
///
/// Window processing is *incremental* on the shared core/window_cursor
/// layer: windows of a match are anchored on the sorted first-series
/// timestamps, so per-match WindowCursorSet cursors slide forward
/// instead of re-running binary searches, the union timeline is rebuilt
/// by a k-way merge (UnionTimeline), and flat offset rows
/// (TimelineOffsets) make every Eq. 2 lookup O(1). Window lists are
/// served by a SharedWindowCache — injected per query by the engine, or
/// privately owned when the motif's (first, last) series pairs can
/// repeat.
class MaxFlowDpSearcher {
 public:
  struct Result {
    bool found = false;
    Flow max_flow = 0.0;
    MotifInstance best;       // populated when found
    MatchBinding binding;     // match that produced the best instance
    Window window{0, 0};      // window that produced it
    int64_t num_windows = 0;  // windows processed
    double seconds = 0.0;     // phase-P2 time
    /// Matches of the input range fully processed before returning —
    /// equal to the range length unless a QueryControl stopped the run,
    /// in which case the incumbent covers exactly the first
    /// matches_processed matches (a contiguous prefix).
    int64_t matches_processed = 0;
  };

  /// Best instance flow per window position of one match — the paper's
  /// "top-1 instance for each position of the sliding window"
  /// extensibility mode.
  struct WindowBest {
    Window window{0, 0};
    bool found = false;
    Flow max_flow = 0.0;
  };

  /// Reusable cross-match state. The DP runs once per window and would
  /// otherwise spend most of its time reallocating the timeline, the
  /// offset maps, and the table rows; callers that process many batches
  /// (the engine) hand the same Scratch to successive RunOnMatches calls
  /// so the buffers survive batch boundaries. Window lists live in the
  /// searcher's SharedWindowCache, not here — every worker of a query
  /// shares one cache.
  ///
  /// A Scratch is bound to one (graph, delta) configuration on first use
  /// and checked on every run. Scratch reuse never changes results: all
  /// per-window state is fully overwritten.
  struct Scratch {
    // Per-match series resolution (ResolveSeries target, one motif edge
    // per entry).
    std::vector<const EdgeSeries*> series;

    // Sliding per-series window cursors (core/window_cursor.h).
    WindowCursorSet cursors;

    // Union timeline of the current window and the flat m x tau offset
    // rows over it.
    UnionTimeline timeline;
    TimelineOffsets offsets;

    // Flat m x tau DP tables, row stride tau (single allocation instead
    // of vector-of-vectors).
    std::vector<Flow> flow_table;
    std::vector<size_t> choice;

    // Per-match window-list fallback when the shared cache declines
    // the pair (saturated cache or memoization gated off): a one-entry
    // MRU, so consecutive matches sharing a pair still hit.
    WindowListMru window_mru;

    // First-use binding (graph + delta) guarding against accidental
    // reuse across incompatible searchers.
    const TimeSeriesGraph* bound_graph = nullptr;
    Timestamp bound_delta = 0;
  };

  /// `window_cache` (optional) is the per-query shared cache; it must
  /// outlive the searcher and be bound to the same delta. The searcher
  /// reads through it — or, when null, through a privately owned cache
  /// — iff the motif has an interior node (the only shape where a pair
  /// can repeat); otherwise caching is off regardless.
  MaxFlowDpSearcher(const TimeSeriesGraph& graph, const Motif& motif,
                    Timestamp delta,
                    SharedWindowCache* window_cache = nullptr);
  // The searcher keeps a reference to the graph: temporaries would dangle.
  MaxFlowDpSearcher(TimeSeriesGraph&&, const Motif&, Timestamp,
                    SharedWindowCache* = nullptr) = delete;

  /// Global top-1 over the whole graph (phase P1 + DP per match).
  Result Run() const;

  /// DP over precomputed matches only (isolates phase P2, Fig. 12).
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

  /// Same over a contiguous range [begin, end) — the engine's parallel
  /// path hands each batch its slice of the match array without
  /// copying. The incumbent best carries across the range, so the
  /// admissible window bound prunes within a batch exactly as the
  /// vector overload does.
  Result RunOnMatches(const MatchBinding* begin,
                      const MatchBinding* end) const;

  /// Same with caller-owned Scratch: successive calls (the engine's P2
  /// batches) reuse the buffers. The Scratch must only ever be used
  /// with searchers on the same graph and delta.
  Result RunOnMatches(const MatchBinding* begin, const MatchBinding* end,
                      Scratch* scratch) const;

  /// Same with a cooperative cancellation point per match (site
  /// "dp.match" — this outer loop is the kTop1 hot path). A null
  /// `control` is the zero-overhead path above; on stop the returned
  /// Result covers the first matches_processed matches exactly.
  Result RunOnMatches(const MatchBinding* begin, const MatchBinding* end,
                      Scratch* scratch, QueryControl* control) const;

  /// Top-1 within a single structural match.
  Result RunOnMatch(const MatchBinding& binding) const;

  /// Top-1 per window position within a single structural match.
  std::vector<WindowBest> RunPerWindow(const MatchBinding& binding) const;

  /// The window cache this searcher reads through (injected or owned);
  /// null when memoization is gated off. Exposed for tests.
  const SharedWindowCache* window_cache() const { return cache_; }

  /// Attaches the owning query's lifecycle control (non-owning, may be
  /// null): every window list BeginMatch materializes — through the
  /// cache or recomputed into the scratch MRU — is billed against its
  /// WorkBudget at site "cache.windows". QueryControl is internally
  /// synchronized, so one searcher shared across workers charges
  /// safely. Set before sharing; must outlive every run.
  void set_query_control(QueryControl* control) { query_control_ = control; }

 private:
  /// Runs the DP for one window of one match, using the cursors and
  /// buffers in `scratch` (BeginMatch must have run for this match);
  /// updates `result` if a better instance is found. Returns the
  /// window's best flow (0 if no valid instance).
  Flow DpOverWindow(const MatchBinding& binding, const Window& window,
                    Scratch* scratch, Result* result) const;

  /// Resolves the match's per-edge series into scratch->series, resets
  /// the window cursors, and returns the match's processed-window list
  /// (from the shared cache when possible, else served by
  /// scratch->window_mru).
  const std::vector<Window>& BeginMatch(const MatchBinding& binding,
                                        Scratch* scratch) const;

  /// Binds `scratch` to this searcher's (graph, delta) or checks the
  /// existing binding.
  void CheckScratch(Scratch* scratch) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  // Privately owned cache when none is injected and the motif has an
  // interior node. SharedWindowCache is internally synchronized, so the
  // const methods above may insert through it.
  std::unique_ptr<SharedWindowCache> owned_cache_;
  SharedWindowCache* cache_;  // null = compute windows per match
  QueryControl* query_control_ = nullptr;  // budget charging; may be null
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_DP_H_
