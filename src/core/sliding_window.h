#ifndef FLOWMOTIF_CORE_SLIDING_WINDOW_H_
#define FLOWMOTIF_CORE_SLIDING_WINDOW_H_

#include <vector>

#include "graph/edge_series.h"
#include "graph/types.h"

namespace flowmotif {

/// A sliding-window position [start, end] with end = start + delta
/// (Sec. 4, phase P2).
struct Window {
  Timestamp start;
  Timestamp end;

  friend bool operator==(const Window& a, const Window& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// anchor + delta, saturating at the maximum representable timestamp:
/// an anchor near numeric_limits::max() with delta > 0 would otherwise
/// be signed-overflow UB (the mirror of the min-sentinel underflow
/// fixed in PR 2). Saturation keeps the semantics — a window clamped at
/// the time axis's end simply cannot gain later elements. Shared by the
/// window scans below and the join baseline's duration filters.
Timestamp WindowEndSaturating(Timestamp anchor, Timestamp delta);

/// Computes the window positions Algorithm 1 actually processes for one
/// structural match:
///
/// * windows are anchored at the elements of the first motif edge's series
///   R(e1) (the instance must contain the temporally first e1 element of
///   its window);
/// * a position is skipped when it contains no element of the last motif
///   edge's series R(em) beyond the previous processed window's end —
///   such positions can only regenerate non-maximal instances (the
///   paper's example: position [13,23] is skipped because [10,20] already
///   covers every e3 element up to time 23).
///
/// `first` is R(e1), `last` is R(em) (the same series when the motif has
/// one edge). Returned windows are ordered by start time; duplicate
/// anchor timestamps yield a single window.
std::vector<Window> ComputeProcessedWindows(const EdgeSeries& first,
                                            const EdgeSeries& last,
                                            Timestamp delta);

/// Same, into a caller-owned buffer (cleared first) — the DP's
/// per-match path reuses one buffer instead of allocating per match.
void ComputeProcessedWindows(const EdgeSeries& first, const EdgeSeries& last,
                             Timestamp delta, std::vector<Window>* windows);

/// All window positions, one per distinct R(e1) anchor timestamp, with no
/// novelty filtering. Used only by the ablation study to quantify what
/// the skip rule saves; the extra windows can only regenerate
/// non-maximal or duplicate instances.
std::vector<Window> ComputeAllWindows(const EdgeSeries& first,
                                      Timestamp delta);

/// Persistent position of one match's window scan across the epochs of
/// an appending stream (graph/epoch_log.h): the anchor index into
/// R(e1), the monotone R(em) novelty cursor, and the last processed
/// window — exactly the loop state of ComputeProcessedWindows frozen at
/// the settled/hot boundary. Element indices stay valid across seals
/// because appends are time-monotone: every new element sorts at or
/// after the stream watermark, and the state only ever refers to
/// elements strictly before it.
struct WindowScanState {
  size_t anchor_idx = 0;
  size_t em_cursor = 0;
  bool have_processed = false;
  Timestamp prev_end = 0;
  Timestamp prev_anchor = 0;
};

/// Incremental ComputeProcessedWindows: resumes one match's window scan
/// from `state` against the current (extended) series pair and splits
/// the remaining windows at `settle_before` — the stream watermark.
///
/// * Windows with end < settle_before are **settled**: every element
///   that could fall inside them is already present (future appends
///   carry time >= settle_before), so the window — and the novelty-rule
///   decision that produced or skipped it — is final. They are appended
///   to `settled` and the scan state advances past them permanently.
/// * Windows with end >= settle_before are **hot**: a future epoch can
///   still add elements inside them, possibly changing their contents
///   or the novelty decisions downstream of them. They are written to
///   `hot` (cleared first) by replaying the scan on a throwaway copy of
///   the state; the next call recomputes them from the settled
///   boundary.
///
/// Invariant (the byte-identity contract of the streaming subsystem):
/// after any number of calls with non-decreasing settle_before values,
/// the concatenation of all `settled` output plus the current `hot`
/// list equals ComputeProcessedWindows(first, last, delta) on the
/// current series pair, element for element.
void AdvanceProcessedWindows(const EdgeSeries& first, const EdgeSeries& last,
                             Timestamp delta, Timestamp settle_before,
                             WindowScanState* state,
                             std::vector<Window>* settled,
                             std::vector<Window>* hot);

/// ComputeProcessedWindows for several deltas in one anchor scan:
/// (*out)[d] receives exactly the list ComputeProcessedWindows(first,
/// last, deltas[d]) would return (each delta keeps its own novelty
/// state, so the per-delta outputs are element-for-element identical).
/// Sweep recording uses this because the scan's cost is dominated by
/// walking the two series — shared here — not by the per-delta
/// bookkeeping; a delta grid then pays one pass over the match's series
/// instead of one per grid point. `out` is resized to deltas.size() and
/// each list cleared first.
void ComputeProcessedWindowsMulti(const EdgeSeries& first,
                                  const EdgeSeries& last,
                                  const std::vector<Timestamp>& deltas,
                                  std::vector<std::vector<Window>>* out);

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_SLIDING_WINDOW_H_
