#include "core/motif.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace flowmotif {

StatusOr<Motif> Motif::Build(
    std::vector<std::pair<MotifNode, MotifNode>> edges, std::string name,
    bool require_path) {
  if (edges.empty()) {
    return Status::InvalidArgument("a motif needs at least one edge");
  }
  MotifNode max_id = -1;
  for (const auto& [src, dst] : edges) {
    if (src < 0 || dst < 0) {
      return Status::InvalidArgument("motif node ids must be >= 0");
    }
    if (src == dst) {
      return Status::InvalidArgument("motif edges cannot be self-loops");
    }
    max_id = std::max(max_id, std::max(src, dst));
  }

  std::vector<bool> seen(static_cast<size_t>(max_id) + 1, false);
  for (const auto& [src, dst] : edges) {
    seen[static_cast<size_t>(src)] = true;
    seen[static_cast<size_t>(dst)] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument("motif node ids must be dense: missing " +
                                     std::to_string(i));
    }
  }

  std::set<std::pair<MotifNode, MotifNode>> distinct;
  for (const auto& e : edges) {
    if (!distinct.insert(e).second) {
      return Status::InvalidArgument(
          "motif edges must be distinct; repeated edge " +
          std::to_string(e.first) + "->" + std::to_string(e.second));
    }
  }

  // Weak connectivity (union-find over the undirected skeleton).
  std::vector<MotifNode> parent(static_cast<size_t>(max_id) + 1);
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<MotifNode>(i);
  }
  auto find = [&parent](MotifNode x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    }
    return x;
  };
  for (const auto& [src, dst] : edges) {
    parent[static_cast<size_t>(find(src))] = find(dst);
  }
  for (MotifNode v = 0; v <= max_id; ++v) {
    if (find(v) != find(0)) {
      return Status::InvalidArgument("motif must be weakly connected");
    }
  }

  Motif motif;
  motif.edges_ = std::move(edges);
  motif.num_nodes_ = max_id + 1;

  // Detect the spanning-path special case: consecutive edges chain.
  motif.is_path_ = true;
  for (size_t i = 0; i + 1 < motif.edges_.size(); ++i) {
    if (motif.edges_[i].second != motif.edges_[i + 1].first) {
      motif.is_path_ = false;
      break;
    }
  }
  if (motif.is_path_) {
    motif.path_.push_back(motif.edges_.front().first);
    for (const auto& e : motif.edges_) motif.path_.push_back(e.second);
  } else if (require_path) {
    return Status::InvalidArgument(
        "spanning-path motif required but edges do not chain");
  }

  motif.name_ = name.empty() ? motif.PathString() : std::move(name);
  return motif;
}

StatusOr<Motif> Motif::FromSpanningPath(std::vector<MotifNode> path,
                                        std::string name) {
  if (path.size() < 2) {
    return Status::InvalidArgument("a motif needs at least one edge");
  }
  std::vector<std::pair<MotifNode, MotifNode>> edges;
  edges.reserve(path.size() - 1);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    edges.push_back({path[i], path[i + 1]});
  }
  return Build(std::move(edges), std::move(name), /*require_path=*/true);
}

StatusOr<Motif> Motif::FromEdgeList(
    std::vector<std::pair<MotifNode, MotifNode>> edges, std::string name) {
  return Build(std::move(edges), std::move(name), /*require_path=*/false);
}

StatusOr<Motif> Motif::Parse(const std::string& text, std::string name) {
  if (text.find('>') != std::string::npos) {
    // Edge-list notation: "0>1,0>2".
    std::vector<std::pair<MotifNode, MotifNode>> edges;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ',')) {
      const size_t arrow = token.find('>');
      if (arrow == std::string::npos || arrow == 0 ||
          arrow + 1 >= token.size()) {
        return Status::InvalidArgument("bad motif edge syntax: '" + token +
                                       "' in '" + text + "'");
      }
      // The substrings must outlive `end`, which strtol leaves pointing
      // into their buffers — a temporary would die with `end` still
      // dereferenced below.
      const std::string src_text = token.substr(0, arrow);
      const std::string dst_text = token.substr(arrow + 1);
      char* end = nullptr;
      long src = std::strtol(src_text.c_str(), &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument("bad motif node in '" + token + "'");
      }
      long dst = std::strtol(dst_text.c_str(), &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument("bad motif node in '" + token + "'");
      }
      edges.push_back({static_cast<MotifNode>(src),
                       static_cast<MotifNode>(dst)});
    }
    return FromEdgeList(std::move(edges), std::move(name));
  }

  std::vector<MotifNode> path;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, '-')) {
    if (token.empty()) {
      return Status::InvalidArgument("bad motif path syntax: '" + text + "'");
    }
    char* end = nullptr;
    long v = std::strtol(token.c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument("bad motif node '" + token + "' in '" +
                                     text + "'");
    }
    path.push_back(static_cast<MotifNode>(v));
  }
  return FromSpanningPath(std::move(path), std::move(name));
}

bool Motif::HasCycle() const {
  // Iterative DFS with colors over the directed motif graph.
  std::vector<std::vector<MotifNode>> adjacency(
      static_cast<size_t>(num_nodes_));
  for (const auto& [src, dst] : edges_) {
    adjacency[static_cast<size_t>(src)].push_back(dst);
  }
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(static_cast<size_t>(num_nodes_), Color::kWhite);

  for (MotifNode start = 0; start < num_nodes_; ++start) {
    if (color[static_cast<size_t>(start)] != Color::kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<MotifNode, size_t>> stack{{start, 0}};
    color[static_cast<size_t>(start)] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto& next = adjacency[static_cast<size_t>(node)];
      if (child >= next.size()) {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const MotifNode target = next[child++];
      if (color[static_cast<size_t>(target)] == Color::kGray) return true;
      if (color[static_cast<size_t>(target)] == Color::kWhite) {
        color[static_cast<size_t>(target)] = Color::kGray;
        stack.push_back({target, 0});
      }
    }
  }
  return false;
}

std::string Motif::PathString() const {
  std::ostringstream os;
  if (is_path_) {
    for (size_t i = 0; i < path_.size(); ++i) {
      if (i > 0) os << '-';
      os << path_[i];
    }
  } else {
    for (size_t i = 0; i < edges_.size(); ++i) {
      if (i > 0) os << ',';
      os << edges_[i].first << '>' << edges_[i].second;
    }
  }
  return os.str();
}

}  // namespace flowmotif
