#ifndef FLOWMOTIF_CORE_JOIN_BASELINE_H_
#define FLOWMOTIF_CORE_JOIN_BASELINE_H_

#include <cstdint>
#include <functional>

#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// The paper's baseline competitor (Sec. 6.2.1): instead of the two-phase
/// structure-first search, motif instances are assembled bottom-up by
/// hierarchical joins.
///
/// Step 1 materializes, for every edge (u, v) of GT, all "quintuples"
/// (u, v, ts, te, f): contiguous interaction runs of duration <= delta
/// with aggregated flow f (those failing phi are dropped — a run that
/// fails phi cannot instantiate a motif edge). Step ell joins the
/// sub-motif instances of the first ell edges with the quintuple table of
/// edge ell+1 on the shared vertex, checking the time-order, duration,
/// phi and vertex-binding predicates. Cycle-closing and repeated motif
/// nodes are enforced through the bindings.
///
/// Canonicality predicates (runs anchored right after the previous edge's
/// split, last edge extended to the window end, window anchor novelty)
/// make the final instance set *identical* to FlowMotifEnumerator's
/// paper-faithful output — which the property tests verify. The cost
/// profile is the paper's: a large number of intermediate sub-motif
/// instances is produced and most never contribute to a final instance.
class JoinMotifEnumerator {
 public:
  /// Visitor over materialized instances; return false to stop.
  using JoinVisitor = std::function<bool(const MotifInstance&)>;

  struct Result {
    int64_t num_instances = 0;
    int64_t num_quintuples = 0;    // step-1 table size
    int64_t num_partials = 0;      // intermediate sub-motif instances
    double seconds = 0.0;
  };

  JoinMotifEnumerator(const TimeSeriesGraph& graph, const Motif& motif,
                      Timestamp delta, Flow phi);
  // The enumerator keeps a reference to the graph: temporaries would
  // dangle.
  JoinMotifEnumerator(TimeSeriesGraph&&, const Motif&, Timestamp, Flow) =
      delete;

  /// Runs the join pipeline. `visitor` may be null to count only.
  Result Run(const JoinVisitor& visitor = nullptr) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  Flow phi_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_JOIN_BASELINE_H_
