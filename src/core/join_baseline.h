#ifndef FLOWMOTIF_CORE_JOIN_BASELINE_H_
#define FLOWMOTIF_CORE_JOIN_BASELINE_H_

#include <cstdint>
#include <functional>

#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "core/window_cursor.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// The paper's baseline competitor (Sec. 6.2.1): instead of the two-phase
/// structure-first search, motif instances are assembled bottom-up by
/// hierarchical joins.
///
/// Step 1 materializes, for every edge (u, v) of GT, all "quintuples"
/// (u, v, ts, te, f): contiguous interaction runs of duration <= delta
/// with aggregated flow f (those failing phi are dropped — a run that
/// fails phi cannot instantiate a motif edge). The per-anchor duration
/// limit slides on one monotone galloping cursor per series (anchors
/// ascend), and the resulting table is grouped by run start, so step
/// ell's join probes binary-search the one group matching the canonical
/// start instead of scanning the whole table. Step ell joins the
/// sub-motif instances of the first ell edges with the quintuple table
/// of edge ell+1 on the shared vertex, checking the time-order,
/// duration, phi and vertex-binding predicates. Cycle-closing and
/// repeated motif nodes are enforced through the bindings.
///
/// Canonicality predicates (runs anchored right after the previous edge's
/// split, last edge extended to the window end, window anchor novelty)
/// make the final instance set *identical* to FlowMotifEnumerator's
/// paper-faithful output — which the property tests verify. The
/// anchor-novelty window lists are served by a SharedWindowCache
/// (injected per query, or a run-local one; keyed on timestamp-storage
/// identity like every cache consumer), shared with the two-phase
/// paths so Fig. 8 comparisons measure the join strategy, not redundant
/// window recomputation. The cost profile is the paper's: a large
/// number of intermediate sub-motif instances is produced and most
/// never contribute to a final instance.
class JoinMotifEnumerator {
 public:
  /// Visitor over materialized instances; return false to stop.
  using JoinVisitor = std::function<bool(const MotifInstance&)>;

  struct Result {
    int64_t num_instances = 0;
    int64_t num_quintuples = 0;    // step-1 table size
    int64_t num_partials = 0;      // intermediate sub-motif instances
    double seconds = 0.0;
  };

  /// `window_cache` (optional) serves the anchor-novelty window lists;
  /// it must outlive the enumerator and be bound to the same delta.
  JoinMotifEnumerator(const TimeSeriesGraph& graph, const Motif& motif,
                      Timestamp delta, Flow phi,
                      SharedWindowCache* window_cache = nullptr);
  // The enumerator keeps a reference to the graph: temporaries would
  // dangle.
  JoinMotifEnumerator(TimeSeriesGraph&&, const Motif&, Timestamp, Flow,
                      SharedWindowCache* = nullptr) = delete;

  /// Runs the join pipeline. `visitor` may be null to count only.
  Result Run(const JoinVisitor& visitor = nullptr) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  Flow phi_;
  SharedWindowCache* cache_;  // null = one run-local cache per Run
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_JOIN_BASELINE_H_
