#include "core/motif_catalog.h"

#include "util/logging.h"

namespace flowmotif {

namespace {

Motif MakeMotif(std::vector<MotifNode> path, const std::string& name) {
  StatusOr<Motif> motif = Motif::FromSpanningPath(std::move(path), name);
  FLOWMOTIF_CHECK(motif.ok()) << motif.status().ToString();
  return *std::move(motif);
}

std::vector<Motif> BuildCatalog() {
  std::vector<Motif> motifs;
  motifs.push_back(MakeMotif({0, 1, 2}, "M(3,2)"));
  motifs.push_back(MakeMotif({0, 1, 2, 0}, "M(3,3)"));
  motifs.push_back(MakeMotif({0, 1, 2, 3}, "M(4,3)"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 0}, "M(4,4)A"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 1}, "M(4,4)B"));
  motifs.push_back(MakeMotif({0, 1, 2, 0, 3}, "M(4,4)C"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 4}, "M(5,4)"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 4, 0}, "M(5,5)A"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 0, 4}, "M(5,5)B"));
  motifs.push_back(MakeMotif({0, 1, 2, 3, 4, 1}, "M(5,5)C"));
  return motifs;
}

}  // namespace

const std::vector<Motif>& MotifCatalog::All() {
  static const std::vector<Motif>* const kCatalog =
      new std::vector<Motif>(BuildCatalog());
  return *kCatalog;
}

StatusOr<Motif> MotifCatalog::ByName(const std::string& name) {
  for (const Motif& m : All()) {
    if (m.name() == name) return m;
  }
  return Status::NotFound("no catalog motif named '" + name + "'");
}

std::vector<std::string> MotifCatalog::Names() {
  std::vector<std::string> names;
  names.reserve(All().size());
  for (const Motif& m : All()) names.push_back(m.name());
  return names;
}

}  // namespace flowmotif
