#ifndef FLOWMOTIF_CORE_MOTIF_H_
#define FLOWMOTIF_CORE_MOTIF_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace flowmotif {

/// Motif-local node identifier: 0 .. num_nodes-1.
using MotifNode = int;

/// A structural assignment of motif nodes to graph vertices: element i is
/// the graph vertex that motif node i maps to (the bijection mu of
/// Def. 3.2, restricted to the motif's vertex set).
using MatchBinding = std::vector<VertexId>;

/// The graph structure GM of a network flow motif (Def. 3.1).
///
/// The edge labels 1..m define a total order over the edges. In the
/// paper the ordered edges always form a *spanning path*
/// SPM = e1 e2 ... em (Sec. 3) — build those with FromSpanningPath,
/// which represents the motif as the node sequence the path visits
/// (`path()[i-1] -> path()[i]` is the edge labeled i; repeated nodes
/// create cycles).
///
/// This library also implements the paper's future-work generalization
/// (Sec. 7): motifs whose label-ordered edges form an arbitrary weakly
/// connected shape with forks and joins (e.g. the fan-out 0->1, 0->2).
/// Build those with FromEdgeList. The temporal semantics stay the total
/// label order: every interaction assigned to edge i strictly precedes
/// every interaction assigned to edge i+1.
///
/// The duration bound delta and flow bound phi are *query* parameters and
/// live in EnumerationOptions, not here, so one Motif can be reused across
/// parameter sweeps (Figs. 9, 10).
class Motif {
 public:
  /// Validates and builds a path motif from its spanning-path node
  /// sequence, e.g. {0,1,2,0} is the 3-node cycle M(3,3). Requirements:
  /// * at least 2 path entries (one edge);
  /// * node ids are dense: each id in [0, max_id] appears;
  /// * consecutive nodes differ (no self-loop edges);
  /// * no ordered pair of nodes repeats (edges are distinct).
  static StatusOr<Motif> FromSpanningPath(std::vector<MotifNode> path,
                                          std::string name = "");

  /// Validates and builds a general motif from its label-ordered edge
  /// list, e.g. {{0,1},{0,2}} is a 2-way fan-out. Requirements:
  /// * at least one edge; no self-loops; no repeated ordered pairs;
  /// * node ids dense;
  /// * the undirected skeleton is connected (motifs are small connected
  ///   patterns).
  /// If the edges happen to chain into a spanning path, the motif is
  /// indistinguishable from the FromSpanningPath equivalent.
  static StatusOr<Motif> FromEdgeList(
      std::vector<std::pair<MotifNode, MotifNode>> edges,
      std::string name = "");

  /// Parses "0-1-2-0" path notation, or "0>1,0>2" edge-list notation.
  static StatusOr<Motif> Parse(const std::string& text,
                               std::string name = "");

  /// Number of motif vertices |VM|.
  int num_nodes() const { return num_nodes_; }

  /// Number of motif edges m = |EM|.
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Edge with label i+1 (0-based index i) as (source, target) motif nodes.
  std::pair<MotifNode, MotifNode> edge(int i) const {
    return edges_[static_cast<size_t>(i)];
  }

  /// All edges in label order.
  const std::vector<std::pair<MotifNode, MotifNode>>& edges() const {
    return edges_;
  }

  /// True iff the label-ordered edges chain into a spanning path (every
  /// motif of the paper's Fig. 3 does). path() is only valid then.
  bool is_path() const { return is_path_; }

  /// The spanning-path node sequence (length num_edges()+1). Only valid
  /// when is_path().
  const std::vector<MotifNode>& path() const { return path_; }

  /// True iff the motif graph contains a directed cycle.
  bool HasCycle() const;

  /// Display name, e.g. "M(3,3)"; defaults to PathString().
  const std::string& name() const { return name_; }

  /// "0-1-2-0" for path motifs, "0>1,0>2" for general ones.
  std::string PathString() const;

  friend bool operator==(const Motif& a, const Motif& b) {
    return a.edges_ == b.edges_;
  }

 private:
  Motif() = default;

  static StatusOr<Motif> Build(
      std::vector<std::pair<MotifNode, MotifNode>> edges, std::string name,
      bool require_path);

  std::vector<std::pair<MotifNode, MotifNode>> edges_;
  std::vector<MotifNode> path_;  // empty unless is_path_
  int num_nodes_ = 0;
  bool is_path_ = false;
  std::string name_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_MOTIF_H_
