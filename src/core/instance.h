#ifndef FLOWMOTIF_CORE_INSTANCE_H_
#define FLOWMOTIF_CORE_INSTANCE_H_

#include <string>
#include <vector>

#include "core/motif.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace flowmotif {

/// A materialized flow motif instance (Def. 3.2): the vertex binding plus,
/// for every motif edge, the set of interactions assigned to it (kept in
/// time order).
struct MotifInstance {
  /// Motif node -> graph vertex (size = motif.num_nodes()).
  MatchBinding binding;

  /// edge_sets[i] instantiates the motif edge with label i+1; each set is
  /// non-empty and sorted by time.
  std::vector<std::vector<Interaction>> edge_sets;

  /// Instance flow f(GI): the minimum aggregated edge-set flow (Eq. 1).
  Flow InstanceFlow() const;

  /// Earliest / latest interaction timestamp across all edge-sets.
  Timestamp StartTime() const;
  Timestamp EndTime() const;

  /// Duration EndTime() - StartTime().
  Timestamp Span() const { return EndTime() - StartTime(); }

  /// Rendering like "[e1 <- {(10,10)}, e2 <- {(13,5),(15,7)}]".
  std::string ToString() const;

  friend bool operator==(const MotifInstance& a, const MotifInstance& b) {
    return a.binding == b.binding && a.edge_sets == b.edge_sets;
  }
  /// Lexicographic order for canonical sorting in tests.
  friend bool operator<(const MotifInstance& a, const MotifInstance& b);
};

/// Checks every condition of Def. 3.2 plus the delta / phi constraints:
/// * binding is injective and edge-sets sit on existing graph pairs;
/// * every edge-set is a non-empty subset of the pair's series;
/// * consecutive edge-sets are strictly time-separated (which implies the
///   definition's time-respecting condition along the spanning path);
/// * total span <= delta; every edge-set flow >= phi.
/// Returns OK or a description of the first violated condition.
Status ValidateInstance(const TimeSeriesGraph& graph, const Motif& motif,
                        const MotifInstance& instance, Timestamp delta,
                        Flow phi);

/// Checks maximality (Def. 3.3): no interaction from the underlying pair
/// series can be added to any edge-set while keeping the instance valid
/// (time-respecting order and duration; added flow never violates phi).
/// Precondition: the instance is valid.
bool IsMaximalInstance(const TimeSeriesGraph& graph, const Motif& motif,
                       const MotifInstance& instance, Timestamp delta);

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_INSTANCE_H_
