#include "core/multi_matcher.h"

#include <algorithm>

#include "util/logging.h"

namespace flowmotif {

namespace {

/// Canonical labeling: node ids appear in first-occurrence order along
/// the path (0, 1, 2, ...). Shared path prefixes of canonical motifs are
/// syntactically identical, which is what lets the trie merge them.
bool IsCanonicalPath(const std::vector<MotifNode>& path) {
  MotifNode next_new = 0;
  for (MotifNode n : path) {
    if (n == next_new) {
      ++next_new;
    } else if (n > next_new) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<MultiStructuralMatcher> MultiStructuralMatcher::Create(
    const TimeSeriesGraph& graph, std::vector<Motif> motifs) {
  if (motifs.empty()) {
    return Status::InvalidArgument("motif set must not be empty");
  }
  for (const Motif& motif : motifs) {
    if (!motif.is_path()) {
      return Status::InvalidArgument("multi-matching requires path motifs; " +
                                     motif.name() + " is not one");
    }
    if (!IsCanonicalPath(motif.path())) {
      return Status::InvalidArgument("motif " + motif.name() +
                                     " is not canonically labeled");
    }
  }
  return MultiStructuralMatcher(graph, std::move(motifs));
}

MultiStructuralMatcher::MultiStructuralMatcher(const TimeSeriesGraph& graph,
                                               std::vector<Motif> motifs)
    : graph_(graph), motifs_(std::move(motifs)) {
  nodes_.push_back(TrieNode{});  // root: empty path
  for (size_t m = 0; m < motifs_.size(); ++m) {
    max_nodes_ = std::max(max_nodes_, motifs_[m].num_nodes());
    size_t node = 0;
    for (MotifNode entry : motifs_[m].path()) {
      auto& children = nodes_[node].children;
      auto it = std::find_if(children.begin(), children.end(),
                             [entry](const std::pair<MotifNode, size_t>& c) {
                               return c.first == entry;
                             });
      if (it == children.end()) {
        nodes_.push_back(TrieNode{});
        // nodes_ may have reallocated: re-take the reference.
        nodes_[node].children.push_back({entry, nodes_.size() - 1});
        node = nodes_.size() - 1;
      } else {
        node = it->second;
      }
    }
    nodes_[node].terminal_motifs.push_back(m);
  }
}

void MultiStructuralMatcher::FindAll(const Visitor& visitor) const {
  FLOWMOTIF_CHECK(visitor != nullptr);
  MatchBinding binding(static_cast<size_t>(max_nodes_), -1);
  std::vector<bool> vertex_used(static_cast<size_t>(graph_.num_vertices()),
                                false);
  bool stop = false;
  Dfs(0, /*prev_vertex=*/-1, /*bound_nodes=*/0, &binding, &vertex_used,
      visitor, &stop);
}

void MultiStructuralMatcher::Dfs(size_t node, VertexId prev_vertex,
                                 int bound_nodes, MatchBinding* binding,
                                 std::vector<bool>* vertex_used,
                                 const Visitor& visitor, bool* stop) const {
  if (*stop) return;

  // Motifs whose whole path has been consumed match with the current
  // binding prefix.
  for (size_t motif_idx : nodes_[node].terminal_motifs) {
    const int n = motifs_[motif_idx].num_nodes();
    MatchBinding match(binding->begin(), binding->begin() + n);
    if (!visitor(motif_idx, match)) {
      *stop = true;
      return;
    }
  }

  for (const auto& [label, child] : nodes_[node].children) {
    if (*stop) return;
    if (label < bound_nodes) {
      // Revisit of an already-bound motif node: only the edge existence
      // must hold (cycle / repeat step).
      const VertexId v = (*binding)[static_cast<size_t>(label)];
      if (prev_vertex >= 0 && graph_.FindPairIndex(prev_vertex, v) < 0) {
        continue;
      }
      Dfs(child, v, bound_nodes, binding, vertex_used, visitor, stop);
      continue;
    }
    // Canonical labels bind in order: `label == bound_nodes` is a fresh
    // motif node.
    FLOWMOTIF_CHECK_EQ(label, bound_nodes);
    if (prev_vertex < 0) {
      // Path origin: try every vertex with an out-edge.
      for (VertexId v = 0; v < graph_.num_vertices() && !*stop; ++v) {
        if (graph_.OutDegree(v) == 0) continue;
        (*binding)[static_cast<size_t>(label)] = v;
        (*vertex_used)[static_cast<size_t>(v)] = true;
        Dfs(child, v, bound_nodes + 1, binding, vertex_used, visitor, stop);
        (*vertex_used)[static_cast<size_t>(v)] = false;
        (*binding)[static_cast<size_t>(label)] = -1;
      }
      continue;
    }
    for (size_t p = graph_.OutBegin(prev_vertex);
         p < graph_.OutEnd(prev_vertex) && !*stop; ++p) {
      const VertexId to = graph_.pair(p).dst;
      if ((*vertex_used)[static_cast<size_t>(to)]) continue;
      (*binding)[static_cast<size_t>(label)] = to;
      (*vertex_used)[static_cast<size_t>(to)] = true;
      Dfs(child, to, bound_nodes + 1, binding, vertex_used, visitor, stop);
      (*vertex_used)[static_cast<size_t>(to)] = false;
      (*binding)[static_cast<size_t>(label)] = -1;
    }
  }
}

std::vector<int64_t> MultiStructuralMatcher::CountAll() const {
  std::vector<int64_t> counts(motifs_.size(), 0);
  FindAll([&counts](size_t motif_idx, const MatchBinding&) {
    ++counts[motif_idx];
    return true;
  });
  return counts;
}

}  // namespace flowmotif
