#ifndef FLOWMOTIF_CORE_ENUMERATOR_H_
#define FLOWMOTIF_CORE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/instance.h"
#include "core/motif.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Parameters of a flow motif query: the delta / phi thresholds of
/// Def. 3.1 plus execution options.
struct EnumerationOptions {
  /// Maximum time difference between any two interactions of an instance.
  Timestamp delta = 0;

  /// Minimum aggregated flow per motif edge. 0 disables flow pruning.
  Flow phi = 0.0;

  /// When set, instances additionally need flow strictly greater than the
  /// returned value; re-evaluated on every check. This is the "floating
  /// threshold" hook used by top-k search (Sec. 5): the k-th best flow so
  /// far replaces phi. In parallel runs the callback is invoked from
  /// every worker concurrently — back it with SharedFlowThreshold
  /// (core/topk.h), whose atomic k-th-best load is safe and whose bound
  /// keeps parallel results byte-identical to serial.
  std::function<Flow()> dynamic_min_flow_exclusive;

  /// Paper-faithful enumeration can, in rare cross-window configurations,
  /// emit an instance that a strictly earlier window could extend (see
  /// DESIGN.md Sec. 4). Setting this applies a Def. 3.3 post-filter so
  /// only exactly-maximal instances are reported.
  bool strict_maximality = false;

  /// Ablation switch: disables the early phi check of Algorithm 1 line
  /// 16; partial prefixes below phi are still expanded and the flow
  /// constraint is enforced only on complete instances. Results are
  /// unchanged; only work grows. Used by bench_ablation.
  bool ablation_no_prefix_phi_pruning = false;

  /// Ablation switch: processes a window at *every* e1 anchor instead of
  /// skipping positions without new e_m elements. The extra windows can
  /// only regenerate non-maximal/duplicate instances, which are counted
  /// separately in EnumerationResult::num_redundant_instances. Used by
  /// bench_ablation.
  bool ablation_no_window_skip = false;

  /// Per-query shared window cache (core/window_cursor.h), non-owning:
  /// per-match processed-window lists are read through it instead of
  /// recomputed per match. Must outlive the enumerator and be bound to
  /// the same delta. When null, the enumerator owns a private cache iff
  /// the motif has an interior node (the only shape where a
  /// (first, last) series pair repeats).
  SharedWindowCache* shared_window_cache = nullptr;

  /// Lifecycle control (non-owning, may be null) billed for every
  /// window list a match materializes — through the cache or computed
  /// per match — at site "cache.windows", so WorkBudget's window and
  /// memory caps hold for every motif shape, cache-eligible or not.
  QueryControl* query_control = nullptr;
};

/// A contiguous run [begin, end) of one edge's interaction series — the
/// edge-set assigned to one motif edge by an instance.
struct EdgeSlice {
  const EdgeSeries* series = nullptr;
  size_t begin = 0;
  size_t end = 0;  // exclusive

  size_t size() const { return end - begin; }

  /// Aggregated flow of the slice; 0 for an empty slice. The explicit
  /// guard matters: `end - 1` would wrap for `begin == end == 0` and only
  /// accidentally hit EdgeSeries::FlowSum's out-of-range check.
  Flow FlowSum() const {
    return begin < end ? series->FlowSum(begin, end - 1) : 0.0;
  }
};

/// A zero-copy view of one enumerated instance, valid only during the
/// visitor call. Call Materialize() to keep it.
struct InstanceView {
  const Motif* motif = nullptr;
  const MatchBinding* binding = nullptr;
  const std::vector<EdgeSlice>* slices = nullptr;
  Window window{0, 0};
  Flow flow = 0.0;  // f(GI), Eq. 1

  /// Copies the view into an owning MotifInstance.
  MotifInstance Materialize() const;
};

/// Visitor invoked once per instance; return false to stop enumeration.
using InstanceVisitor = std::function<bool(const InstanceView&)>;

/// Counters and timings reported by a run.
struct EnumerationResult {
  int64_t num_instances = 0;
  int64_t num_structural_matches = 0;
  int64_t num_windows_processed = 0;
  int64_t num_phi_prunes = 0;         // prefixes cut by the flow bound
  /// kTopK only (0 elsewhere): emissions that survived the floating
  /// threshold during the run, plus the phi/threshold prunes. This is
  /// the one execution-dependent counter of the mode — how fast the
  /// threshold tightened depends on batch layout and thread count — so
  /// QueryEngine quarantines it here and keeps num_instances /
  /// num_phi_prunes exact (the returned entries / 0). Comparable only
  /// between identical execution configurations, like num_batches.
  int64_t num_pruning_probes = 0;
  int64_t num_domination_skips = 0;   // prefixes cut as non-maximal
  int64_t num_strict_rejects = 0;     // strict-mode Def. 3.3 rejections
  int64_t num_redundant_instances = 0;  // only with ablation_no_window_skip
  double phase1_seconds = 0.0;        // structural matching
  double phase2_seconds = 0.0;        // window/instance enumeration

  double total_seconds() const { return phase1_seconds + phase2_seconds; }

  /// Accumulates another run's counters — the reduction step of the
  /// engine's parallel execution path, where each worker fills a local
  /// result. All counters are sums, so merging per-batch results in
  /// batch order reproduces the serial counters exactly. The two phase
  /// timers also sum: in a parallel run they report aggregate CPU
  /// seconds across workers, not wall time (QueryResult::wall_seconds
  /// carries the latter).
  void MergeFrom(const EnumerationResult& other) {
    num_instances += other.num_instances;
    num_structural_matches += other.num_structural_matches;
    num_windows_processed += other.num_windows_processed;
    num_phi_prunes += other.num_phi_prunes;
    num_pruning_probes += other.num_pruning_probes;
    num_domination_skips += other.num_domination_skips;
    num_strict_rejects += other.num_strict_rejects;
    num_redundant_instances += other.num_redundant_instances;
    phase1_seconds += other.phase1_seconds;
    phase2_seconds += other.phase2_seconds;
  }
};

/// The paper's two-phase flow motif enumeration algorithm (Sec. 4):
/// phase P1 finds structural matches, phase P2 slides a delta-length
/// window over each match's interactions and recursively enumerates the
/// maximal instances (Algorithm 1), pruning by phi.
///
/// Thread-compatible: one enumerator may be shared by concurrent Run
/// calls since all state is per-call.
class FlowMotifEnumerator {
 public:
  FlowMotifEnumerator(const TimeSeriesGraph& graph, const Motif& motif,
                      const EnumerationOptions& options);
  // The enumerator keeps a reference to the graph: temporaries would
  // dangle.
  FlowMotifEnumerator(TimeSeriesGraph&&, const Motif&,
                      const EnumerationOptions&) = delete;

  /// Full two-phase run. `visitor` may be null to count only.
  EnumerationResult Run(const InstanceVisitor& visitor = nullptr) const;

  /// Phase P2 only, over the given (externally computed) matches. Used by
  /// benchmarks that isolate P2 and by the significance analyzer, which
  /// reuses the real graph's matches on flow-permuted graphs.
  EnumerationResult RunOnMatches(const std::vector<MatchBinding>& matches,
                                 const InstanceVisitor& visitor = nullptr)
      const;

  /// Phase P2 for a single structural match, accumulating into `result`.
  /// Returns false if the visitor requested a stop.
  bool EnumerateMatch(const MatchBinding& binding,
                      const InstanceVisitor& visitor,
                      EnumerationResult* result) const;

  /// Phase P2 for a single match over an explicit window span instead of
  /// the match's own processed-window list. The windows must be (a
  /// contiguous run of) processed windows of this match in list order —
  /// the streaming monitor feeds the settled/hot spans produced by
  /// AdvanceProcessedWindows, whose concatenation is exactly the batch
  /// list, so instances come out byte-identical to EnumerateMatch across
  /// the whole sequence of calls. Returns false on visitor stop.
  bool EnumerateMatchWindows(const MatchBinding& binding,
                             const Window* windows_begin,
                             const Window* windows_end,
                             const InstanceVisitor& visitor,
                             EnumerationResult* result) const;

  /// Convenience: runs and materializes every instance.
  std::vector<MotifInstance> CollectAll() const;

  const Motif& motif() const { return motif_; }
  const EnumerationOptions& options() const { return options_; }

 private:
  struct Context;

  void Recurse(Context* ctx, int level, Timestamp lo) const;
  bool PassesFlowBound(Flow flow) const;
  void Emit(Context* ctx, Flow instance_flow) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;
  const EnumerationOptions options_;
  // Privately owned cache when options_.shared_window_cache is null and
  // the motif has an interior node. SharedWindowCache is internally
  // synchronized, so const methods may insert through it.
  std::unique_ptr<SharedWindowCache> owned_cache_;
  SharedWindowCache* cache_;  // null = compute windows per match
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_ENUMERATOR_H_
