#ifndef FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_
#define FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/motif.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Phase P1 of the paper's two-phase algorithm (Sec. 4): finds every
/// structural match of the motif graph GM in the time-series graph GT,
/// disregarding edge labels' time series and the delta / phi constraints.
///
/// For spanning-path motifs the implementation follows the paper: a
/// modified depth-first search that walks the motif's spanning path.
/// Every graph vertex is tried as the image of the path's origin; at
/// step i the (i+1)-th path node is either already bound (the edge must
/// exist between the bound vertices — this realizes the "last vertex
/// equals first vertex" cycle check and all other repeats) or is bound
/// to each out-neighbor that keeps the binding injective.
///
/// General motifs (forks/joins, the Sec. 7 extension) are matched by
/// backtracking over the edges in label order: a new target vertex is
/// drawn from the out-neighbors of the bound source, a new source vertex
/// from the in-neighbors of the bound target, and an edge with both
/// endpoints fresh scans the pair table.
///
/// Enumeration order is deterministic: origins in vertex order, neighbors
/// in CSR (destination / source) order.
class StructuralMatcher {
 public:
  /// Visitor invoked per match; return false to stop the search early.
  using MatchVisitor = std::function<bool(const MatchBinding&)>;

  StructuralMatcher(const TimeSeriesGraph& graph, const Motif& motif);
  // The matcher keeps a reference to the graph: temporaries would dangle.
  StructuralMatcher(TimeSeriesGraph&&, const Motif&) = delete;

  /// Streams every structural match to `visitor`.
  void FindAll(const MatchVisitor& visitor) const;

  /// Convenience: materializes all matches.
  std::vector<MatchBinding> FindAllMatches() const;

  /// Counts matches without materializing them.
  int64_t CountMatches() const;

  /// Verifies that `binding` is a structural match (used by tests and to
  /// validate externally supplied bindings): injective, within range, and
  /// every motif edge maps to a connected pair.
  bool IsMatch(const MatchBinding& binding) const;

 private:
  void Dfs(size_t step, MatchBinding* binding,
           std::vector<bool>* vertex_used, const MatchVisitor& visitor,
           bool* stop) const;
  void GeneralDfs(int edge_idx, MatchBinding* binding,
                  std::vector<bool>* vertex_used, const MatchVisitor& visitor,
                  bool* stop) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;  // by value: motifs are tiny and callers often pass
                       // temporaries
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_
