#ifndef FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_
#define FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/motif.h"
#include "graph/time_series_graph.h"
#include "util/thread_pool.h"

namespace flowmotif {

/// Phase P1 of the paper's two-phase algorithm (Sec. 4): finds every
/// structural match of the motif graph GM in the time-series graph GT,
/// disregarding edge labels' time series and the delta / phi constraints.
///
/// For spanning-path motifs the implementation follows the paper: a
/// modified depth-first search that walks the motif's spanning path.
/// Every graph vertex is tried as the image of the path's origin; at
/// step i the (i+1)-th path node is either already bound (the edge must
/// exist between the bound vertices — this realizes the "last vertex
/// equals first vertex" cycle check and all other repeats) or is bound
/// to each out-neighbor that keeps the binding injective.
///
/// General motifs (forks/joins, the Sec. 7 extension) are matched by
/// backtracking over the edges in label order: a new target vertex is
/// drawn from the out-neighbors of the bound source, a new source vertex
/// from the in-neighbors of the bound target, and an edge with both
/// endpoints fresh scans the pair table.
///
/// Enumeration order is deterministic: origins in vertex order, neighbors
/// in CSR (destination / source) order.
///
/// The search decomposes into independent *work units* — one candidate
/// origin vertex for path motifs, one pair edge as the image of the
/// first labeled edge for general motifs — which is what the engine's
/// parallel execution path partitions across workers: per-unit match
/// lists concatenated in unit order reproduce the serial order exactly.
class StructuralMatcher {
 public:
  /// Visitor invoked per match; return false to stop the search early.
  using MatchVisitor = std::function<bool(const MatchBinding&)>;

  StructuralMatcher(const TimeSeriesGraph& graph, const Motif& motif);
  // The matcher keeps a reference to the graph: temporaries would dangle.
  StructuralMatcher(TimeSeriesGraph&&, const Motif&) = delete;

  /// Streams every structural match to `visitor`.
  void FindAll(const MatchVisitor& visitor) const;

  /// Number of independent work units the search decomposes into: one
  /// per graph vertex (path motifs, candidate origins) or one per pair
  /// edge (general motifs, images of the first labeled edge). Units may
  /// be empty — e.g. an origin with no out-edge.
  int64_t NumWorkUnits() const;

  /// Streams every match whose work unit lies in [begin, end), in the
  /// serial FindAll order. FindAll is exactly
  /// FindInUnits(0, NumWorkUnits(), visitor). Returns false iff the
  /// visitor stopped the search early.
  bool FindInUnits(int64_t begin, int64_t end,
                   const MatchVisitor& visitor) const;

  /// Convenience: materializes all matches.
  std::vector<MatchBinding> FindAllMatches() const;

  /// Parallel phase P1: partitions the work units into contiguous
  /// ranges dispatched on `pool`, then concatenates the per-range match
  /// buffers in range order — byte-identical to FindAllMatches() for
  /// every thread count. Early stop is not supported (the visitor-free
  /// API materializes everything).
  std::vector<MatchBinding> FindAllMatchesParallel(ThreadPool* pool) const;

  /// Counts matches without materializing them.
  int64_t CountMatches() const;

  /// Verifies that `binding` is a structural match (used by tests and to
  /// validate externally supplied bindings): injective, within range, and
  /// every motif edge maps to a connected pair.
  bool IsMatch(const MatchBinding& binding) const;

 private:
  /// Runs one work unit with caller-provided scratch (reused across
  /// units so a range of units costs one allocation, not one per unit).
  void FindInUnitImpl(int64_t unit, MatchBinding* binding,
                      std::vector<bool>* vertex_used,
                      const MatchVisitor& visitor, bool* stop) const;
  void Dfs(size_t step, MatchBinding* binding,
           std::vector<bool>* vertex_used, const MatchVisitor& visitor,
           bool* stop) const;
  void GeneralDfs(int edge_idx, MatchBinding* binding,
                  std::vector<bool>* vertex_used, const MatchVisitor& visitor,
                  bool* stop) const;

  const TimeSeriesGraph& graph_;
  const Motif motif_;  // by value: motifs are tiny and callers often pass
                       // temporaries
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_STRUCTURAL_MATCH_H_
