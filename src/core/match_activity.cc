#include "core/match_activity.h"

#include <algorithm>
#include <limits>

#include "core/structural_match.h"
#include "util/logging.h"

namespace flowmotif {

MatchActivityAnalyzer::MatchActivityAnalyzer(const TimeSeriesGraph& graph,
                                             const Motif& motif,
                                             const EnumerationOptions& options)
    : graph_(graph), motif_(motif), options_(options) {}

std::vector<MatchActivityAnalyzer::MatchActivity>
MatchActivityAnalyzer::TopMatches(int64_t top_n) const {
  FLOWMOTIF_CHECK_GE(top_n, 0);
  FlowMotifEnumerator enumerator(graph_, motif_, options_);
  StructuralMatcher matcher(graph_, motif_);

  std::vector<MatchActivity> activities;
  matcher.FindAll([&](const MatchBinding& binding) {
    MatchActivity activity;
    activity.binding = binding;
    activity.first_window_start = std::numeric_limits<Timestamp>::max();
    activity.last_window_start = std::numeric_limits<Timestamp>::min();

    EnumerationResult scratch;
    enumerator.EnumerateMatch(
        binding,
        [&activity](const InstanceView& view) {
          ++activity.instance_count;
          activity.max_instance_flow =
              std::max(activity.max_instance_flow, view.flow);
          activity.total_instance_flow += view.flow;
          activity.first_window_start =
              std::min(activity.first_window_start, view.window.start);
          activity.last_window_start =
              std::max(activity.last_window_start, view.window.start);
          return true;
        },
        &scratch);
    if (activity.instance_count > 0) {
      activities.push_back(std::move(activity));
    }
    return true;
  });

  std::sort(activities.begin(), activities.end(),
            [](const MatchActivity& a, const MatchActivity& b) {
              if (a.instance_count != b.instance_count) {
                return a.instance_count > b.instance_count;
              }
              if (a.total_instance_flow != b.total_instance_flow) {
                return a.total_instance_flow > b.total_instance_flow;
              }
              return a.binding < b.binding;
            });
  if (top_n > 0 && static_cast<int64_t>(activities.size()) > top_n) {
    activities.resize(static_cast<size_t>(top_n));
  }
  return activities;
}

MatchActivityAnalyzer::TimelineHistogram MatchActivityAnalyzer::Timeline(
    Timestamp bucket_width) const {
  FLOWMOTIF_CHECK_GT(bucket_width, 0);
  TimelineHistogram histogram;
  histogram.bucket_width = bucket_width;

  const TimeSeriesGraph::Stats stats = graph_.ComputeStats();
  histogram.origin = stats.min_time;
  const Timestamp span = stats.max_time - stats.min_time;
  const size_t num_buckets =
      static_cast<size_t>(span / bucket_width) + 1;
  histogram.counts.assign(num_buckets, 0);

  FlowMotifEnumerator enumerator(graph_, motif_, options_);
  enumerator.Run([&histogram](const InstanceView& view) {
    const size_t bucket = static_cast<size_t>(
        (view.window.start - histogram.origin) / histogram.bucket_width);
    if (bucket < histogram.counts.size()) ++histogram.counts[bucket];
    return true;
  });
  return histogram;
}

}  // namespace flowmotif
