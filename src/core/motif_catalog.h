#ifndef FLOWMOTIF_CORE_MOTIF_CATALOG_H_
#define FLOWMOTIF_CORE_MOTIF_CATALOG_H_

#include <string>
#include <vector>

#include "core/motif.h"

namespace flowmotif {

/// The ten motifs evaluated throughout the paper (Fig. 3). M(n, m) has n
/// nodes and m edges; letter suffixes distinguish variants with the same
/// size. All are single spanning paths as the paper requires.
///
/// Exact spanning paths (Fig. 3 is not machine-readable in the source
/// text; see DESIGN.md Sec. 3 for the reading used here):
///   M(3,2)  0-1-2        chain
///   M(3,3)  0-1-2-0      3-cycle ("cyclic transactions")
///   M(4,3)  0-1-2-3      chain ("region-to-region movements")
///   M(4,4)A 0-1-2-3-0    4-cycle
///   M(4,4)B 0-1-2-3-1    tail into a 3-cycle
///   M(4,4)C 0-1-2-0-3    3-cycle then tail out
///   M(5,4)  0-1-2-3-4    chain
///   M(5,5)A 0-1-2-3-4-0  5-cycle
///   M(5,5)B 0-1-2-3-0-4  4-cycle then tail out
///   M(5,5)C 0-1-2-3-4-1  tail into a 4-cycle
class MotifCatalog {
 public:
  /// All ten motifs, in the paper's presentation order.
  static const std::vector<Motif>& All();

  /// Looks a motif up by name, e.g. "M(4,4)B". Returns NotFound for names
  /// outside the catalog.
  static StatusOr<Motif> ByName(const std::string& name);

  /// Names in presentation order (convenient for bench tables).
  static std::vector<std::string> Names();
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_MOTIF_CATALOG_H_
