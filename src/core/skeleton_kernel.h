#ifndef FLOWMOTIF_CORE_SKELETON_KERNEL_H_
#define FLOWMOTIF_CORE_SKELETON_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace flowmotif {
namespace skeleton_kernel {

/// Dense replay passes over a recorded enumeration skeleton
/// (core/skeleton.h). Both kernels are straight-line loops over flat
/// arrays — no pointer chasing, no recursion, no branches on the flow
/// values — so compilers auto-vectorize the arithmetic (the gathers
/// through lo/hi/child are the only indirections, and they are
/// contiguous in trace order). A portable scalar build is the
/// fallback; no arch-specific intrinsics are used.

/// flows[i] = prefix[hi[i]] - prefix[lo[i]] for i in [0, n): the Eq. 2
/// flow of every recorded slice as one prefix-sum subtraction pass.
void EvaluateEdgeFlows(const double* prefix, const uint32_t* lo,
                       const uint32_t* hi, size_t n, double* flows);

/// The linear DP over the recorded state DAG: state 0 is the unit state
/// (value 1); for s >= 1, states are in post order (every edge's child
/// precedes its parent), so
///
///   values[s] = sum over edges e of s of (flows[e] >= phi) * values[child[e]]
///
/// and the returned total is the sum of values over `roots` — the
/// number of accepted enumeration leaves, i.e. the instance count.
/// `state_begin` is the CSR edge offsets (size num_states + 1);
/// `values` must hold num_states entries of scratch.
int64_t AccumulateStates(const double* flows, double phi,
                         const uint32_t* child, const uint32_t* state_begin,
                         size_t num_states, const uint32_t* roots,
                         size_t num_roots, int64_t* values);

/// Fused single pass: AccumulateStates with the flow of each edge
/// evaluated inline from the prefix arena instead of a precomputed
/// flows array. One traversal, no intermediate buffer — the fast path
/// when only one phi is asked of a flow assignment (the significance
/// ensemble). Parameter layout matches the two kernels above; `lo`/`hi`
/// index into `prefix`.
int64_t AccumulateStatesFused(const double* prefix, const uint32_t* lo,
                              const uint32_t* hi, double phi,
                              const uint32_t* child,
                              const uint32_t* state_begin, size_t num_states,
                              const uint32_t* roots, size_t num_roots,
                              int64_t* values);

}  // namespace skeleton_kernel
}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_SKELETON_KERNEL_H_
