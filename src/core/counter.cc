#include "core/counter.h"

#include <unordered_map>

#include "core/sliding_window.h"
#include "util/logging.h"

namespace flowmotif {

namespace {

/// Counting state for one match. The window-dependent bounds (per-level
/// admissible index ranges) live in the cursor arrays and are advanced
/// once per window; the memo is cleared — not reallocated — between
/// windows, because its entries are only valid for one window end.
struct WindowCounter {
  const std::vector<const EdgeSeries*>* series;
  const std::vector<size_t>* lo;     // per level, LowerBound(window.start)
  const std::vector<size_t>* limit;  // per level, UpperBound(window.end)
  Flow phi;
  int num_edges;
  // memo[level] maps the first usable element index of that level's
  // series to the number of valid suffix instantiations.
  std::vector<std::unordered_map<size_t, int64_t>> memo;
  int64_t memo_hits = 0;

  void BeginWindow() {
    for (auto& level_memo : memo) level_memo.clear();
  }

  int64_t Count(int level, size_t first) {
    const EdgeSeries& s = *(*series)[static_cast<size_t>(level)];
    const size_t level_limit = (*limit)[static_cast<size_t>(level)];
    if (first >= level_limit) return 0;

    if (level == num_edges - 1) {
      // Last motif edge: one (maximal) set — everything to the window
      // end — if it clears phi.
      return s.FlowSum(first, level_limit - 1) >= phi ? 1 : 0;
    }

    auto& level_memo = memo[static_cast<size_t>(level)];
    if (auto it = level_memo.find(first); it != level_memo.end()) {
      ++memo_hits;
      return it->second;
    }

    const EdgeSeries& next = *(*series)[static_cast<size_t>(level) + 1];
    const size_t next_size = next.size();
    int64_t total = 0;
    Flow prefix_flow = 0.0;
    // One galloping cursor replaces the per-element UpperBound(t_j) of
    // the recursion *and* the two binary searches of the old
    // HasElementInOpenClosed domination probe: t_j is non-decreasing
    // over the loop, so the first next-series element strictly after
    // t_j only ever moves forward. It starts at the next level's window
    // cursor — every element below it is before the window start, hence
    // before any t_j here.
    size_t next_after = (*lo)[static_cast<size_t>(level) + 1];
    for (size_t j = first; j < level_limit; ++j) {
      prefix_flow += s.flow(j);
      const Timestamp t_j = s.time(j);
      next_after = next.AdvanceUpperBound(next_after, t_j);
      if (j + 1 < level_limit) {
        // Prefix-domination: identical rule to the enumerator — some
        // next-edge element in (t_j, t_{j+1}].
        const Timestamp t_next = s.time(j + 1);
        if (next_after >= next_size || next.time(next_after) > t_next) {
          continue;
        }
      }
      if (prefix_flow < phi) continue;  // Algorithm 1 line 16
      total += Count(level + 1, next_after);
    }
    level_memo.emplace(first, total);
    return total;
  }
};

}  // namespace

InstanceCounter::InstanceCounter(const TimeSeriesGraph& graph,
                                 const Motif& motif, Timestamp delta,
                                 Flow phi, SharedWindowCache* window_cache)
    : graph_(graph), motif_(motif), delta_(delta), phi_(phi) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  FLOWMOTIF_CHECK_GE(phi, 0.0);
  cache_ = ResolveWindowCache(window_cache, motif, delta, &owned_cache_);
}

int64_t InstanceCounter::CountMatch(const MatchBinding& binding,
                                    Result* result,
                                    WindowListMru* window_mru) const {
  const int m = motif_.num_edges();
  std::vector<const EdgeSeries*> series;
  ResolveMatchSeries(graph_, motif_, binding, &series);

  WindowListMru local_mru;
  const std::vector<Window>& windows =
      (window_mru != nullptr ? window_mru : &local_mru)
          ->GetOrCompute(cache_, *series.front(), *series.back(), delta_,
                         query_control_);
  if (result != nullptr) {
    result->num_windows += static_cast<int64_t>(windows.size());
  }

  WindowCursorSet cursors;
  cursors.Reset(series);

  WindowCounter counter;
  counter.series = &series;
  counter.lo = &cursors.lo_indices();
  counter.limit = &cursors.hi_indices();
  counter.phi = phi_;
  counter.num_edges = m;
  counter.memo.resize(static_cast<size_t>(m));

  int64_t count = 0;
  for (const Window& window : windows) {
    cursors.AdvanceTo(window);
    counter.BeginWindow();
    count += counter.Count(0, cursors.lo(0));
  }
  if (result != nullptr) result->memo_hits += counter.memo_hits;
  return count;
}

InstanceCounter::Result InstanceCounter::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  Result result;
  WindowListMru window_mru;
  for (const MatchBinding& binding : matches) {
    ++result.num_structural_matches;
    result.num_instances += CountMatch(binding, &result, &window_mru);
  }
  return result;
}

InstanceCounter::Result InstanceCounter::Run() const {
  StructuralMatcher matcher(graph_, motif_);
  return RunOnMatches(matcher.FindAllMatches());
}

}  // namespace flowmotif
