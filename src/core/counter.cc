#include "core/counter.h"

#include <unordered_map>

#include "core/sliding_window.h"
#include "util/logging.h"

namespace flowmotif {

namespace {

/// Counting state for one window of one match.
struct WindowCounter {
  const std::vector<const EdgeSeries*>* series;
  Window window;
  Flow phi;
  int num_edges;
  // memo[level] maps the first usable element index of that level's
  // series to the number of valid suffix instantiations.
  std::vector<std::unordered_map<size_t, int64_t>> memo;
  int64_t memo_hits = 0;

  int64_t Count(int level, size_t first) {
    const EdgeSeries& s = *(*series)[static_cast<size_t>(level)];
    const size_t limit = s.UpperBound(window.end);
    if (first >= limit) return 0;

    if (level == num_edges - 1) {
      // Last motif edge: one (maximal) set — everything to the window
      // end — if it clears phi.
      return s.FlowSum(first, limit - 1) >= phi ? 1 : 0;
    }

    auto& level_memo = memo[static_cast<size_t>(level)];
    if (auto it = level_memo.find(first); it != level_memo.end()) {
      ++memo_hits;
      return it->second;
    }

    const EdgeSeries& next = *(*series)[static_cast<size_t>(level) + 1];
    int64_t total = 0;
    Flow prefix_flow = 0.0;
    for (size_t j = first; j < limit; ++j) {
      prefix_flow += s.flow(j);
      const Timestamp t_j = s.time(j);
      if (j + 1 < limit) {
        // Prefix-domination: identical rule to the enumerator.
        const Timestamp t_next = s.time(j + 1);
        if (!next.HasElementInOpenClosed(t_j, t_next)) continue;
      }
      if (prefix_flow < phi) continue;  // Algorithm 1 line 16
      total += Count(level + 1, next.UpperBound(t_j));
    }
    level_memo.emplace(first, total);
    return total;
  }
};

}  // namespace

InstanceCounter::InstanceCounter(const TimeSeriesGraph& graph,
                                 const Motif& motif, Timestamp delta,
                                 Flow phi)
    : graph_(graph), motif_(motif), delta_(delta), phi_(phi) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  FLOWMOTIF_CHECK_GE(phi, 0.0);
}

int64_t InstanceCounter::CountMatch(const MatchBinding& binding,
                                    Result* result) const {
  const int m = motif_.num_edges();
  std::vector<const EdgeSeries*> series(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [src, dst] = motif_.edge(i);
    const EdgeSeries* s = graph_.FindSeries(binding[static_cast<size_t>(src)],
                                            binding[static_cast<size_t>(dst)]);
    FLOWMOTIF_CHECK(s != nullptr)
        << "binding is not a structural match of " << motif_.name();
    series[static_cast<size_t>(i)] = s;
  }

  const std::vector<Window> windows =
      ComputeProcessedWindows(*series.front(), *series.back(), delta_);
  if (result != nullptr) {
    result->num_windows += static_cast<int64_t>(windows.size());
  }

  int64_t count = 0;
  for (const Window& window : windows) {
    WindowCounter counter;
    counter.series = &series;
    counter.window = window;
    counter.phi = phi_;
    counter.num_edges = m;
    counter.memo.assign(static_cast<size_t>(m), {});
    count += counter.Count(0, series[0]->LowerBound(window.start));
    if (result != nullptr) result->memo_hits += counter.memo_hits;
  }
  return count;
}

InstanceCounter::Result InstanceCounter::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  Result result;
  for (const MatchBinding& binding : matches) {
    ++result.num_structural_matches;
    result.num_instances += CountMatch(binding, &result);
  }
  return result;
}

InstanceCounter::Result InstanceCounter::Run() const {
  StructuralMatcher matcher(graph_, motif_);
  return RunOnMatches(matcher.FindAllMatches());
}

}  // namespace flowmotif
