#include "core/sliding_window.h"

#include <limits>

namespace flowmotif {

Timestamp WindowEndSaturating(Timestamp anchor, Timestamp delta) {
  return delta > 0 &&
                 anchor > std::numeric_limits<Timestamp>::max() - delta
             ? std::numeric_limits<Timestamp>::max()
             : anchor + delta;
}

std::vector<Window> ComputeProcessedWindows(const EdgeSeries& first,
                                            const EdgeSeries& last,
                                            Timestamp delta) {
  std::vector<Window> windows;
  ComputeProcessedWindows(first, last, delta, &windows);
  return windows;
}

void ComputeProcessedWindows(const EdgeSeries& first, const EdgeSeries& last,
                             Timestamp delta, std::vector<Window>* out) {
  std::vector<Window>& windows = *out;
  windows.clear();
  // "No window processed yet" is tracked explicitly: encoding it as
  // numeric_limits::min() sentinels collided with a legal first anchor
  // at exactly that timestamp, which was then dropped as a "duplicate"
  // and whose `anchor - 1` probe underflowed.
  bool have_processed = false;
  Timestamp prev_end = 0;
  Timestamp prev_anchor = 0;

  // One monotone cursor into R(em) replaces the per-anchor binary
  // search: before the first processed window it trails the anchor (the
  // novelty rule reduces to "any element in [anchor, end]"), afterwards
  // it sits at the first element past the previous processed end ("any
  // element in (prev_end, end]"). Anchors and window ends are both
  // non-decreasing, and prev_end >= the anchor that set it, so the
  // cursor never moves backwards when the rule switches — the whole
  // scan is O(|R(e1)| + |R(em)|).
  size_t cursor = 0;

  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_processed && anchor == prev_anchor) {
      continue;  // duplicate anchor timestamp
    }
    const Timestamp end = WindowEndSaturating(anchor, delta);
    if (have_processed) {
      while (cursor < last.size() && last.time(cursor) <= prev_end) ++cursor;
    } else {
      while (cursor < last.size() && last.time(cursor) < anchor) ++cursor;
    }
    // No R(em) element remains beyond the threshold: no later anchor can
    // produce a novel window either.
    if (cursor >= last.size()) break;
    if (last.time(cursor) > end) continue;
    windows.push_back(Window{anchor, end});
    prev_end = end;
    prev_anchor = anchor;
    have_processed = true;
  }
}

void ComputeProcessedWindowsMulti(const EdgeSeries& first,
                                  const EdgeSeries& last,
                                  const std::vector<Timestamp>& deltas,
                                  std::vector<std::vector<Window>>* out) {
  const size_t n = deltas.size();
  out->resize(n);
  for (std::vector<Window>& w : *out) w.clear();
  if (n == 0) return;

  // The largest delta runs first, alone: a window needs an R(em)
  // element inside [anchor, anchor + delta], and that interval only
  // shrinks with delta, so an empty list at the maximum proves every
  // other list empty. Sweep recording calls this once per structural
  // match and most matches die exactly here — they pay one single-delta
  // scan instead of a |deltas|-wide one.
  size_t widest = 0;
  for (size_t d = 1; d < n; ++d) {
    if (deltas[d] > deltas[widest]) widest = d;
  }
  ComputeProcessedWindows(first, last, deltas[widest], &(*out)[widest]);
  if (n == 1 || (*out)[widest].empty()) return;

  // Per-delta copies of the single-delta scan's state (one contiguous
  // struct per delta — the inner loop touches every field of each);
  // the anchor walk and the R(em) reads are shared across all of them.
  // `done` mirrors the single-delta early break (cursor ran off R(em));
  // the shared loop stops once every delta is done. The state lives in
  // a small stack buffer: this runs once per structural match, and a
  // heap vector here was a measurable slice of sweep recording.
  struct DeltaScan {
    Timestamp delta;
    Timestamp prev_end;
    Timestamp prev_anchor;
    size_t cursor;
    size_t list;
    bool have;
    bool done;
  };
  constexpr size_t kInlineDeltas = 15;
  DeltaScan inline_scans[kInlineDeltas];
  std::vector<DeltaScan> heap_scans;
  DeltaScan* scans = inline_scans;
  const size_t num_scans = n - 1;  // `widest` is already done
  if (num_scans > kInlineDeltas) {
    heap_scans.resize(num_scans);
    scans = heap_scans.data();
  }
  for (size_t d = 0, k = 0; d < n; ++d) {
    if (d == widest) continue;
    scans[k++] = DeltaScan{deltas[d], 0, 0, 0, d, false, false};
  }
  size_t num_done = 0;
  const size_t last_size = last.size();
  for (size_t i = 0; i < first.size() && num_done < num_scans; ++i) {
    const Timestamp anchor = first.time(i);
    for (size_t k = 0; k < num_scans; ++k) {
      DeltaScan& s = scans[k];
      if (s.done) continue;
      if (s.have && anchor == s.prev_anchor) continue;
      const Timestamp end = WindowEndSaturating(anchor, s.delta);
      size_t c = s.cursor;
      if (s.have) {
        while (c < last_size && last.time(c) <= s.prev_end) ++c;
      } else {
        while (c < last_size && last.time(c) < anchor) ++c;
      }
      s.cursor = c;
      if (c >= last_size) {
        s.done = true;
        ++num_done;
        continue;
      }
      if (last.time(c) > end) continue;
      (*out)[s.list].push_back(Window{anchor, end});
      s.prev_end = end;
      s.prev_anchor = anchor;
      s.have = true;
    }
  }
}

void AdvanceProcessedWindows(const EdgeSeries& first, const EdgeSeries& last,
                             Timestamp delta, Timestamp settle_before,
                             WindowScanState* state,
                             std::vector<Window>* settled,
                             std::vector<Window>* hot) {
  hot->clear();
  const size_t num_anchors = first.size();
  const size_t num_last = last.size();

  // Settled phase: the batch loop of ComputeProcessedWindows, mutating
  // the persistent state, stopping at the first anchor whose window end
  // reaches settle_before (ends are non-decreasing in anchor order, so
  // the anchors split into a clean settled prefix / hot suffix). Two
  // deviations from the batch loop, both final for settled anchors:
  // running the R(em) cursor off the series is a per-anchor skip rather
  // than a scan-wide break (later hot anchors may gain elements in a
  // future epoch; this anchor cannot — everything with time <= its end
  // is already here), and duplicate-anchor skips advance anchor_idx
  // permanently.
  size_t i = state->anchor_idx;
  for (; i < num_anchors; ++i) {
    const Timestamp anchor = first.time(i);
    const Timestamp end = WindowEndSaturating(anchor, delta);
    if (end >= settle_before) break;
    if (state->have_processed && anchor == state->prev_anchor) continue;
    size_t c = state->em_cursor;
    if (state->have_processed) {
      while (c < num_last && last.time(c) <= state->prev_end) ++c;
    } else {
      while (c < num_last && last.time(c) < anchor) ++c;
    }
    state->em_cursor = c;
    if (c >= num_last || last.time(c) > end) continue;
    settled->push_back(Window{anchor, end});
    state->prev_end = end;
    state->prev_anchor = anchor;
    state->have_processed = true;
  }
  state->anchor_idx = i;

  // Hot phase: replay the rest of the scan on a throwaway copy. Here
  // the batch early-break is restored verbatim — it only prunes work
  // the next call redoes anyway.
  WindowScanState s = *state;
  for (; i < num_anchors; ++i) {
    const Timestamp anchor = first.time(i);
    if (s.have_processed && anchor == s.prev_anchor) continue;
    const Timestamp end = WindowEndSaturating(anchor, delta);
    size_t c = s.em_cursor;
    if (s.have_processed) {
      while (c < num_last && last.time(c) <= s.prev_end) ++c;
    } else {
      while (c < num_last && last.time(c) < anchor) ++c;
    }
    s.em_cursor = c;
    if (c >= num_last) break;
    if (last.time(c) > end) continue;
    hot->push_back(Window{anchor, end});
    s.prev_end = end;
    s.prev_anchor = anchor;
    s.have_processed = true;
  }
}

std::vector<Window> ComputeAllWindows(const EdgeSeries& first,
                                      Timestamp delta) {
  std::vector<Window> windows;
  Timestamp prev_anchor = 0;
  bool have_prev = false;
  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_prev && anchor == prev_anchor) continue;
    windows.push_back(Window{anchor, WindowEndSaturating(anchor, delta)});
    prev_anchor = anchor;
    have_prev = true;
  }
  return windows;
}

}  // namespace flowmotif
