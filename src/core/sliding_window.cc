#include "core/sliding_window.h"

#include <limits>

namespace flowmotif {

std::vector<Window> ComputeProcessedWindows(const EdgeSeries& first,
                                            const EdgeSeries& last,
                                            Timestamp delta) {
  std::vector<Window> windows;
  Timestamp prev_end = std::numeric_limits<Timestamp>::min();
  Timestamp prev_anchor = std::numeric_limits<Timestamp>::min();

  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (anchor == prev_anchor) continue;  // duplicate anchor timestamp
    const Timestamp end = anchor + delta;
    // Novelty rule: the window must contain an R(em) element later than
    // the previous processed window's end. For the first window this
    // reduces to "contains any R(em) element within [anchor, end]".
    const Timestamp lo =
        prev_end == std::numeric_limits<Timestamp>::min()
            ? anchor - 1  // include elements at exactly `anchor`
            : prev_end;
    if (!last.HasElementInOpenClosed(lo, end)) continue;
    windows.push_back(Window{anchor, end});
    prev_end = end;
    prev_anchor = anchor;
  }
  return windows;
}

std::vector<Window> ComputeAllWindows(const EdgeSeries& first,
                                      Timestamp delta) {
  std::vector<Window> windows;
  Timestamp prev_anchor = std::numeric_limits<Timestamp>::min();
  bool have_prev = false;
  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_prev && anchor == prev_anchor) continue;
    windows.push_back(Window{anchor, anchor + delta});
    prev_anchor = anchor;
    have_prev = true;
  }
  return windows;
}

}  // namespace flowmotif
