#include "core/sliding_window.h"

namespace flowmotif {

std::vector<Window> ComputeProcessedWindows(const EdgeSeries& first,
                                            const EdgeSeries& last,
                                            Timestamp delta) {
  std::vector<Window> windows;
  // "No window processed yet" is tracked explicitly: encoding it as
  // numeric_limits::min() sentinels collided with a legal first anchor
  // at exactly that timestamp, which was then dropped as a "duplicate"
  // and whose `anchor - 1` probe underflowed.
  bool have_processed = false;
  Timestamp prev_end = 0;
  Timestamp prev_anchor = 0;

  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_processed && anchor == prev_anchor) {
      continue;  // duplicate anchor timestamp
    }
    const Timestamp end = anchor + delta;
    // Novelty rule: the window must contain an R(em) element later than
    // the previous processed window's end. For the first window this
    // reduces to "contains any R(em) element within [anchor, end]" —
    // queried closed so the minimum anchor needs no `anchor - 1`.
    const bool has_new = have_processed
                             ? last.HasElementInOpenClosed(prev_end, end)
                             : last.HasElementInClosed(anchor, end);
    if (!has_new) continue;
    windows.push_back(Window{anchor, end});
    prev_end = end;
    prev_anchor = anchor;
    have_processed = true;
  }
  return windows;
}

std::vector<Window> ComputeAllWindows(const EdgeSeries& first,
                                      Timestamp delta) {
  std::vector<Window> windows;
  Timestamp prev_anchor = 0;
  bool have_prev = false;
  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_prev && anchor == prev_anchor) continue;
    windows.push_back(Window{anchor, anchor + delta});
    prev_anchor = anchor;
    have_prev = true;
  }
  return windows;
}

}  // namespace flowmotif
