#include "core/sliding_window.h"

#include <limits>

namespace flowmotif {

Timestamp WindowEndSaturating(Timestamp anchor, Timestamp delta) {
  return delta > 0 &&
                 anchor > std::numeric_limits<Timestamp>::max() - delta
             ? std::numeric_limits<Timestamp>::max()
             : anchor + delta;
}

std::vector<Window> ComputeProcessedWindows(const EdgeSeries& first,
                                            const EdgeSeries& last,
                                            Timestamp delta) {
  std::vector<Window> windows;
  ComputeProcessedWindows(first, last, delta, &windows);
  return windows;
}

void ComputeProcessedWindows(const EdgeSeries& first, const EdgeSeries& last,
                             Timestamp delta, std::vector<Window>* out) {
  std::vector<Window>& windows = *out;
  windows.clear();
  // "No window processed yet" is tracked explicitly: encoding it as
  // numeric_limits::min() sentinels collided with a legal first anchor
  // at exactly that timestamp, which was then dropped as a "duplicate"
  // and whose `anchor - 1` probe underflowed.
  bool have_processed = false;
  Timestamp prev_end = 0;
  Timestamp prev_anchor = 0;

  // One monotone cursor into R(em) replaces the per-anchor binary
  // search: before the first processed window it trails the anchor (the
  // novelty rule reduces to "any element in [anchor, end]"), afterwards
  // it sits at the first element past the previous processed end ("any
  // element in (prev_end, end]"). Anchors and window ends are both
  // non-decreasing, and prev_end >= the anchor that set it, so the
  // cursor never moves backwards when the rule switches — the whole
  // scan is O(|R(e1)| + |R(em)|).
  size_t cursor = 0;

  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_processed && anchor == prev_anchor) {
      continue;  // duplicate anchor timestamp
    }
    const Timestamp end = WindowEndSaturating(anchor, delta);
    if (have_processed) {
      while (cursor < last.size() && last.time(cursor) <= prev_end) ++cursor;
    } else {
      while (cursor < last.size() && last.time(cursor) < anchor) ++cursor;
    }
    // No R(em) element remains beyond the threshold: no later anchor can
    // produce a novel window either.
    if (cursor >= last.size()) break;
    if (last.time(cursor) > end) continue;
    windows.push_back(Window{anchor, end});
    prev_end = end;
    prev_anchor = anchor;
    have_processed = true;
  }
}

std::vector<Window> ComputeAllWindows(const EdgeSeries& first,
                                      Timestamp delta) {
  std::vector<Window> windows;
  Timestamp prev_anchor = 0;
  bool have_prev = false;
  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_prev && anchor == prev_anchor) continue;
    windows.push_back(Window{anchor, WindowEndSaturating(anchor, delta)});
    prev_anchor = anchor;
    have_prev = true;
  }
  return windows;
}

}  // namespace flowmotif
