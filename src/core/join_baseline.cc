#include "core/join_baseline.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/sliding_window.h"
#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

/// One step-1 quintuple: a contiguous run [begin, end) of a pair's series
/// (u and v are implied by the pair index).
struct Quint {
  size_t begin;
  size_t end;  // exclusive
};

/// A sub-motif instance covering the first `level+1` motif edges.
struct Partial {
  MatchBinding binding;               // -1 for still-unbound motif nodes
  std::vector<std::pair<size_t, Quint>> slices;  // (pair index, run)
  Timestamp anchor = 0;               // time of the first S1 element
  Timestamp last_time = 0;            // time of the last element so far
};

/// Canonical edge-sets are *time-closed* element ranges: a run must not
/// end between two equal-timestamp elements (they always travel
/// together).
bool SplitsDuplicateAtEnd(const EdgeSeries& series, const Quint& q) {
  return q.end < series.size() &&
         series.time(q.end) == series.time(q.end - 1);
}

/// The contiguous group of quintuples starting exactly at `begin`.
/// Step 1 emits quintuples with non-decreasing `begin` (the anchor loop
/// ascends), so the group is one binary-searched range — the join probe
/// that used to scan the pair's whole table.
std::pair<const Quint*, const Quint*> QuintGroupAt(
    const std::vector<Quint>& quints, size_t begin) {
  const Quint* first = std::partition_point(
      quints.data(), quints.data() + quints.size(),
      [begin](const Quint& q) { return q.begin < begin; });
  const Quint* last = first;
  while (last != quints.data() + quints.size() && last->begin == begin) {
    ++last;
  }
  return {first, last};
}

}  // namespace

JoinMotifEnumerator::JoinMotifEnumerator(const TimeSeriesGraph& graph,
                                         const Motif& motif, Timestamp delta,
                                         Flow phi,
                                         SharedWindowCache* window_cache)
    : graph_(graph),
      motif_(motif),
      delta_(delta),
      phi_(phi),
      cache_(window_cache) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  FLOWMOTIF_CHECK_GE(phi, 0.0);
  FLOWMOTIF_CHECK(motif.is_path())
      << "the join baseline is defined for spanning-path motifs (as in the "
         "paper); use FlowMotifEnumerator for general motifs";
  if (window_cache != nullptr) {
    FLOWMOTIF_CHECK_EQ(window_cache->delta(), delta)
        << "shared window cache bound to a different delta";
  }
}

JoinMotifEnumerator::Result JoinMotifEnumerator::Run(
    const JoinVisitor& visitor) const {
  Result result;
  WallTimer timer;
  const int m = motif_.num_edges();

  // ---- Step 1: per-pair quintuple tables. -------------------------------
  // The duration limit per anchor i — one past the last element within
  // [time(i), time(i)+delta] — is non-decreasing in i, so one galloping
  // cursor per series replaces the per-anchor rescan.
  std::vector<std::vector<Quint>> quints(
      static_cast<size_t>(graph_.num_pairs()));
  for (size_t p = 0; p < static_cast<size_t>(graph_.num_pairs()); ++p) {
    const EdgeSeries& series = graph_.pair(p).series;
    size_t duration_limit = 0;
    for (size_t i = 0; i < series.size(); ++i) {
      duration_limit = series.AdvanceUpperBound(
          duration_limit, WindowEndSaturating(series.time(i), delta_));
      for (size_t j = i; j < duration_limit; ++j) {
        if (series.FlowSum(i, j) >= phi_) {
          quints[p].push_back(Quint{i, j + 1});
        }
      }
    }
    result.num_quintuples += static_cast<int64_t>(quints[p].size());
  }

  // ---- Seed: every quintuple is a candidate instance of sub-motif e1. ---
  // Canonical S1 runs start at the first occurrence of their anchor
  // timestamp (the enumerator's window starts *at* the anchor element).
  const auto [e1_src, e1_dst] = motif_.edge(0);
  std::vector<Partial> frontier;
  for (size_t p = 0; p < quints.size(); ++p) {
    const TimeSeriesGraph::PairEdge& pe = graph_.pair(p);
    if (pe.src == pe.dst) continue;  // motif nodes bind injectively
    const EdgeSeries& series = pe.series;
    for (const Quint& q : quints[p]) {
      if (q.begin > 0 && series.time(q.begin - 1) == series.time(q.begin)) {
        continue;  // not the first occurrence of the anchor timestamp
      }
      if (m > 1 && SplitsDuplicateAtEnd(series, q)) continue;
      if (m == 1) {
        // Single-edge motif: the run must already extend to the window
        // end (handled below by the completion filter), so defer nothing.
      }
      Partial partial;
      partial.binding.assign(static_cast<size_t>(motif_.num_nodes()), -1);
      partial.binding[static_cast<size_t>(e1_src)] = pe.src;
      partial.binding[static_cast<size_t>(e1_dst)] = pe.dst;
      partial.slices.emplace_back(p, q);
      partial.anchor = series.time(q.begin);
      partial.last_time = series.time(q.end - 1);
      frontier.push_back(std::move(partial));
    }
  }
  result.num_partials += static_cast<int64_t>(frontier.size());

  // ---- Steps 2..m: join the frontier with the next edge's quintuples. ---
  for (int level = 1; level < m; ++level) {
    const auto [src_node, dst_node] = motif_.edge(level);
    const bool is_last = level == m - 1;
    std::vector<Partial> next_frontier;

    for (const Partial& partial : frontier) {
      const VertexId from =
          partial.binding[static_cast<size_t>(src_node)];
      FLOWMOTIF_CHECK_GE(from, 0);
      const VertexId bound_to =
          partial.binding[static_cast<size_t>(dst_node)];

      const size_t p_begin = graph_.OutBegin(from);
      const size_t p_end = graph_.OutEnd(from);
      for (size_t p = p_begin; p < p_end; ++p) {
        const TimeSeriesGraph::PairEdge& pe = graph_.pair(p);
        if (bound_to >= 0) {
          if (pe.dst != bound_to) continue;
        } else {
          // Injectivity for a newly bound motif node.
          bool used = false;
          for (VertexId b : partial.binding) {
            if (b == pe.dst) {
              used = true;
              break;
            }
          }
          if (used) continue;
        }

        const EdgeSeries& series = pe.series;
        const Timestamp window_end =
            WindowEndSaturating(partial.anchor, delta_);
        // Canonical start: the run begins at the first element after the
        // previous edge's split.
        const size_t canonical_begin = series.UpperBound(partial.last_time);
        // Canonical end for the last motif edge: every element up to the
        // window end is taken.
        const size_t canonical_end = series.UpperBound(window_end);
        // The previous edge's run must not be extendable before this
        // run's first element (prefix-domination).
        const EdgeSeries& prev_series =
            graph_.pair(partial.slices.back().first).series;

        // Only the quintuple group anchored at the canonical start can
        // join; everything else used to be filtered one-by-one.
        const auto [group_begin, group_end] =
            QuintGroupAt(quints[p], canonical_begin);
        for (const Quint* qp = group_begin; qp != group_end; ++qp) {
          const Quint& q = *qp;
          const Timestamp t_first = series.time(q.begin);
          const Timestamp t_last = series.time(q.end - 1);
          if (t_first <= partial.last_time) continue;   // strict time order
          if (t_last > window_end) continue;            // duration bound
          if (is_last && q.end != canonical_end) continue;
          if (!is_last && SplitsDuplicateAtEnd(series, q)) continue;
          if (prev_series.HasElementInOpenClosed(partial.last_time,
                                                 t_first - 1)) {
            continue;  // a longer previous run dominates this combination
          }

          Partial next = partial;
          if (bound_to < 0) {
            next.binding[static_cast<size_t>(dst_node)] = pe.dst;
          }
          next.slices.emplace_back(p, q);
          next.last_time = t_last;
          next_frontier.push_back(std::move(next));
        }
      }
    }
    frontier = std::move(next_frontier);
    result.num_partials += static_cast<int64_t>(frontier.size());
  }

  // ---- Completion: single-edge motifs defer the window-end filter. ------
  if (m == 1) {
    std::vector<Partial> kept;
    for (const Partial& partial : frontier) {
      const auto& [p, q] = partial.slices[0];
      const EdgeSeries& series = graph_.pair(p).series;
      if (q.end ==
          series.UpperBound(WindowEndSaturating(partial.anchor, delta_))) {
        kept.push_back(partial);
      }
    }
    frontier = std::move(kept);
  }

  // ---- Anchor novelty: keep only instances whose anchor is a processed
  // window position for their (e1, em) series pair. Window lists come
  // from the shared per-query cache (or a run-local one), so surviving
  // partials sharing a pair — the common case — pay one two-pointer
  // scan total, and the two-phase engine sharing the query's cache
  // reuses the very same lists. -----------------------------------------
  SharedWindowCache local_cache(delta_);
  SharedWindowCache* cache = cache_ != nullptr ? cache_ : &local_cache;
  WindowListMru window_mru;  // fallback if the cache saturates
  for (const Partial& partial : frontier) {
    const EdgeSeries& first_series =
        graph_.pair(partial.slices.front().first).series;
    const EdgeSeries& last_series =
        graph_.pair(partial.slices.back().first).series;
    const std::vector<Window>& windows =
        window_mru.GetOrCompute(cache, first_series, last_series, delta_);
    const auto window_at = std::partition_point(
        windows.begin(), windows.end(), [&partial](const Window& w) {
          return w.start < partial.anchor;
        });
    if (window_at == windows.end() || window_at->start != partial.anchor) {
      continue;
    }

    ++result.num_instances;
    if (visitor) {
      MotifInstance instance;
      instance.binding = partial.binding;
      instance.edge_sets.resize(partial.slices.size());
      for (size_t i = 0; i < partial.slices.size(); ++i) {
        const auto& [p, q] = partial.slices[i];
        const EdgeSeries& series = graph_.pair(p).series;
        for (size_t idx = q.begin; idx < q.end; ++idx) {
          instance.edge_sets[i].push_back(series.at(idx));
        }
      }
      if (!visitor(instance)) break;
    }
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace flowmotif
