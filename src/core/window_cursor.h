#ifndef FLOWMOTIF_CORE_WINDOW_CURSOR_H_
#define FLOWMOTIF_CORE_WINDOW_CURSOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/motif.h"
#include "core/sliding_window.h"
#include "graph/edge_series.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"

namespace flowmotif {

/// Shared incremental-window machinery of the three per-window
/// evaluation paths — the top-1 DP (core/dp.cc), the counting recursion
/// (core/counter.cc), and the join baseline (core/join_baseline.cc).
///
/// A match's processed windows come out of ComputeProcessedWindows
/// ordered by anchor, so both window bounds are non-decreasing across
/// the sweep. Everything here leans on that monotonicity: cursors only
/// ever advance (galloping, O(log gap) in the distance moved), so a
/// full window sweep pays O(series length) total instead of one binary
/// search per window — or, before PR 3/4, per recursion call.

/// True iff some motif node is absent from the endpoints of the first
/// and last motif edges. Only then can two distinct bindings share the
/// same (first, last) series pair — otherwise the two series pointers
/// pin every bound vertex and a window cache keyed on the pair could
/// never hit within one graph.
bool MotifHasInteriorNode(const Motif& motif);

class QueryControl;
class SharedWindowCache;

/// True when window memoization can pay off for this (cache, motif)
/// combination: the motif has an interior node (so a (first, last) pair
/// repeats across matches of one graph), or the cache is declared
/// cross-graph (the significance ensemble re-presents every pair once
/// per flow-permuted view, so even a pair that is unique within one
/// graph is requested N+1 times under the same timestamp-identity key),
/// or the cache falls through to a cross-query tier (a serving layer
/// re-presents every pair once per repeated query, which makes even
/// within-one-graph-unique pairs worth publishing).
bool ShouldUseWindowCache(const SharedWindowCache* cache, const Motif& motif);

/// Resolves the cache a per-window evaluation path should read through
/// — the one policy shared by the enumerator, counter, and DP searcher:
/// the injected cache when ShouldUseWindowCache passes (its delta must
/// equal `delta`); else a privately owned cache, allocated into
/// `*owned`, iff the motif has an interior node; else null (windows
/// are computed per match). `owned` must outlive the returned pointer.
SharedWindowCache* ResolveWindowCache(
    SharedWindowCache* injected, const Motif& motif, Timestamp delta,
    std::unique_ptr<SharedWindowCache>* owned);

/// Resolves one structural match's per-level series: the motif's
/// label-ordered edges mapped through `binding` via graph.FindSeries.
/// Shared by every per-match evaluation path (enumerator, counter, DP,
/// skeleton recorder) so the binding-to-series contract — and its
/// not-a-match check — cannot drift between them. `series` is resized
/// to the motif's edge count.
void ResolveMatchSeries(const TimeSeriesGraph& graph, const Motif& motif,
                        const MatchBinding& binding,
                        std::vector<const EdgeSeries*>* series);

/// Per-series sliding cursors over one match's window sweep:
/// lo[k] = LowerBound(window.start), hi[k] = UpperBound(window.end) of
/// the current window on the k-th motif edge's series. Invariants: both
/// are non-decreasing across a match's windows (starts and ends are
/// sorted), and lo[k] <= hi[k] for every window.
class WindowCursorSet {
 public:
  /// Binds the cursors to one match's resolved series and rewinds them
  /// to the series fronts. `series` must outlive the next Reset.
  void Reset(const std::vector<const EdgeSeries*>& series) {
    series_ = &series;
    lo_.assign(series.size(), 0);
    hi_.assign(series.size(), 0);
  }

  /// Slides every cursor to `window`. Windows must be visited in
  /// non-decreasing (start, end) order.
  void AdvanceTo(const Window& window) {
    const std::vector<const EdgeSeries*>& series = *series_;
    for (size_t k = 0; k < series.size(); ++k) {
      lo_[k] = series[k]->AdvanceLowerBound(lo_[k], window.start);
      hi_[k] = series[k]->AdvanceUpperBound(hi_[k], window.end);
    }
  }

  size_t lo(size_t k) const { return lo_[k]; }
  size_t hi(size_t k) const { return hi_[k]; }
  const std::vector<size_t>& lo_indices() const { return lo_; }
  const std::vector<size_t>& hi_indices() const { return hi_; }
  size_t num_series() const { return lo_.size(); }

 private:
  const std::vector<const EdgeSeries*>* series_ = nullptr;
  std::vector<size_t> lo_;
  std::vector<size_t> hi_;
};

/// Union timeline t1..t_tau of the current window: a k-way merge of the
/// per-series sorted slices [lo, hi) into a reusable buffer (no
/// push-all + sort + unique). The motif has a handful of edges, so the
/// linear min-scan beats a heap.
class UnionTimeline {
 public:
  void Build(const std::vector<const EdgeSeries*>& series,
             const WindowCursorSet& cursors);

  const std::vector<Timestamp>& times() const { return times_; }
  size_t size() const { return times_.size(); }
  Timestamp operator[](size_t i) const { return times_[i]; }

 private:
  std::vector<Timestamp> times_;
  std::vector<size_t> heads_;  // k-way merge heads
};

/// Flat m x tau per-series timeline offsets, row stride tau:
/// lower(k, i) / upper(k, i) are series k's LowerBound / UpperBound of
/// timeline[i], filled by one monotone two-cursor sweep per row. They
/// turn every flow([tj,ti],k) of Eq. 2 — and the DP traceback's
/// edge-set ranges — into an O(1)
/// FlowInIndexRange(lower(k,j), upper(k,i)) prefix subtraction.
///
/// The sweeps clamp at [lo, hi]: timeline entries lie inside
/// [start, end], so the global bounds can never fall outside the cursor
/// range.
class TimelineOffsets {
 public:
  void Build(const std::vector<const EdgeSeries*>& series,
             const WindowCursorSet& cursors, const UnionTimeline& timeline);

  size_t lower(size_t k, size_t i) const { return lower_[k * tau_ + i]; }
  size_t upper(size_t k, size_t i) const { return upper_[k * tau_ + i]; }
  const size_t* lower_row(size_t k) const { return lower_.data() + k * tau_; }
  const size_t* upper_row(size_t k) const { return upper_.data() + k * tau_; }

 private:
  std::vector<size_t> lower_;
  std::vector<size_t> upper_;
  size_t tau_ = 0;
};

/// One-entry most-recently-used window-list fallback for when no
/// SharedWindowCache serves a pair (memoization gated off, cache
/// saturated, or the pair declined). Matches arrive in runs sharing a
/// (first, last) pair — the P1 DFS varies interior vertices innermost —
/// so remembering the last computed list keeps those run-locality hits
/// even without (or beyond) the shared cache. Keyed on the series'
/// timestamp identities (like the shared cache), so a run that crosses
/// from one flow-permuted view to the next keeps its hit. Not
/// thread-safe: one per worker/scratch.
class WindowListMru {
 public:
  /// Returns the processed-window list for (first, last): from `cache`
  /// when available, else from this MRU slot (recomputing only when the
  /// pair changed). The reference is valid until the next call.
  /// `charge` (may be null) is billed for every window list this call
  /// materializes — whether the cache builds it or the MRU recomputes
  /// it privately — at site "cache.windows", so WorkBudget window/memory
  /// caps hold uniformly, not only for cache-eligible motifs.
  const std::vector<Window>& GetOrCompute(SharedWindowCache* cache,
                                          const EdgeSeries& first,
                                          const EdgeSeries& last,
                                          Timestamp delta,
                                          QueryControl* charge = nullptr);

 private:
  StorageIdentity first_id_;
  StorageIdentity last_id_;
  std::vector<Window> windows_;
};

/// Per-query shared cache of processed-window lists, keyed on the
/// (first, last) *timestamp-storage identities* of the series pair
/// (EdgeSeries::timestamp_identity()) — built once per pair and served
/// to every evaluation path (DP, counter, enumerator, join) and every
/// worker thread of the query.
///
/// Window lists depend only on timestamps and delta, and the identity is
/// shared by a series and all its flow-permuted views, so one cache is
/// warm across a whole significance ensemble: lists computed on the real
/// graph are hit by every randomized view. Construct with
/// `cross_graph = true` to record that intent — ShouldUseWindowCache
/// then enables memoization even for motifs whose pairs never repeat
/// within one graph.
///
/// Reads are lock-free: entries are immutable once published, inserted
/// at bucket heads with a CAS, and never moved or freed until the cache
/// is destroyed, so a reader's pointer stays valid for the cache's
/// lifetime and lookups are plain acquire loads. The size cap saturates
/// instead of evicting — eviction would invalidate pointers concurrent
/// readers still hold; past the cap, Get returns nullptr and callers
/// compute into their own buffer (correctness never depends on a hit).
///
/// Keying on storage identities means a cache must never outlive the
/// timestamp storage it indexes, and must never be shared across graphs
/// built independently (their identities are distinct, so entries would
/// just never hit) — create one cache per (graph family, delta) query,
/// as QueryEngine and SignificanceAnalyzer do. Identities carry an
/// epoch stamp (graph/types.h), so under an appending EpochLog a cache
/// held across seals keeps hitting for series untouched by the seal,
/// misses (never aliases) for resealed dirty series, and stays immune
/// to freed-storage address reuse.
///
/// Generational mode (MakeGenerational) is the long-lived-tier variant:
/// instead of one saturating entry pool it keeps a two-generation clock
/// (current + previous). A saturated insert *rotates* — previous is
/// dropped from the publication path, current becomes previous, a fresh
/// current takes inserts — so a tier that outlives any single workload
/// keeps admitting recent pairs instead of freezing on its first
/// max_entries. Hits in the previous generation are promoted (copied)
/// into the current one, which is what makes it a clock: an entry
/// survives rotation iff it was touched during the current generation's
/// lifetime. Published pointers stay valid because generations are
/// shared_ptr-owned and readers access them only through a TierLease
/// that retains every generation it ever served pointers from — a
/// dropped generation is freed when the last leased reader drains, not
/// at rotation. Plain Get() is for non-generational caches only;
/// generational readers go through AcquireTierLease + LeasedGet (the
/// per-query cache does this automatically in set_fallback_tier / its
/// tier fallthrough).
class SharedWindowCache {
 private:
  struct Node;
  struct Generation;

 public:
  static constexpr size_t kDefaultMaxEntries = 1024;

  explicit SharedWindowCache(Timestamp delta,
                             size_t max_entries = kDefaultMaxEntries,
                             bool cross_graph = false);
  ~SharedWindowCache();
  SharedWindowCache(const SharedWindowCache&) = delete;
  SharedWindowCache& operator=(const SharedWindowCache&) = delete;

  /// A generational-replacement cache holding at most
  /// `max_entries_per_generation` entries per generation (so up to 2x
  /// that total between rotations). Readers must use AcquireTierLease +
  /// LeasedGet; plain Get() aborts. Intended for the serving layer's
  /// cross-query tier — per-query caches stay non-generational (their
  /// lifetime is one query; saturation is the cheaper discipline).
  static std::unique_ptr<SharedWindowCache> MakeGenerational(
      Timestamp delta,
      size_t max_entries_per_generation = kDefaultMaxEntries);

  /// A reader's pin on the generations it may receive pointers from.
  /// Movable, not copyable; destroying the lease (after every pointer
  /// obtained through it is dead) is what lets dropped generations free.
  /// One lease is single-reader state — guard it externally if shared
  /// across threads (the per-query cache does).
  class TierLease {
   public:
    TierLease() = default;
    TierLease(TierLease&&) noexcept = default;
    TierLease& operator=(TierLease&&) noexcept = default;
    TierLease(const TierLease&) = delete;
    TierLease& operator=(const TierLease&) = delete;

    bool active() const { return cur_ != nullptr; }

   private:
    friend class SharedWindowCache;
    std::shared_ptr<Generation> cur_;
    std::shared_ptr<Generation> prev_;
    /// Generations this lease handed out pointers from and has since
    /// moved past (rotation refreshes). Kept alive until the lease dies.
    std::vector<std::shared_ptr<Generation>> retained_;
  };

  /// Returns the processed-window list for (first, last), computing and
  /// publishing it on first request. Returns nullptr when the cache is
  /// saturated and the pair is absent. The returned pointer stays valid
  /// until the cache is destroyed. Two series with equal
  /// timestamp_identity() (a series and its flow-permuted views) share
  /// one entry.
  ///
  /// `charge` overrides the attached query control for budget
  /// accounting on this call (a cross-query tier serves many controls
  /// at once, so the per-query control must ride the call, not the
  /// cache); null falls back to set_query_control's pointer.
  ///
  /// Non-generational caches only — generational readers hold a
  /// TierLease and call LeasedGet (checked).
  const std::vector<Window>* Get(const EdgeSeries& first,
                                 const EdgeSeries& last,
                                 QueryControl* charge = nullptr);

  /// Opens a lease on the current generation pair. Generational caches
  /// only (checked). Cheap: two shared_ptr copies under the rotation
  /// lock.
  TierLease AcquireTierLease();

  /// Generational-mode Get through `lease`: hit in the leased current
  /// generation, else hit-and-promote from the leased previous one,
  /// else compute and insert — rotating generations (and refreshing the
  /// lease) when the current generation is saturated, so a long-lived
  /// tier never stops admitting. Returns nullptr only when
  /// max_entries() == 0. Pointer validity matches the lease's lifetime,
  /// not the cache's generations.
  const std::vector<Window>* LeasedGet(TierLease* lease,
                                       const EdgeSeries& first,
                                       const EdgeSeries& last,
                                       QueryControl* charge = nullptr);

  /// Rebuilds the generation pair keeping only entries whose two
  /// storage identities satisfy `live` (generational caches only,
  /// checked). The serving layer calls this after a seal with "is this
  /// identity reachable from the live snapshot", so entries keyed on
  /// resealed (freed) storage can never be served to a post-seal query
  /// and tier memory does not grow monotonically across seals.
  /// Existing leases keep their old generations (and pointer validity)
  /// until they drain; entries inserted concurrently with the sweep may
  /// be lost (recomputed on next request), never corrupted.
  void SweepGenerations(const std::function<bool(const StorageIdentity&)>& live);

  Timestamp delta() const { return delta_; }
  size_t max_entries() const { return max_entries_; }
  bool generational() const { return generational_; }

  /// Number of generation rotations saturated inserts have forced.
  int64_t num_rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

  /// Attaches the owning query's lifecycle control: every window list
  /// this cache computes is charged against the control's WorkBudget
  /// (max_window_elements / max_memory_bytes, site "cache.windows").
  /// Call before handing the cache to workers — the pointer is read
  /// unsynchronized on the compute path. The control must outlive the
  /// queries run through this cache; pass nullptr to detach.
  void set_query_control(QueryControl* control) { control_ = control; }

  /// Attaches a second-level cross-query cache this one falls through
  /// to on a miss (serve/QueryService's per-delta tier). The tier must
  /// share this cache's delta, outlive it, and never carry its own
  /// query control — budget charges ride the Get call instead. Lists
  /// the tier serves (or publishes on our behalf) are byte-identical to
  /// privately computed ones: both come out of ComputeProcessedWindows
  /// on the same timestamp storage, and tier entries are insert-only
  /// and identity-keyed exactly like ours. Call before handing the
  /// cache to workers. A generational tier is read through a lease this
  /// call acquires, so every pointer the tier serves this query stays
  /// valid until this (per-query) cache is destroyed even if the tier
  /// rotates or sweeps underneath.
  void set_fallback_tier(SharedWindowCache* tier);
  bool has_fallback_tier() const { return tier_ != nullptr; }

  /// True when this cache is intended to serve several graphs sharing
  /// timestamp storage (a flow-permutation ensemble).
  bool cross_graph() const { return cross_graph_; }

  /// Number of reserved entry slots (== published entries once all
  /// in-flight inserts finish). Never exceeds max_entries() for a
  /// non-generational cache, 2 * max_entries() for a generational one
  /// (current + previous generation).
  size_t size() const;

  /// Lookup / hit counters (relaxed; exact once concurrent Gets
  /// drained). A fallthrough that the tier answers counts as a miss
  /// here and a hit there, so a serving layer reads its tier's rate.
  int64_t num_lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  int64_t num_hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  SharedWindowCache(Timestamp delta, size_t max_entries, bool cross_graph,
                    bool generational);

  /// Finds the published entry for the pair in `gen`, or null.
  static Node* FindIn(const Generation& gen, const StorageIdentity& first_id,
                      const StorageIdentity& last_id);
  /// Reserves one entry slot in `gen`; false when saturated.
  static bool TryReserve(Generation* gen);
  /// Publishes an already-reserved `node` into `gen`, resolving racing
  /// same-key inserts (loser is deleted, winner's list returned).
  static const std::vector<Window>* InsertReserved(Generation* gen,
                                                   Node* node);
  /// Rotates if `lease` saw the newest generation saturated, then
  /// refreshes the lease to the cache's current generation pair
  /// (retaining the generations the lease moves past).
  void Rotate(TierLease* lease);

  const Timestamp delta_;
  const size_t max_entries_;
  const bool cross_graph_;
  const bool generational_;
  QueryControl* control_ = nullptr;  // budget charging; may be null
  SharedWindowCache* tier_ = nullptr;  // cross-query fallthrough; may be null

  /// Non-generational storage: one fixed saturating generation, alive
  /// for the cache's lifetime (what keeps plain Get's pointers valid).
  std::unique_ptr<Generation> base_;

  /// Generational storage: the rotation lock guards only the pair of
  /// generation pointers — lookups and inserts inside a generation stay
  /// lock-free exactly as in the non-generational case.
  mutable std::mutex gen_mu_;
  std::shared_ptr<Generation> cur_;
  std::shared_ptr<Generation> prev_;
  std::atomic<int64_t> rotations_{0};

  /// This cache's lease on its own fallback tier (generational tiers
  /// only). Guarded: a solo multithreaded run shares one per-query
  /// cache across workers; the serving layer runs queries
  /// single-threaded so the lock is uncontended there.
  std::mutex tier_lease_mu_;
  TierLease tier_lease_;

  std::atomic<int64_t> lookups_{0};
  std::atomic<int64_t> hits_{0};
};

/// Bills one freshly materialized window list against `control`'s
/// WorkBudget at site "cache.windows" — the single charging point every
/// materialization path shares (SharedWindowCache publish, WindowListMru
/// private recompute, the enumerator's per-match compute), so
/// max_window_elements / max_memory_bytes hold regardless of cache
/// eligibility. `container_bytes` adds fixed per-list overhead (e.g. a
/// cache node). Null control = no-op.
void ChargeComputedWindows(QueryControl* control, size_t num_windows,
                           size_t container_bytes);

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_WINDOW_CURSOR_H_
