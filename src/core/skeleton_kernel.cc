#include "core/skeleton_kernel.h"

namespace flowmotif {
namespace skeleton_kernel {

void EvaluateEdgeFlows(const double* prefix, const uint32_t* lo,
                       const uint32_t* hi, size_t n, double* flows) {
  for (size_t i = 0; i < n; ++i) {
    flows[i] = prefix[hi[i]] - prefix[lo[i]];
  }
}

int64_t AccumulateStates(const double* flows, double phi,
                         const uint32_t* child, const uint32_t* state_begin,
                         size_t num_states, const uint32_t* roots,
                         size_t num_roots, int64_t* values) {
  values[0] = 1;  // unit state
  for (size_t s = 1; s < num_states; ++s) {
    const size_t begin = state_begin[s];
    const size_t end = state_begin[s + 1];
    int64_t acc = 0;
    for (size_t e = begin; e < end; ++e) {
      // Branchless phi mask: the comparison becomes a 0/1 multiplier,
      // so the inner loop has no data-dependent branches to mispredict
      // and vectorizes as a compare + masked add.
      acc += static_cast<int64_t>(flows[e] >= phi) * values[child[e]];
    }
    values[s] = acc;
  }
  int64_t total = 0;
  for (size_t r = 0; r < num_roots; ++r) total += values[roots[r]];
  return total;
}

int64_t AccumulateStatesFused(const double* prefix, const uint32_t* lo,
                              const uint32_t* hi, double phi,
                              const uint32_t* child,
                              const uint32_t* state_begin, size_t num_states,
                              const uint32_t* roots, size_t num_roots,
                              int64_t* values) {
  values[0] = 1;
  for (size_t s = 1; s < num_states; ++s) {
    const size_t begin = state_begin[s];
    const size_t end = state_begin[s + 1];
    int64_t acc = 0;
    for (size_t e = begin; e < end; ++e) {
      const double flow = prefix[hi[e]] - prefix[lo[e]];
      acc += static_cast<int64_t>(flow >= phi) * values[child[e]];
    }
    values[s] = acc;
  }
  int64_t total = 0;
  for (size_t r = 0; r < num_roots; ++r) total += values[roots[r]];
  return total;
}

}  // namespace skeleton_kernel
}  // namespace flowmotif
