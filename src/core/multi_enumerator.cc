#include "core/multi_enumerator.h"

#include <utility>

#include "util/timer.h"

namespace flowmotif {

StatusOr<MultiMotifEnumerator> MultiMotifEnumerator::Create(
    const TimeSeriesGraph& graph, std::vector<Motif> motifs,
    const EnumerationOptions& options) {
  StatusOr<MultiStructuralMatcher> matcher =
      MultiStructuralMatcher::Create(graph, motifs);
  if (!matcher.ok()) return matcher.status();
  return MultiMotifEnumerator(graph, std::move(motifs), options,
                              *std::move(matcher));
}

MultiMotifEnumerator::MultiMotifEnumerator(const TimeSeriesGraph& graph,
                                           std::vector<Motif> motifs,
                                           const EnumerationOptions& options,
                                           MultiStructuralMatcher matcher)
    : graph_(graph),
      motifs_(std::move(motifs)),
      options_(options),
      matcher_(std::move(matcher)) {}

std::vector<EnumerationResult> MultiMotifEnumerator::Run(
    const Visitor& visitor) const {
  std::vector<EnumerationResult> results(motifs_.size());
  std::vector<FlowMotifEnumerator> enumerators;
  enumerators.reserve(motifs_.size());
  for (const Motif& motif : motifs_) {
    enumerators.emplace_back(graph_, motif, options_);
  }

  WallTimer total_timer;
  double phase2_seconds = 0.0;
  matcher_.FindAll([&](size_t motif_idx, const MatchBinding& binding) {
    EnumerationResult& result = results[motif_idx];
    ++result.num_structural_matches;
    WallTimer p2_timer;
    InstanceVisitor wrapped;
    if (visitor) {
      wrapped = [&visitor, motif_idx](const InstanceView& view) {
        return visitor(motif_idx, view);
      };
    }
    const bool keep_going =
        enumerators[motif_idx].EnumerateMatch(binding, wrapped, &result);
    phase2_seconds += p2_timer.ElapsedSeconds();
    result.phase2_seconds += p2_timer.ElapsedSeconds();
    return keep_going;
  });

  // The shared P1 cost cannot be attributed per motif; report the whole
  // pass's remainder on every entry so total_seconds() stays meaningful
  // for the set (callers comparing against per-motif runs should sum
  // phase2 and take phase1 once).
  const double phase1_seconds =
      std::max(0.0, total_timer.ElapsedSeconds() - phase2_seconds);
  for (EnumerationResult& result : results) {
    result.phase1_seconds = phase1_seconds;
  }
  return results;
}

}  // namespace flowmotif
