#include "core/skeleton.h"

#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "core/skeleton_kernel.h"
#include "core/sliding_window.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace flowmotif {

namespace {

constexpr uint32_t kInvalidState = std::numeric_limits<uint32_t>::max();

/// Pair-order block offsets of the flow prefix arena: pair p's series
/// contributes size + 1 prefix entries. Returns the total length.
/// Both the arena and the recorder derive offsets through this one
/// function, so their absolute indices agree by construction.
size_t BuildPrefixOffsets(const TimeSeriesGraph& graph,
                          std::vector<size_t>* offsets) {
  offsets->clear();
  offsets->reserve(static_cast<size_t>(graph.num_pairs()) + 1);
  size_t total = 0;
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    offsets->push_back(total);
    total += pe.series.size() + 1;
  }
  offsets->push_back(total);
  return total;
}

/// Recovers a bound series' pair index by stride arithmetic: every
/// series ResolveMatchSeries yields is &pair(p).series, and the pairs
/// live in one contiguous array, so the index falls out of the address
/// difference — no per-lookup hashing in the per-match recording loop.
class SeriesPairIndexer {
 public:
  explicit SeriesPairIndexer(const TimeSeriesGraph& graph)
      : pairs_begin_(reinterpret_cast<const char*>(graph.pairs().data())),
        num_pairs_(static_cast<size_t>(graph.num_pairs())) {}

  size_t operator()(const EdgeSeries* s) const {
    const size_t p =
        static_cast<size_t>(reinterpret_cast<const char*>(s) - pairs_begin_) /
        sizeof(TimeSeriesGraph::PairEdge);
    FLOWMOTIF_CHECK_LT(p, num_pairs_)
        << "match series is not part of the recorded graph";
    return p;
  }

 private:
  const char* const pairs_begin_;
  const size_t num_pairs_;
};

}  // namespace

// ---------------------------------------------------------------------------
// FlowPrefixArena
// ---------------------------------------------------------------------------

void FlowPrefixArena::EnsureLayout(const TimeSeriesGraph& graph) {
  if (topology_identity_ == graph.topology_identity()) return;
  FLOWMOTIF_CHECK(topology_identity_.storage == nullptr)
      << "FlowPrefixArena refilled from a different topology";
  const size_t total = BuildPrefixOffsets(graph, &offsets_);
  prefix_.resize(total);
  topology_identity_ = graph.topology_identity();
}

void FlowPrefixArena::FillFromGraph(const TimeSeriesGraph& graph) {
  EnsureLayout(graph);
  for (size_t p = 0; p < static_cast<size_t>(graph.num_pairs()); ++p) {
    const std::vector<double>& src = graph.pair(p).series.prefix_sums();
    std::memcpy(prefix_.data() + offsets_[p], src.data(),
                src.size() * sizeof(double));
  }
}

void FlowPrefixArena::FillFromFlows(const TimeSeriesGraph& layout_graph,
                                    const std::vector<Flow>& flows) {
  EnsureLayout(layout_graph);
  size_t cursor = 0;
  for (size_t p = 0; p < static_cast<size_t>(layout_graph.num_pairs()); ++p) {
    const size_t n = layout_graph.pair(p).series.size();
    double* block = prefix_.data() + offsets_[p];
    // Same left-to-right accumulation as EdgeSeries::RebuildPrefix, so
    // the block equals the prefix array a view carrying these flows
    // would rebuild — bit for bit.
    block[0] = 0.0;
    for (size_t i = 0; i < n; ++i) {
      block[i + 1] = block[i] + flows[cursor + i];
    }
    cursor += n;
  }
  FLOWMOTIF_CHECK_EQ(cursor, flows.size());
}

// ---------------------------------------------------------------------------
// FlowPermutationStream
// ---------------------------------------------------------------------------

FlowPermutationStream::FlowPermutationStream(const TimeSeriesGraph& graph,
                                             uint64_t seed)
    : rng_(seed) {
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      original_.push_back(pe.series.flow(i));
    }
  }
  // Rng::NextBounded's rejection threshold (-bound % bound) depends
  // only on the bound, and a Fisher-Yates pass over n flows uses the
  // fixed bound sequence n, n-1, ..., 2. Paying those divisions once
  // here (indexed by bound) instead of once per element per draw makes
  // each ensemble draw a pure Next()/swap loop.
  thresholds_.resize(original_.size() + 1, 0);
  for (uint64_t b = 2; b < thresholds_.size(); ++b) {
    thresholds_[b] = -b % b;
  }
}

void FlowPermutationStream::NextPermutationInto(std::vector<Flow>* flows) {
  // WithPermutedFlows re-collects the real flows and shuffles them with
  // the caller's RNG on every draw; copying the cached collection and
  // consuming the identical stream below makes permutation i match
  // view i of the PR 5 path for any seed.
  *flows = original_;
  if (flows->empty()) return;
  // Inlined Rng::Shuffle: the same Fisher-Yates walk with the same
  // NextBounded rejection arithmetic (threshold precomputed above), so
  // the Next() sequence consumed — and the permutation produced — is
  // bit-identical to rng_.Shuffle(flows). The significance equivalence
  // tests lock this identity against the view-based reference path.
  Flow* v = flows->data();
  for (size_t i = flows->size() - 1; i > 0; --i) {
    const uint64_t bound = i + 1;
    const uint64_t threshold = thresholds_[bound];
    uint64_t r;
    do {
      r = rng_.Next();
    } while (r < threshold);
    const size_t j = static_cast<size_t>(r % bound);
    std::swap(v[i], v[j]);
  }
}

// ---------------------------------------------------------------------------
// EnumerationSkeleton
// ---------------------------------------------------------------------------

/// One recording pass. The recursion is the counting recursion of
/// core/counter.cc with every flow consultation replaced by trace
/// emission: instead of accumulating prefix_flow and testing phi, each
/// viable slice becomes a DAG edge carrying the prefix-index pair of
/// its flow, and instead of returning counts, each (level, first)
/// returns its memoized state id. Domination probes, galloping
/// cursors, and window handling are untouched — they are timestamp-only
/// and must match the enumerator exactly for replay to be
/// byte-identical.
struct EnumerationSkeleton::Recorder {
  struct EdgeRec {
    uint32_t lo;
    uint32_t hi;
    uint32_t child;
  };

  EnumerationSkeleton* out;          // state_begin_ / roots_ sink
  std::vector<EdgeRec>* out_edges;   // AoS edge sink; Finalize splits it
  const EdgeSeries* const* series;   // per level, this match
  const size_t* lo;      // per level, LowerBound(window.start)
  const size_t* limit;   // per level, UpperBound(window.end)
  const size_t* base;    // per level, arena block offset
  int num_edges;
  size_t max_edges;
  bool over_budget = false;
  // memo[level] maps a level's first admissible index to its state id
  // (kInvalidState = no viable completion), valid within one window —
  // exactly the counting recursion's memo keyed the same way. The keys
  // are bounded by the level's series size, so the memo is a flat
  // array with a per-entry generation stamp instead of a hash map:
  // invalidating it at a window boundary is one counter bump, not an
  // O(buckets) clear, and a recording touches millions of windows.
  std::vector<std::vector<uint32_t>> memo_state;
  std::vector<std::vector<uint64_t>> memo_gen;
  uint64_t window_gen = 0;  // 0 never matches: bumped before first use
  // Per-level edge scratch: the recursion visits levels strictly
  // deeper, so level k's buffer is never aliased by a recursive call.
  std::vector<std::vector<EdgeRec>> scratch;

  /// Sizes the memo arrays for the bound series (index domain is
  /// [0, size]); stale entries stay — the generation stamp guards them.
  void BeginMatch(const std::vector<const EdgeSeries*>& bound) {
    for (size_t k = 0; k < memo_state.size(); ++k) {
      const size_t need = bound[k]->size() + 1;
      if (memo_state[k].size() < need) {
        memo_state[k].resize(need);
        memo_gen[k].resize(need, 0);
      }
    }
  }

  void BeginWindow() { ++window_gen; }

  uint32_t EmitState(int level) {
    std::vector<EdgeRec>& edges = scratch[static_cast<size_t>(level)];
    if (out_edges->size() + edges.size() > max_edges) {
      over_budget = true;
      return kInvalidState;
    }
    out_edges->insert(out_edges->end(), edges.begin(), edges.end());
    out->state_begin_.push_back(static_cast<uint32_t>(out_edges->size()));
    return static_cast<uint32_t>(out->state_begin_.size() - 2);
  }

  /// Splits the AoS edge buffer into the skeleton's SoA arrays — one
  /// linear pass at the end of a recording, so the hot emission path
  /// pays a single capacity check per state instead of three per edge.
  static void Finalize(EnumerationSkeleton* sk,
                       const std::vector<EdgeRec>& edges) {
    sk->edge_lo_.resize(edges.size());
    sk->edge_hi_.resize(edges.size());
    sk->edge_child_.resize(edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      sk->edge_lo_[i] = edges[i].lo;
      sk->edge_hi_[i] = edges[i].hi;
      sk->edge_child_[i] = edges[i].child;
    }
  }

  uint32_t RecordState(int level, size_t first) {
    if (over_budget) return kInvalidState;
    const EdgeSeries& s = *series[static_cast<size_t>(level)];
    const size_t level_limit = limit[static_cast<size_t>(level)];
    if (first >= level_limit) return kInvalidState;
    const size_t level_base = base[static_cast<size_t>(level)];

    // The recursion only recurses into deeper levels, so these slots
    // cannot be invalidated (or the arrays resized) before the writes
    // at the bottom of this call.
    uint32_t& memo_slot = memo_state[static_cast<size_t>(level)][first];
    uint64_t& gen_slot = memo_gen[static_cast<size_t>(level)][first];
    if (gen_slot == window_gen) return memo_slot;

    uint32_t state = kInvalidState;
    if (level == num_edges - 1) {
      // Last motif edge: the one maximal slice to the window end. Its
      // phi test happens at replay; the edge leads to the unit state.
      // Emitted directly — no scratch round-trip for a single edge.
      if (out_edges->size() + 1 > max_edges) {
        over_budget = true;
        return kInvalidState;
      }
      out_edges->push_back(EdgeRec{static_cast<uint32_t>(level_base + first),
                                   static_cast<uint32_t>(level_base + level_limit),
                                   0});
      out->state_begin_.push_back(static_cast<uint32_t>(out_edges->size()));
      state = static_cast<uint32_t>(out->state_begin_.size() - 2);
    } else {
      const EdgeSeries& next = *series[static_cast<size_t>(level) + 1];
      const size_t next_size = next.size();
      std::vector<EdgeRec>& edges = scratch[static_cast<size_t>(level)];
      edges.clear();
      // Same galloping domination cursor as the counting recursion;
      // see core/counter.cc for why it reproduces the enumerator's
      // HasElementInOpenClosed probe.
      size_t next_after = lo[static_cast<size_t>(level) + 1];
      for (size_t j = first; j < level_limit; ++j) {
        const Timestamp t_j = s.time(j);
        next_after = next.AdvanceUpperBound(next_after, t_j);
        if (j + 1 < level_limit) {
          const Timestamp t_next = s.time(j + 1);
          if (next_after >= next_size || next.time(next_after) > t_next) {
            continue;
          }
        }
        // No phi check here: the slice's flow is recorded as an index
        // pair and masked against phi at replay, which prunes exactly
        // the subtrees Algorithm 1 line 16 prunes (a failing prefix
        // zeroes every path through this edge).
        const uint32_t child = RecordState(level + 1, next_after);
        if (child == kInvalidState) {
          if (over_budget) return kInvalidState;
          continue;
        }
        edges.push_back(EdgeRec{static_cast<uint32_t>(level_base + first),
                                static_cast<uint32_t>(level_base + j + 1),
                                child});
      }
      state = edges.empty() ? kInvalidState : EmitState(level);
    }
    if (over_budget) return kInvalidState;
    gen_slot = window_gen;
    memo_slot = state;
    return state;
  }

  /// Records one match's window sweep into `out`/`out_edges`; returns
  /// whether any window produced a root (the match's phi = 0 viability
  /// at this delta). The caller has bound `series`/`base` and sized the
  /// memo (BeginMatch); on over_budget the return value is partial and
  /// the sink must be discarded.
  bool RecordMatchWindows(WindowCursorSet* cursors,
                          const std::vector<const EdgeSeries*>& bound,
                          const std::vector<Window>& windows) {
    if (windows.empty()) return false;
    cursors->Reset(bound);
    lo = cursors->lo_indices().data();
    limit = cursors->hi_indices().data();
    const int m = num_edges;
    bool any_root = false;
    for (const Window& window : windows) {
      cursors->AdvanceTo(window);
      // A level with no elements in the window kills every completion;
      // three comparisons here skip the whole recursion set-up. Skipped
      // windows record nothing and root nothing — output-identical.
      bool feasible = true;
      for (int k = 0; k < m; ++k) {
        if (lo[static_cast<size_t>(k)] >= limit[static_cast<size_t>(k)]) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      BeginWindow();
      const uint32_t root = RecordState(0, lo[0]);
      if (over_budget) return any_root;
      if (root != kInvalidState) {
        out->roots_.push_back(root);
        any_root = true;
      }
    }
    return any_root;
  }
};

void EnumerationSkeleton::Clear() {
  edge_lo_.clear();
  edge_hi_.clear();
  edge_child_.clear();
  state_begin_.assign(2, 0);
  roots_.clear();
  match_viable_.clear();
  topology_identity_ = StorageIdentity{};
  recorded_ = false;
}

bool EnumerationSkeleton::Record(const TimeSeriesGraph& graph,
                                 const Motif& motif, Timestamp delta,
                                 const std::vector<MatchBinding>& matches,
                                 SharedWindowCache* cache,
                                 const Options& options) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  Clear();

  std::vector<size_t> offsets;
  const size_t total_prefix = BuildPrefixOffsets(graph, &offsets);
  if (total_prefix > std::numeric_limits<uint32_t>::max()) return false;
  const SeriesPairIndexer series_pair_index(graph);

  const int m = motif.num_edges();
  std::vector<const EdgeSeries*> series(static_cast<size_t>(m));
  std::vector<size_t> base(static_cast<size_t>(m));
  WindowCursorSet cursors;
  WindowListMru window_mru;
  // Same cache policy as the counting/enumeration paths: when the
  // motif's (first, last) pairs cannot repeat and the cache is not
  // cross-graph, reading through it costs a hash probe and a dead
  // insertion per match — the MRU alone serves run-locality hits.
  std::unique_ptr<SharedWindowCache> owned_cache;
  SharedWindowCache* resolved_cache =
      ResolveWindowCache(cache, motif, delta, &owned_cache);

  std::vector<Recorder::EdgeRec> edges;
  Recorder rec;
  rec.out = this;
  rec.out_edges = &edges;
  rec.series = series.data();
  rec.base = base.data();
  rec.num_edges = m;
  rec.max_edges = options.max_edges;
  rec.memo_state.resize(static_cast<size_t>(m));
  rec.memo_gen.resize(static_cast<size_t>(m));
  rec.scratch.resize(static_cast<size_t>(m));

  match_viable_.assign(matches.size(), 0);
  for (size_t match_index = 0; match_index < matches.size(); ++match_index) {
    const MatchBinding& binding = matches[match_index];
    ResolveMatchSeries(graph, motif, binding, &series);
    for (int k = 0; k < m; ++k) {
      base[static_cast<size_t>(k)] =
          offsets[series_pair_index(series[static_cast<size_t>(k)])];
    }
    rec.BeginMatch(series);

    const std::vector<Window>& windows = window_mru.GetOrCompute(
        resolved_cache, *series.front(), *series.back(), delta,
        options.query_control);
    if (rec.RecordMatchWindows(&cursors, series, windows)) {
      match_viable_[match_index] = 1;
    }
    if (rec.over_budget) {
      Clear();
      return false;
    }
  }

  Recorder::Finalize(this, edges);
  topology_identity_ = graph.topology_identity();
  recorded_ = true;
  return true;
}

void EnumerationSkeleton::RecordSweepDescending(
    const TimeSeriesGraph& graph, const Motif& motif,
    const std::vector<Timestamp>& deltas,
    const std::vector<MatchBinding>& matches, const Options& options,
    std::vector<EnumerationSkeleton>* skeletons, QueryControl* control) {
  const size_t n = deltas.size();
  skeletons->clear();
  skeletons->resize(n);
  if (n == 0) return;
  for (size_t d = 0; d + 1 < n; ++d) {
    FLOWMOTIF_CHECK_GE(deltas[d], deltas[d + 1])
        << "sweep deltas must be non-increasing";
  }
  FLOWMOTIF_CHECK_GE(deltas.back(), 0);
  for (EnumerationSkeleton& sk : *skeletons) {
    sk.Clear();
    sk.match_viable_.assign(matches.size(), 0);
  }

  std::vector<size_t> offsets;
  const size_t total_prefix = BuildPrefixOffsets(graph, &offsets);
  if (total_prefix > std::numeric_limits<uint32_t>::max()) return;
  const SeriesPairIndexer series_pair_index(graph);

  const int m = motif.num_edges();
  std::vector<const EdgeSeries*> series(static_cast<size_t>(m));
  std::vector<size_t> base(static_cast<size_t>(m));
  WindowCursorSet cursors;

  std::vector<std::vector<Recorder::EdgeRec>> edges(n);
  Recorder rec;
  rec.series = series.data();
  rec.base = base.data();
  rec.num_edges = m;
  rec.max_edges = options.max_edges;
  rec.memo_state.resize(static_cast<size_t>(m));
  rec.memo_gen.resize(static_cast<size_t>(m));
  rec.scratch.resize(static_cast<size_t>(m));

  // Per-delta abandonment (budget overrun): the skeleton stops
  // receiving matches and is cleared at the end; the other deltas
  // proceed unaffected.
  std::vector<bool> dead(n, false);

  // Per-match window lists, one per delta, out of a single scan of the
  // match's boundary series. The one-entry MRU mirrors WindowListMru:
  // interior-node motifs present the same (first, last) identity pair
  // in runs, and the lists depend only on those identities.
  std::vector<std::vector<Window>> windows;
  StorageIdentity mru_first;
  StorageIdentity mru_last;

  // Only the boundary series gate a match (the window lists depend on
  // nothing else), so interior series resolve lazily — most structural
  // matches die at the empty-window check and never pay those binary
  // searches.
  const auto [first_src, first_dst] = motif.edge(0);
  const auto [last_src, last_dst] = motif.edge(m - 1);

  bool stopped = false;
  for (size_t match_index = 0; match_index < matches.size(); ++match_index) {
    if (control != nullptr && control->CheckAt(failpoint::kSweepRecord)) {
      stopped = true;
      break;
    }
    const MatchBinding& binding = matches[match_index];
    const EdgeSeries* first_series =
        graph.FindSeries(binding[static_cast<size_t>(first_src)],
                         binding[static_cast<size_t>(first_dst)]);
    const EdgeSeries* last_series =
        graph.FindSeries(binding[static_cast<size_t>(last_src)],
                         binding[static_cast<size_t>(last_dst)]);
    FLOWMOTIF_CHECK(first_series != nullptr && last_series != nullptr)
        << "binding is not a structural match of " << motif.name();
    if (first_series->timestamp_identity() != mru_first ||
        last_series->timestamp_identity() != mru_last) {
      ComputeProcessedWindowsMulti(*first_series, *last_series, deltas,
                                   &windows);
      size_t computed = 0;
      for (const std::vector<Window>& per_delta : windows) {
        computed += per_delta.size();
      }
      ChargeComputedWindows(control, computed, 0);
      mru_first = first_series->timestamp_identity();
      mru_last = last_series->timestamp_identity();
    }
    // No windows at the largest delta means none at any delta (a window
    // needs an R(em) element within [anchor, anchor + delta], and that
    // interval only shrinks) — most structural matches die right here,
    // before any per-level set-up.
    if (windows.front().empty()) continue;
    series.front() = first_series;
    series.back() = last_series;
    for (int i = 1; i < m - 1; ++i) {
      const auto [src, dst] = motif.edge(i);
      const EdgeSeries* s =
          graph.FindSeries(binding[static_cast<size_t>(src)],
                           binding[static_cast<size_t>(dst)]);
      FLOWMOTIF_CHECK(s != nullptr)
          << "binding is not a structural match of " << motif.name();
      series[static_cast<size_t>(i)] = s;
    }
    for (int k = 0; k < m; ++k) {
      base[static_cast<size_t>(k)] =
          offsets[series_pair_index(series[static_cast<size_t>(k)])];
    }
    rec.BeginMatch(series);

    // Largest delta first; `alive` carries the cascade — no roots at a
    // (successfully recorded) delta proves there is no phi = 0
    // completion, and shrinking delta only removes completions, so
    // every remaining delta can skip this match without changing any
    // count.
    bool alive = true;
    for (size_t d = 0; d < n && alive; ++d) {
      if (dead[d]) continue;
      EnumerationSkeleton& sk = (*skeletons)[d];
      rec.out = &sk;
      rec.out_edges = &edges[d];
      rec.over_budget = false;
      const bool any_root =
          rec.RecordMatchWindows(&cursors, series, windows[d]);
      if (rec.over_budget) {
        dead[d] = true;  // abandoned; excluded from the cascade too
        continue;
      }
      if (any_root) sk.match_viable_[match_index] = 1;
      alive = any_root;
    }
  }

  if (stopped) {
    // A trace over a match prefix would replay wrong counts: abandon
    // every delta so callers take their per-cell fallback (which
    // observes the same stop and terminates promptly).
    for (EnumerationSkeleton& sk : *skeletons) sk.Clear();
    return;
  }

  for (size_t d = 0; d < n; ++d) {
    EnumerationSkeleton& sk = (*skeletons)[d];
    if (dead[d]) {
      sk.Clear();
      continue;
    }
    Recorder::Finalize(&sk, edges[d]);
    sk.topology_identity_ = graph.topology_identity();
    sk.recorded_ = true;
  }
}

// ---------------------------------------------------------------------------
// SkeletonReplayer
// ---------------------------------------------------------------------------

SkeletonReplayer::SkeletonReplayer(const EnumerationSkeleton* skeleton)
    : skeleton_(skeleton) {
  FLOWMOTIF_CHECK(skeleton != nullptr && skeleton->recorded());
  values_.resize(skeleton->num_states());
}

int64_t SkeletonReplayer::Count(const FlowPrefixArena& arena, Flow phi) {
  FLOWMOTIF_CHECK(arena.topology_identity() == skeleton_->topology_identity())
      << "replay arena does not share the recorded topology";
  return skeleton_kernel::AccumulateStatesFused(
      arena.data(), skeleton_->edge_lo(), skeleton_->edge_hi(), phi,
      skeleton_->edge_child(), skeleton_->state_begin(),
      skeleton_->num_states(), skeleton_->roots(), skeleton_->num_roots(),
      values_.data());
}

void SkeletonReplayer::EvaluateFlows(const FlowPrefixArena& arena) {
  FLOWMOTIF_CHECK(arena.topology_identity() == skeleton_->topology_identity())
      << "replay arena does not share the recorded topology";
  flows_.resize(skeleton_->num_edges());
  skeleton_kernel::EvaluateEdgeFlows(arena.data(), skeleton_->edge_lo(),
                                     skeleton_->edge_hi(),
                                     skeleton_->num_edges(), flows_.data());
}

int64_t SkeletonReplayer::CountWithFlows(Flow phi) {
  FLOWMOTIF_CHECK_EQ(flows_.size(), skeleton_->num_edges())
      << "CountWithFlows requires a prior EvaluateFlows";
  return skeleton_kernel::AccumulateStates(
      flows_.data(), phi, skeleton_->edge_child(), skeleton_->state_begin(),
      skeleton_->num_states(), skeleton_->roots(), skeleton_->num_roots(),
      values_.data());
}

}  // namespace flowmotif
