#include "core/dp.h"

#include <algorithm>
#include <limits>

#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

MaxFlowDpSearcher::MaxFlowDpSearcher(const TimeSeriesGraph& graph,
                                     const Motif& motif, Timestamp delta,
                                     SharedWindowCache* window_cache)
    : graph_(graph), motif_(motif), delta_(delta) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  cache_ = ResolveWindowCache(window_cache, motif, delta, &owned_cache_);
}

void MaxFlowDpSearcher::CheckScratch(Scratch* scratch) const {
  if (scratch->bound_graph == nullptr) {
    scratch->bound_graph = &graph_;
    scratch->bound_delta = delta_;
    return;
  }
  // Cursor state and buffers are per-run, but guarding the binding
  // keeps a Scratch from silently crossing graphs or deltas.
  FLOWMOTIF_CHECK(scratch->bound_graph == &graph_ &&
                  scratch->bound_delta == delta_)
      << "DP Scratch reused across a different graph or delta";
}

const std::vector<Window>& MaxFlowDpSearcher::BeginMatch(
    const MatchBinding& binding, Scratch* scratch) const {
  std::vector<const EdgeSeries*>& series = scratch->series;
  ResolveMatchSeries(graph_, motif_, binding, &series);

  // Window cursors restart from the series fronts for every match; they
  // only ever move forward within one match's window sweep.
  scratch->cursors.Reset(series);

  return scratch->window_mru.GetOrCompute(cache_, *series.front(),
                                          *series.back(), delta_,
                                          query_control_);
}

Flow MaxFlowDpSearcher::DpOverWindow(const MatchBinding& binding,
                                     const Window& window, Scratch* scratch,
                                     Result* result) const {
  const size_t m = static_cast<size_t>(motif_.num_edges());
  const std::vector<const EdgeSeries*>& series = scratch->series;

  // Slide the per-series cursors to this window. Galloping advances
  // cost O(log gap) in the distance moved — near-constant for
  // overlapping consecutive windows, never worse than a binary search
  // for a first window deep into the series.
  WindowCursorSet& cursors = scratch->cursors;
  cursors.AdvanceTo(window);

  // Admissible window bound: no instance can beat the minimum over motif
  // edges of the edge's total flow inside the window — an O(1)
  // prefix-sum subtraction on the cursor range. Once a good incumbent
  // exists, most windows are skipped without running the DP.
  {
    Flow bound = std::numeric_limits<Flow>::infinity();
    for (size_t k = 0; k < m; ++k) {
      bound = std::min(bound, series[k]->FlowInIndexRange(cursors.lo(k),
                                                          cursors.hi(k)));
    }
    if (bound <= result->max_flow) return 0.0;
  }

  // Union timeline t1..t_tau (k-way merge into the reusable buffer).
  UnionTimeline& timeline = scratch->timeline;
  timeline.Build(series, cursors);
  const size_t tau = timeline.size();
  if (tau == 0) return 0.0;

  // Per-series timeline offsets: one monotone sweep per row makes every
  // flow([tj,ti],k) in the DP below an O(1) prefix-sum subtraction.
  TimelineOffsets& offsets = scratch->offsets;
  offsets.Build(series, cursors, timeline);

  // Flow([t1, t_i], k) as rows of one flat m x tau table (row stride
  // tau); `choice` records the argmax split j of Eq. 2 for the traceback
  // (0 means "none/invalid"). A flow of 0 marks an invalid state: all
  // real flows are positive.
  std::vector<Flow>& flow_table = scratch->flow_table;
  std::vector<size_t>& choice = scratch->choice;
  flow_table.assign(m * tau, 0.0);
  choice.assign(m * tau, 0);

  {
    const EdgeSeries& s0 = *series[0];
    const size_t first0 = offsets.lower(0, 0);  // LowerBound of t1 in R(e1)
    const size_t* upper_row = offsets.upper_row(0);
    Flow* row = flow_table.data();
    for (size_t i = 0; i < tau; ++i) {
      row[i] = s0.FlowInIndexRange(first0, upper_row[i]);
    }
  }
  for (size_t k = 1; k < m; ++k) {
    const EdgeSeries& sk = *series[k];
    const Flow* prev_row = flow_table.data() + (k - 1) * tau;
    Flow* row = flow_table.data() + k * tau;
    size_t* row_choice = choice.data() + k * tau;
    const size_t* lower_row = offsets.lower_row(k);
    const size_t* upper_row = offsets.upper_row(k);
    for (size_t i = 1; i < tau; ++i) {
      const size_t upper_i = upper_row[i];
      // Eq. 2 is max_j min(L(j), R(j)) where L(j) = Flow([t1,t_{j-1}],k-1)
      // is non-decreasing in j (larger window, more options) and
      // R(j) = flow([tj,ti],k) is non-increasing (smaller interval). The
      // maximum therefore sits at the crossing, found by binary search —
      // O(log tau) O(1)-probes per cell instead of the naive O(tau) scan.
      size_t lo_j = 1;
      size_t hi_j = i;
      while (lo_j < hi_j) {
        const size_t mid = (lo_j + hi_j) / 2;
        if (prev_row[mid - 1] >=
            sk.FlowInIndexRange(lower_row[mid], upper_i)) {
          hi_j = mid;
        } else {
          lo_j = mid + 1;
        }
      }
      Flow best = 0.0;
      size_t best_j = 0;
      for (size_t j : {lo_j, lo_j - 1}) {
        if (j < 1 || j > i) continue;
        const Flow value =
            std::min(prev_row[j - 1],
                     sk.FlowInIndexRange(lower_row[j], upper_i));
        if (value > best) {
          best = value;
          best_j = j;
        }
      }
      row[i] = best;
      row_choice[i] = best_j;
    }
  }

  const Flow window_best = flow_table[(m - 1) * tau + (tau - 1)];
  if (window_best <= 0.0 || window_best <= result->max_flow) {
    return window_best;
  }

  // New global best: reconstruct the argmax instance by walking the
  // recorded splits backwards (Table 2's bold cells). The offset rows
  // already hold every series bound the traceback needs.
  MotifInstance instance;
  instance.binding = binding;
  instance.edge_sets.assign(m, {});
  size_t i = tau - 1;
  for (size_t k = m - 1; k >= 1; --k) {
    const size_t j = choice[k * tau + i];
    FLOWMOTIF_CHECK_GT(j, 0u);
    const EdgeSeries& sk = *series[k];
    auto& set = instance.edge_sets[k];
    const size_t first = offsets.lower(k, j);
    const size_t limit = offsets.upper(k, i);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(sk.at(idx));
    i = j - 1;
  }
  {
    const EdgeSeries& s0 = *series[0];
    auto& set = instance.edge_sets[0];
    const size_t first = offsets.lower(0, 0);
    const size_t limit = offsets.upper(0, i);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(s0.at(idx));
  }

  result->found = true;
  result->max_flow = window_best;
  result->best = std::move(instance);
  result->binding = binding;
  result->window = window;
  return window_best;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatch(
    const MatchBinding& binding) const {
  Result result;
  WallTimer timer;
  Scratch scratch;
  CheckScratch(&scratch);
  const std::vector<Window>& windows = BeginMatch(binding, &scratch);
  result.num_windows = static_cast<int64_t>(windows.size());
  for (const Window& window : windows) {
    DpOverWindow(binding, window, &scratch, &result);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  return RunOnMatches(matches.data(), matches.data() + matches.size());
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end) const {
  Scratch scratch;
  return RunOnMatches(begin, end, &scratch);
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end,
    Scratch* scratch) const {
  return RunOnMatches(begin, end, scratch, /*control=*/nullptr);
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end, Scratch* scratch,
    QueryControl* control) const {
  Result result;
  WallTimer timer;
  CheckScratch(scratch);
  for (const MatchBinding* binding = begin; binding != end; ++binding) {
    if (control != nullptr && control->CheckAt(failpoint::kDpMatch)) break;
    const std::vector<Window>& windows = BeginMatch(*binding, scratch);
    result.num_windows += static_cast<int64_t>(windows.size());
    for (const Window& window : windows) {
      DpOverWindow(*binding, window, scratch, &result);
    }
    ++result.matches_processed;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::Run() const {
  StructuralMatcher matcher(graph_, motif_);
  return RunOnMatches(matcher.FindAllMatches());
}

std::vector<MaxFlowDpSearcher::WindowBest> MaxFlowDpSearcher::RunPerWindow(
    const MatchBinding& binding) const {
  Scratch scratch;
  CheckScratch(&scratch);
  const std::vector<Window>& windows = BeginMatch(binding, &scratch);
  std::vector<WindowBest> bests;
  bests.reserve(windows.size());
  for (const Window& window : windows) {
    // A throwaway result isolates each window's optimum.
    Result window_result;
    const Flow flow = DpOverWindow(binding, window, &scratch, &window_result);
    bests.push_back(WindowBest{window, flow > 0.0, flow});
  }
  return bests;
}

}  // namespace flowmotif
