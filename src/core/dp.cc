#include "core/dp.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

MaxFlowDpSearcher::MaxFlowDpSearcher(const TimeSeriesGraph& graph,
                                     const Motif& motif, Timestamp delta)
    : graph_(graph), motif_(motif), delta_(delta) {
  FLOWMOTIF_CHECK_GE(delta, 0);
}

std::vector<const EdgeSeries*> MaxFlowDpSearcher::ResolveSeries(
    const MatchBinding& binding) const {
  std::vector<const EdgeSeries*> series(
      static_cast<size_t>(motif_.num_edges()));
  for (int i = 0; i < motif_.num_edges(); ++i) {
    const auto [src, dst] = motif_.edge(i);
    const EdgeSeries* s = graph_.FindSeries(binding[static_cast<size_t>(src)],
                                            binding[static_cast<size_t>(dst)]);
    FLOWMOTIF_CHECK(s != nullptr)
        << "binding is not a structural match of " << motif_.name();
    series[static_cast<size_t>(i)] = s;
  }
  return series;
}

Flow MaxFlowDpSearcher::DpOverWindow(
    const std::vector<const EdgeSeries*>& series, const MatchBinding& binding,
    const Window& window, Scratch* scratch, Result* result) const {
  // Admissible window bound: no instance can beat the minimum over motif
  // edges of the edge's total flow inside the window. Once a good
  // incumbent exists, most windows are skipped without running the DP.
  {
    Flow bound = std::numeric_limits<Flow>::infinity();
    for (const EdgeSeries* s : series) {
      bound = std::min(bound, s->FlowInClosed(window.start, window.end));
    }
    if (bound <= result->max_flow) return 0.0;
  }

  // Union timeline t1..t_tau: every timestamp in the window carrying an
  // interaction on any edge of this match.
  std::vector<Timestamp>& timeline = scratch->timeline;
  timeline.clear();
  for (const EdgeSeries* s : series) {
    const size_t first = s->LowerBound(window.start);
    const size_t limit = s->UpperBound(window.end);
    for (size_t i = first; i < limit; ++i) timeline.push_back(s->time(i));
  }
  std::sort(timeline.begin(), timeline.end());
  timeline.erase(std::unique(timeline.begin(), timeline.end()),
                 timeline.end());
  const size_t tau = timeline.size();
  if (tau == 0) return 0.0;

  const int m = motif_.num_edges();

  // Flow([t1, t_i], k) as rows over i; `choice[k][i]` records the argmax
  // split j of Eq. 2 for the traceback (0 means "none/invalid"). A flow
  // of 0 marks an invalid state: all real flows are positive.
  auto& flow_table = scratch->flow_table;
  auto& choice = scratch->choice;
  flow_table.resize(static_cast<size_t>(m));
  choice.resize(static_cast<size_t>(m));
  for (int k = 0; k < m; ++k) {
    flow_table[static_cast<size_t>(k)].assign(tau, 0.0);
    choice[static_cast<size_t>(k)].assign(tau, 0);
  }

  for (size_t i = 0; i < tau; ++i) {
    flow_table[0][i] = series[0]->FlowInClosed(timeline[0], timeline[i]);
  }
  for (int k = 1; k < m; ++k) {
    const EdgeSeries& sk = *series[static_cast<size_t>(k)];
    const auto& prev_row = flow_table[static_cast<size_t>(k) - 1];
    auto& row = flow_table[static_cast<size_t>(k)];
    auto& row_choice = choice[static_cast<size_t>(k)];
    for (size_t i = 1; i < tau; ++i) {
      // Eq. 2 is max_j min(L(j), R(j)) where L(j) = Flow([t1,t_{j-1}],k-1)
      // is non-decreasing in j (larger window, more options) and
      // R(j) = flow([tj,ti],k) is non-increasing (smaller interval). The
      // maximum therefore sits at the crossing, found by binary search —
      // O(log tau) per cell instead of the naive O(tau) scan.
      size_t lo = 1;
      size_t hi = i;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (prev_row[mid - 1] >=
            sk.FlowInClosed(timeline[mid], timeline[i])) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      Flow best = 0.0;
      size_t best_j = 0;
      for (size_t j : {lo, lo - 1}) {
        if (j < 1 || j > i) continue;
        const Flow value =
            std::min(prev_row[j - 1],
                     sk.FlowInClosed(timeline[j], timeline[i]));
        if (value > best) {
          best = value;
          best_j = j;
        }
      }
      row[i] = best;
      row_choice[i] = best_j;
    }
  }

  const Flow window_best = flow_table[static_cast<size_t>(m) - 1][tau - 1];
  if (window_best <= 0.0 || window_best <= result->max_flow) {
    return window_best;
  }

  // New global best: reconstruct the argmax instance by walking the
  // recorded splits backwards (Table 2's bold cells).
  MotifInstance instance;
  instance.binding = binding;
  instance.edge_sets.assign(static_cast<size_t>(m), {});
  size_t i = tau - 1;
  for (int k = m - 1; k >= 1; --k) {
    const size_t j = choice[static_cast<size_t>(k)][i];
    FLOWMOTIF_CHECK_GT(j, 0u);
    const EdgeSeries& sk = *series[static_cast<size_t>(k)];
    auto& set = instance.edge_sets[static_cast<size_t>(k)];
    const size_t first = sk.LowerBound(timeline[j]);
    const size_t limit = sk.UpperBound(timeline[i]);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(sk.at(idx));
    i = j - 1;
  }
  {
    const EdgeSeries& s0 = *series[0];
    auto& set = instance.edge_sets[0];
    const size_t first = s0.LowerBound(timeline[0]);
    const size_t limit = s0.UpperBound(timeline[i]);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(s0.at(idx));
  }

  result->found = true;
  result->max_flow = window_best;
  result->best = std::move(instance);
  result->binding = binding;
  result->window = window;
  return window_best;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatch(
    const MatchBinding& binding) const {
  Result result;
  WallTimer timer;
  const std::vector<const EdgeSeries*> series = ResolveSeries(binding);
  const std::vector<Window> windows =
      ComputeProcessedWindows(*series.front(), *series.back(), delta_);
  result.num_windows = static_cast<int64_t>(windows.size());
  Scratch scratch;
  for (const Window& window : windows) {
    DpOverWindow(series, binding, window, &scratch, &result);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  return RunOnMatches(matches.data(), matches.data() + matches.size());
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end) const {
  Result result;
  WallTimer timer;
  Scratch scratch;
  for (const MatchBinding* binding = begin; binding != end; ++binding) {
    const std::vector<const EdgeSeries*> series = ResolveSeries(*binding);
    const std::vector<Window> windows =
        ComputeProcessedWindows(*series.front(), *series.back(), delta_);
    result.num_windows += static_cast<int64_t>(windows.size());
    for (const Window& window : windows) {
      DpOverWindow(series, *binding, window, &scratch, &result);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::Run() const {
  StructuralMatcher matcher(graph_, motif_);
  return RunOnMatches(matcher.FindAllMatches());
}

std::vector<MaxFlowDpSearcher::WindowBest> MaxFlowDpSearcher::RunPerWindow(
    const MatchBinding& binding) const {
  const std::vector<const EdgeSeries*> series = ResolveSeries(binding);
  const std::vector<Window> windows =
      ComputeProcessedWindows(*series.front(), *series.back(), delta_);
  std::vector<WindowBest> bests;
  bests.reserve(windows.size());
  Scratch scratch;
  for (const Window& window : windows) {
    // A throwaway result isolates each window's optimum.
    Result window_result;
    const Flow flow =
        DpOverWindow(series, binding, window, &scratch, &window_result);
    bests.push_back(WindowBest{window, flow > 0.0, flow});
  }
  return bests;
}

}  // namespace flowmotif
