#include "core/dp.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

/// True iff some motif node is absent from the endpoints of the first
/// and last motif edges. Only then can two distinct bindings share the
/// same (first, last) series pair — otherwise the two series pointers
/// pin every bound vertex and the window memo could never hit.
bool HasInteriorNode(const Motif& motif) {
  const auto [f_src, f_dst] = motif.edge(0);
  const auto [l_src, l_dst] = motif.edge(motif.num_edges() - 1);
  for (int node = 0; node < motif.num_nodes(); ++node) {
    if (node != f_src && node != f_dst && node != l_src && node != l_dst) {
      return true;
    }
  }
  return false;
}

/// Window-memo entry cap: matches sharing a (first, last) pair arrive
/// in runs (the P1 DFS varies interior vertices innermost), so clearing
/// a full memo keeps the hit rate while bounding retained window lists
/// — without a cap, a kTop1 query over millions of matches would hold
/// every match's windows until the query ends.
constexpr size_t kWindowCacheMaxEntries = 1024;

}  // namespace

MaxFlowDpSearcher::MaxFlowDpSearcher(const TimeSeriesGraph& graph,
                                     const Motif& motif, Timestamp delta)
    : graph_(graph),
      motif_(motif),
      delta_(delta),
      memoize_windows_(HasInteriorNode(motif)) {
  FLOWMOTIF_CHECK_GE(delta, 0);
}

void MaxFlowDpSearcher::CheckScratch(Scratch* scratch) const {
  if (scratch->bound_graph == nullptr) {
    scratch->bound_graph = &graph_;
    scratch->bound_delta = delta_;
    return;
  }
  // The window memo keys on EdgeSeries pointers and caches
  // delta-dependent window lists; reuse across another graph or delta
  // would silently return wrong windows.
  FLOWMOTIF_CHECK(scratch->bound_graph == &graph_ &&
                  scratch->bound_delta == delta_)
      << "DP Scratch reused across a different graph or delta";
}

const std::vector<Window>& MaxFlowDpSearcher::BeginMatch(
    const MatchBinding& binding, Scratch* scratch) const {
  const size_t m = static_cast<size_t>(motif_.num_edges());
  std::vector<const EdgeSeries*>& series = scratch->series;
  series.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const auto [src, dst] = motif_.edge(static_cast<int>(i));
    const EdgeSeries* s = graph_.FindSeries(binding[static_cast<size_t>(src)],
                                            binding[static_cast<size_t>(dst)]);
    FLOWMOTIF_CHECK(s != nullptr)
        << "binding is not a structural match of " << motif_.name();
    series[i] = s;
  }

  // Window cursors restart from the series fronts for every match; they
  // only ever move forward within one match's window sweep.
  scratch->lo.assign(m, 0);
  scratch->hi.assign(m, 0);

  if (!memoize_windows_) {
    ComputeProcessedWindows(*series.front(), *series.back(), delta_,
                            &scratch->windows);
    return scratch->windows;
  }
  if (scratch->window_cache.size() >= kWindowCacheMaxEntries &&
      scratch->window_cache.find(std::make_pair(series.front(),
                                                series.back())) ==
          scratch->window_cache.end()) {
    scratch->window_cache.clear();
  }
  auto [it, inserted] = scratch->window_cache.try_emplace(
      std::make_pair(series.front(), series.back()));
  if (inserted) {
    it->second =
        ComputeProcessedWindows(*series.front(), *series.back(), delta_);
  }
  return it->second;
}

Flow MaxFlowDpSearcher::DpOverWindow(const MatchBinding& binding,
                                     const Window& window, Scratch* scratch,
                                     Result* result) const {
  const size_t m = static_cast<size_t>(motif_.num_edges());
  const std::vector<const EdgeSeries*>& series = scratch->series;

  // Slide the per-series cursors to this window: lo = LowerBound(start),
  // hi = UpperBound(end). Window starts and ends are non-decreasing
  // across a match (anchors are the sorted first-series timestamps), so
  // the galloping advances cost O(log gap) in the distance moved —
  // near-constant for overlapping consecutive windows, never worse than
  // a binary search for a first window deep into the series.
  for (size_t k = 0; k < m; ++k) {
    scratch->lo[k] = series[k]->AdvanceLowerBound(scratch->lo[k],
                                                  window.start);
    scratch->hi[k] = series[k]->AdvanceUpperBound(scratch->hi[k],
                                                  window.end);
  }

  // Admissible window bound: no instance can beat the minimum over motif
  // edges of the edge's total flow inside the window — an O(1)
  // prefix-sum subtraction on the cursor range. Once a good incumbent
  // exists, most windows are skipped without running the DP.
  {
    Flow bound = std::numeric_limits<Flow>::infinity();
    for (size_t k = 0; k < m; ++k) {
      bound = std::min(bound, series[k]->FlowInIndexRange(scratch->lo[k],
                                                          scratch->hi[k]));
    }
    if (bound <= result->max_flow) return 0.0;
  }

  // Union timeline t1..t_tau: a k-way merge of the per-series sorted
  // slices [lo, hi) into the reusable buffer (replaces push-all +
  // std::sort + std::unique). The motif has a handful of edges, so the
  // linear min-scan beats a heap.
  std::vector<Timestamp>& timeline = scratch->timeline;
  timeline.clear();
  std::vector<size_t>& head = scratch->merge_pos;
  head.assign(scratch->lo.begin(), scratch->lo.end());
  while (true) {
    Timestamp next = 0;
    bool any = false;
    for (size_t k = 0; k < m; ++k) {
      if (head[k] >= scratch->hi[k]) continue;
      const Timestamp t = series[k]->time(head[k]);
      if (!any || t < next) {
        next = t;
        any = true;
      }
    }
    if (!any) break;
    timeline.push_back(next);
    for (size_t k = 0; k < m; ++k) {
      while (head[k] < scratch->hi[k] && series[k]->time(head[k]) == next) {
        ++head[k];
      }
    }
  }
  const size_t tau = timeline.size();
  if (tau == 0) return 0.0;

  // Per-series timeline offsets: lower_idx[k*tau+i] / upper_idx[k*tau+i]
  // are series k's LowerBound / UpperBound of timeline[i]. One monotone
  // two-cursor sweep per row — every flow([tj,ti],k) inside the DP below
  // is then a genuine O(1) prefix-sum subtraction. The sweeps may clamp
  // at [lo, hi]: timeline entries lie inside [start, end], so the global
  // bounds can never fall outside the cursor range.
  std::vector<size_t>& lower_idx = scratch->lower_idx;
  std::vector<size_t>& upper_idx = scratch->upper_idx;
  lower_idx.resize(m * tau);
  upper_idx.resize(m * tau);
  for (size_t k = 0; k < m; ++k) {
    const std::vector<Timestamp>& times = series[k]->times();
    const size_t series_end = scratch->hi[k];
    size_t lower = scratch->lo[k];
    size_t upper = scratch->lo[k];
    size_t* lower_row = lower_idx.data() + k * tau;
    size_t* upper_row = upper_idx.data() + k * tau;
    for (size_t i = 0; i < tau; ++i) {
      const Timestamp t = timeline[i];
      while (lower < series_end && times[lower] < t) ++lower;
      lower_row[i] = lower;
      if (upper < lower) upper = lower;
      while (upper < series_end && times[upper] <= t) ++upper;
      upper_row[i] = upper;
    }
  }

  // Flow([t1, t_i], k) as rows of one flat m x tau table (row stride
  // tau); `choice` records the argmax split j of Eq. 2 for the traceback
  // (0 means "none/invalid"). A flow of 0 marks an invalid state: all
  // real flows are positive.
  std::vector<Flow>& flow_table = scratch->flow_table;
  std::vector<size_t>& choice = scratch->choice;
  flow_table.assign(m * tau, 0.0);
  choice.assign(m * tau, 0);

  {
    const EdgeSeries& s0 = *series[0];
    const size_t first0 = lower_idx[0];  // LowerBound of t1 in R(e1)
    const size_t* upper_row = upper_idx.data();
    Flow* row = flow_table.data();
    for (size_t i = 0; i < tau; ++i) {
      row[i] = s0.FlowInIndexRange(first0, upper_row[i]);
    }
  }
  for (size_t k = 1; k < m; ++k) {
    const EdgeSeries& sk = *series[k];
    const Flow* prev_row = flow_table.data() + (k - 1) * tau;
    Flow* row = flow_table.data() + k * tau;
    size_t* row_choice = choice.data() + k * tau;
    const size_t* lower_row = lower_idx.data() + k * tau;
    const size_t* upper_row = upper_idx.data() + k * tau;
    for (size_t i = 1; i < tau; ++i) {
      const size_t upper_i = upper_row[i];
      // Eq. 2 is max_j min(L(j), R(j)) where L(j) = Flow([t1,t_{j-1}],k-1)
      // is non-decreasing in j (larger window, more options) and
      // R(j) = flow([tj,ti],k) is non-increasing (smaller interval). The
      // maximum therefore sits at the crossing, found by binary search —
      // O(log tau) O(1)-probes per cell instead of the naive O(tau) scan.
      size_t lo_j = 1;
      size_t hi_j = i;
      while (lo_j < hi_j) {
        const size_t mid = (lo_j + hi_j) / 2;
        if (prev_row[mid - 1] >=
            sk.FlowInIndexRange(lower_row[mid], upper_i)) {
          hi_j = mid;
        } else {
          lo_j = mid + 1;
        }
      }
      Flow best = 0.0;
      size_t best_j = 0;
      for (size_t j : {lo_j, lo_j - 1}) {
        if (j < 1 || j > i) continue;
        const Flow value =
            std::min(prev_row[j - 1],
                     sk.FlowInIndexRange(lower_row[j], upper_i));
        if (value > best) {
          best = value;
          best_j = j;
        }
      }
      row[i] = best;
      row_choice[i] = best_j;
    }
  }

  const Flow window_best = flow_table[(m - 1) * tau + (tau - 1)];
  if (window_best <= 0.0 || window_best <= result->max_flow) {
    return window_best;
  }

  // New global best: reconstruct the argmax instance by walking the
  // recorded splits backwards (Table 2's bold cells). The offset rows
  // already hold every series bound the traceback needs.
  MotifInstance instance;
  instance.binding = binding;
  instance.edge_sets.assign(m, {});
  size_t i = tau - 1;
  for (size_t k = m - 1; k >= 1; --k) {
    const size_t j = choice[k * tau + i];
    FLOWMOTIF_CHECK_GT(j, 0u);
    const EdgeSeries& sk = *series[k];
    auto& set = instance.edge_sets[k];
    const size_t first = lower_idx[k * tau + j];
    const size_t limit = upper_idx[k * tau + i];
    for (size_t idx = first; idx < limit; ++idx) set.push_back(sk.at(idx));
    i = j - 1;
  }
  {
    const EdgeSeries& s0 = *series[0];
    auto& set = instance.edge_sets[0];
    const size_t first = lower_idx[0];
    const size_t limit = upper_idx[i];
    for (size_t idx = first; idx < limit; ++idx) set.push_back(s0.at(idx));
  }

  result->found = true;
  result->max_flow = window_best;
  result->best = std::move(instance);
  result->binding = binding;
  result->window = window;
  return window_best;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatch(
    const MatchBinding& binding) const {
  Result result;
  WallTimer timer;
  Scratch scratch;
  CheckScratch(&scratch);
  const std::vector<Window>& windows = BeginMatch(binding, &scratch);
  result.num_windows = static_cast<int64_t>(windows.size());
  for (const Window& window : windows) {
    DpOverWindow(binding, window, &scratch, &result);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  return RunOnMatches(matches.data(), matches.data() + matches.size());
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end) const {
  Scratch scratch;
  return RunOnMatches(begin, end, &scratch);
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::RunOnMatches(
    const MatchBinding* begin, const MatchBinding* end,
    Scratch* scratch) const {
  Result result;
  WallTimer timer;
  CheckScratch(scratch);
  for (const MatchBinding* binding = begin; binding != end; ++binding) {
    const std::vector<Window>& windows = BeginMatch(*binding, scratch);
    result.num_windows += static_cast<int64_t>(windows.size());
    for (const Window& window : windows) {
      DpOverWindow(*binding, window, scratch, &result);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MaxFlowDpSearcher::Result MaxFlowDpSearcher::Run() const {
  StructuralMatcher matcher(graph_, motif_);
  return RunOnMatches(matcher.FindAllMatches());
}

std::vector<MaxFlowDpSearcher::WindowBest> MaxFlowDpSearcher::RunPerWindow(
    const MatchBinding& binding) const {
  Scratch scratch;
  CheckScratch(&scratch);
  const std::vector<Window>& windows = BeginMatch(binding, &scratch);
  std::vector<WindowBest> bests;
  bests.reserve(windows.size());
  for (const Window& window : windows) {
    // A throwaway result isolates each window's optimum.
    Result window_result;
    const Flow flow = DpOverWindow(binding, window, &scratch, &window_result);
    bests.push_back(WindowBest{window, flow > 0.0, flow});
  }
  return bests;
}

}  // namespace flowmotif
