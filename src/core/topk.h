#ifndef FLOWMOTIF_CORE_TOPK_H_
#define FLOWMOTIF_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Top-k flow motif search (Sec. 5): instead of a fixed phi, find the k
/// instances with the largest flow f(GI) among all maximal instances that
/// satisfy delta. Implemented exactly as the paper describes — the
/// two-phase enumerator runs with phi = 0 and a floating threshold equal
/// to the k-th best flow found so far, which tightens the prefix pruning
/// as results accumulate.
class TopKSearcher {
 public:
  /// One result entry.
  struct Entry {
    Flow flow;
    MotifInstance instance;
  };

  struct Result {
    /// Entries sorted by decreasing flow (ties broken by discovery order).
    std::vector<Entry> entries;
    /// Counters from the underlying enumeration run.
    EnumerationResult stats;

    /// Flow of the k-th (last) entry, or 0 if fewer than k were found.
    Flow KthFlow(size_t k) const {
      return entries.size() >= k && k > 0 ? entries[k - 1].flow : 0.0;
    }
  };

  /// `k` must be >= 1. `delta` is the motif duration bound.
  TopKSearcher(const TimeSeriesGraph& graph, const Motif& motif,
               Timestamp delta, int64_t k);
  // The searcher keeps a reference to the graph: temporaries would dangle.
  TopKSearcher(TimeSeriesGraph&&, const Motif&, Timestamp, int64_t) = delete;

  /// Runs the search over the whole graph.
  Result Run() const;

  /// Runs phase P2 only over precomputed structural matches (benchmarks
  /// isolating P2, Fig. 12).
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  int64_t k_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_TOPK_H_
