#ifndef FLOWMOTIF_CORE_TOPK_H_
#define FLOWMOTIF_CORE_TOPK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "graph/time_series_graph.h"

namespace flowmotif {

/// Deterministic discovery order of one emitted instance: the index of
/// its structural match in phase-P1 order, then the emission index
/// inside that match. Serial enumeration emits in increasing rank; the
/// engine's parallel path assigns the same ranks regardless of which
/// worker processes which match, so rank-based tie-breaking makes the
/// merged top-k byte-identical to the serial one.
struct DiscoveryRank {
  int64_t match_index = 0;
  int64_t emit_index = 0;

  friend bool operator<(const DiscoveryRank& a, const DiscoveryRank& b) {
    if (a.match_index != b.match_index) return a.match_index < b.match_index;
    return a.emit_index < b.emit_index;
  }
  friend bool operator==(const DiscoveryRank& a, const DiscoveryRank& b) {
    return a.match_index == b.match_index && a.emit_index == b.emit_index;
  }
};

/// One top-k result entry.
struct TopKEntry {
  Flow flow;
  MotifInstance instance;
};

/// Bounded collector of the k best instances under the total order
/// (flow descending, DiscoveryRank ascending). Insertion order does not
/// affect the final contents — Offer handles a tie with the current
/// k-th entry by rank — which is what lets per-batch collectors filled
/// on different threads merge into exactly the serial result.
///
/// Not thread-safe; use one collector per worker and MergeFrom.
class TopKCollector {
 public:
  explicit TopKCollector(int64_t k);

  bool full() const { return static_cast<int64_t>(heap_.size()) >= k_; }

  /// Flow of the current k-th best entry, or 0 until k entries were
  /// collected. Doubles as the *exclusive* floating threshold with the
  /// serial semantics of TopKSearcher: equal-flow latecomers are pruned
  /// before they reach the collector.
  Flow KthBestFlow() const { return full() ? heap_.top().flow : 0.0; }

  /// Offers one instance; materializes it only if it enters the top k.
  void Offer(Flow flow, DiscoveryRank rank, const InstanceView& view);

  /// Offers an already-materialized instance (used when merging).
  void OfferMaterialized(Flow flow, DiscoveryRank rank,
                         MotifInstance instance);

  /// Moves every entry of `other` into this collector. Order-insensitive:
  /// merging batch collectors in any order yields the k best of the
  /// union.
  void MergeFrom(TopKCollector&& other);

  /// Empties the collector, returning entries sorted by decreasing flow
  /// with rank breaking ties (earlier discoveries first).
  std::vector<TopKEntry> Drain();

 private:
  struct Item {
    Flow flow;
    DiscoveryRank rank;
    MotifInstance instance;
  };
  /// True when a outranks b: strictly more flow, or equal flow and
  /// earlier discovery.
  static bool Outranks(const Item& a, const Item& b) {
    if (a.flow != b.flow) return a.flow > b.flow;
    return a.rank < b.rank;
  }
  struct WorstOnTop {
    bool operator()(const Item& a, const Item& b) const {
      return Outranks(a, b);
    }
  };

  int64_t k_;
  std::priority_queue<Item, std::vector<Item>, WorstOnTop> heap_;
};

/// The thread-safe floating top-k threshold of the engine's parallel
/// path: a monotonically increasing atomic lower bound on the global
/// k-th best flow. The exposed bound admits flows *equal* to the
/// recorded k-th best — unlike the serial TopKSearcher threshold —
/// because an equal-flow instance from a match that serial order would
/// have visited earlier can still win the rank tie-break; TopKCollector
/// rejects the ones that cannot.
///
/// Constructed with a capacity k, Observe() maintains the k best flows
/// emitted across *all* workers and raises the bound to their minimum —
/// the global k-th best across partially filled collectors. This is
/// strictly tighter than waiting for a single worker's collector to
/// fill (the global k best dominate any one worker's k best pointwise),
/// and it recovers the serial pruning rate: with one thread the bound
/// tracks exactly the serial searcher's k-th-best-so-far.
///
/// Soundness does not depend on readers seeing the newest bound: a
/// stale read yields a *looser* bound, which admits extra candidates
/// but never drops one, and every admitted candidate is re-checked by a
/// bounded TopKCollector, so an instance below the final cut can never
/// re-enter the results. The acquire/release pairing below makes each
/// published bound a self-contained certificate ("k instances with at
/// least this flow were emitted before this store") and keeps the
/// per-thread sequence of observed bounds monotone.
class SharedFlowThreshold {
 public:
  /// A threshold without capacity: only RaiseToKthBest certificates
  /// feed it (Observe is a no-op).
  SharedFlowThreshold() = default;

  /// A threshold tracking the k best observed flows; k >= 1.
  explicit SharedFlowThreshold(int64_t k);

  /// Value for EnumerationOptions::dynamic_min_flow_exclusive: the
  /// largest double strictly below the recorded k-th best (so the
  /// enumerator's strict `flow > bound` check admits flow == k-th
  /// best), or 0 while fewer than k instances are known.
  Flow ExclusiveBound() const;

  /// Raises the bound to `kth_best`, the k-th best flow of some worker's
  /// full local collector — a certificate that k instances with at
  /// least that flow exist globally. No-op if the bound is already
  /// higher.
  void RaiseToKthBest(Flow kth_best);

  /// Records one emitted instance's flow. Once k flows are known the
  /// bound rises to the k-th best of everything observed so far. A
  /// lock-free fast path discards flows that cannot tighten the bound,
  /// so the mutex is only contended while the bound is still moving.
  void Observe(Flow flow);

 private:
  std::atomic<Flow> kth_best_{0.0};

  // Observe() state: the k best flows seen, as a min-heap.
  int64_t k_ = 0;
  std::atomic<bool> saturated_{false};  // k flows recorded
  std::mutex mu_;
  std::priority_queue<Flow, std::vector<Flow>, std::greater<Flow>> best_;
};

/// Top-k flow motif search (Sec. 5): instead of a fixed phi, find the k
/// instances with the largest flow f(GI) among all maximal instances that
/// satisfy delta. Implemented exactly as the paper describes — the
/// two-phase enumerator runs with phi = 0 and a floating threshold equal
/// to the k-th best flow found so far, which tightens the prefix pruning
/// as results accumulate.
class TopKSearcher {
 public:
  /// One result entry.
  using Entry = TopKEntry;

  struct Result {
    /// Entries sorted by decreasing flow (ties broken by discovery order).
    std::vector<Entry> entries;
    /// Counters from the underlying enumeration run.
    EnumerationResult stats;

    /// Flow of the k-th (last) entry, or 0 if fewer than k were found.
    Flow KthFlow(size_t k) const {
      return entries.size() >= k && k > 0 ? entries[k - 1].flow : 0.0;
    }
  };

  /// `k` must be >= 1. `delta` is the motif duration bound.
  TopKSearcher(const TimeSeriesGraph& graph, const Motif& motif,
               Timestamp delta, int64_t k);
  // The searcher keeps a reference to the graph: temporaries would dangle.
  TopKSearcher(TimeSeriesGraph&&, const Motif&, Timestamp, int64_t) = delete;

  /// Runs the search over the whole graph.
  Result Run() const;

  /// Runs phase P2 only over precomputed structural matches (benchmarks
  /// isolating P2, Fig. 12).
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  int64_t k_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_TOPK_H_
