#include "core/instance.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace flowmotif {

Flow MotifInstance::InstanceFlow() const {
  Flow min_flow = std::numeric_limits<Flow>::infinity();
  for (const auto& set : edge_sets) {
    Flow sum = 0.0;
    for (const Interaction& x : set) sum += x.f;
    min_flow = std::min(min_flow, sum);
  }
  return edge_sets.empty() ? 0.0 : min_flow;
}

Timestamp MotifInstance::StartTime() const {
  Timestamp t = std::numeric_limits<Timestamp>::max();
  for (const auto& set : edge_sets) {
    for (const Interaction& x : set) t = std::min(t, x.t);
  }
  return t;
}

Timestamp MotifInstance::EndTime() const {
  Timestamp t = std::numeric_limits<Timestamp>::min();
  for (const auto& set : edge_sets) {
    for (const Interaction& x : set) t = std::max(t, x.t);
  }
  return t;
}

std::string MotifInstance::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < edge_sets.size(); ++i) {
    if (i > 0) os << ", ";
    os << 'e' << (i + 1) << " <- {";
    for (size_t j = 0; j < edge_sets[i].size(); ++j) {
      if (j > 0) os << ',';
      os << edge_sets[i][j];
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

bool operator<(const MotifInstance& a, const MotifInstance& b) {
  if (a.binding != b.binding) return a.binding < b.binding;
  return a.edge_sets < b.edge_sets;
}

namespace {

/// True iff `set` is a subset of the series (every element appears; the
/// series may hold duplicates, so match multiplicities greedily — both
/// sides are sorted).
bool IsSubsetOfSeries(const std::vector<Interaction>& set,
                      const EdgeSeries& series) {
  size_t cursor = 0;
  for (const Interaction& x : set) {
    bool found = false;
    while (cursor < series.size() && series.time(cursor) <= x.t) {
      if (series.time(cursor) == x.t && series.flow(cursor) == x.f) {
        ++cursor;
        found = true;
        break;
      }
      ++cursor;
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

Status ValidateInstance(const TimeSeriesGraph& graph, const Motif& motif,
                        const MotifInstance& instance, Timestamp delta,
                        Flow phi) {
  const int m = motif.num_edges();
  if (static_cast<int>(instance.binding.size()) != motif.num_nodes()) {
    return Status::InvalidArgument("binding size != motif node count");
  }
  if (static_cast<int>(instance.edge_sets.size()) != m) {
    return Status::InvalidArgument("edge-set count != motif edge count");
  }

  // Bijection: distinct motif nodes map to distinct graph vertices.
  std::set<VertexId> used;
  for (VertexId v : instance.binding) {
    if (v < 0 || v >= graph.num_vertices()) {
      return Status::InvalidArgument("binding vertex out of range");
    }
    if (!used.insert(v).second) {
      return Status::InvalidArgument("binding is not injective");
    }
  }

  for (int i = 0; i < m; ++i) {
    const auto [src_node, dst_node] = motif.edge(i);
    const VertexId u = instance.binding[static_cast<size_t>(src_node)];
    const VertexId v = instance.binding[static_cast<size_t>(dst_node)];
    const std::vector<Interaction>& set =
        instance.edge_sets[static_cast<size_t>(i)];
    if (set.empty()) {
      return Status::InvalidArgument("edge-set " + std::to_string(i + 1) +
                                     " is empty");
    }
    if (!std::is_sorted(set.begin(), set.end())) {
      return Status::InvalidArgument("edge-set " + std::to_string(i + 1) +
                                     " is not sorted by time");
    }
    const EdgeSeries* series = graph.FindSeries(u, v);
    if (series == nullptr) {
      return Status::InvalidArgument("no graph edge for motif edge " +
                                     std::to_string(i + 1));
    }
    if (!IsSubsetOfSeries(set, *series)) {
      return Status::InvalidArgument("edge-set " + std::to_string(i + 1) +
                                     " is not a subset of the pair series");
    }
    Flow sum = 0.0;
    for (const Interaction& x : set) sum += x.f;
    if (sum < phi) {
      return Status::InvalidArgument(
          "edge-set " + std::to_string(i + 1) + " flow " +
          std::to_string(sum) + " below phi " + std::to_string(phi));
    }
  }

  // Strict time separation between consecutive edge-sets. Because the
  // motif's edges form a path, this implies the paper's pairwise
  // time-respecting condition for all label-ordered adjacent edges.
  for (int i = 0; i + 1 < m; ++i) {
    const Timestamp last_i =
        instance.edge_sets[static_cast<size_t>(i)].back().t;
    const Timestamp first_next =
        instance.edge_sets[static_cast<size_t>(i) + 1].front().t;
    if (!(last_i < first_next)) {
      return Status::InvalidArgument(
          "edge-sets " + std::to_string(i + 1) + " and " +
          std::to_string(i + 2) + " are not strictly time-separated");
    }
  }

  if (instance.Span() > delta) {
    return Status::InvalidArgument("instance span " +
                                   std::to_string(instance.Span()) +
                                   " exceeds delta " + std::to_string(delta));
  }
  return Status::OK();
}

bool IsMaximalInstance(const TimeSeriesGraph& graph, const Motif& motif,
                       const MotifInstance& instance, Timestamp delta) {
  const int m = motif.num_edges();
  const Timestamp start = instance.StartTime();
  const Timestamp end = instance.EndTime();

  for (int i = 0; i < m; ++i) {
    const auto [src_node, dst_node] = motif.edge(i);
    const VertexId u = instance.binding[static_cast<size_t>(src_node)];
    const VertexId v = instance.binding[static_cast<size_t>(dst_node)];
    const EdgeSeries* series = graph.FindSeries(u, v);
    FLOWMOTIF_CHECK(series != nullptr);
    const std::vector<Interaction>& set =
        instance.edge_sets[static_cast<size_t>(i)];

    // An added element x must keep strict separation from the neighbor
    // edge-sets and keep the overall span within delta. Added flow can
    // only increase edge flows, so phi can never be violated by addition.
    const Timestamp order_lo =
        i > 0 ? instance.edge_sets[static_cast<size_t>(i) - 1].back().t
              : std::numeric_limits<Timestamp>::min();
    const Timestamp order_hi =
        i + 1 < m ? instance.edge_sets[static_cast<size_t>(i) + 1].front().t
                  : std::numeric_limits<Timestamp>::max();

    for (size_t idx = 0; idx < series->size(); ++idx) {
      const Interaction x = series->at(idx);
      if (!(x.t > order_lo && x.t < order_hi)) continue;
      const Timestamp new_start = std::min(start, x.t);
      const Timestamp new_end = std::max(end, x.t);
      if (new_end - new_start > delta) continue;
      // x fits; it is addable unless every series occurrence of this
      // (t, f) value is already in the set (multiset-aware comparison).
      size_t in_series = 0;
      for (size_t k = 0; k < series->size(); ++k) {
        if (series->time(k) == x.t && series->flow(k) == x.f) ++in_series;
      }
      size_t in_set = 0;
      for (const Interaction& y : set) {
        if (y.t == x.t && y.f == x.f) ++in_set;
      }
      if (in_series > in_set) {
        return false;  // a spare occurrence of x can extend the instance
      }
    }
  }
  return true;
}

}  // namespace flowmotif
