#include "core/window_cursor.h"

#include <functional>

#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace flowmotif {

bool MotifHasInteriorNode(const Motif& motif) {
  const auto [f_src, f_dst] = motif.edge(0);
  const auto [l_src, l_dst] = motif.edge(motif.num_edges() - 1);
  for (int node = 0; node < motif.num_nodes(); ++node) {
    if (node != f_src && node != f_dst && node != l_src && node != l_dst) {
      return true;
    }
  }
  return false;
}

bool ShouldUseWindowCache(const SharedWindowCache* cache,
                          const Motif& motif) {
  return cache != nullptr &&
         (cache->cross_graph() || cache->has_fallback_tier() ||
          MotifHasInteriorNode(motif));
}

void ChargeComputedWindows(QueryControl* control, size_t num_windows,
                           size_t container_bytes) {
  if (control == nullptr) return;
  const int64_t elements = static_cast<int64_t>(num_windows);
  control->ChargeWindowElements(elements, failpoint::kCacheWindows);
  control->ChargeMemoryBytes(
      elements * static_cast<int64_t>(sizeof(Window)) +
          static_cast<int64_t>(container_bytes),
      failpoint::kCacheWindows);
}

SharedWindowCache* ResolveWindowCache(
    SharedWindowCache* injected, const Motif& motif, Timestamp delta,
    std::unique_ptr<SharedWindowCache>* owned) {
  if (ShouldUseWindowCache(injected, motif)) {
    // Injected cache: read when pairs repeat within one graph (interior
    // node) or when the cache is cross-graph (a permutation ensemble
    // re-presents every pair once per view).
    FLOWMOTIF_CHECK_EQ(injected->delta(), delta)
        << "shared window cache bound to a different delta";
    return injected;
  }
  if (MotifHasInteriorNode(motif)) {
    *owned = std::make_unique<SharedWindowCache>(delta);
    return owned->get();
  }
  // Without an interior node the (first, last) series pin the whole
  // binding, so within one graph a pair never repeats and caching could
  // never hit — pure insert traffic.
  return nullptr;
}

void ResolveMatchSeries(const TimeSeriesGraph& graph, const Motif& motif,
                        const MatchBinding& binding,
                        std::vector<const EdgeSeries*>* series) {
  const int m = motif.num_edges();
  series->resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [src, dst] = motif.edge(i);
    const EdgeSeries* s = graph.FindSeries(binding[static_cast<size_t>(src)],
                                           binding[static_cast<size_t>(dst)]);
    FLOWMOTIF_CHECK(s != nullptr)
        << "binding is not a structural match of " << motif.name();
    (*series)[static_cast<size_t>(i)] = s;
  }
}

void UnionTimeline::Build(const std::vector<const EdgeSeries*>& series,
                          const WindowCursorSet& cursors) {
  const size_t m = series.size();
  times_.clear();
  heads_.assign(cursors.lo_indices().begin(), cursors.lo_indices().end());
  while (true) {
    Timestamp next = 0;
    bool any = false;
    for (size_t k = 0; k < m; ++k) {
      if (heads_[k] >= cursors.hi(k)) continue;
      const Timestamp t = series[k]->time(heads_[k]);
      if (!any || t < next) {
        next = t;
        any = true;
      }
    }
    if (!any) break;
    times_.push_back(next);
    for (size_t k = 0; k < m; ++k) {
      while (heads_[k] < cursors.hi(k) &&
             series[k]->time(heads_[k]) == next) {
        ++heads_[k];
      }
    }
  }
}

void TimelineOffsets::Build(const std::vector<const EdgeSeries*>& series,
                            const WindowCursorSet& cursors,
                            const UnionTimeline& timeline) {
  const size_t m = series.size();
  tau_ = timeline.size();
  lower_.resize(m * tau_);
  upper_.resize(m * tau_);
  for (size_t k = 0; k < m; ++k) {
    const std::vector<Timestamp>& times = series[k]->times();
    const size_t series_end = cursors.hi(k);
    size_t lower = cursors.lo(k);
    size_t upper = cursors.lo(k);
    size_t* lower_row = lower_.data() + k * tau_;
    size_t* upper_row = upper_.data() + k * tau_;
    for (size_t i = 0; i < tau_; ++i) {
      const Timestamp t = timeline[i];
      while (lower < series_end && times[lower] < t) ++lower;
      lower_row[i] = lower;
      if (upper < lower) upper = lower;
      while (upper < series_end && times[upper] <= t) ++upper;
      upper_row[i] = upper;
    }
  }
}

const std::vector<Window>& WindowListMru::GetOrCompute(
    SharedWindowCache* cache, const EdgeSeries& first,
    const EdgeSeries& last, Timestamp delta, QueryControl* charge) {
  if (cache != nullptr) {
    const std::vector<Window>* cached = cache->Get(first, last, charge);
    if (cached != nullptr) return *cached;
  }
  if (first_id_ == first.timestamp_identity() &&
      last_id_ == last.timestamp_identity()) {
    return windows_;
  }
  ComputeProcessedWindows(first, last, delta, &windows_);
  first_id_ = first.timestamp_identity();
  last_id_ = last.timestamp_identity();
  ChargeComputedWindows(charge, windows_.size(), 0);
  return windows_;
}

namespace {

/// Smallest power of two >= n (n <= 2^63).
size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

struct SharedWindowCache::Node {
  StorageIdentity first_id;
  StorageIdentity last_id;
  std::vector<Window> windows;
  Node* next;
};

/// One entry pool: a fixed open-hashed bucket array of insert-only node
/// chains plus a reservation counter. A non-generational cache owns
/// exactly one for its lifetime; a generational cache rotates through
/// shared_ptr-owned ones, each freed when the last lease drops it.
struct SharedWindowCache::Generation {
  explicit Generation(size_t cap)
      : max_entries(cap),
        // Load factor <= 1 at saturation; the bucket array is fixed for
        // the generation's lifetime, which is what keeps reads
        // lock-free.
        buckets(NextPowerOfTwo(cap == 0 ? 1 : cap)) {
    for (std::atomic<Node*>& bucket : buckets) {
      bucket.store(nullptr, std::memory_order_relaxed);
    }
  }

  ~Generation() {
    for (std::atomic<Node*>& bucket : buckets) {
      Node* node = bucket.load(std::memory_order_acquire);
      while (node != nullptr) {
        Node* next = node->next;
        delete node;
        node = next;
      }
    }
  }

  const size_t max_entries;
  std::vector<std::atomic<Node*>> buckets;
  std::atomic<size_t> size{0};
};

namespace {

size_t HashIdentity(const StorageIdentity& id) {
  const size_t h = std::hash<const void*>()(id.storage);
  return h ^ (std::hash<size_t>()(id.epoch) + 0x9e3779b9u + (h << 6) +
              (h >> 2));
}

size_t PairHash(const StorageIdentity& first_id,
                const StorageIdentity& last_id) {
  const size_t h = HashIdentity(first_id);
  return h ^ (HashIdentity(last_id) + 0x9e3779b9u + (h << 6) + (h >> 2));
}

}  // namespace

SharedWindowCache::SharedWindowCache(Timestamp delta, size_t max_entries,
                                     bool cross_graph)
    : SharedWindowCache(delta, max_entries, cross_graph,
                        /*generational=*/false) {}

SharedWindowCache::SharedWindowCache(Timestamp delta, size_t max_entries,
                                     bool cross_graph, bool generational)
    : delta_(delta),
      max_entries_(max_entries),
      cross_graph_(cross_graph),
      generational_(generational) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  if (generational_) {
    cur_ = std::make_shared<Generation>(max_entries_);
  } else {
    base_ = std::make_unique<Generation>(max_entries_);
  }
}

std::unique_ptr<SharedWindowCache> SharedWindowCache::MakeGenerational(
    Timestamp delta, size_t max_entries_per_generation) {
  return std::unique_ptr<SharedWindowCache>(
      new SharedWindowCache(delta, max_entries_per_generation,
                            /*cross_graph=*/false, /*generational=*/true));
}

SharedWindowCache::~SharedWindowCache() = default;

void SharedWindowCache::set_fallback_tier(SharedWindowCache* tier) {
  tier_ = tier;
  if (tier != nullptr && tier->generational_) {
    std::lock_guard<std::mutex> lock(tier_lease_mu_);
    tier_lease_ = tier->AcquireTierLease();
  }
}

size_t SharedWindowCache::size() const {
  if (!generational_) return base_->size.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(gen_mu_);
  size_t total = cur_->size.load(std::memory_order_acquire);
  if (prev_ != nullptr) total += prev_->size.load(std::memory_order_acquire);
  return total;
}

SharedWindowCache::Node* SharedWindowCache::FindIn(
    const Generation& gen, const StorageIdentity& first_id,
    const StorageIdentity& last_id) {
  const std::atomic<Node*>& bucket =
      gen.buckets[PairHash(first_id, last_id) & (gen.buckets.size() - 1)];
  for (Node* node = bucket.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    if (node->first_id == first_id && node->last_id == last_id) return node;
  }
  return nullptr;
}

bool SharedWindowCache::TryReserve(Generation* gen) {
  // Reserve a slot before building. The CAS loop (rather than a
  // blind fetch_add with rollback) keeps `size()` <= max_entries even
  // transiently, and once saturated every further miss costs one
  // relaxed load — no contended RMW on the shared counter.
  size_t reserved = gen->size.load(std::memory_order_relaxed);
  while (true) {
    if (reserved >= gen->max_entries) return false;
    if (gen->size.compare_exchange_weak(reserved, reserved + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
}

const std::vector<Window>* SharedWindowCache::InsertReserved(Generation* gen,
                                                             Node* node) {
  std::atomic<Node*>& bucket =
      gen->buckets[PairHash(node->first_id, node->last_id) &
                   (gen->buckets.size() - 1)];
  // CAS-insert at the bucket head. A racing insert of the same key may
  // have published between the caller's lookup miss and here, so every
  // attempt first scans the chain prefix not yet examined (insert-only
  // means new nodes only ever prepend); on finding the racer we adopt
  // its list, delete ours, and release the reserved slot.
  Node* scanned_until = nullptr;
  Node* expected = bucket.load(std::memory_order_acquire);
  while (true) {
    for (Node* other = expected; other != scanned_until;
         other = other->next) {
      if (other->first_id == node->first_id &&
          other->last_id == node->last_id) {
        const std::vector<Window>* windows = &other->windows;
        delete node;
        gen->size.fetch_sub(1, std::memory_order_acq_rel);
        return windows;
      }
    }
    scanned_until = expected;
    node->next = expected;
    if (bucket.compare_exchange_weak(expected, node,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
      return &node->windows;
    }
  }
}

const std::vector<Window>* SharedWindowCache::Get(const EdgeSeries& first,
                                                  const EdgeSeries& last,
                                                  QueryControl* charge) {
  FLOWMOTIF_CHECK(!generational_)
      << "generational caches are read through a TierLease (LeasedGet)";
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // The key is the timestamp-storage identity, not the series address:
  // a flow-permuted view hits the entry its source series published.
  const StorageIdentity first_id = first.timestamp_identity();
  const StorageIdentity last_id = last.timestamp_identity();
  if (Node* node = FindIn(*base_, first_id, last_id)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &node->windows;
  }

  // Budget charges land on the per-call control when given (the tier
  // case: one cache, many queries), else on the attached per-query one.
  QueryControl* const control = charge != nullptr ? charge : control_;

  // Miss: before computing anything ourselves, fall through to the
  // cross-query tier — it either serves a warm list another query
  // published or publishes ours (charged to this query's control).
  // Tier entries are as immutable and as long-lived as this query (the
  // lease pins a generational tier's generations), so the pointer is
  // returned directly and this cache stays empty for pairs the tier
  // holds. A saturated non-generational tier returns null and we
  // proceed with the private publish below.
  if (tier_ != nullptr) {
    const std::vector<Window>* from_tier = nullptr;
    if (tier_->generational_) {
      std::lock_guard<std::mutex> lock(tier_lease_mu_);
      from_tier = tier_->LeasedGet(&tier_lease_, first, last, control);
    } else {
      from_tier = tier_->Get(first, last, control);
    }
    if (from_tier != nullptr) return from_tier;
  }

  if (!TryReserve(base_.get())) return nullptr;

  Node* node = new Node{first_id, last_id,
                        ComputeProcessedWindows(first, last, delta_),
                        nullptr};
  // Budget accounting happens at materialization, the only point
  // where this query allocates window storage that outlives a match.
  ChargeComputedWindows(control, node->windows.size(), sizeof(Node));
  return InsertReserved(base_.get(), node);
}

SharedWindowCache::TierLease SharedWindowCache::AcquireTierLease() {
  FLOWMOTIF_CHECK(generational_);
  TierLease lease;
  std::lock_guard<std::mutex> lock(gen_mu_);
  lease.cur_ = cur_;
  lease.prev_ = prev_;
  return lease;
}

void SharedWindowCache::Rotate(TierLease* lease) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  if (cur_ == lease->cur_) {
    // This lease saw the newest generation saturated: rotate. The old
    // previous generation leaves the publication path here, but its
    // nodes live on until every lease that served pointers from it
    // drains — that, not the rotation, is the free point.
    prev_ = std::move(cur_);
    cur_ = std::make_shared<Generation>(max_entries_);
    rotations_.fetch_add(1, std::memory_order_relaxed);
  }
  // Refresh the lease to the cache's current pair (another reader — or
  // a sweep — may already have moved it past the saturated generation
  // this lease saw). Everything the lease moves past stays retained.
  lease->retained_.push_back(std::move(lease->cur_));
  if (lease->prev_ != nullptr) {
    lease->retained_.push_back(std::move(lease->prev_));
  }
  lease->cur_ = cur_;
  lease->prev_ = prev_;
}

const std::vector<Window>* SharedWindowCache::LeasedGet(
    TierLease* lease, const EdgeSeries& first, const EdgeSeries& last,
    QueryControl* charge) {
  FLOWMOTIF_CHECK(generational_);
  FLOWMOTIF_CHECK(lease != nullptr && lease->active());
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const StorageIdentity first_id = first.timestamp_identity();
  const StorageIdentity last_id = last.timestamp_identity();
  if (Node* node = FindIn(*lease->cur_, first_id, last_id)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &node->windows;
  }
  if (lease->prev_ != nullptr) {
    if (Node* node = FindIn(*lease->prev_, first_id, last_id)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Clock second chance: copy the touched entry into the current
      // generation so it survives the next rotation. Not billed — the
      // windows were charged when first materialized. If the current
      // generation is full the hit is still served from previous (the
      // next miss will rotate anyway).
      if (TryReserve(lease->cur_.get())) {
        Node* copy = new Node{first_id, last_id, node->windows, nullptr};
        return InsertReserved(lease->cur_.get(), copy);
      }
      return &node->windows;
    }
  }
  QueryControl* const control = charge != nullptr ? charge : control_;
  if (max_entries_ == 0) return nullptr;
  // Saturated: rotate instead of declining, then retry through the
  // refreshed lease. Loop, not a single retry — under contention the
  // refreshed current generation may already have been filled by other
  // threads, and each Rotate call either installs a fresh generation
  // or moves the lease to a strictly newer one, so this terminates.
  while (!TryReserve(lease->cur_.get())) {
    Rotate(lease);
  }
  Node* node = new Node{first_id, last_id,
                        ComputeProcessedWindows(first, last, delta_),
                        nullptr};
  ChargeComputedWindows(control, node->windows.size(), sizeof(Node));
  return InsertReserved(lease->cur_.get(), node);
}

void SharedWindowCache::SweepGenerations(
    const std::function<bool(const StorageIdentity&)>& live) {
  FLOWMOTIF_CHECK(generational_);
  std::lock_guard<std::mutex> lock(gen_mu_);
  auto fresh = std::make_shared<Generation>(max_entries_);
  const Generation* sources[2] = {cur_.get(), prev_.get()};
  bool full = false;
  for (const Generation* gen : sources) {
    if (gen == nullptr || full) continue;
    for (const std::atomic<Node*>& bucket : gen->buckets) {
      if (full) break;
      for (Node* node = bucket.load(std::memory_order_acquire);
           node != nullptr; node = node->next) {
        if (!live(node->first_id) || !live(node->last_id)) continue;
        // Current generation is copied first, so on a duplicate key the
        // fresher entry wins (they are byte-identical anyway: same
        // identities, same delta).
        if (FindIn(*fresh, node->first_id, node->last_id) != nullptr) {
          continue;
        }
        if (!TryReserve(fresh.get())) {
          full = true;
          break;
        }
        Node* copy =
            new Node{node->first_id, node->last_id, node->windows, nullptr};
        InsertReserved(fresh.get(), copy);
      }
    }
  }
  prev_.reset();
  cur_ = std::move(fresh);
}

}  // namespace flowmotif
