#include "core/window_cursor.h"

#include <functional>

#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace flowmotif {

bool MotifHasInteriorNode(const Motif& motif) {
  const auto [f_src, f_dst] = motif.edge(0);
  const auto [l_src, l_dst] = motif.edge(motif.num_edges() - 1);
  for (int node = 0; node < motif.num_nodes(); ++node) {
    if (node != f_src && node != f_dst && node != l_src && node != l_dst) {
      return true;
    }
  }
  return false;
}

bool ShouldUseWindowCache(const SharedWindowCache* cache,
                          const Motif& motif) {
  return cache != nullptr &&
         (cache->cross_graph() || cache->has_fallback_tier() ||
          MotifHasInteriorNode(motif));
}

void ChargeComputedWindows(QueryControl* control, size_t num_windows,
                           size_t container_bytes) {
  if (control == nullptr) return;
  const int64_t elements = static_cast<int64_t>(num_windows);
  control->ChargeWindowElements(elements, failpoint::kCacheWindows);
  control->ChargeMemoryBytes(
      elements * static_cast<int64_t>(sizeof(Window)) +
          static_cast<int64_t>(container_bytes),
      failpoint::kCacheWindows);
}

SharedWindowCache* ResolveWindowCache(
    SharedWindowCache* injected, const Motif& motif, Timestamp delta,
    std::unique_ptr<SharedWindowCache>* owned) {
  if (ShouldUseWindowCache(injected, motif)) {
    // Injected cache: read when pairs repeat within one graph (interior
    // node) or when the cache is cross-graph (a permutation ensemble
    // re-presents every pair once per view).
    FLOWMOTIF_CHECK_EQ(injected->delta(), delta)
        << "shared window cache bound to a different delta";
    return injected;
  }
  if (MotifHasInteriorNode(motif)) {
    *owned = std::make_unique<SharedWindowCache>(delta);
    return owned->get();
  }
  // Without an interior node the (first, last) series pin the whole
  // binding, so within one graph a pair never repeats and caching could
  // never hit — pure insert traffic.
  return nullptr;
}

void ResolveMatchSeries(const TimeSeriesGraph& graph, const Motif& motif,
                        const MatchBinding& binding,
                        std::vector<const EdgeSeries*>* series) {
  const int m = motif.num_edges();
  series->resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [src, dst] = motif.edge(i);
    const EdgeSeries* s = graph.FindSeries(binding[static_cast<size_t>(src)],
                                           binding[static_cast<size_t>(dst)]);
    FLOWMOTIF_CHECK(s != nullptr)
        << "binding is not a structural match of " << motif.name();
    (*series)[static_cast<size_t>(i)] = s;
  }
}

void UnionTimeline::Build(const std::vector<const EdgeSeries*>& series,
                          const WindowCursorSet& cursors) {
  const size_t m = series.size();
  times_.clear();
  heads_.assign(cursors.lo_indices().begin(), cursors.lo_indices().end());
  while (true) {
    Timestamp next = 0;
    bool any = false;
    for (size_t k = 0; k < m; ++k) {
      if (heads_[k] >= cursors.hi(k)) continue;
      const Timestamp t = series[k]->time(heads_[k]);
      if (!any || t < next) {
        next = t;
        any = true;
      }
    }
    if (!any) break;
    times_.push_back(next);
    for (size_t k = 0; k < m; ++k) {
      while (heads_[k] < cursors.hi(k) &&
             series[k]->time(heads_[k]) == next) {
        ++heads_[k];
      }
    }
  }
}

void TimelineOffsets::Build(const std::vector<const EdgeSeries*>& series,
                            const WindowCursorSet& cursors,
                            const UnionTimeline& timeline) {
  const size_t m = series.size();
  tau_ = timeline.size();
  lower_.resize(m * tau_);
  upper_.resize(m * tau_);
  for (size_t k = 0; k < m; ++k) {
    const std::vector<Timestamp>& times = series[k]->times();
    const size_t series_end = cursors.hi(k);
    size_t lower = cursors.lo(k);
    size_t upper = cursors.lo(k);
    size_t* lower_row = lower_.data() + k * tau_;
    size_t* upper_row = upper_.data() + k * tau_;
    for (size_t i = 0; i < tau_; ++i) {
      const Timestamp t = timeline[i];
      while (lower < series_end && times[lower] < t) ++lower;
      lower_row[i] = lower;
      if (upper < lower) upper = lower;
      while (upper < series_end && times[upper] <= t) ++upper;
      upper_row[i] = upper;
    }
  }
}

const std::vector<Window>& WindowListMru::GetOrCompute(
    SharedWindowCache* cache, const EdgeSeries& first,
    const EdgeSeries& last, Timestamp delta, QueryControl* charge) {
  if (cache != nullptr) {
    const std::vector<Window>* cached = cache->Get(first, last, charge);
    if (cached != nullptr) return *cached;
  }
  if (first_id_ == first.timestamp_identity() &&
      last_id_ == last.timestamp_identity()) {
    return windows_;
  }
  ComputeProcessedWindows(first, last, delta, &windows_);
  first_id_ = first.timestamp_identity();
  last_id_ = last.timestamp_identity();
  ChargeComputedWindows(charge, windows_.size(), 0);
  return windows_;
}

namespace {

/// Smallest power of two >= n (n <= 2^63).
size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedWindowCache::SharedWindowCache(Timestamp delta, size_t max_entries,
                                     bool cross_graph)
    : delta_(delta),
      max_entries_(max_entries),
      cross_graph_(cross_graph),
      // Load factor <= 1 at saturation; the bucket array is fixed for
      // the cache's lifetime, which is what keeps reads lock-free.
      buckets_(NextPowerOfTwo(max_entries == 0 ? 1 : max_entries)) {
  FLOWMOTIF_CHECK_GE(delta, 0);
  for (std::atomic<Node*>& bucket : buckets_) {
    bucket.store(nullptr, std::memory_order_relaxed);
  }
}

SharedWindowCache::~SharedWindowCache() {
  for (std::atomic<Node*>& bucket : buckets_) {
    Node* node = bucket.load(std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }
}

namespace {

size_t HashIdentity(const StorageIdentity& id) {
  const size_t h = std::hash<const void*>()(id.storage);
  return h ^ (std::hash<size_t>()(id.epoch) + 0x9e3779b9u + (h << 6) +
              (h >> 2));
}

}  // namespace

size_t SharedWindowCache::BucketOf(const StorageIdentity& first_id,
                                   const StorageIdentity& last_id) const {
  const size_t h = HashIdentity(first_id);
  const size_t mixed =
      h ^ (HashIdentity(last_id) + 0x9e3779b9u + (h << 6) + (h >> 2));
  return mixed & (buckets_.size() - 1);
}

const std::vector<Window>* SharedWindowCache::Get(const EdgeSeries& first,
                                                  const EdgeSeries& last,
                                                  QueryControl* charge) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // The key is the timestamp-storage identity, not the series address:
  // a flow-permuted view hits the entry its source series published.
  const StorageIdentity first_id = first.timestamp_identity();
  const StorageIdentity last_id = last.timestamp_identity();
  std::atomic<Node*>& bucket = buckets_[BucketOf(first_id, last_id)];
  Node* const head = bucket.load(std::memory_order_acquire);
  for (Node* node = head; node != nullptr; node = node->next) {
    if (node->first_id == first_id && node->last_id == last_id) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &node->windows;
    }
  }

  // Budget charges land on the per-call control when given (the tier
  // case: one cache, many queries), else on the attached per-query one.
  QueryControl* const control = charge != nullptr ? charge : control_;

  // Miss: before computing anything ourselves, fall through to the
  // cross-query tier — it either serves a warm list another query
  // published or publishes ours (charged to this query's control).
  // Tier entries are as immutable and long-lived as our own, so the
  // pointer is returned directly and this cache stays empty for pairs
  // the tier holds. A saturated tier returns null and we proceed with
  // the private publish below.
  if (tier_ != nullptr) {
    const std::vector<Window>* from_tier = tier_->Get(first, last, control);
    if (from_tier != nullptr) return from_tier;
  }

  // Reserve a slot before building. The CAS loop (rather than a
  // blind fetch_add with rollback) keeps `size()` <= max_entries even
  // transiently, and once saturated every further miss costs one
  // relaxed load — no contended RMW on the shared counter.
  size_t reserved = size_.load(std::memory_order_relaxed);
  while (true) {
    if (reserved >= max_entries_) return nullptr;
    if (size_.compare_exchange_weak(reserved, reserved + 1,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      break;
    }
  }

  Node* node = new Node{first_id, last_id,
                        ComputeProcessedWindows(first, last, delta_),
                        nullptr};
  // Budget accounting happens at materialization, the only point
  // where this query allocates window storage that outlives a match.
  ChargeComputedWindows(control, node->windows.size(), sizeof(Node));
  // CAS-insert at the bucket head. Insert-only means a failed CAS can
  // only have been caused by new nodes prepended since the last load —
  // re-scan just that prefix for a racing insert of the same key.
  Node* scanned_until = head;
  Node* expected = head;
  while (true) {
    node->next = expected;
    if (bucket.compare_exchange_weak(expected, node,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
      return &node->windows;
    }
    for (Node* other = expected; other != scanned_until;
         other = other->next) {
      if (other->first_id == first_id && other->last_id == last_id) {
        delete node;
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return &other->windows;
      }
    }
    scanned_until = expected;
  }
}

}  // namespace flowmotif
