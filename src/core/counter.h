#ifndef FLOWMOTIF_CORE_COUNTER_H_
#define FLOWMOTIF_CORE_COUNTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/motif.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"

namespace flowmotif {

/// Counts flow motif instances without constructing them — the paper's
/// future-work direction (Sec. 7, "counting instances of motifs without
/// constructing them", in the spirit of Paranjape et al.).
///
/// The enumerator's search tree expands every combination of edge-set
/// prefixes even when only the total count is wanted. This module
/// instead counts per window with a memoized recursion: the number of
/// valid ways to instantiate the motif suffix e_i..e_m only depends on
/// (i, first usable element index of e_i), because
///  * phi-feasibility of a prefix of e_i is local to that edge,
///  * the prefix-domination rule depends only on e_i and e_{i+1}, and
///  * the window end is fixed.
/// Distinct enumeration branches that reach the same (i, index) state —
/// which happens whenever different e_{i-1} prefixes end before the same
/// e_i element — therefore share one memo entry, turning the
/// multiplicative tree into a linear pass per window.
///
/// The per-window machinery rides the shared core/window_cursor layer:
/// window lists come from a SharedWindowCache (injected per query by
/// the engine, or privately owned when the motif's (first, last) series
/// pairs can repeat), the per-level window bounds slide on a
/// WindowCursorSet instead of one UpperBound per recursion call, and
/// the recursion's per-element next-edge searches are monotone
/// galloping advances.
class InstanceCounter {
 public:
  struct Result {
    int64_t num_instances = 0;
    int64_t num_structural_matches = 0;
    int64_t num_windows = 0;
    int64_t memo_hits = 0;  // branches answered from the memo
  };

  /// `window_cache` (optional) is the per-query shared cache; it must
  /// outlive the counter and be bound to the same delta. It is read
  /// only when the motif has an interior node — the only shape where a
  /// (first, last) pair can repeat.
  InstanceCounter(const TimeSeriesGraph& graph, const Motif& motif,
                  Timestamp delta, Flow phi,
                  SharedWindowCache* window_cache = nullptr);
  // The counter keeps a reference to the graph: temporaries would dangle.
  InstanceCounter(TimeSeriesGraph&&, const Motif&, Timestamp, Flow,
                  SharedWindowCache* = nullptr) = delete;

  /// Counts over the whole graph (phase P1 + counting per match).
  Result Run() const;

  /// Counts over precomputed structural matches.
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

  /// Counts within a single structural match. `window_mru` (optional)
  /// is a caller-owned one-entry window-list fallback: callers looping
  /// over serial-order matches (RunOnMatches, the engine's batch runs)
  /// pass one so consecutive matches sharing a (first, last) pair reuse
  /// the computed list even when the shared cache declines the pair.
  int64_t CountMatch(const MatchBinding& binding, Result* result,
                     WindowListMru* window_mru = nullptr) const;

  /// Attaches the owning query's lifecycle control (non-owning, may be
  /// null): every window list CountMatch materializes — through the
  /// cache or recomputed into the MRU — is billed against its
  /// WorkBudget at site "cache.windows". QueryControl is internally
  /// synchronized, so one counter shared across workers charges safely.
  /// Set before sharing the counter; must outlive every CountMatch.
  void set_query_control(QueryControl* control) { query_control_ = control; }

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  Flow phi_;
  // Privately owned cache when none is injected and the motif has an
  // interior node (the only shape where a pair repeats).
  std::unique_ptr<SharedWindowCache> owned_cache_;
  SharedWindowCache* cache_;  // null = compute windows per match
  QueryControl* query_control_ = nullptr;  // budget charging; may be null
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_COUNTER_H_
