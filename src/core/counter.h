#ifndef FLOWMOTIF_CORE_COUNTER_H_
#define FLOWMOTIF_CORE_COUNTER_H_

#include <cstdint>
#include <vector>

#include "core/motif.h"
#include "core/structural_match.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"

namespace flowmotif {

/// Counts flow motif instances without constructing them — the paper's
/// future-work direction (Sec. 7, "counting instances of motifs without
/// constructing them", in the spirit of Paranjape et al.).
///
/// The enumerator's search tree expands every combination of edge-set
/// prefixes even when only the total count is wanted. This module
/// instead counts per window with a memoized recursion: the number of
/// valid ways to instantiate the motif suffix e_i..e_m only depends on
/// (i, first usable element index of e_i), because
///  * phi-feasibility of a prefix of e_i is local to that edge,
///  * the prefix-domination rule depends only on e_i and e_{i+1}, and
///  * the window end is fixed.
/// Distinct enumeration branches that reach the same (i, index) state —
/// which happens whenever different e_{i-1} prefixes end before the same
/// e_i element — therefore share one memo entry, turning the
/// multiplicative tree into a linear pass per window.
class InstanceCounter {
 public:
  struct Result {
    int64_t num_instances = 0;
    int64_t num_structural_matches = 0;
    int64_t num_windows = 0;
    int64_t memo_hits = 0;  // branches answered from the memo
  };

  InstanceCounter(const TimeSeriesGraph& graph, const Motif& motif,
                  Timestamp delta, Flow phi);
  // The counter keeps a reference to the graph: temporaries would dangle.
  InstanceCounter(TimeSeriesGraph&&, const Motif&, Timestamp, Flow) = delete;

  /// Counts over the whole graph (phase P1 + counting per match).
  Result Run() const;

  /// Counts over precomputed structural matches.
  Result RunOnMatches(const std::vector<MatchBinding>& matches) const;

  /// Counts within a single structural match.
  int64_t CountMatch(const MatchBinding& binding, Result* result) const;

 private:
  const TimeSeriesGraph& graph_;
  const Motif motif_;
  Timestamp delta_;
  Flow phi_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_COUNTER_H_
