#ifndef FLOWMOTIF_CORE_MULTI_MATCHER_H_
#define FLOWMOTIF_CORE_MULTI_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/motif.h"
#include "graph/time_series_graph.h"
#include "util/status.h"

namespace flowmotif {

/// Shared-prefix structural matching for a *set* of path motifs — the
/// paper's future-work optimization (Sec. 7: "two or more structural
/// matches may share the same prefix, we can compute ... their common
/// prefix simultaneously").
///
/// The motifs' spanning paths are merged into a trie; one depth-first
/// search over graph x trie enumerates the matches of every motif in a
/// single pass, so the work for shared path prefixes (for the paper's
/// catalog, all ten motifs share the prefix 0-1, the three chains are
/// prefixes of each other, etc.) is done once instead of once per motif.
///
/// Requirements: all motifs are spanning-path motifs with canonical node
/// labels — node ids appear in first-occurrence order along the path
/// (0, 1, 2, ...), which makes shared prefixes syntactically identical.
/// Every Fig. 3 catalog motif is canonical.
class MultiStructuralMatcher {
 public:
  /// Visitor receives (motif index within the input set, binding);
  /// return false to stop the whole search.
  using Visitor = std::function<bool(size_t, const MatchBinding&)>;

  /// Validates the motif set; NotFound/InvalidArgument on unsupported
  /// motifs (non-path or non-canonical labels).
  static StatusOr<MultiStructuralMatcher> Create(
      const TimeSeriesGraph& graph, std::vector<Motif> motifs);
  static StatusOr<MultiStructuralMatcher> Create(TimeSeriesGraph&&,
                                                 std::vector<Motif>) = delete;

  /// Streams every (motif, match) pair.
  void FindAll(const Visitor& visitor) const;

  /// Match counts per motif, in input order.
  std::vector<int64_t> CountAll() const;

  int64_t num_trie_nodes() const {
    return static_cast<int64_t>(nodes_.size());
  }

 private:
  /// One trie node: the path position after consuming `depth` path
  /// entries. `terminal_motifs` lists motifs whose path ends here.
  struct TrieNode {
    std::vector<std::pair<MotifNode, size_t>> children;  // (next id, node)
    std::vector<size_t> terminal_motifs;
  };

  MultiStructuralMatcher(const TimeSeriesGraph& graph,
                         std::vector<Motif> motifs);

  void Dfs(size_t node, VertexId prev_vertex, int bound_nodes,
           MatchBinding* binding, std::vector<bool>* vertex_used,
           const Visitor& visitor, bool* stop) const;

  const TimeSeriesGraph& graph_;
  std::vector<Motif> motifs_;
  std::vector<TrieNode> nodes_;  // nodes_[0] is the root (empty path)
  int max_nodes_ = 0;            // max motif node count across the set
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_MULTI_MATCHER_H_
