#include "core/topk.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace flowmotif {

namespace {

/// Bounded min-heap over instance flows: the top is the current k-th best
/// flow, which doubles as the floating pruning threshold.
class TopKHeap {
 public:
  explicit TopKHeap(int64_t k) : k_(k) {}

  /// Exclusive lower bound for a new instance to be useful.
  Flow Threshold() const {
    return static_cast<int64_t>(heap_.size()) < k_ ? 0.0 : heap_.top().flow;
  }

  void Offer(Flow flow, const InstanceView& view) {
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push({flow, seq_++, view.Materialize()});
      return;
    }
    if (flow > heap_.top().flow) {
      heap_.pop();
      heap_.push({flow, seq_++, view.Materialize()});
    }
  }

  std::vector<TopKSearcher::Entry> Drain() {
    std::vector<Item> items;
    items.reserve(heap_.size());
    while (!heap_.empty()) {
      items.push_back(heap_.top());
      heap_.pop();
    }
    // Heap pops ascending; results are reported by decreasing flow with
    // earlier discoveries first among ties.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.flow != b.flow) return a.flow > b.flow;
      return a.seq < b.seq;
    });
    std::vector<TopKSearcher::Entry> entries;
    entries.reserve(items.size());
    for (Item& item : items) {
      entries.push_back({item.flow, std::move(item.instance)});
    }
    return entries;
  }

 private:
  struct Item {
    Flow flow;
    int64_t seq;
    MotifInstance instance;
  };
  struct MinFlowOrder {
    bool operator()(const Item& a, const Item& b) const {
      if (a.flow != b.flow) return a.flow > b.flow;  // min-heap on flow
      return a.seq < b.seq;  // evict the newest among equal flows
    }
  };

  int64_t k_;
  int64_t seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, MinFlowOrder> heap_;
};

}  // namespace

TopKSearcher::TopKSearcher(const TimeSeriesGraph& graph, const Motif& motif,
                           Timestamp delta, int64_t k)
    : graph_(graph), motif_(motif), delta_(delta), k_(k) {
  FLOWMOTIF_CHECK_GE(k, 1);
}

TopKSearcher::Result TopKSearcher::Run() const {
  TopKHeap heap(k_);
  EnumerationOptions options;
  options.delta = delta_;
  options.phi = 0.0;
  options.dynamic_min_flow_exclusive = [&heap]() { return heap.Threshold(); };
  FlowMotifEnumerator enumerator(graph_, motif_, options);

  Result result;
  result.stats = enumerator.Run([&heap](const InstanceView& view) {
    heap.Offer(view.flow, view);
    return true;
  });
  result.entries = heap.Drain();
  return result;
}

TopKSearcher::Result TopKSearcher::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  TopKHeap heap(k_);
  EnumerationOptions options;
  options.delta = delta_;
  options.phi = 0.0;
  options.dynamic_min_flow_exclusive = [&heap]() { return heap.Threshold(); };
  FlowMotifEnumerator enumerator(graph_, motif_, options);

  Result result;
  result.stats = enumerator.RunOnMatches(
      matches, [&heap](const InstanceView& view) {
        heap.Offer(view.flow, view);
        return true;
      });
  result.entries = heap.Drain();
  return result;
}

}  // namespace flowmotif
