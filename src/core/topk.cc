#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace flowmotif {

TopKCollector::TopKCollector(int64_t k) : k_(k) {
  FLOWMOTIF_CHECK_GE(k, 1);
}

void TopKCollector::Offer(Flow flow, DiscoveryRank rank,
                          const InstanceView& view) {
  if (full() && !Outranks(Item{flow, rank, {}}, heap_.top())) return;
  OfferMaterialized(flow, rank, view.Materialize());
}

void TopKCollector::OfferMaterialized(Flow flow, DiscoveryRank rank,
                                      MotifInstance instance) {
  if (!full()) {
    heap_.push(Item{flow, rank, std::move(instance)});
    return;
  }
  if (!Outranks(Item{flow, rank, {}}, heap_.top())) return;
  heap_.pop();
  heap_.push(Item{flow, rank, std::move(instance)});
}

void TopKCollector::MergeFrom(TopKCollector&& other) {
  while (!other.heap_.empty()) {
    // priority_queue::top() is const; the instance is copied. Merge
    // traffic is at most k instances per batch, negligible next to the
    // enumeration itself.
    Item item = other.heap_.top();
    other.heap_.pop();
    OfferMaterialized(item.flow, item.rank, std::move(item.instance));
  }
}

std::vector<TopKEntry> TopKCollector::Drain() {
  std::vector<Item> items;
  items.reserve(heap_.size());
  while (!heap_.empty()) {
    items.push_back(heap_.top());
    heap_.pop();
  }
  std::sort(items.begin(), items.end(), Outranks);
  std::vector<TopKEntry> entries;
  entries.reserve(items.size());
  for (Item& item : items) {
    entries.push_back({item.flow, std::move(item.instance)});
  }
  return entries;
}

SharedFlowThreshold::SharedFlowThreshold(int64_t k) : k_(k) {
  FLOWMOTIF_CHECK_GE(k, 1);
}

Flow SharedFlowThreshold::ExclusiveBound() const {
  // Acquire pairs with the release in RaiseToKthBest: a reader that
  // observes a raised bound also observes everything the raiser did
  // first, so the bound it acts on is a completed certificate. A stale
  // (older, looser) value is harmless — see the class comment.
  const Flow kth = kth_best_.load(std::memory_order_acquire);
  if (kth <= 0.0) return 0.0;
  return std::nextafter(kth, -std::numeric_limits<Flow>::infinity());
}

void SharedFlowThreshold::RaiseToKthBest(Flow kth_best) {
  // CAS-max keeps the bound monotone under concurrent raises; the
  // release makes each successful raise a publication point.
  Flow current = kth_best_.load(std::memory_order_relaxed);
  while (kth_best > current &&
         !kth_best_.compare_exchange_weak(current, kth_best,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

void SharedFlowThreshold::Observe(Flow flow) {
  if (k_ <= 0) return;
  // Fast path: once k flows are recorded, a flow at or below the
  // current bound cannot tighten it. The acquire on `saturated_` pairs
  // with the release below so the subsequent bound load is meaningful.
  if (saturated_.load(std::memory_order_acquire) &&
      flow <= kth_best_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(best_.size()) < k_) {
    best_.push(flow);
    if (static_cast<int64_t>(best_.size()) == k_) {
      RaiseToKthBest(best_.top());
      saturated_.store(true, std::memory_order_release);
    }
    return;
  }
  if (flow <= best_.top()) return;
  best_.pop();
  best_.push(flow);
  RaiseToKthBest(best_.top());
}

TopKSearcher::TopKSearcher(const TimeSeriesGraph& graph, const Motif& motif,
                           Timestamp delta, int64_t k)
    : graph_(graph), motif_(motif), delta_(delta), k_(k) {
  FLOWMOTIF_CHECK_GE(k, 1);
}

TopKSearcher::Result TopKSearcher::Run() const {
  TopKCollector collector(k_);
  EnumerationOptions options;
  options.delta = delta_;
  options.phi = 0.0;
  options.dynamic_min_flow_exclusive = [&collector]() {
    return collector.KthBestFlow();
  };
  FlowMotifEnumerator enumerator(graph_, motif_, options);

  Result result;
  int64_t seq = 0;
  result.stats = enumerator.Run([&collector, &seq](const InstanceView& view) {
    collector.Offer(view.flow, DiscoveryRank{0, seq++}, view);
    return true;
  });
  result.entries = collector.Drain();
  return result;
}

TopKSearcher::Result TopKSearcher::RunOnMatches(
    const std::vector<MatchBinding>& matches) const {
  TopKCollector collector(k_);
  EnumerationOptions options;
  options.delta = delta_;
  options.phi = 0.0;
  options.dynamic_min_flow_exclusive = [&collector]() {
    return collector.KthBestFlow();
  };
  FlowMotifEnumerator enumerator(graph_, motif_, options);

  Result result;
  int64_t seq = 0;
  result.stats = enumerator.RunOnMatches(
      matches, [&collector, &seq](const InstanceView& view) {
        collector.Offer(view.flow, DiscoveryRank{0, seq++}, view);
        return true;
      });
  result.entries = collector.Drain();
  return result;
}

}  // namespace flowmotif
