#include "core/significance.h"

#include <algorithm>

#include "core/structural_match.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {

namespace {

/// Cap of the per-Analyze cross-graph window cache. Every entry is hit
/// N+1 times across the ensemble (and once per motif in AnalyzeAll), so
/// a larger cap than the per-query default pays for itself; memory stays
/// bounded at max_entries window lists.
constexpr size_t kEnsembleCacheEntries = 4096;

}  // namespace

SignificanceAnalyzer::SignificanceAnalyzer(const TimeSeriesGraph& graph,
                                           const Options& options)
    : graph_(graph), options_(options) {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
}

std::vector<TimeSeriesGraph> SignificanceAnalyzer::GeneratePermutedViews()
    const {
  // The RNG stream is keyed on the seed only and consumed serially, so
  // view i is the same graph regardless of pool size, motif set, or
  // which motif is analyzed first — as in the paper, one set of
  // randomized datasets serves all motifs. Views share the real graph's
  // timestamp/topology storage and own only permuted flow arrays, so
  // holding the whole ensemble costs N flow/prefix arrays, not N graph
  // copies.
  Rng rng(options_.seed);
  std::vector<TimeSeriesGraph> views;
  views.reserve(static_cast<size_t>(options_.num_random_graphs));
  for (int i = 0; i < options_.num_random_graphs; ++i) {
    views.push_back(graph_.WithPermutedFlows(&rng));
  }
  return views;
}

SignificanceAnalyzer::PreparedMotif SignificanceAnalyzer::Prepare(
    const Motif& motif, SharedWindowCache* cache) const {
  PreparedMotif prepared;
  prepared.enum_options.delta = options_.delta;
  prepared.enum_options.phi = options_.phi;
  // One cross-graph cache for the whole ensemble: the views share the
  // real graph's timestamp storage, and the cache keys on that identity,
  // so a window list computed for any task is a hit for every other —
  // per-permutation window work drops to (almost) zero.
  prepared.enum_options.shared_window_cache = cache;

  // Structural matches are flow-independent: compute once on the real
  // graph and reuse on every permutation (Sec. 6.3 observes that all
  // structural matches of G also appear in Gr). The parallel work-unit
  // path merges deterministically, so the reused list is identical for
  // any pool size.
  if (options_.reuse_matches) {
    const StructuralMatcher matcher(graph_, motif);
    prepared.matches = options_.pool != nullptr
                           ? matcher.FindAllMatchesParallel(options_.pool)
                           : matcher.FindAllMatches();
  }
  return prepared;
}

int64_t SignificanceAnalyzer::CountOn(const TimeSeriesGraph& target,
                                      const Motif& motif,
                                      const PreparedMotif& prepared) const {
  FlowMotifEnumerator enumerator(target, motif, prepared.enum_options);
  const EnumerationResult r = options_.reuse_matches
                                  ? enumerator.RunOnMatches(prepared.matches)
                                  : enumerator.Run();
  return r.num_instances;
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::BuildReport(
    const Motif& motif, const std::vector<int64_t>& counts) const {
  MotifReport report;
  report.motif_name = motif.name();
  report.real_count = counts[0];
  report.random_counts.reserve(counts.size() - 1);
  for (size_t i = 1; i < counts.size(); ++i) {
    report.random_counts.push_back(static_cast<double>(counts[i]));
  }
  report.random_summary = Summarize(report.random_counts);
  report.z_score =
      ZScore(static_cast<double>(report.real_count), report.random_counts);
  report.p_value = EmpiricalPValue(static_cast<double>(report.real_count),
                                   report.random_counts);
  return report;
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::Analyze(
    const Motif& motif) const {
  SharedWindowCache cache(options_.delta, kEnsembleCacheEntries,
                          /*cross_graph=*/true);
  const PreparedMotif prepared = Prepare(motif, &cache);

  // Counting proceeds in waves of pool-width many views so that at most
  // one wave of flow arrays is alive at a time — the serial path (wave
  // width 1) keeps the one-view-at-a-time memory profile. The views are
  // still drawn serially from the single seeded stream, in wave order,
  // so view i is identical for every wave width — and identical to
  // AnalyzeAll's hoisted ensemble. The cache persists across waves: its
  // timestamp-identity keys outlive the views (the real graph owns the
  // storage), so later waves inherit every window list already built.
  Rng rng(options_.seed);
  const int64_t num_tasks = options_.num_random_graphs + 1;  // 0 = real
  const int64_t wave_width =
      options_.pool != nullptr
          ? std::max<int64_t>(1, options_.pool->num_threads())
          : 1;
  std::vector<int64_t> counts(static_cast<size_t>(num_tasks), 0);
  for (int64_t wave_first = 0; wave_first < num_tasks;
       wave_first += wave_width) {
    const int64_t wave_limit = std::min(num_tasks, wave_first + wave_width);
    const int64_t first_random = std::max<int64_t>(1, wave_first);
    std::vector<TimeSeriesGraph> wave_views;
    wave_views.reserve(static_cast<size_t>(wave_limit - first_random));
    for (int64_t t = first_random; t < wave_limit; ++t) {
      wave_views.push_back(graph_.WithPermutedFlows(&rng));
    }
    const auto count_one = [&](int64_t offset) {
      const int64_t task = wave_first + offset;
      const TimeSeriesGraph& target =
          task == 0 ? graph_
                    : wave_views[static_cast<size_t>(task - first_random)];
      counts[static_cast<size_t>(task)] = CountOn(target, motif, prepared);
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(wave_limit - wave_first, count_one);
    } else {
      for (int64_t offset = 0; offset < wave_limit - wave_first; ++offset) {
        count_one(offset);
      }
    }
  }
  return BuildReport(motif, counts);
}

std::vector<SignificanceAnalyzer::MotifReport> SignificanceAnalyzer::AnalyzeAll(
    const std::vector<Motif>& motifs) const {
  // One ensemble and one warm window cache serve every motif: Analyze
  // would redraw the identical views per motif (same seed, same serial
  // stream), so hoisting changes no report — it only removes the
  // N-permutations-per-motif regeneration and keeps the cache warm
  // across motifs (window lists depend on the series pair and delta,
  // not on the motif shape). Holding the whole ensemble costs N flow
  // arrays — the price of the paper's one-set-of-randomized-datasets
  // setup; single-motif Analyze stays wave-bounded instead.
  const std::vector<TimeSeriesGraph> views = GeneratePermutedViews();
  SharedWindowCache cache(options_.delta, kEnsembleCacheEntries,
                          /*cross_graph=*/true);
  std::vector<MotifReport> reports;
  reports.reserve(motifs.size());
  for (const Motif& motif : motifs) {
    const PreparedMotif prepared = Prepare(motif, &cache);
    const int64_t num_tasks = static_cast<int64_t>(views.size()) + 1;
    std::vector<int64_t> counts(static_cast<size_t>(num_tasks), 0);
    const auto count_one = [&](int64_t task) {
      const TimeSeriesGraph& target =
          task == 0 ? graph_ : views[static_cast<size_t>(task - 1)];
      counts[static_cast<size_t>(task)] = CountOn(target, motif, prepared);
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(num_tasks, count_one);
    } else {
      for (int64_t task = 0; task < num_tasks; ++task) count_one(task);
    }
    reports.push_back(BuildReport(motif, counts));
  }
  return reports;
}

}  // namespace flowmotif
