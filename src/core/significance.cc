#include "core/significance.h"

#include "core/structural_match.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {

SignificanceAnalyzer::SignificanceAnalyzer(const TimeSeriesGraph& graph,
                                           const Options& options)
    : graph_(graph), options_(options) {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::Analyze(
    const Motif& motif) const {
  MotifReport report;
  report.motif_name = motif.name();

  EnumerationOptions enum_options;
  enum_options.delta = options_.delta;
  enum_options.phi = options_.phi;

  // Structural matches are flow-independent: compute once on the real
  // graph and reuse on every permutation (Sec. 6.3 observes that all
  // structural matches of G also appear in Gr).
  std::vector<MatchBinding> matches;
  if (options_.reuse_matches) {
    matches = StructuralMatcher(graph_, motif).FindAllMatches();
  }

  {
    FlowMotifEnumerator enumerator(graph_, motif, enum_options);
    const EnumerationResult r = options_.reuse_matches
                                    ? enumerator.RunOnMatches(matches)
                                    : enumerator.Run();
    report.real_count = r.num_instances;
  }

  // The RNG stream is keyed on the seed only, so randomized graph i is
  // the same regardless of which motif is analyzed — as in the paper,
  // one set of randomized datasets serves all motifs.
  Rng rng(options_.seed);
  report.random_counts.reserve(
      static_cast<size_t>(options_.num_random_graphs));
  for (int i = 0; i < options_.num_random_graphs; ++i) {
    const TimeSeriesGraph randomized = graph_.WithPermutedFlows(&rng);
    FlowMotifEnumerator enumerator(randomized, motif, enum_options);
    const EnumerationResult r = options_.reuse_matches
                                    ? enumerator.RunOnMatches(matches)
                                    : enumerator.Run();
    report.random_counts.push_back(static_cast<double>(r.num_instances));
  }

  report.random_summary = Summarize(report.random_counts);
  report.z_score =
      ZScore(static_cast<double>(report.real_count), report.random_counts);
  report.p_value = EmpiricalPValue(static_cast<double>(report.real_count),
                                   report.random_counts);
  return report;
}

std::vector<SignificanceAnalyzer::MotifReport> SignificanceAnalyzer::AnalyzeAll(
    const std::vector<Motif>& motifs) const {
  std::vector<MotifReport> reports;
  reports.reserve(motifs.size());
  for (const Motif& motif : motifs) {
    reports.push_back(Analyze(motif));
  }
  return reports;
}

}  // namespace flowmotif
