#include "core/significance.h"

#include <algorithm>

#include "core/structural_match.h"
#include "util/logging.h"
#include "util/random.h"

namespace flowmotif {

SignificanceAnalyzer::SignificanceAnalyzer(const TimeSeriesGraph& graph,
                                           const Options& options)
    : graph_(graph), options_(options) {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::Analyze(
    const Motif& motif) const {
  MotifReport report;
  report.motif_name = motif.name();

  EnumerationOptions enum_options;
  enum_options.delta = options_.delta;
  enum_options.phi = options_.phi;

  // Structural matches are flow-independent: compute once on the real
  // graph and reuse on every permutation (Sec. 6.3 observes that all
  // structural matches of G also appear in Gr). The parallel work-unit
  // path merges deterministically, so the reused list is identical for
  // any pool size.
  std::vector<MatchBinding> matches;
  if (options_.reuse_matches) {
    const StructuralMatcher matcher(graph_, motif);
    matches = options_.pool != nullptr
                  ? matcher.FindAllMatchesParallel(options_.pool)
                  : matcher.FindAllMatches();
  }

  // The RNG stream is keyed on the seed only, so randomized graph i is
  // the same regardless of which motif is analyzed — as in the paper,
  // one set of randomized datasets serves all motifs. Generation stays
  // serial even with a pool: each permutation advances the shared
  // stream, and keeping it sequential guarantees thread-count-
  // independent graphs. Only the counting (the expensive part)
  // parallelizes, over the real graph plus every randomized one.
  //
  // Counting proceeds in waves of pool-width many graphs so that at
  // most one wave of graph copies is alive at a time — the serial path
  // (wave width 1) keeps the one-graph-at-a-time memory profile.
  Rng rng(options_.seed);
  const int64_t num_tasks = options_.num_random_graphs + 1;  // 0 = real
  const int64_t wave_width =
      options_.pool != nullptr
          ? std::max<int64_t>(1, options_.pool->num_threads())
          : 1;
  std::vector<int64_t> counts(static_cast<size_t>(num_tasks), 0);
  for (int64_t wave_first = 0; wave_first < num_tasks;
       wave_first += wave_width) {
    const int64_t wave_limit =
        std::min(num_tasks, wave_first + wave_width);
    const int64_t first_random = std::max<int64_t>(1, wave_first);
    std::vector<TimeSeriesGraph> wave_graphs;
    wave_graphs.reserve(static_cast<size_t>(wave_limit - first_random));
    for (int64_t t = first_random; t < wave_limit; ++t) {
      wave_graphs.push_back(graph_.WithPermutedFlows(&rng));
    }
    const auto count_one = [&](int64_t offset) {
      const int64_t task = wave_first + offset;
      const TimeSeriesGraph& target =
          task == 0 ? graph_
                    : wave_graphs[static_cast<size_t>(task - first_random)];
      FlowMotifEnumerator enumerator(target, motif, enum_options);
      const EnumerationResult r = options_.reuse_matches
                                      ? enumerator.RunOnMatches(matches)
                                      : enumerator.Run();
      counts[static_cast<size_t>(task)] = r.num_instances;
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(wave_limit - wave_first, count_one);
    } else {
      for (int64_t offset = 0; offset < wave_limit - wave_first; ++offset) {
        count_one(offset);
      }
    }
  }

  report.real_count = counts[0];
  report.random_counts.reserve(static_cast<size_t>(num_tasks - 1));
  for (int64_t i = 1; i < num_tasks; ++i) {
    report.random_counts.push_back(
        static_cast<double>(counts[static_cast<size_t>(i)]));
  }

  report.random_summary = Summarize(report.random_counts);
  report.z_score =
      ZScore(static_cast<double>(report.real_count), report.random_counts);
  report.p_value = EmpiricalPValue(static_cast<double>(report.real_count),
                                   report.random_counts);
  return report;
}

std::vector<SignificanceAnalyzer::MotifReport> SignificanceAnalyzer::AnalyzeAll(
    const std::vector<Motif>& motifs) const {
  std::vector<MotifReport> reports;
  reports.reserve(motifs.size());
  for (const Motif& motif : motifs) {
    reports.push_back(Analyze(motif));
  }
  return reports;
}

}  // namespace flowmotif
