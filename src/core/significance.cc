#include "core/significance.h"

#include <algorithm>

#include "core/structural_match.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

/// Cap of the per-Analyze cross-graph window cache. Every entry is hit
/// N+1 times across the ensemble (and once per motif in AnalyzeAll), so
/// a larger cap than the per-query default pays for itself; memory stays
/// bounded at max_entries window lists.
constexpr size_t kEnsembleCacheEntries = 4096;

/// Longest contiguous completed-task prefix — the only part of a
/// stopped ensemble the report may use: parallel tasks beyond the first
/// never-ran task completed out of canonical order.
int64_t DonePrefix(const std::vector<uint8_t>& done) {
  int64_t prefix = 0;
  while (prefix < static_cast<int64_t>(done.size()) &&
         done[static_cast<size_t>(prefix)] != 0) {
    ++prefix;
  }
  return prefix;
}

}  // namespace

SignificanceAnalyzer::SignificanceAnalyzer(const TimeSeriesGraph& graph,
                                           const Options& options)
    : graph_(graph), options_(options) {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
}

std::vector<TimeSeriesGraph> SignificanceAnalyzer::GeneratePermutedViews()
    const {
  // The RNG stream is keyed on the seed only and consumed serially, so
  // view i is the same graph regardless of pool size, motif set, or
  // which motif is analyzed first — as in the paper, one set of
  // randomized datasets serves all motifs. Views share the real graph's
  // timestamp/topology storage and own only permuted flow arrays, so
  // holding the whole ensemble costs N flow/prefix arrays, not N graph
  // copies.
  Rng rng(options_.seed);
  std::vector<TimeSeriesGraph> views;
  views.reserve(static_cast<size_t>(options_.num_random_graphs));
  for (int i = 0; i < options_.num_random_graphs; ++i) {
    views.push_back(graph_.WithPermutedFlows(&rng));
  }
  return views;
}

std::vector<std::vector<Flow>> SignificanceAnalyzer::GeneratePermutedFlows()
    const {
  FlowPermutationStream stream(graph_, options_.seed);
  std::vector<std::vector<Flow>> permuted(
      static_cast<size_t>(options_.num_random_graphs));
  for (auto& flows : permuted) stream.NextPermutationInto(&flows);
  return permuted;
}

bool SignificanceAnalyzer::RecordSkeleton(const Motif& motif,
                                          const PreparedMotif& prepared,
                                          SharedWindowCache* cache,
                                          EnumerationSkeleton* skeleton) const {
  EnumerationSkeleton::Options sk_options;
  sk_options.max_edges = options_.max_skeleton_edges;
  sk_options.query_control = options_.control;
  if (options_.reuse_matches) {
    return skeleton->Record(graph_, motif, options_.delta, prepared.matches,
                            cache, sk_options);
  }
  // reuse_matches off means the fallback path re-runs P1 per graph, but
  // recording still needs the real graph's matches (they are identical
  // on every permutation, so the recorded skeleton serves all tasks).
  const StructuralMatcher matcher(graph_, motif);
  const std::vector<MatchBinding> matches =
      options_.pool != nullptr ? matcher.FindAllMatchesParallel(options_.pool)
                               : matcher.FindAllMatches();
  return skeleton->Record(graph_, motif, options_.delta, matches, cache,
                          sk_options);
}

int64_t SignificanceAnalyzer::ReplayEnsemble(
    const EnumerationSkeleton& skeleton,
    const std::vector<std::vector<Flow>>& permuted_flows,
    std::vector<int64_t>* counts) const {
  const int64_t num_tasks = static_cast<int64_t>(permuted_flows.size()) + 1;
  counts->assign(static_cast<size_t>(num_tasks), 0);
  QueryControl* const control = options_.control;
  if (options_.pool != nullptr) {
    std::vector<uint8_t> done(static_cast<size_t>(num_tasks), 0);
    options_.pool->ParallelFor(num_tasks, [&](int64_t task) {
      if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) return;
      FlowPrefixArena arena;
      if (task == 0) {
        arena.FillFromGraph(graph_);
      } else {
        arena.FillFromFlows(graph_,
                            permuted_flows[static_cast<size_t>(task - 1)]);
      }
      SkeletonReplayer replayer(&skeleton);
      (*counts)[static_cast<size_t>(task)] =
          replayer.Count(arena, options_.phi);
      done[static_cast<size_t>(task)] = 1;
    });
    return DonePrefix(done);
  }
  FlowPrefixArena arena;
  SkeletonReplayer replayer(&skeleton);
  int64_t completed = 0;
  for (int64_t task = 0; task < num_tasks; ++task) {
    if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) break;
    if (task == 0) {
      arena.FillFromGraph(graph_);
    } else {
      arena.FillFromFlows(graph_,
                          permuted_flows[static_cast<size_t>(task - 1)]);
    }
    (*counts)[static_cast<size_t>(task)] = replayer.Count(arena, options_.phi);
    ++completed;
  }
  return completed;
}

int64_t SignificanceAnalyzer::ReplayEnsembleStreaming(
    const EnumerationSkeleton& skeleton, std::vector<int64_t>* counts) const {
  const int64_t num_tasks = options_.num_random_graphs + 1;  // 0 = real
  counts->assign(static_cast<size_t>(num_tasks), 0);
  QueryControl* const control = options_.control;
  FlowPermutationStream stream(graph_, options_.seed);

  if (options_.pool == nullptr) {
    // One flow buffer, one arena, one replayer for the whole ensemble:
    // a task is draw-into-buffer, rebuild-prefixes, fused kernel pass.
    FlowPrefixArena arena;
    SkeletonReplayer replayer(&skeleton);
    std::vector<Flow> flows;
    int64_t completed = 0;
    for (int64_t task = 0; task < num_tasks; ++task) {
      if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) break;
      if (task == 0) {
        arena.FillFromGraph(graph_);
      } else {
        stream.NextPermutationInto(&flows);
        arena.FillFromFlows(graph_, flows);
      }
      (*counts)[static_cast<size_t>(task)] =
          replayer.Count(arena, options_.phi);
      ++completed;
    }
    return completed;
  }

  // Pool path: waves of pool-width tasks. Draws stay serial (the seeded
  // stream is one stream), fills and kernel passes parallelize; slot
  // state persists across waves so only the first wave pays allocation.
  const int64_t wave_width =
      std::max<int64_t>(1, options_.pool->num_threads());
  std::vector<FlowPrefixArena> arenas(static_cast<size_t>(wave_width));
  std::vector<std::vector<Flow>> slot_flows(static_cast<size_t>(wave_width));
  std::vector<SkeletonReplayer> replayers;
  replayers.reserve(static_cast<size_t>(wave_width));
  for (int64_t s = 0; s < wave_width; ++s) replayers.emplace_back(&skeleton);
  std::vector<uint8_t> done(static_cast<size_t>(num_tasks), 0);
  for (int64_t wave_first = 0; wave_first < num_tasks;
       wave_first += wave_width) {
    if (control != nullptr && control->ShouldStop()) break;
    const int64_t wave_limit = std::min(num_tasks, wave_first + wave_width);
    for (int64_t t = std::max<int64_t>(1, wave_first); t < wave_limit; ++t) {
      stream.NextPermutationInto(&slot_flows[static_cast<size_t>(
          t - wave_first)]);
    }
    options_.pool->ParallelFor(
        wave_limit - wave_first, [&](int64_t offset) {
          if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) {
            return;
          }
          const int64_t task = wave_first + offset;
          FlowPrefixArena& arena = arenas[static_cast<size_t>(offset)];
          if (task == 0) {
            arena.FillFromGraph(graph_);
          } else {
            arena.FillFromFlows(graph_,
                                slot_flows[static_cast<size_t>(offset)]);
          }
          (*counts)[static_cast<size_t>(task)] =
              replayers[static_cast<size_t>(offset)].Count(arena,
                                                           options_.phi);
          done[static_cast<size_t>(task)] = 1;
        });
  }
  return DonePrefix(done);
}

SignificanceAnalyzer::PreparedMotif SignificanceAnalyzer::Prepare(
    const Motif& motif, SharedWindowCache* cache) const {
  PreparedMotif prepared;
  prepared.enum_options.delta = options_.delta;
  prepared.enum_options.phi = options_.phi;
  // One cross-graph cache for the whole ensemble: the views share the
  // real graph's timestamp storage, and the cache keys on that identity,
  // so a window list computed for any task is a hit for every other —
  // per-permutation window work drops to (almost) zero.
  prepared.enum_options.shared_window_cache = cache;
  prepared.enum_options.query_control = options_.control;

  // Structural matches are flow-independent: compute once on the real
  // graph and reuse on every permutation (Sec. 6.3 observes that all
  // structural matches of G also appear in Gr). The parallel work-unit
  // path merges deterministically, so the reused list is identical for
  // any pool size.
  if (options_.reuse_matches) {
    const StructuralMatcher matcher(graph_, motif);
    prepared.matches = options_.pool != nullptr
                           ? matcher.FindAllMatchesParallel(options_.pool)
                           : matcher.FindAllMatches();
  }
  return prepared;
}

int64_t SignificanceAnalyzer::CountOn(const TimeSeriesGraph& target,
                                      const Motif& motif,
                                      const PreparedMotif& prepared) const {
  FlowMotifEnumerator enumerator(target, motif, prepared.enum_options);
  const EnumerationResult r = options_.reuse_matches
                                  ? enumerator.RunOnMatches(prepared.matches)
                                  : enumerator.Run();
  return r.num_instances;
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::BuildReport(
    const Motif& motif, const std::vector<int64_t>& counts,
    int64_t tasks_completed) const {
  MotifReport report;
  report.motif_name = motif.name();
  report.graphs_completed = tasks_completed;
  if (tasks_completed < 1) return report;  // not even the real count ran
  report.real_count = counts[0];
  report.random_counts.reserve(static_cast<size_t>(tasks_completed - 1));
  for (int64_t i = 1; i < tasks_completed; ++i) {
    report.random_counts.push_back(
        static_cast<double>(counts[static_cast<size_t>(i)]));
  }
  if (report.random_counts.empty()) return report;  // stats undefined
  report.random_summary = Summarize(report.random_counts);
  report.z_score =
      ZScore(static_cast<double>(report.real_count), report.random_counts);
  report.p_value = EmpiricalPValue(static_cast<double>(report.real_count),
                                   report.random_counts);
  return report;
}

SignificanceAnalyzer::MotifReport SignificanceAnalyzer::Analyze(
    const Motif& motif) const {
  QueryControl* const control = options_.control;
  SharedWindowCache cache(options_.delta, kEnsembleCacheEntries,
                          /*cross_graph=*/true);
  cache.set_query_control(control);
  const PreparedMotif prepared = Prepare(motif, &cache);

  // Record-once / replay-many fast path: one timestamp-only recording
  // on the real graph, then every task is a dense kernel pass. The
  // recording consults no flows and no RNG, so a bypass (trace budget)
  // falls through to the enumeration path below with the seeded stream
  // untouched — the fallback is bit-identical to skeleton_replay=false.
  if (options_.skeleton_replay) {
    EnumerationSkeleton skeleton;
    WallTimer record_timer;
    if (RecordSkeleton(motif, prepared, &cache, &skeleton)) {
      const double record_seconds = record_timer.ElapsedSeconds();
      WallTimer replay_timer;
      // Each ensemble task becomes one shuffle into a reused buffer
      // plus one prefix rebuild and one kernel pass — no graph views,
      // no per-task allocation. Draws are serial from the seeded
      // stream, so permutation i matches view i for any pool size.
      std::vector<int64_t> counts;
      const int64_t completed = ReplayEnsembleStreaming(skeleton, &counts);
      MotifReport report = BuildReport(motif, counts, completed);
      report.used_skeleton_replay = true;
      report.skeleton_edges = static_cast<int64_t>(skeleton.num_edges());
      report.record_seconds = record_seconds;
      report.replay_seconds = replay_timer.ElapsedSeconds();
      if (control != nullptr) report.termination = control->Finish(completed);
      return report;
    }
  }

  // Counting proceeds in waves of pool-width many views so that at most
  // one wave of flow arrays is alive at a time — the serial path (wave
  // width 1) keeps the one-view-at-a-time memory profile. The views are
  // still drawn serially from the single seeded stream, in wave order,
  // so view i is identical for every wave width — and identical to
  // AnalyzeAll's hoisted ensemble. The cache persists across waves: its
  // timestamp-identity keys outlive the views (the real graph owns the
  // storage), so later waves inherit every window list already built.
  Rng rng(options_.seed);
  const int64_t num_tasks = options_.num_random_graphs + 1;  // 0 = real
  const int64_t wave_width =
      options_.pool != nullptr
          ? std::max<int64_t>(1, options_.pool->num_threads())
          : 1;
  std::vector<int64_t> counts(static_cast<size_t>(num_tasks), 0);
  std::vector<uint8_t> done(static_cast<size_t>(num_tasks), 0);
  for (int64_t wave_first = 0; wave_first < num_tasks;
       wave_first += wave_width) {
    if (control != nullptr && control->ShouldStop()) break;
    const int64_t wave_limit = std::min(num_tasks, wave_first + wave_width);
    const int64_t first_random = std::max<int64_t>(1, wave_first);
    std::vector<TimeSeriesGraph> wave_views;
    wave_views.reserve(static_cast<size_t>(wave_limit - first_random));
    for (int64_t t = first_random; t < wave_limit; ++t) {
      wave_views.push_back(graph_.WithPermutedFlows(&rng));
    }
    const auto count_one = [&](int64_t offset) {
      if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) return;
      const int64_t task = wave_first + offset;
      const TimeSeriesGraph& target =
          task == 0 ? graph_
                    : wave_views[static_cast<size_t>(task - first_random)];
      counts[static_cast<size_t>(task)] = CountOn(target, motif, prepared);
      done[static_cast<size_t>(task)] = 1;
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(wave_limit - wave_first, count_one);
    } else {
      for (int64_t offset = 0; offset < wave_limit - wave_first; ++offset) {
        count_one(offset);
      }
    }
  }
  MotifReport report = BuildReport(motif, counts, DonePrefix(done));
  if (control != nullptr) {
    report.termination = control->Finish(report.graphs_completed);
  }
  return report;
}

std::vector<SignificanceAnalyzer::MotifReport> SignificanceAnalyzer::AnalyzeAll(
    const std::vector<Motif>& motifs) const {
  // One ensemble and one warm window cache serve every motif: Analyze
  // would redraw the identical permutations per motif (same seed, same
  // serial stream), so hoisting changes no report — it only removes the
  // N-permutations-per-motif regeneration and keeps the cache warm
  // across motifs (window lists depend on the series pair and delta,
  // not on the motif shape). On the replay path the hoisted ensemble is
  // N flat flow vectors; the view ensemble is only materialized — once,
  // lazily — if some motif's recording is bypassed and the enumeration
  // fallback needs actual graphs. Holding either costs N flow arrays —
  // the price of the paper's one-set-of-randomized-datasets setup;
  // single-motif Analyze regenerates per call instead.
  QueryControl* const control = options_.control;
  SharedWindowCache cache(options_.delta, kEnsembleCacheEntries,
                          /*cross_graph=*/true);
  cache.set_query_control(control);
  std::vector<std::vector<Flow>> permuted_flows;  // replay ensemble, lazy
  std::vector<TimeSeriesGraph> views;             // fallback ensemble, lazy
  bool permuted_flows_ready = false;
  bool views_ready = false;
  std::vector<MotifReport> reports;
  reports.reserve(motifs.size());
  for (const Motif& motif : motifs) {
    const PreparedMotif prepared = Prepare(motif, &cache);

    if (options_.skeleton_replay) {
      EnumerationSkeleton skeleton;
      WallTimer record_timer;
      if (RecordSkeleton(motif, prepared, &cache, &skeleton)) {
        const double record_seconds = record_timer.ElapsedSeconds();
        WallTimer replay_timer;
        if (!permuted_flows_ready) {
          permuted_flows = GeneratePermutedFlows();
          permuted_flows_ready = true;
        }
        std::vector<int64_t> counts;
        const int64_t completed =
            ReplayEnsemble(skeleton, permuted_flows, &counts);
        MotifReport report = BuildReport(motif, counts, completed);
        report.used_skeleton_replay = true;
        report.skeleton_edges = static_cast<int64_t>(skeleton.num_edges());
        report.record_seconds = record_seconds;
        report.replay_seconds = replay_timer.ElapsedSeconds();
        if (control != nullptr) {
          report.termination = control->Finish(completed);
        }
        reports.push_back(std::move(report));
        continue;
      }
    }

    if (!views_ready) {
      views = GeneratePermutedViews();
      views_ready = true;
    }
    const int64_t num_tasks = static_cast<int64_t>(views.size()) + 1;
    std::vector<int64_t> counts(static_cast<size_t>(num_tasks), 0);
    std::vector<uint8_t> done(static_cast<size_t>(num_tasks), 0);
    const auto count_one = [&](int64_t task) {
      if (control != nullptr && control->CheckAtBoundary(failpoint::kSigTask)) return;
      const TimeSeriesGraph& target =
          task == 0 ? graph_ : views[static_cast<size_t>(task - 1)];
      counts[static_cast<size_t>(task)] = CountOn(target, motif, prepared);
      done[static_cast<size_t>(task)] = 1;
    };
    if (options_.pool != nullptr) {
      options_.pool->ParallelFor(num_tasks, count_one);
    } else {
      for (int64_t task = 0; task < num_tasks; ++task) count_one(task);
    }
    MotifReport report = BuildReport(motif, counts, DonePrefix(done));
    if (control != nullptr) {
      report.termination = control->Finish(report.graphs_completed);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace flowmotif
