#ifndef FLOWMOTIF_CORE_SKELETON_H_
#define FLOWMOTIF_CORE_SKELETON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/motif.h"
#include "core/structural_match.h"
#include "core/window_cursor.h"
#include "graph/time_series_graph.h"
#include "util/random.h"

namespace flowmotif {

/// Record-once / replay-many enumeration skeletons.
///
/// The flow-permuted graphs of the significance ensemble (Sec. 6.3)
/// share every timestamp-derived artifact with the real graph —
/// structural matches, window lists, cursor slides, domination probes,
/// and the *shape* of the Algorithm 1 recursion. Only the flow values
/// differ, and every flow the recursion ever consults is an Eq. 2
/// prefix-sum subtraction over a contiguous index range. So the
/// enumeration can be split:
///
///   1. Record (once, on the real graph): run the timestamp-only
///      recursion and emit a flat trace — a DAG of suffix states whose
///      edges carry (lo, hi, child) with lo/hi absolute indices into a
///      flat concatenation of per-series prefix-sum arrays.
///   2. Replay (once per flow assignment): evaluate every edge flow as
///      prefix[hi] - prefix[lo] and run a linear DP over the DAG
///      (core/skeleton_kernel.h) — dense array passes, no recursion,
///      no searches.
///
/// The DAG is the counting recursion's memo structure made explicit:
/// within one (match, window), the set of valid suffix completions
/// depends only on (level, first admissible index), so states are
/// keyed on that pair and shared across all prefixes reaching them.
/// Replay therefore costs O(trace edges), and the trace is the size of
/// the *memoized* recursion at phi = 0, exponentially smaller than the
/// leaf tree it summarizes.
///
/// A skeleton records no flow values and no phi: one recording answers
/// any flow assignment over the same timestamp storage (the whole
/// permutation ensemble) and any phi threshold (a parameter sweep).

/// A flat concatenation of per-series flow prefix-sum arrays in pair
/// order: pair p's block holds its series' n_p + 1 prefix entries, so
/// any Eq. 2 range flow is a subtraction of two entries of one array.
/// The layout depends only on the topology (series lengths in pair
/// order), so every graph of a flow-permutation ensemble fills the
/// same offsets and a recorded skeleton's absolute indices are valid
/// for all of them.
class FlowPrefixArena {
 public:
  /// Copies `graph`'s per-series prefix arrays into the arena
  /// (allocating the layout on first use). Subsequent fills must come
  /// from graphs sharing the same topology identity.
  void FillFromGraph(const TimeSeriesGraph& graph);

  /// Rebuilds the prefix data from a flat pair-order flow vector (one
  /// entry per interaction, as produced by FlowPermutationStream) —
  /// the replay path's substitute for constructing a permutation view.
  /// The accumulation order matches EdgeSeries::RebuildPrefix, so the
  /// arena is bit-identical to the prefix arrays a WithPermutedFlows
  /// view carrying the same flows would own. `layout_graph` provides
  /// the topology; `flows` must have one entry per interaction.
  void FillFromFlows(const TimeSeriesGraph& layout_graph,
                     const std::vector<Flow>& flows);

  const double* data() const { return prefix_.data(); }
  size_t size() const { return prefix_.size(); }
  StorageIdentity topology_identity() const { return topology_identity_; }

  /// Offset of pair p's prefix block; the block has series-size + 1
  /// entries. Exposed for tests.
  size_t block_offset(size_t pair_index) const {
    return offsets_[pair_index];
  }

 private:
  void EnsureLayout(const TimeSeriesGraph& graph);

  std::vector<double> prefix_;
  std::vector<size_t> offsets_;  // per pair, block start; back() = total
  StorageIdentity topology_identity_;
};

/// Draws the significance ensemble's flow permutations directly as
/// flat pair-order flow vectors, consuming the RNG stream exactly as
/// TimeSeriesGraph::WithPermutedFlows does (collect the real flows in
/// pair order, Fisher-Yates shuffle). Permutation i is therefore
/// bit-identical to the flows view i of the PR 5 path would carry —
/// but producing it costs one shuffle, not a graph view with
/// re-derived per-series prefix arrays.
class FlowPermutationStream {
 public:
  FlowPermutationStream(const TimeSeriesGraph& graph, uint64_t seed);

  /// Writes the next permutation of the real graph's flow multiset
  /// into `*flows` (pair order, one entry per interaction).
  void NextPermutationInto(std::vector<Flow>* flows);

 private:
  std::vector<Flow> original_;  // the real graph's flows, pair order
  // Per-bound rejection thresholds of Rng::NextBounded, precomputed so
  // each draw's Fisher-Yates pass is division-light (see .cc).
  std::vector<uint64_t> thresholds_;
  Rng rng_;
};

/// The recorded timestamp-only trace of one (motif, delta) enumeration
/// over a set of structural matches. See the file comment for the
/// representation; storage is struct-of-arrays:
///
///   edge_lo_/edge_hi_  per edge, absolute prefix-arena indices of the
///                      slice's flow = prefix[hi] - prefix[lo]
///   edge_child_        per edge, the suffix state the slice leads to
///   state_begin_       CSR offsets; state 0 is the synthetic unit
///                      state (value 1, no edges), and states are
///                      appended post-order so child < parent always
///   roots_             one state per (match, window) with any viable
///                      completion; the replayed count is the sum of
///                      root values
class EnumerationSkeleton {
 public:
  /// Default trace budget (edges). A recorded edge is 12 bytes plus an
  /// 8-byte flow slot during phi sweeps; the default caps the trace at
  /// ~100 MB of replay state, far above the paper-scale workloads,
  /// while bounding the blowup on adversarial inputs.
  static constexpr size_t kDefaultMaxEdges = size_t{1} << 23;

  struct Options {
    size_t max_edges = kDefaultMaxEdges;

    /// Lifecycle control (non-owning, may be null) billed for every
    /// window list recording materializes — through the cache or
    /// recomputed privately — at site "cache.windows", keeping
    /// WorkBudget window/memory caps uniform across motif shapes.
    QueryControl* query_control = nullptr;
  };

  /// Records the skeleton of enumerating `motif` at `delta` over
  /// `matches` on `graph`. Window lists are read through `cache` when
  /// provided (it must be bound to the same delta). Returns false —
  /// leaving the skeleton unrecorded — when the trace would exceed
  /// options.max_edges or the prefix arena would overflow 32-bit
  /// indices; callers then fall back to ordinary per-graph
  /// enumeration. Recording consults no flow values, so a false return
  /// happens before any flow-dependent work.
  bool Record(const TimeSeriesGraph& graph, const Motif& motif,
              Timestamp delta, const std::vector<MatchBinding>& matches,
              SharedWindowCache* cache, const Options& options);
  bool Record(const TimeSeriesGraph& graph, const Motif& motif,
              Timestamp delta, const std::vector<MatchBinding>& matches,
              SharedWindowCache* cache) {
    return Record(graph, motif, delta, matches, cache, Options());
  }

  /// Records one skeleton per entry of `deltas` (which must be
  /// non-increasing) in a SINGLE pass over `matches` — the delta-grid
  /// recording path of QueryEngine::RunSweep. Two things make this
  /// cheaper than one Record call per delta:
  ///
  ///  * shared per-match work: series resolution, arena offsets, and
  ///    the window scan (ComputeProcessedWindowsMulti walks the match's
  ///    two boundary series once for the whole grid) are paid per
  ///    match, not per (match, delta), and every delta's recursion runs
  ///    while the match's series are cache-hot;
  ///  * cascaded viability: within a match, deltas are visited largest
  ///    first, and a delta that yields no roots (no phi = 0 completion)
  ///    proves the match dead for every remaining smaller delta — so
  ///    the grid's tail skips the bulk of the match list on workloads
  ///    where most structural matches never produce an instance.
  ///
  /// Per-delta trace budgets apply independently: a delta whose trace
  /// would exceed options.max_edges is abandoned (its skeleton reports
  /// recorded() == false; callers fall back for that delta only) and is
  /// excluded from the viability cascade, without disturbing the other
  /// deltas. `skeletons` is resized to deltas.size(), index-aligned.
  /// `control` (optional) adds a cooperative cancellation point per
  /// match scanned (site "sweep.record"). A stop aborts the whole
  /// recording: every skeleton reports recorded() == false — a
  /// half-recorded trace would replay wrong counts, so there is no
  /// partial recording, only a clean fallback.
  static void RecordSweepDescending(
      const TimeSeriesGraph& graph, const Motif& motif,
      const std::vector<Timestamp>& deltas,
      const std::vector<MatchBinding>& matches, const Options& options,
      std::vector<EnumerationSkeleton>* skeletons,
      QueryControl* control = nullptr);

  bool recorded() const { return recorded_; }
  size_t num_edges() const { return edge_lo_.size(); }
  /// Total states including the synthetic unit state 0.
  size_t num_states() const { return state_begin_.size() - 1; }
  size_t num_roots() const { return roots_.size(); }

  /// Identity of the topology the recording is valid for; a replay
  /// arena must report the same identity.
  StorageIdentity topology_identity() const { return topology_identity_; }

  const uint32_t* edge_lo() const { return edge_lo_.data(); }
  const uint32_t* edge_hi() const { return edge_hi_.data(); }
  const uint32_t* edge_child() const { return edge_child_.data(); }
  const uint32_t* state_begin() const { return state_begin_.data(); }
  const uint32_t* roots() const { return roots_.data(); }

  /// Per recorded match (aligned with the `matches` argument of
  /// Record), whether the match contributed any root — i.e. has at
  /// least one structurally viable completion at this delta with
  /// phi = 0. Because shrinking delta and raising phi only remove
  /// instances, a non-viable match counts zero for EVERY delta' <=
  /// delta and every phi — the delta-monotonicity filter RunSweep uses
  /// to skip dead matches when recording the smaller deltas of a grid.
  const std::vector<uint8_t>& match_viability() const {
    return match_viable_;
  }

 private:
  struct Recorder;

  void Clear();

  std::vector<uint32_t> edge_lo_;
  std::vector<uint32_t> edge_hi_;
  std::vector<uint32_t> edge_child_;
  std::vector<uint32_t> state_begin_{0, 0};  // state 0 = unit, no edges
  std::vector<uint32_t> roots_;
  std::vector<uint8_t> match_viable_;
  StorageIdentity topology_identity_;
  bool recorded_ = false;
};

/// Replays a recorded skeleton against flow assignments. Owns the DP
/// value buffer (and the edge-flow buffer for phi sweeps), so one
/// replayer per thread; the skeleton itself is immutable and shared.
class SkeletonReplayer {
 public:
  /// `skeleton` must outlive the replayer and be recorded.
  explicit SkeletonReplayer(const EnumerationSkeleton* skeleton);

  /// Instance count of the recorded (motif, delta) enumeration under
  /// `arena`'s flow assignment at threshold `phi` — one fused pass,
  /// byte-identical to enumerating the corresponding graph.
  int64_t Count(const FlowPrefixArena& arena, Flow phi);

  /// Phi-sweep split: evaluate every recorded slice flow once, then
  /// answer any number of thresholds against the cached flows.
  void EvaluateFlows(const FlowPrefixArena& arena);
  int64_t CountWithFlows(Flow phi);

 private:
  const EnumerationSkeleton* skeleton_;
  std::vector<double> flows_;    // per recorded edge, EvaluateFlows only
  std::vector<int64_t> values_;  // per state, DP scratch
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_SKELETON_H_
