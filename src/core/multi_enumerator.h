#ifndef FLOWMOTIF_CORE_MULTI_ENUMERATOR_H_
#define FLOWMOTIF_CORE_MULTI_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "core/enumerator.h"
#include "core/multi_matcher.h"
#include "core/motif.h"
#include "graph/time_series_graph.h"
#include "util/status.h"

namespace flowmotif {

/// End-to-end multi-motif search: one pass of shared-prefix structural
/// matching (MultiStructuralMatcher) feeding per-motif phase-P2
/// enumeration, streamed match by match. This is the paper's Sec. 7
/// "process multiple structural instances together" direction exposed as
/// a user-facing query API: analysts typically screen a whole catalog of
/// suspicious shapes, not one motif at a time.
///
/// All motifs share one (delta, phi) option set, as in the paper's
/// per-dataset defaults.
class MultiMotifEnumerator {
 public:
  /// Visitor receives (motif index within the input set, instance view);
  /// return false to stop the whole search.
  using Visitor = std::function<bool(size_t, const InstanceView&)>;

  /// Same motif-set requirements as MultiStructuralMatcher (canonical
  /// spanning-path motifs).
  static StatusOr<MultiMotifEnumerator> Create(
      const TimeSeriesGraph& graph, std::vector<Motif> motifs,
      const EnumerationOptions& options);
  static StatusOr<MultiMotifEnumerator> Create(TimeSeriesGraph&&,
                                               std::vector<Motif>,
                                               const EnumerationOptions&) =
      delete;

  /// Runs the combined search; returns one result per motif, in input
  /// order. `visitor` may be null to count only.
  std::vector<EnumerationResult> Run(const Visitor& visitor = nullptr) const;

 private:
  MultiMotifEnumerator(const TimeSeriesGraph& graph,
                       std::vector<Motif> motifs,
                       const EnumerationOptions& options,
                       MultiStructuralMatcher matcher);

  const TimeSeriesGraph& graph_;
  std::vector<Motif> motifs_;
  EnumerationOptions options_;
  MultiStructuralMatcher matcher_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_CORE_MULTI_ENUMERATOR_H_
