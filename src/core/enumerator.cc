#include "core/enumerator.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

MotifInstance InstanceView::Materialize() const {
  MotifInstance instance;
  instance.binding = *binding;
  instance.edge_sets.resize(slices->size());
  for (size_t i = 0; i < slices->size(); ++i) {
    const EdgeSlice& slice = (*slices)[i];
    auto& set = instance.edge_sets[i];
    set.reserve(slice.size());
    for (size_t j = slice.begin; j < slice.end; ++j) {
      set.push_back(slice.series->at(j));
    }
  }
  return instance;
}

/// Per-run mutable state threaded through the recursion.
struct FlowMotifEnumerator::Context {
  std::vector<const EdgeSeries*> series;  // per motif edge, this match
  std::vector<EdgeSlice> slices;          // current partial assignment
  Window window{0, 0};
  Flow min_flow_so_far = 0.0;  // min prefix flow over slices chosen so far
  const MatchBinding* binding = nullptr;
  const InstanceVisitor* visitor = nullptr;
  EnumerationResult* result = nullptr;
  bool stop = false;
  bool window_is_redundant = false;  // ablation_no_window_skip bookkeeping

  // Per-window series bounds, precomputed once per window instead of one
  // UpperBound per Recurse call: level_limit[k] = UpperBound(window.end)
  // on the k-th edge's series, level0_first = LowerBound(window.start) on
  // the first. Window starts/ends are non-decreasing across a match, so
  // AdvanceToWindow slides monotone galloping cursors (O(log gap) per
  // window).
  std::vector<size_t> level_limit;
  size_t level0_first = 0;

  void AdvanceToWindow(const Window& w) {
    window = w;
    level0_first = series[0]->AdvanceLowerBound(level0_first, w.start);
    for (size_t k = 0; k < series.size(); ++k) {
      level_limit[k] = series[k]->AdvanceUpperBound(level_limit[k], w.end);
    }
  }
};

FlowMotifEnumerator::FlowMotifEnumerator(const TimeSeriesGraph& graph,
                                         const Motif& motif,
                                         const EnumerationOptions& options)
    : graph_(graph), motif_(motif), options_(options) {
  FLOWMOTIF_CHECK_GE(options.delta, 0) << "delta must be non-negative";
  FLOWMOTIF_CHECK_GE(options.phi, 0.0) << "phi must be non-negative";
  cache_ = ResolveWindowCache(options.shared_window_cache, motif,
                              options.delta, &owned_cache_);
}

bool FlowMotifEnumerator::PassesFlowBound(Flow flow) const {
  if (flow < options_.phi) return false;
  if (options_.dynamic_min_flow_exclusive &&
      !(flow > options_.dynamic_min_flow_exclusive())) {
    return false;
  }
  return true;
}

void FlowMotifEnumerator::Emit(Context* ctx, Flow instance_flow) const {
  if (options_.ablation_no_prefix_phi_pruning &&
      !PassesFlowBound(instance_flow)) {
    // Deferred flow constraint: with prefix pruning ablated, phi is only
    // enforced here on complete instances.
    ++ctx->result->num_phi_prunes;
    return;
  }
  InstanceView view;
  view.motif = &motif_;
  view.binding = ctx->binding;
  view.slices = &ctx->slices;
  view.window = ctx->window;
  view.flow = instance_flow;

  if (options_.strict_maximality) {
    MotifInstance materialized = view.Materialize();
    if (!IsMaximalInstance(graph_, motif_, materialized, options_.delta)) {
      ++ctx->result->num_strict_rejects;
      return;
    }
  }
  ++ctx->result->num_instances;
  if (ctx->window_is_redundant) ++ctx->result->num_redundant_instances;
  if (ctx->visitor != nullptr && *ctx->visitor) {
    if (!(*ctx->visitor)(view)) ctx->stop = true;
  }
}

void FlowMotifEnumerator::Recurse(Context* ctx, int level,
                                  Timestamp lo) const {
  const EdgeSeries& series = *ctx->series[static_cast<size_t>(level)];
  // Edge-set candidates for this level: the run of elements strictly
  // after the previous level's split (or from the window anchor for e1),
  // capped by the window end. The window-dependent bounds come from the
  // per-window cursors in the context; only the split-dependent lower
  // bound still needs a search.
  const size_t first = level == 0 ? ctx->level0_first
                                  : series.UpperBound(lo);
  const size_t limit = ctx->level_limit[static_cast<size_t>(level)];
  if (first >= limit) return;

  const int m = motif_.num_edges();
  if (level == m - 1) {
    // Last motif edge: Algorithm 1's base case takes every element in the
    // remaining window, which makes the set maximal towards the window
    // end.
    const Flow flow = series.FlowSum(first, limit - 1);
    if (!options_.ablation_no_prefix_phi_pruning && !PassesFlowBound(flow)) {
      ++ctx->result->num_phi_prunes;
      return;
    }
    ctx->slices[static_cast<size_t>(level)] = EdgeSlice{&series, first, limit};
    Emit(ctx, std::min(ctx->min_flow_so_far, flow));
    return;
  }

  const EdgeSeries& next_series = *ctx->series[static_cast<size_t>(level) + 1];
  Flow prefix_flow = 0.0;
  for (size_t j = first; j < limit && !ctx->stop; ++j) {
    prefix_flow += series.flow(j);
    const Timestamp t_j = series.time(j);
    if (j + 1 < limit) {
      // Prefix-domination rule: stopping the edge-set at t_j only yields
      // maximal instances if the next motif edge has an element before
      // (or at) the next element of this edge — otherwise the longer
      // prefix produces a superset instance with identical downstream
      // choices (the paper's "no instance contains just the first two
      // elements of e1" example).
      const Timestamp t_next = series.time(j + 1);
      if (!next_series.HasElementInOpenClosed(t_j, t_next)) {
        ++ctx->result->num_domination_skips;
        continue;
      }
    }
    if (!options_.ablation_no_prefix_phi_pruning &&
        !PassesFlowBound(prefix_flow)) {
      // Algorithm 1 line 16: prefixes failing phi cannot start a valid
      // instance; prune the whole subtree under this prefix.
      ++ctx->result->num_phi_prunes;
      continue;
    }
    ctx->slices[static_cast<size_t>(level)] = EdgeSlice{&series, first, j + 1};
    const Flow saved_min = ctx->min_flow_so_far;
    ctx->min_flow_so_far = std::min(saved_min, prefix_flow);
    Recurse(ctx, level + 1, t_j);
    ctx->min_flow_so_far = saved_min;
  }
}

bool FlowMotifEnumerator::EnumerateMatch(const MatchBinding& binding,
                                         const InstanceVisitor& visitor,
                                         EnumerationResult* result) const {
  const int m = motif_.num_edges();
  Context ctx;
  ResolveMatchSeries(graph_, motif_, binding, &ctx.series);
  ctx.slices.resize(static_cast<size_t>(m));
  ctx.level_limit.assign(static_cast<size_t>(m), 0);
  ctx.binding = &binding;
  ctx.visitor = &visitor;
  ctx.result = result;

  // The match's processed-window list, read through the per-query
  // shared cache when the motif's (first, last) series pairs can repeat
  // (else computed into the local buffer, exactly as before PR 4).
  std::vector<Window> local_windows;
  const std::vector<Window>* windows = nullptr;
  if (cache_ != nullptr) {
    windows = cache_->Get(*ctx.series.front(), *ctx.series.back(),
                          options_.query_control);
  }
  if (windows == nullptr) {
    ComputeProcessedWindows(*ctx.series.front(), *ctx.series.back(),
                            options_.delta, &local_windows);
    ChargeComputedWindows(options_.query_control, local_windows.size(), 0);
    windows = &local_windows;
  }

  if (options_.ablation_no_window_skip) {
    // Ablation: run every anchor position; remember which ones the skip
    // rule would have processed so redundant emissions can be counted.
    const std::vector<Window>& kept = *windows;
    const std::vector<Window> all_windows =
        ComputeAllWindows(*ctx.series.front(), options_.delta);
    size_t kept_cursor = 0;
    result->num_windows_processed +=
        static_cast<int64_t>(all_windows.size());
    for (const Window& window : all_windows) {
      if (ctx.stop) break;
      while (kept_cursor < kept.size() &&
             kept[kept_cursor].start < window.start) {
        ++kept_cursor;
      }
      ctx.window_is_redundant =
          kept_cursor >= kept.size() || !(kept[kept_cursor] == window);
      ctx.AdvanceToWindow(window);
      ctx.min_flow_so_far = std::numeric_limits<Flow>::infinity();
      Recurse(&ctx, 0, window.start);
    }
    return !ctx.stop;
  }

  result->num_windows_processed += static_cast<int64_t>(windows->size());
  for (const Window& window : *windows) {
    if (ctx.stop) break;
    ctx.AdvanceToWindow(window);
    ctx.min_flow_so_far = std::numeric_limits<Flow>::infinity();
    Recurse(&ctx, 0, window.start);
  }
  return !ctx.stop;
}

bool FlowMotifEnumerator::EnumerateMatchWindows(
    const MatchBinding& binding, const Window* windows_begin,
    const Window* windows_end, const InstanceVisitor& visitor,
    EnumerationResult* result) const {
  const int m = motif_.num_edges();
  Context ctx;
  ResolveMatchSeries(graph_, motif_, binding, &ctx.series);
  ctx.slices.resize(static_cast<size_t>(m));
  ctx.level_limit.assign(static_cast<size_t>(m), 0);
  ctx.binding = &binding;
  ctx.visitor = &visitor;
  ctx.result = result;

  result->num_windows_processed +=
      static_cast<int64_t>(windows_end - windows_begin);
  for (const Window* window = windows_begin; window != windows_end;
       ++window) {
    if (ctx.stop) break;
    ctx.AdvanceToWindow(*window);
    ctx.min_flow_so_far = std::numeric_limits<Flow>::infinity();
    Recurse(&ctx, 0, window->start);
  }
  return !ctx.stop;
}

EnumerationResult FlowMotifEnumerator::Run(
    const InstanceVisitor& visitor) const {
  EnumerationResult result;
  WallTimer total_timer;
  double phase2_seconds = 0.0;

  StructuralMatcher matcher(graph_, motif_);
  matcher.FindAll([&](const MatchBinding& binding) {
    ++result.num_structural_matches;
    WallTimer p2_timer;
    const bool keep_going = EnumerateMatch(binding, visitor, &result);
    phase2_seconds += p2_timer.ElapsedSeconds();
    return keep_going;
  });

  result.phase2_seconds = phase2_seconds;
  result.phase1_seconds =
      std::max(0.0, total_timer.ElapsedSeconds() - phase2_seconds);
  return result;
}

EnumerationResult FlowMotifEnumerator::RunOnMatches(
    const std::vector<MatchBinding>& matches,
    const InstanceVisitor& visitor) const {
  EnumerationResult result;
  WallTimer timer;
  for (const MatchBinding& binding : matches) {
    ++result.num_structural_matches;
    if (!EnumerateMatch(binding, visitor, &result)) break;
  }
  result.phase2_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<MotifInstance> FlowMotifEnumerator::CollectAll() const {
  std::vector<MotifInstance> instances;
  Run([&instances](const InstanceView& view) {
    instances.push_back(view.Materialize());
    return true;
  });
  return instances;
}

}  // namespace flowmotif
