#include "core/structural_match.h"

#include <set>

#include "util/logging.h"

namespace flowmotif {

StructuralMatcher::StructuralMatcher(const TimeSeriesGraph& graph,
                                     const Motif& motif)
    : graph_(graph), motif_(motif) {}

void StructuralMatcher::FindAll(const MatchVisitor& visitor) const {
  FLOWMOTIF_CHECK(visitor != nullptr);
  MatchBinding binding(static_cast<size_t>(motif_.num_nodes()), -1);
  // The injectivity filter: a graph vertex may back at most one motif
  // node. A bitmap over vertices keeps the check O(1); motif sizes are
  // tiny so the DFS stack stays shallow.
  std::vector<bool> vertex_used(static_cast<size_t>(graph_.num_vertices()),
                                false);
  bool stop = false;

  if (!motif_.is_path()) {
    GeneralDfs(0, &binding, &vertex_used, visitor, &stop);
    return;
  }

  const MotifNode origin = motif_.path().front();
  for (VertexId v = 0; v < graph_.num_vertices() && !stop; ++v) {
    if (graph_.OutDegree(v) == 0) continue;  // origin needs an out-edge
    binding[static_cast<size_t>(origin)] = v;
    vertex_used[static_cast<size_t>(v)] = true;
    Dfs(0, &binding, &vertex_used, visitor, &stop);
    vertex_used[static_cast<size_t>(v)] = false;
    binding[static_cast<size_t>(origin)] = -1;
  }
}

void StructuralMatcher::GeneralDfs(int edge_idx, MatchBinding* binding,
                                   std::vector<bool>* vertex_used,
                                   const MatchVisitor& visitor,
                                   bool* stop) const {
  if (*stop) return;
  if (edge_idx == motif_.num_edges()) {
    if (!visitor(*binding)) *stop = true;
    return;
  }
  const auto [src_node, dst_node] = motif_.edge(edge_idx);
  const VertexId src = (*binding)[static_cast<size_t>(src_node)];
  const VertexId dst = (*binding)[static_cast<size_t>(dst_node)];

  auto bind_and_recurse = [&](MotifNode node, VertexId v) {
    (*binding)[static_cast<size_t>(node)] = v;
    (*vertex_used)[static_cast<size_t>(v)] = true;
    GeneralDfs(edge_idx + 1, binding, vertex_used, visitor, stop);
    (*vertex_used)[static_cast<size_t>(v)] = false;
    (*binding)[static_cast<size_t>(node)] = -1;
  };

  if (src >= 0 && dst >= 0) {
    if (graph_.FindPairIndex(src, dst) >= 0) {
      GeneralDfs(edge_idx + 1, binding, vertex_used, visitor, stop);
    }
    return;
  }
  if (src >= 0) {
    // New target: out-neighbors of the bound source.
    for (size_t p = graph_.OutBegin(src); p < graph_.OutEnd(src); ++p) {
      if (*stop) return;
      const VertexId to = graph_.pair(p).dst;
      if ((*vertex_used)[static_cast<size_t>(to)]) continue;
      bind_and_recurse(dst_node, to);
    }
    return;
  }
  if (dst >= 0) {
    // New source: in-neighbors of the bound target.
    for (size_t k = graph_.InBegin(dst); k < graph_.InEnd(dst); ++k) {
      if (*stop) return;
      const VertexId from = graph_.pair(graph_.InPairIndex(k)).src;
      if ((*vertex_used)[static_cast<size_t>(from)]) continue;
      bind_and_recurse(src_node, from);
    }
    return;
  }
  // Both endpoints fresh (only possible for motifs whose label order
  // visits a new weak component before linking it — rare but legal):
  // scan the pair table.
  for (size_t p = 0; p < static_cast<size_t>(graph_.num_pairs()) && !*stop;
       ++p) {
    const TimeSeriesGraph::PairEdge& pe = graph_.pair(p);
    if (pe.src == pe.dst) continue;
    if ((*vertex_used)[static_cast<size_t>(pe.src)] ||
        (*vertex_used)[static_cast<size_t>(pe.dst)]) {
      continue;
    }
    (*binding)[static_cast<size_t>(src_node)] = pe.src;
    (*vertex_used)[static_cast<size_t>(pe.src)] = true;
    bind_and_recurse(dst_node, pe.dst);
    (*vertex_used)[static_cast<size_t>(pe.src)] = false;
    (*binding)[static_cast<size_t>(src_node)] = -1;
  }
}

void StructuralMatcher::Dfs(size_t step, MatchBinding* binding,
                            std::vector<bool>* vertex_used,
                            const MatchVisitor& visitor, bool* stop) const {
  if (*stop) return;
  const std::vector<MotifNode>& path = motif_.path();
  if (step + 1 == path.size()) {
    if (!visitor(*binding)) *stop = true;
    return;
  }
  const VertexId from = (*binding)[static_cast<size_t>(path[step])];
  const MotifNode next_node = path[step + 1];
  const VertexId bound_to = (*binding)[static_cast<size_t>(next_node)];

  if (bound_to >= 0) {
    // Node already fixed by an earlier path position (cycle / repeat):
    // only the edge existence must be verified.
    if (graph_.FindPairIndex(from, bound_to) >= 0) {
      Dfs(step + 1, binding, vertex_used, visitor, stop);
    }
    return;
  }

  for (size_t p = graph_.OutBegin(from); p < graph_.OutEnd(from); ++p) {
    if (*stop) return;
    const VertexId to = graph_.pair(p).dst;
    if ((*vertex_used)[static_cast<size_t>(to)]) continue;  // injectivity
    (*binding)[static_cast<size_t>(next_node)] = to;
    (*vertex_used)[static_cast<size_t>(to)] = true;
    Dfs(step + 1, binding, vertex_used, visitor, stop);
    (*vertex_used)[static_cast<size_t>(to)] = false;
    (*binding)[static_cast<size_t>(next_node)] = -1;
  }
}

std::vector<MatchBinding> StructuralMatcher::FindAllMatches() const {
  std::vector<MatchBinding> matches;
  FindAll([&matches](const MatchBinding& b) {
    matches.push_back(b);
    return true;
  });
  return matches;
}

int64_t StructuralMatcher::CountMatches() const {
  int64_t count = 0;
  FindAll([&count](const MatchBinding&) {
    ++count;
    return true;
  });
  return count;
}

bool StructuralMatcher::IsMatch(const MatchBinding& binding) const {
  if (static_cast<int>(binding.size()) != motif_.num_nodes()) return false;
  std::set<VertexId> used;
  for (VertexId v : binding) {
    if (v < 0 || v >= graph_.num_vertices()) return false;
    if (!used.insert(v).second) return false;
  }
  for (int i = 0; i < motif_.num_edges(); ++i) {
    const auto [src, dst] = motif_.edge(i);
    if (graph_.FindPairIndex(binding[static_cast<size_t>(src)],
                             binding[static_cast<size_t>(dst)]) < 0) {
      return false;
    }
  }
  return true;
}

}  // namespace flowmotif
