#include "core/structural_match.h"

#include <set>

#include "util/logging.h"
#include "util/partition.h"

namespace flowmotif {

StructuralMatcher::StructuralMatcher(const TimeSeriesGraph& graph,
                                     const Motif& motif)
    : graph_(graph), motif_(motif) {}

void StructuralMatcher::FindAll(const MatchVisitor& visitor) const {
  FindInUnits(0, NumWorkUnits(), visitor);
}

int64_t StructuralMatcher::NumWorkUnits() const {
  return motif_.is_path() ? static_cast<int64_t>(graph_.num_vertices())
                          : static_cast<int64_t>(graph_.num_pairs());
}

bool StructuralMatcher::FindInUnits(int64_t begin, int64_t end,
                                    const MatchVisitor& visitor) const {
  FLOWMOTIF_CHECK(visitor != nullptr);
  FLOWMOTIF_CHECK_GE(begin, 0);
  FLOWMOTIF_CHECK_LE(end, NumWorkUnits());
  MatchBinding binding(static_cast<size_t>(motif_.num_nodes()), -1);
  // The injectivity filter: a graph vertex may back at most one motif
  // node. A bitmap over vertices keeps the check O(1); motif sizes are
  // tiny so the DFS stack stays shallow.
  std::vector<bool> vertex_used(static_cast<size_t>(graph_.num_vertices()),
                                false);
  bool stop = false;
  for (int64_t unit = begin; unit < end && !stop; ++unit) {
    FindInUnitImpl(unit, &binding, &vertex_used, visitor, &stop);
  }
  return !stop;
}

void StructuralMatcher::FindInUnitImpl(int64_t unit, MatchBinding* binding,
                                       std::vector<bool>* vertex_used,
                                       const MatchVisitor& visitor,
                                       bool* stop) const {
  if (motif_.is_path()) {
    const VertexId v = static_cast<VertexId>(unit);
    if (graph_.OutDegree(v) == 0) return;  // origin needs an out-edge
    const MotifNode origin = motif_.path().front();
    (*binding)[static_cast<size_t>(origin)] = v;
    (*vertex_used)[static_cast<size_t>(v)] = true;
    Dfs(0, binding, vertex_used, visitor, stop);
    (*vertex_used)[static_cast<size_t>(v)] = false;
    (*binding)[static_cast<size_t>(origin)] = -1;
    return;
  }
  // General motif: the unit binds the first labeled edge to one pair
  // edge (both endpoints are necessarily fresh at edge 0), then the
  // usual label-order backtracking takes over.
  const TimeSeriesGraph::PairEdge& pe =
      graph_.pair(static_cast<size_t>(unit));
  if (pe.src == pe.dst) return;  // motifs have no self-loops
  const auto [src_node, dst_node] = motif_.edge(0);
  (*binding)[static_cast<size_t>(src_node)] = pe.src;
  (*vertex_used)[static_cast<size_t>(pe.src)] = true;
  (*binding)[static_cast<size_t>(dst_node)] = pe.dst;
  (*vertex_used)[static_cast<size_t>(pe.dst)] = true;
  GeneralDfs(1, binding, vertex_used, visitor, stop);
  (*vertex_used)[static_cast<size_t>(pe.dst)] = false;
  (*binding)[static_cast<size_t>(dst_node)] = -1;
  (*vertex_used)[static_cast<size_t>(pe.src)] = false;
  (*binding)[static_cast<size_t>(src_node)] = -1;
}

std::vector<MatchBinding> StructuralMatcher::FindAllMatchesParallel(
    ThreadPool* pool) const {
  FLOWMOTIF_CHECK(pool != nullptr);
  if (pool->num_threads() == 1) return FindAllMatches();
  // Several unit ranges per worker (the shared chunking heuristic):
  // match density varies wildly across origins, so dynamic scheduling
  // needs the slack.
  const std::vector<IndexRange> ranges =
      PartitionIndexSpace(NumWorkUnits(), pool->num_threads());
  if (ranges.empty()) return {};

  std::vector<std::vector<MatchBinding>> shards(ranges.size());
  pool->ParallelFor(static_cast<int64_t>(ranges.size()), [&](int64_t r) {
    std::vector<MatchBinding>& shard = shards[static_cast<size_t>(r)];
    FindInUnits(ranges[static_cast<size_t>(r)].begin,
                ranges[static_cast<size_t>(r)].end,
                [&shard](const MatchBinding& b) {
                  shard.push_back(b);
                  return true;
                });
  });

  // Deterministic merge: concatenating the shards in range order is the
  // serial discovery order.
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<MatchBinding> matches;
  matches.reserve(total);
  for (auto& shard : shards) {
    for (MatchBinding& b : shard) matches.push_back(std::move(b));
  }
  return matches;
}

void StructuralMatcher::GeneralDfs(int edge_idx, MatchBinding* binding,
                                   std::vector<bool>* vertex_used,
                                   const MatchVisitor& visitor,
                                   bool* stop) const {
  if (*stop) return;
  if (edge_idx == motif_.num_edges()) {
    if (!visitor(*binding)) *stop = true;
    return;
  }
  const auto [src_node, dst_node] = motif_.edge(edge_idx);
  const VertexId src = (*binding)[static_cast<size_t>(src_node)];
  const VertexId dst = (*binding)[static_cast<size_t>(dst_node)];

  auto bind_and_recurse = [&](MotifNode node, VertexId v) {
    (*binding)[static_cast<size_t>(node)] = v;
    (*vertex_used)[static_cast<size_t>(v)] = true;
    GeneralDfs(edge_idx + 1, binding, vertex_used, visitor, stop);
    (*vertex_used)[static_cast<size_t>(v)] = false;
    (*binding)[static_cast<size_t>(node)] = -1;
  };

  if (src >= 0 && dst >= 0) {
    if (graph_.FindPairIndex(src, dst) >= 0) {
      GeneralDfs(edge_idx + 1, binding, vertex_used, visitor, stop);
    }
    return;
  }
  if (src >= 0) {
    // New target: out-neighbors of the bound source.
    for (size_t p = graph_.OutBegin(src); p < graph_.OutEnd(src); ++p) {
      if (*stop) return;
      const VertexId to = graph_.pair(p).dst;
      if ((*vertex_used)[static_cast<size_t>(to)]) continue;
      bind_and_recurse(dst_node, to);
    }
    return;
  }
  if (dst >= 0) {
    // New source: in-neighbors of the bound target.
    for (size_t k = graph_.InBegin(dst); k < graph_.InEnd(dst); ++k) {
      if (*stop) return;
      const VertexId from = graph_.pair(graph_.InPairIndex(k)).src;
      if ((*vertex_used)[static_cast<size_t>(from)]) continue;
      bind_and_recurse(src_node, from);
    }
    return;
  }
  // Both endpoints fresh (only possible for motifs whose label order
  // visits a new weak component before linking it — rare but legal):
  // scan the pair table.
  for (size_t p = 0; p < static_cast<size_t>(graph_.num_pairs()) && !*stop;
       ++p) {
    const TimeSeriesGraph::PairEdge& pe = graph_.pair(p);
    if (pe.src == pe.dst) continue;
    if ((*vertex_used)[static_cast<size_t>(pe.src)] ||
        (*vertex_used)[static_cast<size_t>(pe.dst)]) {
      continue;
    }
    (*binding)[static_cast<size_t>(src_node)] = pe.src;
    (*vertex_used)[static_cast<size_t>(pe.src)] = true;
    bind_and_recurse(dst_node, pe.dst);
    (*vertex_used)[static_cast<size_t>(pe.src)] = false;
    (*binding)[static_cast<size_t>(src_node)] = -1;
  }
}

void StructuralMatcher::Dfs(size_t step, MatchBinding* binding,
                            std::vector<bool>* vertex_used,
                            const MatchVisitor& visitor, bool* stop) const {
  if (*stop) return;
  const std::vector<MotifNode>& path = motif_.path();
  if (step + 1 == path.size()) {
    if (!visitor(*binding)) *stop = true;
    return;
  }
  const VertexId from = (*binding)[static_cast<size_t>(path[step])];
  const MotifNode next_node = path[step + 1];
  const VertexId bound_to = (*binding)[static_cast<size_t>(next_node)];

  if (bound_to >= 0) {
    // Node already fixed by an earlier path position (cycle / repeat):
    // only the edge existence must be verified.
    if (graph_.FindPairIndex(from, bound_to) >= 0) {
      Dfs(step + 1, binding, vertex_used, visitor, stop);
    }
    return;
  }

  for (size_t p = graph_.OutBegin(from); p < graph_.OutEnd(from); ++p) {
    if (*stop) return;
    const VertexId to = graph_.pair(p).dst;
    if ((*vertex_used)[static_cast<size_t>(to)]) continue;  // injectivity
    (*binding)[static_cast<size_t>(next_node)] = to;
    (*vertex_used)[static_cast<size_t>(to)] = true;
    Dfs(step + 1, binding, vertex_used, visitor, stop);
    (*vertex_used)[static_cast<size_t>(to)] = false;
    (*binding)[static_cast<size_t>(next_node)] = -1;
  }
}

std::vector<MatchBinding> StructuralMatcher::FindAllMatches() const {
  std::vector<MatchBinding> matches;
  FindAll([&matches](const MatchBinding& b) {
    matches.push_back(b);
    return true;
  });
  return matches;
}

int64_t StructuralMatcher::CountMatches() const {
  int64_t count = 0;
  FindAll([&count](const MatchBinding&) {
    ++count;
    return true;
  });
  return count;
}

bool StructuralMatcher::IsMatch(const MatchBinding& binding) const {
  if (static_cast<int>(binding.size()) != motif_.num_nodes()) return false;
  std::set<VertexId> used;
  for (VertexId v : binding) {
    if (v < 0 || v >= graph_.num_vertices()) return false;
    if (!used.insert(v).second) return false;
  }
  for (int i = 0; i < motif_.num_edges(); ++i) {
    const auto [src, dst] = motif_.edge(i);
    if (graph_.FindPairIndex(binding[static_cast<size_t>(src)],
                             binding[static_cast<size_t>(dst)]) < 0) {
      return false;
    }
  }
  return true;
}

}  // namespace flowmotif
