#include "util/logging.h"

namespace flowmotif {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  std::cerr << stream_.str() << std::endl;
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[F " << basename << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace flowmotif
