#ifndef FLOWMOTIF_UTIL_CANCELLATION_H_
#define FLOWMOTIF_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace flowmotif {

/// Query lifecycle control: cooperative cancellation, deadlines, and
/// resource budgets for every engine execution path (DESIGN.md
/// Sec. 10). A query that is asked to stop does so at the next
/// cancellation point — a named site checked at cheap, bounded
/// intervals (per P1 work unit, per P2 batch, per DP match, per
/// ensemble task, per sweep cell, per stream revisit) — and reports
/// how it ended through a Termination record with well-defined partial
/// results: whatever the canonically-ordered prefix of completed work
/// units produced, never a torn merge.

/// How a query run ended.
enum class TerminationCode {
  kCompleted = 0,      // ran to the end; results are total
  kCancelled,          // CancellationToken fired
  kDeadlineExceeded,   // QueryDeadline expired
  kBudgetExceeded,     // a WorkBudget dimension was exhausted
  kError,              // a Status error surfaced (pool task, injection)
  kRejected,           // never admitted (serve/: admission queue full)
};

const char* TerminationCodeToString(TerminationCode code);

/// The lifecycle outcome attached to every result struct
/// (QueryResult, SweepResult, MotifReport, stream EpochStats).
struct Termination {
  TerminationCode code = TerminationCode::kCompleted;

  /// Cancellation-point site name where the stop was detected
  /// (util/failpoint.h names); empty when the run completed.
  std::string stopped_at;

  /// Extra context: the token's cancel reason, or the exhausted budget
  /// dimension. Empty when the run completed.
  std::string detail;

  /// Non-OK for kError (a pool task threw, or a failpoint injected an
  /// error Status); OK otherwise.
  Status status;

  /// Length of the canonical work prefix the partial result covers.
  /// Per-mode meaning: structural matches processed (Run/RunOnMatches),
  /// grid cells completed (RunSweep), ensemble tasks completed
  /// (kSignificance), match revisits applied (SealEpoch). -1 when the
  /// path does not track a prefix.
  int64_t work_completed = -1;

  bool complete() const { return code == TerminationCode::kCompleted; }

  /// "completed" or "<code> at <site> (<detail>)".
  std::string ToString() const;
};

/// A shared cancel flag. The owner keeps the token alive for the
/// duration of the query and calls Cancel() from any thread; queries
/// observe it through QueryOptions::cancel_token (a non-owning
/// pointer — queries are synchronous, so the caller's token outlives
/// the run it cancels).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent; the first reason wins.
  /// Thread-safe.
  void Cancel(const std::string& reason = "cancelled");

  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The first Cancel() reason; empty while not cancelled.
  std::string reason() const;

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

/// A wall-clock deadline. Default-constructed = no deadline.
class QueryDeadline {
 public:
  QueryDeadline() = default;

  static QueryDeadline AfterSeconds(double seconds);
  static QueryDeadline AfterMillis(int64_t millis) {
    return AfterSeconds(static_cast<double>(millis) * 1e-3);
  }

  bool active() const { return active_; }

  /// False when inactive. Reads the steady clock — callers throttle.
  bool Expired() const {
    return active_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Resource budget for one query. -1 = unlimited. All dimensions are
/// soft caps checked at work-unit granularity: a run may overshoot by
/// up to one unit (or one in-flight parallel batch) before stopping.
struct WorkBudget {
  /// Maximum structural matches phase P1 enumerates. The match list is
  /// truncated at a work-unit boundary and phase P2 still runs over the
  /// truncated prefix, so the result is exact over the first
  /// `work_completed` matches (termination kBudgetExceeded).
  int64_t max_matches = -1;

  /// Maximum window-list elements the query materializes. Charged
  /// uniformly at site "cache.windows" for every processed-window list
  /// a match brings into existence — through a shared cache, a run-
  /// local MRU, or a private per-match computation — so the cap holds
  /// for every motif shape (core/window_cursor.h,
  /// ChargeComputedWindows). Cache *hits* are not re-charged.
  int64_t max_window_elements = -1;

  /// Soft memory cap in bytes, charged for window-list storage at the
  /// same uniform site as max_window_elements.
  int64_t max_memory_bytes = -1;

  bool active() const {
    return max_matches >= 0 || max_window_elements >= 0 ||
           max_memory_bytes >= 0;
  }
};

/// Per-query aggregation of token + deadline + budget, created by the
/// engine when any of them (or an armed failpoint) is active and
/// threaded as a nullable pointer through every execution path — the
/// default path carries a nullptr and pays one branch per check site.
///
/// Thread-safe: checks and charges are called concurrently from every
/// worker. The first stop request wins; later ones are no-ops, so the
/// recorded (code, site) pair is the stop that actually happened.
class QueryControl {
 public:
  QueryControl(const CancellationToken* token, const QueryDeadline& deadline,
               const WorkBudget& budget);

  /// True once any stop was requested (relaxed load — the per-match
  /// fast path).
  bool ShouldStop() const {
    return stop_code_.load(std::memory_order_relaxed) != 0;
  }

  /// Full cooperative check at a named site: evaluates armed
  /// failpoints, the cancel token, and (throttled) the deadline clock.
  /// Returns true when the query must stop.
  bool CheckAt(const char* site);

  /// CheckAt with an *unthrottled* deadline read. Use at batch
  /// boundaries ("p2.batch", "sig.task"): the per-match sites inside a
  /// batch stay throttled — the clock read must not enter the per-match
  /// cost — but a batch of dense matches can burn through a whole
  /// 64-check throttle window, so the boundary reads the clock
  /// unconditionally and deadline overshoot is bounded by one batch's
  /// matches plus whatever the throttle admits, never a multiple of it.
  bool CheckAtBoundary(const char* site);

  /// Budget charges from the shared window cache. Thread-safe; the
  /// first charge that crosses a limit requests kBudgetExceeded.
  void ChargeWindowElements(int64_t elements, const char* site);
  void ChargeMemoryBytes(int64_t bytes, const char* site);

  /// Requests a hard stop (first request wins). Every later CheckAt /
  /// ShouldStop returns true.
  void RequestStop(TerminationCode code, const char* site, Status status,
                   const std::string& detail = std::string());

  /// Records a soft outcome that does NOT stop the query: the run
  /// continues (e.g. phase P2 over a budget-truncated P1 prefix) but
  /// Finish() reports `code` unless a hard stop happened. First mark
  /// wins.
  void MarkTruncated(TerminationCode code, const char* site,
                     const std::string& detail = std::string());

  const WorkBudget& budget() const { return budget_; }

  /// Builds the Termination record. Call after all workers drained.
  Termination Finish(int64_t work_completed = -1) const;

 private:
  /// Shared body of CheckAt / CheckAtBoundary; `throttled` selects
  /// whether the deadline clock read goes through the 1-in-64 throttle.
  bool CheckImpl(const char* site, bool throttled);

  const CancellationToken* token_;  // may be null
  const QueryDeadline deadline_;
  const WorkBudget budget_;

  std::atomic<int> stop_code_{0};       // 0 = running, else TerminationCode
  std::atomic<bool> truncated_{false};  // soft outcome recorded
  std::atomic<uint64_t> check_count_{0};
  std::atomic<int64_t> window_elements_{0};
  std::atomic<int64_t> memory_bytes_{0};

  mutable std::mutex mu_;  // guards the stop/truncation details below
  std::string stop_site_;
  std::string stop_detail_;
  Status stop_status_;
  TerminationCode truncated_code_ = TerminationCode::kCompleted;
  std::string truncated_site_;
  std::string truncated_detail_;
};

/// Engine factory: a control when any lifecycle feature is active —
/// token present, deadline set, budget set, or any failpoint armed
/// (util/failpoint.h) — else nullptr, keeping the default path free of
/// per-work-unit bookkeeping beyond a null check.
std::unique_ptr<QueryControl> MakeQueryControl(const CancellationToken* token,
                                               const QueryDeadline& deadline,
                                               const WorkBudget& budget);

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_CANCELLATION_H_
