#include "util/csv.h"

#include <fstream>

namespace flowmotif {

namespace {
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == delim) {
      fields.push_back(Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(Trim(current));
  return fields;
}

struct CsvReader::Impl {
  std::ifstream stream;
};

CsvReader::CsvReader(const std::string& path, char delim)
    : impl_(new Impl), delim_(delim) {
  impl_->stream.open(path);
  if (!impl_->stream.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
  }
}

CsvReader::~CsvReader() { delete impl_; }

bool CsvReader::NextRow(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  std::string line;
  while (std::getline(impl_->stream, line)) {
    ++line_number_;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    *fields = SplitCsvLine(trimmed, delim_);
    return true;
  }
  return false;
}

struct CsvWriter::Impl {
  std::ofstream stream;
};

CsvWriter::CsvWriter(const std::string& path, char delim)
    : impl_(new Impl), delim_(delim) {
  impl_->stream.open(path, std::ios::trunc);
  if (!impl_->stream.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) impl_->stream << delim_;
    impl_->stream << fields[i];
  }
  impl_->stream << '\n';
}

void CsvWriter::WriteComment(const std::string& comment) {
  if (!status_.ok()) return;
  impl_->stream << "# " << comment << '\n';
}

Status CsvWriter::Close() {
  if (!status_.ok()) return status_;
  impl_->stream.flush();
  if (!impl_->stream.good()) {
    status_ = Status::IoError("write failure on close");
  }
  impl_->stream.close();
  return status_;
}

}  // namespace flowmotif
