#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace flowmotif {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FLOWMOTIF_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FLOWMOTIF_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Exponential(double rate) {
  FLOWMOTIF_CHECK_GT(rate, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Pareto(double x_min, double alpha) {
  FLOWMOTIF_CHECK_GT(x_min, 0.0);
  FLOWMOTIF_CHECK_GT(alpha, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  FLOWMOTIF_CHECK_GT(n, 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double acc = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[static_cast<size_t>(k - 1)] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
  }
  double u = UniformDouble();
  // First index whose CDF value is >= u.
  size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo) + 1;
}

int64_t Rng::Poisson(double mean) {
  FLOWMOTIF_CHECK_GT(mean, 0.0);
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    int64_t count = -1;
    do {
      ++count;
      product *= UniformDouble();
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero.
  double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

ZipfSampler::ZipfSampler(int64_t n, double s) {
  FLOWMOTIF_CHECK_GT(n, 0);
  cdf_.assign(static_cast<size_t>(n), 0.0);
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[static_cast<size_t>(k - 1)] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo) + 1;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace flowmotif
