#ifndef FLOWMOTIF_UTIL_TIMER_H_
#define FLOWMOTIF_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace flowmotif {

/// A simple wall-clock stopwatch used by benchmarks and the enumeration
/// drivers to report phase timings.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_TIMER_H_
