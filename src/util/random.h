#ifndef FLOWMOTIF_UTIL_RANDOM_H_
#define FLOWMOTIF_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flowmotif {

/// Deterministic, platform-independent pseudo-random generator
/// (xoshiro256** seeded via SplitMix64). The standard library
/// distributions are implementation-defined, so the dataset generators and
/// the significance module use this class to guarantee that a seed
/// reproduces the same dataset everywhere.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256**). Inline: RNG-bound loops —
  /// dataset generation, the significance module's permutation draws —
  /// keep the state in registers instead of paying a call per draw.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is unbiased.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Exponentially distributed double with the given rate (mean = 1/rate).
  double Exponential(double rate);

  /// Pareto (power-law) distributed double with scale x_min > 0 and shape
  /// alpha > 0. Mean is finite iff alpha > 1: mean = alpha*x_min/(alpha-1).
  double Pareto(double x_min, double alpha);

  /// Zipf-distributed integer in [1, n] with exponent s >= 0, sampled by
  /// inversion over the precomputable harmonic weights of the caller; this
  /// simple implementation is O(log n) per draw via binary search over an
  /// internally cached CDF keyed on (n, s).
  int64_t Zipf(int64_t n, double s);

  /// Poisson-distributed integer with the given mean (> 0). Uses Knuth's
  /// method for small means and a normal approximation for large means.
  int64_t Poisson(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];

  // Cached Zipf CDF so repeated draws with the same parameters are cheap.
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

/// A reusable Zipf(n, s) sampler with its own precomputed CDF. Use this
/// instead of Rng::Zipf when drawing from several different (n, s)
/// configurations in one loop — Rng::Zipf's single-entry cache would
/// otherwise rebuild its CDF on every alternation.
class ZipfSampler {
 public:
  /// `n` >= 1 ranks; exponent `s` >= 0.
  ZipfSampler(int64_t n, double s);

  /// Returns a rank in [1, n].
  int64_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_RANDOM_H_
