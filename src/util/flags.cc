#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace flowmotif {

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  FLOWMOTIF_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag: " << name;
  Flag f;
  f.type = Type::kInt64;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = f;
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  FLOWMOTIF_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag: " << name;
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = f;
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  FLOWMOTIF_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag: " << name;
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = f;
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  FLOWMOTIF_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag: " << name;
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = f;
}

Status FlagParser::SetFromString(Flag* flag, const std::string& text,
                                 const std::string& name) {
  switch (flag->type) {
    case Type::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + text +
                                       "'");
      }
      flag->int_value = static_cast<int64_t>(v);
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + text +
                                       "'");
      }
      flag->double_value = v;
      return Status::OK();
    }
    case Type::kString:
      flag->string_value = text;
      return Status::OK();
    case Type::kBool: {
      if (text == "true" || text == "1") {
        flag->bool_value = true;
      } else if (text == "false" || text == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + text +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    // `--no-name` form for booleans.
    if (!has_value && body.rfind("no-", 0) == 0) {
      auto it = flags_.find(body.substr(3));
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }

    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    Flag* flag = &it->second;

    if (!has_value) {
      if (flag->type == Type::kBool) {
        flag->bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + body + " needs a value");
      }
      value = argv[++i];
    }
    FLOWMOTIF_RETURN_IF_ERROR(SetFromString(flag, value, body));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetOrDie(const std::string& name,
                                             Type type) const {
  auto it = flags_.find(name);
  FLOWMOTIF_CHECK(it != flags_.end()) << "unregistered flag: " << name;
  FLOWMOTIF_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetOrDie(name, Type::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetOrDie(name, Type::kDouble).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetOrDie(name, Type::kString).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetOrDie(name, Type::kBool).bool_value;
}

std::string FlagParser::HelpString() const {
  std::ostringstream os;
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  " << flag.help << " (default: ";
    switch (flag.type) {
      case Type::kInt64:
        os << flag.int_value;
        break;
      case Type::kDouble:
        os << flag.double_value;
        break;
      case Type::kString:
        os << '"' << flag.string_value << '"';
        break;
      case Type::kBool:
        os << (flag.bool_value ? "true" : "false");
        break;
    }
    os << ")\n";
  }
  return os.str();
}

Status ValidateThreadsFlag(int64_t threads) {
  if (threads < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads), got " +
        std::to_string(threads));
  }
  if (threads > 4096) {
    return Status::InvalidArgument(
        "--threads=" + std::to_string(threads) +
        " is not a plausible thread count (max 4096)");
  }
  return Status::OK();
}

}  // namespace flowmotif
