#include "util/cancellation.h"

#include <utility>

#include "util/failpoint.h"

namespace flowmotif {

namespace {

/// Deadline clock reads are throttled to one per 64 checks per query
/// (shared counter): check sites are per work unit, so the detection
/// lag is bounded by 64 units while the steady_clock read disappears
/// from the per-unit cost.
constexpr uint64_t kDeadlineCheckMask = 63;

}  // namespace

const char* TerminationCodeToString(TerminationCode code) {
  switch (code) {
    case TerminationCode::kCompleted:
      return "COMPLETED";
    case TerminationCode::kCancelled:
      return "CANCELLED";
    case TerminationCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case TerminationCode::kBudgetExceeded:
      return "BUDGET_EXCEEDED";
    case TerminationCode::kError:
      return "ERROR";
    case TerminationCode::kRejected:
      return "REJECTED";
  }
  return "UNKNOWN";
}

std::string Termination::ToString() const {
  if (complete()) return "completed";
  std::string out = TerminationCodeToString(code);
  if (!stopped_at.empty()) {
    out += " at ";
    out += stopped_at;
  }
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ")";
  }
  if (!status.ok()) {
    out += ": ";
    out += status.ToString();
  }
  return out;
}

void CancellationToken::Cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reason_.empty()) reason_ = reason;
  }
  cancelled_.store(true, std::memory_order_release);
}

std::string CancellationToken::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

QueryDeadline QueryDeadline::AfterSeconds(double seconds) {
  QueryDeadline deadline;
  deadline.active_ = true;
  deadline.at_ = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
  return deadline;
}

QueryControl::QueryControl(const CancellationToken* token,
                           const QueryDeadline& deadline,
                           const WorkBudget& budget)
    : token_(token), deadline_(deadline), budget_(budget) {}

bool QueryControl::CheckAt(const char* site) {
  return CheckImpl(site, /*throttled=*/true);
}

bool QueryControl::CheckAtBoundary(const char* site) {
  return CheckImpl(site, /*throttled=*/false);
}

bool QueryControl::CheckImpl(const char* site, bool throttled) {
  if (ShouldStop()) return true;
#if defined(FLOWMOTIF_FAILPOINTS_ENABLED)
  failpoint::Evaluate(site, this);
  if (ShouldStop()) return true;
#endif
  if (token_ != nullptr && token_->IsCancelled()) {
    RequestStop(TerminationCode::kCancelled, site, Status::OK(),
                token_->reason());
    return true;
  }
  if (deadline_.active()) {
    bool read_clock = !throttled;
    if (throttled) {
      const uint64_t n = check_count_.fetch_add(1, std::memory_order_relaxed);
      read_clock = (n & kDeadlineCheckMask) == 0;
    }
    if (read_clock && deadline_.Expired()) {
      RequestStop(TerminationCode::kDeadlineExceeded, site, Status::OK());
      return true;
    }
  }
  return false;
}

void QueryControl::ChargeWindowElements(int64_t elements, const char* site) {
  const int64_t total =
      window_elements_.fetch_add(elements, std::memory_order_relaxed) +
      elements;
  if (budget_.max_window_elements >= 0 &&
      total > budget_.max_window_elements) {
    RequestStop(TerminationCode::kBudgetExceeded, site, Status::OK(),
                "max_window_elements");
  }
}

void QueryControl::ChargeMemoryBytes(int64_t bytes, const char* site) {
  const int64_t total =
      memory_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_.max_memory_bytes >= 0 && total > budget_.max_memory_bytes) {
    RequestStop(TerminationCode::kBudgetExceeded, site, Status::OK(),
                "max_memory_bytes");
  }
}

void QueryControl::RequestStop(TerminationCode code, const char* site,
                               Status status, const std::string& detail) {
  int expected = 0;
  if (stop_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mu_);
    stop_site_ = site;
    stop_detail_ = detail;
    stop_status_ = std::move(status);
  }
}

void QueryControl::MarkTruncated(TerminationCode code, const char* site,
                                 const std::string& detail) {
  bool expected = false;
  if (truncated_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mu_);
    truncated_code_ = code;
    truncated_site_ = site;
    truncated_detail_ = detail;
  }
}

Termination QueryControl::Finish(int64_t work_completed) const {
  Termination t;
  t.work_completed = work_completed;
  const int code = stop_code_.load(std::memory_order_acquire);
  if (code != 0) {
    t.code = static_cast<TerminationCode>(code);
    std::lock_guard<std::mutex> lock(mu_);
    t.stopped_at = stop_site_;
    t.detail = stop_detail_;
    t.status = stop_status_;
    return t;
  }
  if (truncated_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    t.code = truncated_code_;
    t.stopped_at = truncated_site_;
    t.detail = truncated_detail_;
  }
  return t;
}

std::unique_ptr<QueryControl> MakeQueryControl(const CancellationToken* token,
                                               const QueryDeadline& deadline,
                                               const WorkBudget& budget) {
  failpoint::MaybeArmFromEnv();
  if (token == nullptr && !deadline.active() && !budget.active() &&
      !failpoint::AnyArmed()) {
    return nullptr;
  }
  return std::make_unique<QueryControl>(token, deadline, budget);
}

}  // namespace flowmotif
