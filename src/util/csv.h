#ifndef FLOWMOTIF_UTIL_CSV_H_
#define FLOWMOTIF_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace flowmotif {

/// Splits one line on `delim`, trimming surrounding whitespace from every
/// field. Quoting is not supported: the graph edge-list files this library
/// reads and writes are plain numeric tables.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim);

/// A streaming reader for delimiter-separated tables. Skips blank lines
/// and lines starting with '#'.
class CsvReader {
 public:
  /// Opens `path`; check status() before use.
  CsvReader(const std::string& path, char delim);
  ~CsvReader();

  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  const Status& status() const { return status_; }

  /// Reads the next data row into `fields`. Returns false at end of file.
  bool NextRow(std::vector<std::string>* fields);

  /// 1-based line number of the row most recently returned.
  int64_t line_number() const { return line_number_; }

 private:
  struct Impl;
  Impl* impl_;
  Status status_;
  char delim_;
  int64_t line_number_ = 0;
};

/// A writer for delimiter-separated tables.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, char delim);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  const Status& status() const { return status_; }

  /// Writes one row; fields are joined with the delimiter.
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes a '#'-prefixed comment line.
  void WriteComment(const std::string& comment);

  /// Flushes and closes; returns the final status.
  Status Close();

 private:
  struct Impl;
  Impl* impl_;
  Status status_;
  char delim_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_CSV_H_
