#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "util/logging.h"

namespace flowmotif {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  FLOWMOTIF_CHECK_GE(num_threads, 1);
  if (num_threads == 1) return;  // inline mode, no workers
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  try {
    task();
  } catch (const std::exception& e) {
    RecordError(e.what());
  } catch (...) {
    RecordError("unknown exception");
  }
}

void ThreadPool::RecordError(const std::string& message) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) {
    first_error_ = Status::Internal("task threw: " + message);
  }
}

Status ThreadPool::TakeFirstError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  Status status = std::move(first_error_);
  first_error_ = Status::OK();
  return status;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ == 1) {
    RunTask(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitFront(std::function<void()> task) {
  if (num_threads_ == 1) {
    RunTask(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_front(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (num_threads_ == 1) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (const std::exception& e) {
        RecordError(e.what());
        return;
      } catch (...) {
        RecordError("unknown exception");
        return;
      }
    }
    return;
  }
  // One task per worker pulling indices from a shared cursor: cheap
  // dynamic load balancing without one queue entry per index.
  auto cursor = std::make_shared<std::atomic<int64_t>>(0);
  const int64_t num_tasks =
      std::min<int64_t>(n, static_cast<int64_t>(num_threads_));
  for (int64_t t = 0; t < num_tasks; ++t) {
    Submit([this, cursor, n, &body] {
      for (int64_t i = cursor->fetch_add(1); i < n;
           i = cursor->fetch_add(1)) {
        try {
          body(i);
        } catch (const std::exception& e) {
          RecordError(e.what());
          cursor->store(n);  // drain: skip the remaining indices
          return;
        } catch (...) {
          RecordError("unknown exception");
          cursor->store(n);
          return;
        }
      }
    });
  }
  Wait();
}

int ThreadPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace flowmotif
