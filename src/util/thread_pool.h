#ifndef FLOWMOTIF_UTIL_THREAD_POOL_H_
#define FLOWMOTIF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace flowmotif {

/// A fixed-size worker pool for the engine's match-parallel execution
/// path. The codebase reports errors through Status, but a task that
/// does throw is caught at the task boundary instead of terminating
/// the process: the first exception is recorded as an Internal Status
/// (readable via TakeFirstError()), later tasks still run, and the
/// pool stays serviceable for subsequent queries.
///
/// With num_threads == 1 no worker threads are spawned at all and every
/// task runs inline on the submitting thread, so the serial path has
/// zero synchronization overhead and stays the bit-for-bit reference
/// for the parallel one.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total parallelism (worker threads; the
  /// caller blocks in Wait()/ParallelFor() and does not steal work so
  /// that the thread count the user asked for is the thread count
  /// actually computing).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Enqueues one task at the *front* of the queue, ahead of all queued
  /// work. Chained pipeline stages use this so downstream tasks (the
  /// engine's P2 batches) run before the remaining upstream fan-out
  /// (queued P1 shards) instead of being starved behind it in FIFO
  /// order — which is what bounds the pipeline's in-flight buffering.
  /// With num_threads == 1 it runs inline, exactly like Submit.
  void SubmitFront(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs body(i) for every i in [0, n), distributing indices to workers
  /// through a shared cursor (dynamic load balancing), and blocks until
  /// all iterations are done. With num_threads == 1 this is a plain
  /// loop. If an iteration throws, the remaining indices are skipped
  /// (the cursor is driven to n) and the error lands in
  /// TakeFirstError(). Concurrent ParallelFor calls on the same pool
  /// are not supported (Wait() would observe each other's tasks).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// Returns the first error caught at a task boundary since the last
  /// call and clears it (OK when no task failed). The submitting query
  /// calls this after Wait() to surface worker failures through its own
  /// Status instead of crashing the process.
  Status TakeFirstError();

  /// std::thread::hardware_concurrency() with a floor of 1; the meaning
  /// of `num_threads = 0` in engine options.
  static int DefaultParallelism();

 private:
  void WorkerLoop();

  /// Runs `task` with the catch-at-boundary contract.
  void RunTask(const std::function<void()>& task);

  /// Records `message` as the first error if none is set. Thread-safe.
  void RecordError(const std::string& message);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;

  std::mutex error_mu_;
  Status first_error_;  // first task-boundary error since TakeFirstError
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_THREAD_POOL_H_
