#ifndef FLOWMOTIF_UTIL_THREAD_POOL_H_
#define FLOWMOTIF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flowmotif {

/// A fixed-size worker pool for the engine's match-parallel execution
/// path. Tasks must not throw: the codebase reports errors through
/// Status / FLOWMOTIF_CHECK, and an exception escaping a worker would
/// terminate the process.
///
/// With num_threads == 1 no worker threads are spawned at all and every
/// task runs inline on the submitting thread, so the serial path has
/// zero synchronization overhead and stays the bit-for-bit reference
/// for the parallel one.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total parallelism (worker threads; the
  /// caller blocks in Wait()/ParallelFor() and does not steal work so
  /// that the thread count the user asked for is the thread count
  /// actually computing).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Enqueues one task at the *front* of the queue, ahead of all queued
  /// work. Chained pipeline stages use this so downstream tasks (the
  /// engine's P2 batches) run before the remaining upstream fan-out
  /// (queued P1 shards) instead of being starved behind it in FIFO
  /// order — which is what bounds the pipeline's in-flight buffering.
  /// With num_threads == 1 it runs inline, exactly like Submit.
  void SubmitFront(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs body(i) for every i in [0, n), distributing indices to workers
  /// through a shared cursor (dynamic load balancing), and blocks until
  /// all iterations are done. With num_threads == 1 this is a plain
  /// loop. Concurrent ParallelFor calls on the same pool are not
  /// supported (Wait() would observe each other's tasks).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1; the meaning
  /// of `num_threads = 0` in engine options.
  static int DefaultParallelism();

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_THREAD_POOL_H_
