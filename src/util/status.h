#ifndef FLOWMOTIF_UTIL_STATUS_H_
#define FLOWMOTIF_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace flowmotif {

/// Error categories used across the library. The library does not use
/// exceptions; fallible operations return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "IO_ERROR", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// Usage:
///   Status s = graph.AddEdge(u, v, t, f);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with
  /// a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string()
                                                      : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. The value is only
/// accessible when ok(). T need not be default-constructible.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK) or from an error Status; this
  /// mirrors absl::StatusOr and keeps call sites readable.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flowmotif

/// Propagates a non-OK Status from an expression to the caller.
#define FLOWMOTIF_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::flowmotif::Status _fm_status = (expr);             \
    if (!_fm_status.ok()) return _fm_status;             \
  } while (0)

#endif  // FLOWMOTIF_UTIL_STATUS_H_
