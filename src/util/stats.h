#ifndef FLOWMOTIF_UTIL_STATS_H_
#define FLOWMOTIF_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flowmotif {

/// Summary statistics of a sample, used by the significance analysis
/// (Fig. 14) and by the dataset generators' self-checks.
struct SampleSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;  // 25th percentile (box-plot lower hinge)
  double q3 = 0.0;  // 75th percentile (box-plot upper hinge)
};

/// Computes mean, population standard deviation, quartiles and extrema of
/// `values`. Returns a zeroed summary for an empty sample.
SampleSummary Summarize(const std::vector<double>& values);

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for samples of size < 2.
double StdDev(const std::vector<double>& values);

/// The z-score of `observed` against the sample mean/stddev:
/// (observed - mean) / stddev. Returns +/-inf when stddev == 0 and the
/// observation differs from the mean, and 0 when it equals the mean — the
/// paper's significance metric (Sec. 6.3).
double ZScore(double observed, const std::vector<double>& sample);

/// Fraction of sample values that are >= observed: the empirical p-value
/// used in Sec. 6.3.
double EmpiricalPValue(double observed, const std::vector<double>& sample);

/// Percentile via linear interpolation; `p` in [0, 100].
double Percentile(std::vector<double> values, double p);

/// Renders a summary like "n=20 mean=12.1 sd=1.9 [10,15]" for logs.
std::string ToString(const SampleSummary& s);

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_STATS_H_
