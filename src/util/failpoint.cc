#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/cancellation.h"

namespace flowmotif {
namespace failpoint {

namespace {

struct SiteState {
  bool armed = false;
  Config config;
  int64_t hits = 0;    // evaluations since last Arm
  bool fired = false;  // one-shot actions fire at most once per arming
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Armed-site count for the per-check fast path.
std::atomic<int> g_num_armed{0};

void TriggerOnce(const char* site, Action action, QueryControl* control) {
  switch (action) {
    case Action::kCancel:
      control->RequestStop(TerminationCode::kCancelled, site, Status::OK(),
                           "injected");
      return;
    case Action::kDeadline:
      control->RequestStop(TerminationCode::kDeadlineExceeded, site,
                           Status::OK(), "injected");
      return;
    case Action::kBudget:
      control->RequestStop(TerminationCode::kBudgetExceeded, site,
                           Status::OK(), "injected");
      return;
    case Action::kError:
      control->RequestStop(
          TerminationCode::kError, site,
          Status::Internal(std::string("injected error at ") + site),
          "injected");
      return;
    case Action::kSleep:
      return;  // handled by the caller (outside the registry lock)
  }
}

}  // namespace

const std::vector<std::string>& AllSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      kEngineStart, kP1Unit,      kP2Batch,   kDpMatch,       kSigTask,
      kSweepRecord, kSweepCell,   kStreamRevisit, kCacheWindows,
      kServeAdmit,
  };
  return *sites;
}

void Arm(const std::string& site, const Config& config) {
  bool known = false;
  for (const std::string& s : AllSites()) {
    if (s == site) {
      known = true;
      break;
    }
  }
  if (!known) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[site];
  if (!state.armed) g_num_armed.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.config = config;
  state.hits = 0;
  state.fired = false;
}

void Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  g_num_armed.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [site, state] : registry.sites) {
    if (state.armed) {
      state.armed = false;
      g_num_armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool AnyArmed() {
  return g_num_armed.load(std::memory_order_relaxed) != 0;
}

int64_t HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

void Evaluate(const char* site, QueryControl* control) {
  if (!AnyArmed()) return;
  Action action = Action::kSleep;
  int64_t sleep_micros = 0;
  bool fire = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end() || !it->second.armed) return;
    SiteState& state = it->second;
    ++state.hits;
    action = state.config.action;
    sleep_micros = state.config.sleep_micros;
    const int64_t period = state.config.hits_before_trigger + 1;
    if (action == Action::kSleep) {
      fire = (state.hits % period) == 0;
    } else if (!state.fired && state.hits == period) {
      state.fired = true;
      fire = true;
    }
  }
  if (!fire) return;
  if (action == Action::kSleep) {
    // Sleep outside the registry lock so latency injection perturbs
    // only the checking worker, not every concurrent check.
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    return;
  }
  TriggerOnce(site, action, control);
}

void MaybeArmFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("FLOWMOTIF_FAILPOINT_SLEEP_US");
    if (value == nullptr || *value == '\0') return;
    const long micros = std::strtol(value, nullptr, 10);
    if (micros <= 0) return;
    Config config;
    config.action = Action::kSleep;
    config.sleep_micros = micros;
    config.hits_before_trigger = 63;  // every 64th evaluation
    for (const std::string& site : AllSites()) Arm(site, config);
  });
}

}  // namespace failpoint
}  // namespace flowmotif
