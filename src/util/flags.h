#ifndef FLOWMOTIF_UTIL_FLAGS_H_
#define FLOWMOTIF_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace flowmotif {

/// A minimal command-line flag parser for the example programs and bench
/// harnesses. Supports `--name=value`, `--name value` and boolean
/// `--name` / `--no-name` forms. Unrecognized flags are an error;
/// positional arguments are collected in order.
///
/// Usage:
///   FlagParser flags;
///   flags.AddInt64("scale", 100, "dataset scale percent");
///   flags.AddString("dataset", "bitcoin", "which dataset to use");
///   Status s = flags.Parse(argc, argv);
class FlagParser {
 public:
  FlagParser() = default;

  /// Registers flags. Registering the same name twice aborts.
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or bad values.
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors; abort if the flag was never registered (programmer
  /// error) so misuse is caught in tests immediately.
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable help text listing all registered flags.
  std::string HelpString() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };

  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromString(Flag* flag, const std::string& text,
                       const std::string& name);
  const Flag& GetOrDie(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// Validates a --threads flag value: OK for 0 (= all hardware threads)
/// through 4096, InvalidArgument with a user-facing message otherwise.
/// Shared by the CLI and the bench harnesses so operator typos get one
/// clear rejection instead of reaching ThreadPool's aborting CHECK —
/// and so the plausibility cap lives in exactly one place.
Status ValidateThreadsFlag(int64_t threads);

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_FLAGS_H_
