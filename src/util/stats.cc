#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace flowmotif {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

SampleSummary Summarize(const std::vector<double>& values) {
  SampleSummary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.median = Percentile(values, 50.0);
  s.q1 = Percentile(values, 25.0);
  s.q3 = Percentile(values, 75.0);
  return s;
}

double ZScore(double observed, const std::vector<double>& sample) {
  double mean = Mean(sample);
  double sd = StdDev(sample);
  if (sd == 0.0) {
    if (observed == mean) return 0.0;
    return observed > mean ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity();
  }
  return (observed - mean) / sd;
}

double EmpiricalPValue(double observed, const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  size_t at_least = 0;
  for (double v : sample) {
    if (v >= observed) ++at_least;
  }
  return static_cast<double>(at_least) / static_cast<double>(sample.size());
}

std::string ToString(const SampleSummary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev << " ["
     << s.min << "," << s.max << "]";
  return os.str();
}

}  // namespace flowmotif
