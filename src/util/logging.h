#ifndef FLOWMOTIF_UTIL_LOGGING_H_
#define FLOWMOTIF_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace flowmotif {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is actually printed. Defaults to
/// kInfo. Thread-compatible: set once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing. Used by CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace flowmotif

#define FLOWMOTIF_LOG(level)                                              \
  if (::flowmotif::LogLevel::k##level < ::flowmotif::GetLogLevel()) {     \
  } else                                                                  \
    ::flowmotif::internal::LogMessage(::flowmotif::LogLevel::k##level,    \
                                      __FILE__, __LINE__)                 \
        .stream()

/// Aborts with a message when `condition` is false. Active in all build
/// modes: the enumeration algorithms rely on these invariants.
#define FLOWMOTIF_CHECK(condition)                                    \
  if (condition) {                                                    \
  } else                                                              \
    ::flowmotif::internal::FatalLogMessage(__FILE__, __LINE__)        \
            .stream()                                                 \
        << "Check failed: " #condition " "

#define FLOWMOTIF_CHECK_EQ(a, b) FLOWMOTIF_CHECK((a) == (b))
#define FLOWMOTIF_CHECK_NE(a, b) FLOWMOTIF_CHECK((a) != (b))
#define FLOWMOTIF_CHECK_LT(a, b) FLOWMOTIF_CHECK((a) < (b))
#define FLOWMOTIF_CHECK_LE(a, b) FLOWMOTIF_CHECK((a) <= (b))
#define FLOWMOTIF_CHECK_GT(a, b) FLOWMOTIF_CHECK((a) > (b))
#define FLOWMOTIF_CHECK_GE(a, b) FLOWMOTIF_CHECK((a) >= (b))

#endif  // FLOWMOTIF_UTIL_LOGGING_H_
