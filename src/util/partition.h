#ifndef FLOWMOTIF_UTIL_PARTITION_H_
#define FLOWMOTIF_UTIL_PARTITION_H_

#include <cstdint>
#include <vector>

namespace flowmotif {

/// A contiguous index range [begin, end) processed as one unit by a
/// worker thread.
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive

  int64_t size() const { return end - begin; }
};

/// Partitions [0, n) into contiguous ranges for `num_workers` threads.
/// With `chunk_size` == 0 the size is derived so each worker gets
/// several ranges (dynamic scheduling then absorbs work items of very
/// different cost). Ranges are returned in index order; merging
/// per-range outputs in that order reproduces serial processing order.
/// This is the single source of the chunking heuristic shared by the
/// engine's P2 match batching and StructuralMatcher's parallel P1.
std::vector<IndexRange> PartitionIndexSpace(int64_t n, int num_workers,
                                            int64_t chunk_size = 0);

}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_PARTITION_H_
