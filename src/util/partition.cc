#include "util/partition.h"

#include <algorithm>

#include "util/logging.h"

namespace flowmotif {

namespace {
/// Target ranges per worker when the size is derived: enough slack for
/// dynamic load balancing, few enough that per-range bookkeeping (a
/// local result, a local top-k collector, a match shard buffer) stays
/// negligible.
constexpr int64_t kRangesPerWorker = 8;
}  // namespace

std::vector<IndexRange> PartitionIndexSpace(int64_t n, int num_workers,
                                            int64_t chunk_size) {
  FLOWMOTIF_CHECK_GE(n, 0);
  FLOWMOTIF_CHECK_GE(num_workers, 1);
  FLOWMOTIF_CHECK_GE(chunk_size, 0);
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  if (num_workers == 1 && chunk_size == 0) {
    ranges.push_back({0, n});
    return ranges;
  }
  if (chunk_size == 0) {
    const int64_t target =
        static_cast<int64_t>(num_workers) * kRangesPerWorker;
    chunk_size = std::max<int64_t>(1, (n + target - 1) / target);
  }
  ranges.reserve(static_cast<size_t>((n + chunk_size - 1) / chunk_size));
  for (int64_t begin = 0; begin < n; begin += chunk_size) {
    ranges.push_back({begin, std::min(begin + chunk_size, n)});
  }
  return ranges;
}

}  // namespace flowmotif
