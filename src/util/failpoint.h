#ifndef FLOWMOTIF_UTIL_FAILPOINT_H_
#define FLOWMOTIF_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flowmotif {

class QueryControl;

/// Deterministic fault injection at the engine's cancellation points
/// (DESIGN.md Sec. 10). Every cooperative check site doubles as a
/// failpoint: tests arm a site with an action — inject cancellation,
/// deadline expiry, budget exhaustion, a forced error Status, or
/// latency — and the next QueryControl::CheckAt at that site triggers
/// it, which is how fault_injection_test drives every termination path
/// through every query mode without timing races.
///
/// Compiled behind the FLOWMOTIF_FAILPOINTS CMake option (default ON,
/// defines FLOWMOTIF_FAILPOINTS_ENABLED). When compiled out, CheckAt
/// never consults the registry; Arm() still records state so callers
/// need no #ifdefs, but nothing triggers — tests gate on
/// kFailpointsCompiledIn. When compiled in but nothing is armed, the
/// cost is one relaxed atomic load per check site.
namespace failpoint {

#if defined(FLOWMOTIF_FAILPOINTS_ENABLED)
inline constexpr bool kFailpointsCompiledIn = true;
#else
inline constexpr bool kFailpointsCompiledIn = false;
#endif

/// Canonical site names — the cancellation-point inventory. One name
/// per cooperative check location; QueryControl::CheckAt passes these,
/// and Termination::stopped_at reports them.
inline constexpr char kEngineStart[] = "engine.start";    // before any work
inline constexpr char kP1Unit[] = "p1.unit";              // per P1 work unit
inline constexpr char kP2Batch[] = "p2.batch";            // per P2 match batch
inline constexpr char kDpMatch[] = "dp.match";            // per DP match (kTop1)
inline constexpr char kSigTask[] = "sig.task";            // per ensemble task
inline constexpr char kSweepRecord[] = "sweep.record";    // per recorded match
inline constexpr char kSweepCell[] = "sweep.cell";        // per grid cell
inline constexpr char kStreamRevisit[] = "stream.revisit";  // per seal revisit
inline constexpr char kCacheWindows[] = "cache.windows";  // per cached list
inline constexpr char kServeAdmit[] = "serve.admit";      // per Submit admission

/// Every registered site name, for tests that iterate the inventory.
const std::vector<std::string>& AllSites();

enum class Action {
  kCancel,    // inject kCancelled
  kDeadline,  // inject kDeadlineExceeded
  kBudget,    // inject kBudgetExceeded
  kError,     // inject kError with an Internal Status
  kSleep,     // inject latency (scheduling perturbation), no stop
};

struct Config {
  Action action = Action::kCancel;
  /// Evaluations to let pass before triggering: the one-shot actions
  /// fire on exactly the (hits_before_trigger + 1)-th evaluation since
  /// arming; kSleep fires on every (hits_before_trigger + 1)-th
  /// evaluation (periodic).
  int64_t hits_before_trigger = 0;
  /// kSleep: injected latency per trigger.
  int64_t sleep_micros = 0;
};

/// Arms `site` (must be a registered name; unknown names are ignored).
/// Re-arming resets the hit counter. Thread-safe.
void Arm(const std::string& site, const Config& config);
void Disarm(const std::string& site);
void DisarmAll();

/// True when any site is armed (one relaxed load).
bool AnyArmed();

/// Evaluations of `site` since it was last armed (0 when not armed).
int64_t HitCount(const std::string& site);

/// Called from QueryControl::CheckAt. No-op unless the site is armed;
/// one-shot actions call control->RequestStop once.
void Evaluate(const char* site, QueryControl* control);

/// Environment-driven arming for randomized smoke runs (CI): when
/// FLOWMOTIF_FAILPOINT_SLEEP_US=N is set, every site is armed with a
/// periodic kSleep(N us, every 64th hit) — pure scheduling
/// perturbation, so the tier-1 suite must still pass byte-identical
/// under it. Parsed once per process; later calls are free.
void MaybeArmFromEnv();

}  // namespace failpoint
}  // namespace flowmotif

#endif  // FLOWMOTIF_UTIL_FAILPOINT_H_
