#include "serve/query_service.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "util/failpoint.h"

namespace flowmotif {

namespace {

using SteadyClock = std::chrono::steady_clock;

int ResolveWorkers(int num_workers) {
  return num_workers > 0 ? num_workers : ThreadPool::DefaultParallelism();
}

double SecondsBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Bit-exact double encoding for dedup keys: two requests coalesce only
/// when every threshold matches to the bit, never "close enough".
void AppendDoubleBits(std::string* key, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  key->push_back('|');
  key->append(std::to_string(bits));
}

void AppendInt(std::string* key, int64_t value) {
  key->push_back('|');
  key->append(std::to_string(value));
}

struct IdentityHash {
  size_t operator()(const StorageIdentity& id) const {
    const size_t h = std::hash<const void*>()(id.storage);
    return h ^ (std::hash<size_t>()(id.epoch) + 0x9e3779b9u + (h << 6) +
                (h >> 2));
  }
};

}  // namespace

struct QueryService::Pending {
  Pending(ServeRequest r, SteadyClock::time_point t)
      : request(std::move(r)), submit_time(t) {}

  ServeRequest request;
  std::promise<ServedResult> promise;
  SteadyClock::time_point submit_time;
  /// The snapshot live at Submit; the run executes against it even if
  /// a seal swaps the published graph while this request queues (the
  /// shared_ptr keeps it alive — "admission-time snapshot" semantics).
  std::shared_ptr<const TimeSeriesGraph> snapshot;
  EpochId epoch = 0;
  /// Non-empty iff this request owns an inflight_ dedup entry.
  std::string dedup_key;
  /// Non-empty iff this request's completed result should be published
  /// to the result cache (same key as dedup, epoch-qualified).
  std::string result_key;
};

struct QueryService::Inflight {
  std::vector<std::pair<std::promise<ServedResult>, SteadyClock::time_point>>
      followers;
};

struct QueryService::CachedResult {
  std::shared_ptr<const QueryResult> result;
  /// The producing run's admission sequence, reported by cache hits.
  int64_t sequence = -1;
};

struct QueryService::ExpiredEntry {
  std::shared_ptr<Pending> pending;
  std::vector<std::pair<std::promise<ServedResult>, SteadyClock::time_point>>
      followers;
};

QueryService::QueryService(TimeSeriesGraph graph, ServiceConfig config)
    : config_(std::move(config)),
      max_concurrent_(config_.max_concurrent > 0
                          ? config_.max_concurrent
                          : ResolveWorkers(config_.num_workers)),
      log_(std::move(graph)),
      live_graph_(log_.Snapshot()),
      live_epoch_(log_.epoch()),
      pool_(ResolveWorkers(config_.num_workers)) {}

QueryService::~QueryService() {
  // Drain: every admitted request (running or queued) completes before
  // the members it uses (log, tiers, snapshots) go away. New Submits
  // during destruction are a caller contract violation, as usual.
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return running_ == 0 && queue_.empty(); });
  lock.unlock();
  // The last RunOne may still be past its counter updates but before
  // its final promise fulfillment; Wait() covers the full task.
  pool_.Wait();
}

Status QueryService::Append(VertexId src, VertexId dst, Timestamp t, Flow f) {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_.Append(src, dst, t, f);
}

EpochLog::SealInfo QueryService::SealEpoch() {
  std::lock_guard<std::mutex> log_lock(log_mu_);
  EpochLog::SealInfo info = log_.SealEpoch();
  if (info.num_appended == 0) {
    // No-op seal: nothing changed, so nothing is invalidated — the
    // result cache and tier entries stay exactly as warm as they were.
    return info;
  }

  // Identities reachable from the new live snapshot. Series untouched
  // by the seal kept their storage (and epoch stamp), so their tier
  // entries survive; resealed dirty series got fresh storage, so their
  // old entries fail this test and are swept.
  std::unordered_set<StorageIdentity, IdentityHash> live;
  live.reserve(static_cast<size_t>(info.graph->num_pairs()));
  for (const TimeSeriesGraph::PairEdge& pair : info.graph->pairs()) {
    live.insert(pair.series.timestamp_identity());
  }

  std::lock_guard<std::mutex> lock(mu_);
  live_graph_ = info.graph;
  live_epoch_ = info.epoch;
  ++stats_.seals;
  // Completed results describe the pre-seal snapshot; epoch-qualified
  // keys already prevent false hits, clearing also reclaims the memory.
  result_cache_.clear();
  for (const auto& tier : tiers_) {
    if (tier.second->generational()) {
      tier.second->SweepGenerations([&live](const StorageIdentity& id) {
        return live.count(id) > 0;
      });
    }
  }
  return info;
}

std::shared_ptr<const TimeSeriesGraph> QueryService::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_graph_;
}

EpochId QueryService::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_epoch_;
}

SharedWindowCache* QueryService::TierForDeltaLocked(Timestamp delta) {
  std::unique_ptr<SharedWindowCache>& slot = tiers_[delta];
  if (slot == nullptr) {
    // The tier carries no query control of its own: budget charges ride
    // each Get call (the per-query control), since one tier serves many
    // concurrent queries.
    slot = config_.tier_generational
               ? SharedWindowCache::MakeGenerational(delta,
                                                     config_.tier_max_entries)
               : std::make_unique<SharedWindowCache>(
                     delta, config_.tier_max_entries, /*cross_graph=*/false);
  }
  return slot.get();
}

std::string QueryService::DedupKey(const Motif& motif,
                                   const QueryOptions& options,
                                   EpochId epoch) {
  std::string key = motif.PathString();
  AppendInt(&key, static_cast<int64_t>(epoch));
  AppendInt(&key, static_cast<int64_t>(options.mode));
  AppendInt(&key, options.delta);
  AppendDoubleBits(&key, options.phi);
  AppendInt(&key, options.k);
  AppendInt(&key, options.strict_maximality ? 1 : 0);
  AppendInt(&key, options.collect_limit);
  AppendInt(&key, options.num_random_graphs);
  AppendInt(&key, static_cast<int64_t>(options.seed));
  return key;
}

int64_t QueryService::StartLocked(const Pending& pending) {
  ++running_;
  if (running_ > stats_.peak_running) stats_.peak_running = running_;
  ++tenant_running_[pending.request.tenant];
  return next_sequence_++;
}

void QueryService::AdmitFromQueueLocked(
    std::vector<std::pair<std::shared_ptr<Pending>, int64_t>>* started,
    std::vector<ExpiredEntry>* expired) {
  const int64_t cap = config_.per_tenant_max_running;
  for (auto it = queue_.begin(); it != queue_.end();) {
    std::shared_ptr<Pending>& entry = *it;
    // A queued request whose Submit-anchored deadline already passed is
    // dead: resolve it here (kDeadlineExceeded at "serve.admit") and
    // never hand it a run slot — under overload, dead requests must not
    // displace live ones. Checked for every queue entry on every
    // rescan, even when the run caps are exhausted, so expiry is
    // detected no later than the next completion.
    if (entry->request.options.deadline.Expired()) {
      ExpiredEntry dead;
      dead.pending = std::move(entry);
      if (!dead.pending->dedup_key.empty()) {
        const auto inflight = inflight_.find(dead.pending->dedup_key);
        if (inflight != inflight_.end()) {
          dead.followers = std::move(inflight->second->followers);
          inflight_.erase(inflight);
        }
      }
      ++stats_.expired_in_queue;
      expired->push_back(std::move(dead));
      it = queue_.erase(it);
      continue;
    }
    if (running_ >= max_concurrent_) {
      ++it;
      continue;
    }
    const std::string& tenant = entry->request.tenant;
    if (cap > 0) {
      const auto t = tenant_running_.find(tenant);
      if (t != tenant_running_.end() && t->second >= cap) {
        // Over-cap tenant: skip, don't dequeue — FIFO within the
        // tenant, fairness across tenants.
        ++it;
        continue;
      }
    }
    std::shared_ptr<Pending> pending = std::move(entry);
    it = queue_.erase(it);
    started->emplace_back(pending, StartLocked(*pending));
  }
}

void QueryService::FulfillExpired(ExpiredEntry* entry) {
  const SteadyClock::time_point now = SteadyClock::now();
  auto dead = std::make_shared<QueryResult>();
  dead->mode = entry->pending->request.options.mode;
  dead->termination.code = TerminationCode::kDeadlineExceeded;
  dead->termination.stopped_at = failpoint::kServeAdmit;
  dead->termination.detail = "deadline expired while queued";
  dead->termination.work_completed = 0;
  const std::shared_ptr<const QueryResult> shared = std::move(dead);

  ServedResult served;
  served.result = shared;
  served.epoch = entry->pending->epoch;
  served.queue_seconds = SecondsBetween(entry->pending->submit_time, now);
  served.total_seconds = served.queue_seconds;
  entry->pending->promise.set_value(std::move(served));

  for (auto& follower : entry->followers) {
    ServedResult coalesced;
    coalesced.result = shared;
    coalesced.coalesced = true;
    coalesced.epoch = entry->pending->epoch;
    coalesced.queue_seconds = SecondsBetween(follower.second, now);
    coalesced.total_seconds = coalesced.queue_seconds;
    follower.first.set_value(std::move(coalesced));
  }
}

std::future<ServedResult> QueryService::Submit(ServeRequest request) {
  const SteadyClock::time_point submit_time = SteadyClock::now();
  QueryOptions& options = request.options;

  // Dedup / result-cache eligibility is decided on the caller-supplied
  // options, BEFORE service defaults are stamped: a shared run cannot
  // honor one caller's private token/deadline/budget, but the service's
  // own defaults are identical across the coalesced set by construction
  // (the shared run takes the earliest leader's anchor). Deciding after
  // stamping would silently disable dedup whenever defaults are
  // configured.
  const bool lifecycle_free = options.cancel_token == nullptr &&
                              !options.deadline.active() &&
                              !options.budget.active();

  // Service defaults for requests that carry no lifecycle bounds. The
  // deadline anchors here, before any queue wait, so a request that
  // queues past it resolves at "serve.admit" without doing work.
  if (!options.deadline.active() && config_.default_deadline_seconds > 0.0) {
    options.deadline =
        QueryDeadline::AfterSeconds(config_.default_deadline_seconds);
  }
  if (!options.budget.active() && config_.default_budget.active()) {
    options.budget = config_.default_budget;
  }
  // The service parallelizes across queries, not within them: worker
  // count bounds total parallelism, and results are byte-identical at
  // any thread count by engine contract.
  options.num_threads = 1;

  auto pending = std::make_shared<Pending>(std::move(request), submit_time);
  std::future<ServedResult> future = pending->promise.get_future();
  QueryOptions& opts = pending->request.options;

  // Admission failpoint: lets tests inject a termination outcome for
  // exactly the (N+1)-th Submit without timing races.
  if (failpoint::kFailpointsCompiledIn && failpoint::AnyArmed()) {
    QueryControl probe(nullptr, QueryDeadline(), WorkBudget());
    failpoint::Evaluate(failpoint::kServeAdmit, &probe);
    if (probe.ShouldStop()) {
      auto injected = std::make_shared<QueryResult>();
      injected->mode = opts.mode;
      injected->termination = probe.Finish(0);
      ServedResult served;
      served.result = std::move(injected);
      served.rejected = true;
      served.total_seconds = SecondsBetween(submit_time, SteadyClock::now());
      served.queue_seconds = served.total_seconds;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.submitted;
        ++stats_.rejected;
        served.epoch = live_epoch_;
      }
      pending->promise.set_value(std::move(served));
      return future;
    }
  }

  bool rejected = false;
  bool cache_hit = false;
  ServedResult cached;
  std::vector<std::pair<std::shared_ptr<Pending>, int64_t>> started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;

    // Capture the live snapshot: this request runs against it no
    // matter how many seals happen while it queues.
    pending->snapshot = live_graph_;
    pending->epoch = live_epoch_;

    if (config_.enable_cache_tier && opts.delta > 0 &&
        opts.shared_cache_tier == nullptr) {
      opts.shared_cache_tier = TierForDeltaLocked(opts.delta);
    }

    if (lifecycle_free &&
        (config_.enable_dedup || config_.enable_result_cache)) {
      std::string key = DedupKey(pending->request.motif, opts, pending->epoch);

      // Completed-result cache first: a finished identical run on this
      // very epoch answers immediately, no engine run, no queue slot.
      if (config_.enable_result_cache) {
        const auto hit = result_cache_.find(key);
        if (hit != result_cache_.end()) {
          ++stats_.result_cache_hits;
          cached.result = hit->second.result;
          cached.from_result_cache = true;
          cached.admission_sequence = hit->second.sequence;
          cached.epoch = pending->epoch;
          cache_hit = true;
        } else {
          pending->result_key = key;
        }
      }

      // In-flight dedup: attach to an identical running/queued leader.
      if (!cache_hit && config_.enable_dedup) {
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          ++stats_.coalesced;
          it->second->followers.emplace_back(std::move(pending->promise),
                                             submit_time);
          return future;
        }
        inflight_.emplace(key, std::make_shared<Inflight>());
        pending->dedup_key = std::move(key);
      }
    }

    if (!cache_hit) {
      const int64_t cap = config_.per_tenant_max_running;
      const auto t = tenant_running_.find(pending->request.tenant);
      const bool tenant_ok =
          cap <= 0 || t == tenant_running_.end() || t->second < cap;
      if (running_ < max_concurrent_ && tenant_ok) {
        started.emplace_back(pending, StartLocked(*pending));
      } else if (static_cast<int>(queue_.size()) < config_.max_queue_depth) {
        queue_.push_back(pending);
        const int64_t depth = static_cast<int64_t>(queue_.size());
        if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
      } else {
        ++stats_.rejected;
        rejected = true;
        if (!pending->dedup_key.empty()) inflight_.erase(pending->dedup_key);
      }
    }
  }

  if (cache_hit) {
    cached.total_seconds = SecondsBetween(submit_time, SteadyClock::now());
    pending->promise.set_value(std::move(cached));
    return future;
  }

  if (rejected) {
    auto full = std::make_shared<QueryResult>();
    full->mode = opts.mode;
    full->termination.code = TerminationCode::kRejected;
    full->termination.stopped_at = failpoint::kServeAdmit;
    full->termination.detail = "admission queue full";
    full->termination.work_completed = 0;
    ServedResult served;
    served.result = std::move(full);
    served.rejected = true;
    served.epoch = pending->epoch;
    served.total_seconds = SecondsBetween(submit_time, SteadyClock::now());
    served.queue_seconds = served.total_seconds;
    pending->promise.set_value(std::move(served));
    return future;
  }

  // Outside mu_: a 1-worker pool runs the task inline, and RunOne
  // re-enters the lock.
  for (auto& entry : started) {
    std::shared_ptr<Pending> p = entry.first;
    const int64_t sequence = entry.second;
    pool_.Submit([this, p, sequence] { RunOne(p, sequence); });
  }
  return future;
}

void QueryService::RunOne(std::shared_ptr<Pending> pending, int64_t sequence) {
  const SteadyClock::time_point run_start = SteadyClock::now();
  if (pending->request.on_start) pending->request.on_start();
  // The engine binds to this request's captured snapshot — not the
  // currently published one — so a seal mid-run changes nothing for
  // this query, and the shared_ptr keeps the snapshot alive.
  const QueryEngine engine(*pending->snapshot);
  QueryResult result =
      engine.Run(pending->request.motif, pending->request.options);
  const std::shared_ptr<const QueryResult> shared =
      std::make_shared<const QueryResult>(std::move(result));
  const SteadyClock::time_point run_end = SteadyClock::now();

  std::vector<std::pair<std::promise<ServedResult>, SteadyClock::time_point>>
      followers;
  std::vector<std::pair<std::shared_ptr<Pending>, int64_t>> started;
  std::vector<ExpiredEntry> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    --running_;
    auto t = tenant_running_.find(pending->request.tenant);
    if (t != tenant_running_.end() && --t->second <= 0) {
      tenant_running_.erase(t);
    }
    if (!pending->dedup_key.empty()) {
      const auto it = inflight_.find(pending->dedup_key);
      if (it != inflight_.end()) {
        followers = std::move(it->second->followers);
        inflight_.erase(it);
      }
    }
    // Publish to the completed-result cache — only full results (a
    // deadline-stopped partial must not answer a request that would
    // have completed), and only while this run's epoch is still the
    // live one (a seal between run and publish cleared the cache; a
    // stale insert would leak a pre-seal result past its seal).
    if (!pending->result_key.empty() && shared->termination.complete() &&
        pending->epoch == live_epoch_ &&
        result_cache_.size() < config_.result_cache_max_entries) {
      result_cache_.emplace(pending->result_key,
                            CachedResult{shared, sequence});
    }
    AdmitFromQueueLocked(&started, &expired);
    if (running_ == 0 && queue_.empty()) drained_.notify_all();
  }

  ServedResult served;
  served.result = shared;
  served.epoch = pending->epoch;
  served.admission_sequence = sequence;
  served.queue_seconds = SecondsBetween(pending->submit_time, run_start);
  served.total_seconds = SecondsBetween(pending->submit_time, run_end);
  pending->promise.set_value(std::move(served));

  for (auto& follower : followers) {
    ServedResult coalesced;
    coalesced.result = shared;
    coalesced.coalesced = true;
    coalesced.epoch = pending->epoch;
    coalesced.admission_sequence = sequence;
    coalesced.queue_seconds = SecondsBetween(follower.second, run_start);
    coalesced.total_seconds = SecondsBetween(follower.second, run_end);
    follower.first.set_value(std::move(coalesced));
  }

  for (ExpiredEntry& entry : expired) FulfillExpired(&entry);

  for (auto& entry : started) {
    std::shared_ptr<Pending> next = entry.first;
    const int64_t next_sequence = entry.second;
    pool_.Submit([this, next, next_sequence] { RunOne(next, next_sequence); });
  }
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  for (const auto& tier : tiers_) {
    out.tier_lookups += tier.second->num_lookups();
    out.tier_hits += tier.second->num_hits();
    out.tier_rotations += tier.second->num_rotations();
  }
  return out;
}

}  // namespace flowmotif
