#include "serve/query_service.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/failpoint.h"

namespace flowmotif {

namespace {

using SteadyClock = std::chrono::steady_clock;

int ResolveWorkers(int num_workers) {
  return num_workers > 0 ? num_workers : ThreadPool::DefaultParallelism();
}

double SecondsBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Bit-exact double encoding for dedup keys: two requests coalesce only
/// when every threshold matches to the bit, never "close enough".
void AppendDoubleBits(std::string* key, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  key->push_back('|');
  key->append(std::to_string(bits));
}

void AppendInt(std::string* key, int64_t value) {
  key->push_back('|');
  key->append(std::to_string(value));
}

}  // namespace

struct QueryService::Pending {
  Pending(ServeRequest r, SteadyClock::time_point t)
      : request(std::move(r)), submit_time(t) {}

  ServeRequest request;
  std::promise<ServedResult> promise;
  SteadyClock::time_point submit_time;
  /// Non-empty iff this request owns an inflight_ dedup entry.
  std::string dedup_key;
};

struct QueryService::Inflight {
  std::vector<std::pair<std::promise<ServedResult>, SteadyClock::time_point>>
      followers;
};

QueryService::QueryService(TimeSeriesGraph graph, ServiceConfig config)
    : graph_(std::move(graph)),
      config_(std::move(config)),
      max_concurrent_(config_.max_concurrent > 0
                          ? config_.max_concurrent
                          : ResolveWorkers(config_.num_workers)),
      engine_(graph_),
      pool_(ResolveWorkers(config_.num_workers)) {}

QueryService::~QueryService() {
  // Drain: every admitted request (running or queued) completes before
  // the members it uses (engine, tiers, graph) go away. New Submits
  // during destruction are a caller contract violation, as usual.
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return running_ == 0 && queue_.empty(); });
  lock.unlock();
  // The last RunOne may still be past its counter updates but before
  // its final promise fulfillment; Wait() covers the full task.
  pool_.Wait();
}

SharedWindowCache* QueryService::TierForDeltaLocked(Timestamp delta) {
  std::unique_ptr<SharedWindowCache>& slot = tiers_[delta];
  if (slot == nullptr) {
    // The tier carries no query control of its own: budget charges ride
    // each Get call (the per-query control), since one tier serves many
    // concurrent queries.
    slot = std::make_unique<SharedWindowCache>(delta, config_.tier_max_entries,
                                               /*cross_graph=*/false);
  }
  return slot.get();
}

std::string QueryService::DedupKey(const Motif& motif,
                                   const QueryOptions& options) {
  std::string key = motif.PathString();
  AppendInt(&key, static_cast<int64_t>(options.mode));
  AppendInt(&key, options.delta);
  AppendDoubleBits(&key, options.phi);
  AppendInt(&key, options.k);
  AppendInt(&key, options.strict_maximality ? 1 : 0);
  AppendInt(&key, options.collect_limit);
  AppendInt(&key, options.num_random_graphs);
  AppendInt(&key, static_cast<int64_t>(options.seed));
  return key;
}

int64_t QueryService::StartLocked(const Pending& pending) {
  ++running_;
  if (running_ > stats_.peak_running) stats_.peak_running = running_;
  ++tenant_running_[pending.request.tenant];
  return next_sequence_++;
}

void QueryService::AdmitFromQueueLocked(
    std::vector<std::pair<std::shared_ptr<Pending>, int64_t>>* started) {
  const int64_t cap = config_.per_tenant_max_running;
  for (auto it = queue_.begin();
       it != queue_.end() && running_ < max_concurrent_;) {
    const std::string& tenant = (*it)->request.tenant;
    if (cap > 0) {
      const auto t = tenant_running_.find(tenant);
      if (t != tenant_running_.end() && t->second >= cap) {
        // Over-cap tenant: skip, don't dequeue — FIFO within the
        // tenant, fairness across tenants.
        ++it;
        continue;
      }
    }
    std::shared_ptr<Pending> pending = *it;
    it = queue_.erase(it);
    started->emplace_back(pending, StartLocked(*pending));
  }
}

std::future<ServedResult> QueryService::Submit(ServeRequest request) {
  const SteadyClock::time_point submit_time = SteadyClock::now();
  QueryOptions& options = request.options;

  // Service defaults for requests that carry no lifecycle bounds. The
  // deadline anchors here, before any queue wait, so a request that
  // queues past it stops at "engine.start" without doing work.
  if (!options.deadline.active() && config_.default_deadline_seconds > 0.0) {
    options.deadline =
        QueryDeadline::AfterSeconds(config_.default_deadline_seconds);
  }
  if (!options.budget.active() && config_.default_budget.active()) {
    options.budget = config_.default_budget;
  }
  // The service parallelizes across queries, not within them: worker
  // count bounds total parallelism, and results are byte-identical at
  // any thread count by engine contract.
  options.num_threads = 1;

  auto pending = std::make_shared<Pending>(std::move(request), submit_time);
  std::future<ServedResult> future = pending->promise.get_future();
  QueryOptions& opts = pending->request.options;

  // Admission failpoint: lets tests inject a termination outcome for
  // exactly the (N+1)-th Submit without timing races.
  if (failpoint::kFailpointsCompiledIn && failpoint::AnyArmed()) {
    QueryControl probe(nullptr, QueryDeadline(), WorkBudget());
    failpoint::Evaluate(failpoint::kServeAdmit, &probe);
    if (probe.ShouldStop()) {
      auto injected = std::make_shared<QueryResult>();
      injected->mode = opts.mode;
      injected->termination = probe.Finish(0);
      ServedResult served;
      served.result = std::move(injected);
      served.rejected = true;
      served.total_seconds = SecondsBetween(submit_time, SteadyClock::now());
      served.queue_seconds = served.total_seconds;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.submitted;
        ++stats_.rejected;
      }
      pending->promise.set_value(std::move(served));
      return future;
    }
  }

  bool rejected = false;
  std::vector<std::pair<std::shared_ptr<Pending>, int64_t>> started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;

    if (config_.enable_cache_tier && opts.delta > 0 &&
        opts.shared_cache_tier == nullptr) {
      opts.shared_cache_tier = TierForDeltaLocked(opts.delta);
    }

    // In-flight dedup. Only requests without per-request lifecycle
    // state are eligible: a shared run could not honor one caller's
    // token/deadline/budget without affecting the others.
    if (config_.enable_dedup && opts.cancel_token == nullptr &&
        !opts.deadline.active() && !opts.budget.active()) {
      std::string key = DedupKey(pending->request.motif, opts);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        ++stats_.coalesced;
        it->second->followers.emplace_back(std::move(pending->promise),
                                           submit_time);
        return future;
      }
      inflight_.emplace(key, std::make_shared<Inflight>());
      pending->dedup_key = std::move(key);
    }

    const int64_t cap = config_.per_tenant_max_running;
    const auto t = tenant_running_.find(pending->request.tenant);
    const bool tenant_ok =
        cap <= 0 || t == tenant_running_.end() || t->second < cap;
    if (running_ < max_concurrent_ && tenant_ok) {
      started.emplace_back(pending, StartLocked(*pending));
    } else if (static_cast<int>(queue_.size()) < config_.max_queue_depth) {
      queue_.push_back(pending);
      const int64_t depth = static_cast<int64_t>(queue_.size());
      if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
    } else {
      ++stats_.rejected;
      rejected = true;
      if (!pending->dedup_key.empty()) inflight_.erase(pending->dedup_key);
    }
  }

  if (rejected) {
    auto full = std::make_shared<QueryResult>();
    full->mode = opts.mode;
    full->termination.code = TerminationCode::kRejected;
    full->termination.stopped_at = failpoint::kServeAdmit;
    full->termination.detail = "admission queue full";
    full->termination.work_completed = 0;
    ServedResult served;
    served.result = std::move(full);
    served.rejected = true;
    served.total_seconds = SecondsBetween(submit_time, SteadyClock::now());
    served.queue_seconds = served.total_seconds;
    pending->promise.set_value(std::move(served));
    return future;
  }

  // Outside mu_: a 1-worker pool runs the task inline, and RunOne
  // re-enters the lock.
  for (auto& entry : started) {
    std::shared_ptr<Pending> p = entry.first;
    const int64_t sequence = entry.second;
    pool_.Submit([this, p, sequence] { RunOne(p, sequence); });
  }
  return future;
}

void QueryService::RunOne(std::shared_ptr<Pending> pending, int64_t sequence) {
  const SteadyClock::time_point run_start = SteadyClock::now();
  if (pending->request.on_start) pending->request.on_start();
  QueryResult result =
      engine_.Run(pending->request.motif, pending->request.options);
  const std::shared_ptr<const QueryResult> shared =
      std::make_shared<const QueryResult>(std::move(result));
  const SteadyClock::time_point run_end = SteadyClock::now();

  std::vector<std::pair<std::promise<ServedResult>, SteadyClock::time_point>>
      followers;
  std::vector<std::pair<std::shared_ptr<Pending>, int64_t>> started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    --running_;
    auto t = tenant_running_.find(pending->request.tenant);
    if (t != tenant_running_.end() && --t->second <= 0) {
      tenant_running_.erase(t);
    }
    if (!pending->dedup_key.empty()) {
      const auto it = inflight_.find(pending->dedup_key);
      if (it != inflight_.end()) {
        followers = std::move(it->second->followers);
        inflight_.erase(it);
      }
    }
    AdmitFromQueueLocked(&started);
    if (running_ == 0 && queue_.empty()) drained_.notify_all();
  }

  ServedResult served;
  served.result = shared;
  served.admission_sequence = sequence;
  served.queue_seconds = SecondsBetween(pending->submit_time, run_start);
  served.total_seconds = SecondsBetween(pending->submit_time, run_end);
  pending->promise.set_value(std::move(served));

  for (auto& follower : followers) {
    ServedResult coalesced;
    coalesced.result = shared;
    coalesced.coalesced = true;
    coalesced.admission_sequence = sequence;
    coalesced.queue_seconds = SecondsBetween(follower.second, run_start);
    coalesced.total_seconds = SecondsBetween(follower.second, run_end);
    follower.first.set_value(std::move(coalesced));
  }

  for (auto& entry : started) {
    std::shared_ptr<Pending> next = entry.first;
    const int64_t next_sequence = entry.second;
    pool_.Submit([this, next, next_sequence] { RunOne(next, next_sequence); });
  }
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  for (const auto& tier : tiers_) {
    out.tier_lookups += tier.second->num_lookups();
    out.tier_hits += tier.second->num_hits();
  }
  return out;
}

}  // namespace flowmotif
