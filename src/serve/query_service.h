#ifndef FLOWMOTIF_SERVE_QUERY_SERVICE_H_
#define FLOWMOTIF_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/motif.h"
#include "core/window_cursor.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"
#include "graph/epoch_log.h"
#include "graph/time_series_graph.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace flowmotif {

/// serve/: the multi-query serving layer (DESIGN.md Sec. 11). One
/// QueryService fronts one EpochLog and runs many concurrent queries
/// through QueryEngine against its latest sealed snapshot, adding what
/// a single synchronous Run call cannot provide:
///
///  * live data — Append buffers edges and SealEpoch atomically swaps
///    the served snapshot; every query runs against the snapshot that
///    was live when it was submitted and keeps it alive via shared_ptr,
///    so a seal never invalidates an in-flight (or queued) run;
///  * a cross-query window-cache tier — one long-lived generational
///    SharedWindowCache per delta that every query's per-query cache
///    falls through to. Its StorageIdentity{storage, epoch} keys make
///    entries for series untouched by a seal stay warm across epochs,
///    while a post-seal sweep drops entries unreachable from the live
///    snapshot (stale lists are never served, memory does not grow
///    monotonically);
///  * admission control and tenant-fair scheduling — a bounded queue in
///    front of a concurrency cap, rejecting overload with a kRejected
///    Termination instead of blocking, skipping over-cap tenants, and
///    resolving queued requests whose deadline expired before admission
///    with kDeadlineExceeded instead of burning a run slot on them;
///  * deduplication — identical submissions coalesce onto one in-flight
///    engine run, and a completed-result cache (keyed like the dedup
///    table, qualified by epoch, invalidated at every real seal) makes
///    repeats *after* completion free as well.
///
/// Results are byte-identical to solo QueryEngine runs on the same
/// snapshot: the tier only changes where a window list is *found*,
/// never its contents, and the engine's canonical-order folds already
/// make every mode deterministic at any thread count
/// (tests/serving_test.cc and tests/serving_epoch_test.cc lock this in
/// under TSan).

/// Service-wide configuration. Every 0 selects the documented default.
struct ServiceConfig {
  /// Worker threads executing queries. 0 = one per hardware thread.
  /// With 1 worker the pool degenerates to inline execution: Submit
  /// runs the query synchronously on the calling thread (still
  /// correct, used by deterministic tests).
  int num_workers = 0;

  /// Queries running at once. 0 = num_workers. Each served query runs
  /// with num_threads = 1 — the service parallelizes across queries,
  /// not within them, so worker count bounds total parallelism.
  int max_concurrent = 0;

  /// Bounded admission queue depth behind the concurrency cap. A
  /// Submit that finds the queue full fails fast: its result carries
  /// Termination kRejected at site "serve.admit" instead of blocking
  /// the caller.
  int max_queue_depth = 64;

  /// Per-tenant cap on concurrently *running* queries (0 = unlimited).
  /// Queued requests of an at-cap tenant are skipped — not dequeued —
  /// by the admission scan, so another tenant's later submission can
  /// start first (tenant fairness) while FIFO order is preserved
  /// within each tenant.
  int per_tenant_max_running = 0;

  /// Default lifecycle bounds stamped onto requests that carry none.
  /// The deadline is anchored at Submit time, so it covers queue wait:
  /// a request that queues past it resolves at "serve.admit" without
  /// occupying a worker. 0 / inactive = no default. Dedup and
  /// result-cache eligibility are decided on the *caller-supplied*
  /// options, before these defaults are stamped — a shared run under
  /// identical service defaults takes the earliest leader's anchor.
  double default_deadline_seconds = 0.0;
  WorkBudget default_budget;

  /// Cross-query window-cache tier (one SharedWindowCache per delta,
  /// created lazily, identity-keyed like every cache). Generational by
  /// default: saturated inserts rotate generations instead of freezing
  /// the tier on its first tier_max_entries pairs forever — the right
  /// discipline for a long-lived service whose working set drifts
  /// across seals. tier_max_entries is per generation when
  /// generational (so up to 2x resident between rotations).
  bool enable_cache_tier = true;
  bool tier_generational = true;
  size_t tier_max_entries = 8 * SharedWindowCache::kDefaultMaxEntries;

  /// In-flight dedup of identical submissions. Only requests whose
  /// *callers* supplied no cancel token, deadline, or budget are
  /// eligible — per-request lifecycle state must not be shared
  /// (service defaults are fine: they are identical across the
  /// coalesced set by construction).
  bool enable_dedup = true;

  /// Completed-result cache, keyed like the dedup table plus the epoch
  /// and cleared at every real seal: a repeat of a completed query on
  /// an unchanged snapshot resolves immediately with the shared
  /// immutable result, no engine run. Same eligibility as dedup.
  bool enable_result_cache = true;
  size_t result_cache_max_entries = 256;
};

/// One query submission.
struct ServeRequest {
  Motif motif;
  QueryOptions options;

  /// Admission-control identity; empty = the shared anonymous tenant.
  std::string tenant{};

  /// Test hook: runs on the worker immediately before the engine run
  /// (after queue wait). A coalesced, result-cached, or
  /// expired-in-queue submission's hook never runs — the submission
  /// never executes.
  std::function<void()> on_start{};
};

/// What a Submit future resolves to.
struct ServedResult {
  /// The query result; shared because coalesced / result-cached
  /// submissions alias one run's output. Never null.
  std::shared_ptr<const QueryResult> result;

  /// The request never ran: admission queue full (result->termination
  /// is kRejected at "serve.admit") or a fault injected at admission.
  bool rejected = false;

  /// This submission attached to an identical in-flight run instead of
  /// executing (result is the leader's).
  bool coalesced = false;

  /// This submission was answered by the completed-result cache
  /// (result is the original run's; no engine run happened).
  bool from_result_cache = false;

  /// Epoch of the snapshot this request was served against (the one
  /// live at Submit).
  EpochId epoch = 0;

  /// Order in which the owning engine run *started* (service-wide,
  /// from 0); -1 when rejected or expired in queue. Followers and
  /// result-cache hits report their leader's / producer's sequence.
  /// The fairness tests key on this.
  int64_t admission_sequence = -1;

  double queue_seconds = 0.0;  // Submit to engine-run start
  double total_seconds = 0.0;  // Submit to completion
};

/// Aggregate service counters (monotone; read at any time).
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;  // engine runs finished (followers not counted)
  int64_t rejected = 0;
  int64_t coalesced = 0;
  /// Queued requests resolved kDeadlineExceeded at admission, without
  /// ever occupying a worker.
  int64_t expired_in_queue = 0;
  /// Submissions answered by the completed-result cache.
  int64_t result_cache_hits = 0;
  /// Real seals published (empty-tail no-op seals not counted).
  int64_t seals = 0;
  int64_t peak_running = 0;
  int64_t peak_queue_depth = 0;
  /// Cross-query tier totals over all deltas. A per-query cache miss
  /// that the tier answers counts as one lookup + one hit here.
  int64_t tier_lookups = 0;
  int64_t tier_hits = 0;
  /// Generation rotations across all per-delta tiers.
  int64_t tier_rotations = 0;
};

/// The serving facade. Thread-safe: Submit / Stats / Snapshot may be
/// called from any thread; Append / SealEpoch are single-writer (the
/// EpochLog contract) but safe against concurrent Submits. Destruction
/// drains — it blocks until every admitted request (running or queued)
/// has completed.
class QueryService {
 public:
  /// Serves `graph` as the epoch-0 snapshot of a fresh log.
  explicit QueryService(TimeSeriesGraph graph,
                        ServiceConfig config = ServiceConfig());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query against the currently live snapshot. Never
  /// blocks on the queue: overload resolves the future immediately
  /// with kRejected. The future is resolved by a worker (or inline
  /// with 1 worker); futures from coalesced submissions resolve when
  /// their leader's run completes, result-cache hits resolve
  /// immediately.
  std::future<ServedResult> Submit(ServeRequest request);

  /// Buffers one edge in the log's append tail. Not visible to queries
  /// until the next SealEpoch. Monotone-time checked (EpochLog
  /// contract); a rejected edge changes nothing.
  Status Append(VertexId src, VertexId dst, Timestamp t, Flow f);
  Status Append(const InteractionGraph::Edge& edge) {
    return Append(edge.src, edge.dst, edge.t, edge.f);
  }

  /// Folds the append tail into a new snapshot and atomically swaps
  /// the served graph: submissions after this call run against the new
  /// epoch; in-flight and queued requests keep their submit-time
  /// snapshot (alive via shared_ptr — drain semantics unchanged). A
  /// real seal clears the completed-result cache and sweeps tier
  /// entries whose storage identity is no longer reachable from the
  /// live snapshot; an empty-tail seal is a no-op that invalidates
  /// nothing.
  EpochLog::SealInfo SealEpoch();

  /// The currently served snapshot; safe to hold across later seals.
  std::shared_ptr<const TimeSeriesGraph> Snapshot() const;

  /// Epoch id of the currently served snapshot.
  EpochId epoch() const;

  ServiceStats Stats() const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  struct Inflight;
  struct CachedResult;

  /// A queued request found dead at admission, plus the followers that
  /// coalesced onto it; resolved outside the lock.
  struct ExpiredEntry;

  /// The cross-query tier for `delta`, created on first use. Requires
  /// mu_ held.
  SharedWindowCache* TierForDeltaLocked(Timestamp delta);

  /// Dedup/result-cache key for an eligible request: the epoch it will
  /// run against, the motif's structural encoding, and every
  /// result-affecting option. Execution knobs (num_threads,
  /// batch_size, skeleton_replay) are excluded — results are
  /// byte-identical across them by engine contract. Qualifying by
  /// epoch means a post-seal submission can never coalesce onto (or be
  /// answered by) a pre-seal run.
  static std::string DedupKey(const Motif& motif, const QueryOptions& options,
                              EpochId epoch);

  /// Runs one admitted request on the calling (worker) thread, then
  /// re-scans the queue for newly admissible work.
  void RunOne(std::shared_ptr<Pending> pending, int64_t sequence);

  /// Starts every queue entry the caps admit and extracts every queued
  /// entry whose deadline expired (resolved by the caller outside mu_
  /// — they never occupy a worker). Requires mu_ held; `started` pairs
  /// must be handed to the pool *after* releasing mu_ (a 1-worker pool
  /// runs tasks inline, which would re-enter the lock).
  void AdmitFromQueueLocked(
      std::vector<std::pair<std::shared_ptr<Pending>, int64_t>>* started,
      std::vector<ExpiredEntry>* expired);

  /// Resolves an expired-in-queue entry (leader + followers) with
  /// kDeadlineExceeded at "serve.admit". Call without mu_ held.
  static void FulfillExpired(ExpiredEntry* entry);

  /// Bumps running/tenant counters for `pending` and assigns its
  /// sequence. Requires mu_ held.
  int64_t StartLocked(const Pending& pending);

  const ServiceConfig config_;
  const int max_concurrent_;

  /// The log is single-writer (Append / SealEpoch hold log_mu_); query
  /// admission reads only the published snapshot mirror below.
  std::mutex log_mu_;
  EpochLog log_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  /// Mirror of the log's latest snapshot, republished under mu_ by
  /// SealEpoch so Submit captures (snapshot, epoch) atomically with
  /// admission. Never null.
  std::shared_ptr<const TimeSeriesGraph> live_graph_;
  EpochId live_epoch_ = 0;
  int64_t running_ = 0;
  int64_t next_sequence_ = 0;
  std::deque<std::shared_ptr<Pending>> queue_;
  std::unordered_map<std::string, int64_t> tenant_running_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::unordered_map<std::string, CachedResult> result_cache_;
  /// One tier per delta. Entries are never erased while the service
  /// lives: engine runs read them outside mu_, and generational
  /// replacement + post-seal sweeps bound their memory instead.
  std::map<Timestamp, std::unique_ptr<SharedWindowCache>> tiers_;
  ServiceStats stats_;

  /// Last member: destroyed first, but the destructor drains the queue
  /// explicitly before ~ThreadPool joins the workers.
  ThreadPool pool_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_SERVE_QUERY_SERVICE_H_
