#ifndef FLOWMOTIF_SERVE_QUERY_SERVICE_H_
#define FLOWMOTIF_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/motif.h"
#include "core/window_cursor.h"
#include "engine/query_engine.h"
#include "engine/query_options.h"
#include "graph/time_series_graph.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace flowmotif {

/// serve/: the multi-query serving layer (DESIGN.md Sec. 11). One
/// QueryService owns one immutable TimeSeriesGraph and runs many
/// concurrent queries against it through QueryEngine, adding the three
/// things a single synchronous Run call cannot provide:
///
///  * a cross-query window-cache tier — one long-lived SharedWindowCache
///    per delta that every query's per-query cache falls through to, so
///    processed-window lists computed by one query are hits for every
///    later query at that delta (including non-interior motifs, whose
///    pairs never repeat within one query but repeat across queries);
///  * admission control and tenant-fair scheduling — a bounded queue in
///    front of a concurrency cap, rejecting overload with a kRejected
///    Termination instead of blocking, and skipping over-cap tenants so
///    one tenant's burst cannot starve another's single query;
///  * in-flight deduplication — identical (motif, options) submissions
///    against the same graph coalesce onto one engine run and share one
///    immutable QueryResult.
///
/// Results are byte-identical to solo QueryEngine runs: the tier only
/// changes where a window list is *found*, never its contents, and the
/// engine's canonical-order folds already make every mode deterministic
/// at any thread count (tests/serving_test.cc locks this in under TSan).

/// Service-wide configuration. Every 0 selects the documented default.
struct ServiceConfig {
  /// Worker threads executing queries. 0 = one per hardware thread.
  /// With 1 worker the pool degenerates to inline execution: Submit
  /// runs the query synchronously on the calling thread (still
  /// correct, used by deterministic tests).
  int num_workers = 0;

  /// Queries running at once. 0 = num_workers. Each served query runs
  /// with num_threads = 1 — the service parallelizes across queries,
  /// not within them, so worker count bounds total parallelism.
  int max_concurrent = 0;

  /// Bounded admission queue depth behind the concurrency cap. A
  /// Submit that finds the queue full fails fast: its result carries
  /// Termination kRejected at site "serve.admit" instead of blocking
  /// the caller.
  int max_queue_depth = 64;

  /// Per-tenant cap on concurrently *running* queries (0 = unlimited).
  /// Queued requests of an at-cap tenant are skipped — not dequeued —
  /// by the admission scan, so another tenant's later submission can
  /// start first (tenant fairness) while FIFO order is preserved
  /// within each tenant.
  int per_tenant_max_running = 0;

  /// Default lifecycle bounds stamped onto requests that carry none.
  /// The deadline is anchored at Submit time, so it covers queue wait:
  /// a request that queues past its deadline terminates at
  /// "engine.start" without doing work. 0 / inactive = no default.
  double default_deadline_seconds = 0.0;
  WorkBudget default_budget;

  /// Cross-query window-cache tier (one SharedWindowCache per delta,
  /// created lazily, insert-only and identity-keyed like every cache).
  bool enable_cache_tier = true;
  size_t tier_max_entries = 8 * SharedWindowCache::kDefaultMaxEntries;

  /// In-flight dedup of identical submissions. Only requests with no
  /// cancel token, deadline, or budget (after defaults) are eligible —
  /// per-request lifecycle state must not be shared.
  bool enable_dedup = true;
};

/// One query submission.
struct ServeRequest {
  Motif motif;
  QueryOptions options;

  /// Admission-control identity; empty = the shared anonymous tenant.
  std::string tenant{};

  /// Test hook: runs on the worker immediately before the engine run
  /// (after queue wait). A coalesced submission's hook never runs —
  /// the submission never executes, its leader did.
  std::function<void()> on_start{};
};

/// What a Submit future resolves to.
struct ServedResult {
  /// The query result; shared because coalesced submissions alias one
  /// run's output. Never null.
  std::shared_ptr<const QueryResult> result;

  /// The request never ran: admission queue full (result->termination
  /// is kRejected at "serve.admit") or a fault injected at admission.
  bool rejected = false;

  /// This submission attached to an identical in-flight run instead of
  /// executing (result is the leader's).
  bool coalesced = false;

  /// Order in which the owning engine run *started* (service-wide,
  /// from 0); -1 when rejected. Followers report their leader's
  /// sequence. The fairness tests key on this.
  int64_t admission_sequence = -1;

  double queue_seconds = 0.0;  // Submit to engine-run start
  double total_seconds = 0.0;  // Submit to completion
};

/// Aggregate service counters (monotone; read at any time).
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;  // engine runs finished (followers not counted)
  int64_t rejected = 0;
  int64_t coalesced = 0;
  int64_t peak_running = 0;
  int64_t peak_queue_depth = 0;
  /// Cross-query tier totals over all deltas. A per-query cache miss
  /// that the tier answers counts as one lookup + one hit here.
  int64_t tier_lookups = 0;
  int64_t tier_hits = 0;
};

/// The serving facade. Thread-safe: Submit / Stats may be called from
/// any thread. Destruction drains — it blocks until every admitted
/// request (running or queued) has completed.
class QueryService {
 public:
  explicit QueryService(TimeSeriesGraph graph,
                        ServiceConfig config = ServiceConfig());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query. Never blocks on the queue: overload resolves
  /// the future immediately with kRejected. The future is resolved by
  /// a worker (or inline with 1 worker); futures from coalesced
  /// submissions resolve when their leader's run completes.
  std::future<ServedResult> Submit(ServeRequest request);

  ServiceStats Stats() const;

  const TimeSeriesGraph& graph() const { return graph_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  struct Inflight;

  /// The cross-query tier for `delta`, created on first use. Requires
  /// mu_ held.
  SharedWindowCache* TierForDeltaLocked(Timestamp delta);

  /// Dedup-map key for an eligible request: the motif's structural
  /// encoding plus every result-affecting option. Execution knobs
  /// (num_threads, batch_size, skeleton_replay) are excluded — results
  /// are byte-identical across them by engine contract.
  static std::string DedupKey(const Motif& motif, const QueryOptions& options);

  /// Runs one admitted request on the calling (worker) thread, then
  /// re-scans the queue for newly admissible work.
  void RunOne(std::shared_ptr<Pending> pending, int64_t sequence);

  /// Starts every queue entry the caps admit. Requires mu_ held;
  /// fills `started` with (pending, sequence) pairs the caller must
  /// hand to the pool *after* releasing mu_ (a 1-worker pool runs
  /// tasks inline, which would re-enter the lock).
  void AdmitFromQueueLocked(
      std::vector<std::pair<std::shared_ptr<Pending>, int64_t>>* started);

  /// Bumps running/tenant counters for `pending` and assigns its
  /// sequence. Requires mu_ held.
  int64_t StartLocked(const Pending& pending);

  const TimeSeriesGraph graph_;
  const ServiceConfig config_;
  const int max_concurrent_;
  const QueryEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  int64_t running_ = 0;
  int64_t next_sequence_ = 0;
  std::deque<std::shared_ptr<Pending>> queue_;
  std::unordered_map<std::string, int64_t> tenant_running_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  /// One tier per delta. Entries are never erased while the service
  /// lives: engine runs read them outside mu_, and SharedWindowCache
  /// pointers must stay valid for the graph's lifetime anyway.
  std::map<Timestamp, std::unique_ptr<SharedWindowCache>> tiers_;
  ServiceStats stats_;

  /// Last member: destroyed first, but the destructor drains the queue
  /// explicitly before ~ThreadPool joins the workers.
  ThreadPool pool_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_SERVE_QUERY_SERVICE_H_
