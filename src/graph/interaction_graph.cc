#include "graph/interaction_graph.h"

#include <string>

namespace flowmotif {

Status InteractionGraph::AddEdge(VertexId src, VertexId dst, Timestamp t,
                                 Flow f) {
  if (src < 0 || dst < 0) {
    return Status::InvalidArgument("vertex ids must be non-negative");
  }
  if (!(f > 0.0)) {
    return Status::InvalidArgument("flow must be positive, got " +
                                   std::to_string(f));
  }
  edges_.push_back(Edge{src, dst, t, f});
  int64_t needed = static_cast<int64_t>(std::max(src, dst)) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
  return Status::OK();
}

void InteractionGraph::EnsureVertices(int64_t n) {
  if (n > num_vertices_) num_vertices_ = n;
}

}  // namespace flowmotif
