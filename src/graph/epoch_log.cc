#include "graph/epoch_log.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace flowmotif {

EpochLog::EpochLog()
    : watermark_(std::numeric_limits<Timestamp>::min()),
      snapshot_(std::make_shared<const TimeSeriesGraph>()) {}

EpochLog::EpochLog(const InteractionGraph& seed)
    : watermark_(std::numeric_limits<Timestamp>::min()) {
  num_vertices_ = seed.num_vertices();
  auto graph = std::make_shared<const TimeSeriesGraph>(
      TimeSeriesGraph::Build(seed));
  TimeSeriesGraph::Stats stats = graph->ComputeStats();
  if (stats.num_interactions > 0) {
    watermark_ = stats.max_time;
    empty_ = false;
  }
  snapshot_ = std::move(graph);
}

EpochLog::EpochLog(TimeSeriesGraph seed)
    : watermark_(std::numeric_limits<Timestamp>::min()) {
  num_vertices_ = seed.num_vertices();
  auto graph = std::make_shared<const TimeSeriesGraph>(std::move(seed));
  TimeSeriesGraph::Stats stats = graph->ComputeStats();
  if (stats.num_interactions > 0) {
    watermark_ = stats.max_time;
    empty_ = false;
  }
  // Adopt the seed's epoch stamps: if the graph came out of another
  // log's ExtendWith chain, future seals here must stamp strictly
  // larger epochs so StorageIdentity keys can never alias across the
  // handoff.
  for (const TimeSeriesGraph::PairEdge& pair : graph->pairs()) {
    epoch_ = std::max(epoch_, pair.series.timestamp_identity().epoch);
  }
  snapshot_ = std::move(graph);
}

Status EpochLog::Append(VertexId src, VertexId dst, Timestamp t, Flow f) {
  // Validate everything before mutating anything: a rejected edge must
  // leave the tail (and the watermark) exactly as it found them.
  if (src < 0 || dst < 0) {
    return Status::InvalidArgument("vertex ids must be non-negative");
  }
  if (!(f > 0.0)) {
    return Status::InvalidArgument("flows must be positive");
  }
  if (!empty_ && t < watermark_) {
    return Status::InvalidArgument(
        "stream timestamps must be non-decreasing: t=" + std::to_string(t) +
        " < watermark=" + std::to_string(watermark_));
  }
  watermark_ = std::max(watermark_, t);
  empty_ = false;
  num_vertices_ =
      std::max(num_vertices_, static_cast<int64_t>(std::max(src, dst)) + 1);
  tail_.push_back(InteractionGraph::Edge{src, dst, t, f});
  return Status::OK();
}

EpochLog::SealInfo EpochLog::SealEpoch() {
  SealInfo info;
  info.watermark = watermark_;
  if (tail_.empty()) {
    info.epoch = epoch_;
    info.graph = Snapshot();
    return info;
  }

  std::shared_ptr<const TimeSeriesGraph> base = Snapshot();
  info.num_appended = tail_.size();
  info.min_new_time = tail_.front().t;  // monotone stream: front is min

  info.dirty_pairs.reserve(tail_.size());
  for (const InteractionGraph::Edge& e : tail_) {
    info.dirty_pairs.emplace_back(e.src, e.dst);
  }
  std::sort(info.dirty_pairs.begin(), info.dirty_pairs.end());
  info.dirty_pairs.erase(
      std::unique(info.dirty_pairs.begin(), info.dirty_pairs.end()),
      info.dirty_pairs.end());
  for (const auto& pair : info.dirty_pairs) {
    if (base->FindPairIndex(pair.first, pair.second) < 0) {
      info.new_pairs.push_back(pair);
    }
  }
  info.topology_changed =
      !info.new_pairs.empty() || num_vertices_ != base->num_vertices();

  info.epoch = ++epoch_;
  auto next = std::make_shared<const TimeSeriesGraph>(
      TimeSeriesGraph::ExtendWith(*base, std::move(tail_), num_vertices_,
                                  info.epoch));
  tail_.clear();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = next;
  }
  info.graph = std::move(next);
  return info;
}

std::shared_ptr<const TimeSeriesGraph> EpochLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

}  // namespace flowmotif
