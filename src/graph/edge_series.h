#ifndef FLOWMOTIF_GRAPH_EDGE_SERIES_H_
#define FLOWMOTIF_GRAPH_EDGE_SERIES_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace flowmotif {

/// The interaction time series R(u, v) on one edge of the time-series
/// graph: all (t, f) elements from u to v, ordered by time.
///
/// Storage is split: the timestamp array is immutable shared storage
/// (shared_ptr), while the flow values and their prefix sums are owned
/// per series. A flow-permuted view (WithFlows) therefore shares the
/// timestamps of its source series by identity — the significance
/// module's null-model graphs (Sec. 6.3) keep structure and timestamps
/// fixed, so every timestamp-derived artifact (window lists, union
/// timelines, structural matches) is bit-identical across the whole
/// permutation ensemble and can be cached under timestamp_identity().
///
/// Flow prefix sums are maintained so that the aggregated flow of any
/// contiguous index range — the quantity `flow([tj, ti], k)` of Eq. 2 and
/// the phi-checks of Algorithm 1 — costs O(1) after an O(log n) binary
/// search by time.
class EdgeSeries {
 public:
  /// An empty series sharing the static empty timestamp storage.
  EdgeSeries();

  /// Builds from interactions; sorts them by (time, flow). The series
  /// owns a fresh timestamp array (a new identity). `epoch` stamps the
  /// identity with the creation epoch of the storage (0 for static
  /// graphs).
  explicit EdgeSeries(std::vector<Interaction> interactions,
                      EpochId epoch = 0);

  /// A view over this series' timestamp storage (shared by identity, not
  /// copied) carrying `new_flows` in element order. The significance
  /// module's flow permutation builds its randomized graphs from these
  /// views, so N permutations store N flow arrays but one timestamp
  /// array. `new_flows.size()` must equal size(); flows must be > 0.
  EdgeSeries WithFlows(std::vector<Flow> new_flows) const;

  /// Copy with freshly owned timestamp storage — a distinct
  /// timestamp_identity(). The retained pre-refactor copying semantics,
  /// used by TimeSeriesGraph::DeepCopy.
  EdgeSeries DeepCopy() const;

  /// A new series over fresh storage holding this series' interactions
  /// plus `tail`, sorted — byte-identical to rebuilding the series from
  /// the union of interactions, so an epoch-sealed streamed graph is
  /// indistinguishable from a statically built one. The result's
  /// identity carries `epoch`; this series (and any cache entries keyed
  /// on its identity) is untouched.
  EdgeSeries WithAppended(std::vector<Interaction> tail, EpochId epoch) const;

  /// Stable identity of the (immutable, shared) timestamp storage: equal
  /// for this series and every WithFlows view derived from it, distinct
  /// for series built from interactions. SharedWindowCache keys on this,
  /// which is what lets one window cache serve a whole flow-permutation
  /// ensemble. The epoch stamp keeps the identity unambiguous across an
  /// appending stream even if freed storage addresses are reused (see
  /// StorageIdentity in graph/types.h).
  StorageIdentity timestamp_identity() const {
    return StorageIdentity{times_.get(), storage_epoch_};
  }

  size_t size() const { return num_elements_; }
  bool empty() const { return num_elements_ == 0; }

  Timestamp time(size_t i) const { return times_data_[i]; }
  Flow flow(size_t i) const { return flows_[i]; }
  Interaction at(size_t i) const { return {times_data_[i], flows_[i]}; }

  const std::vector<Timestamp>& times() const { return *times_; }
  const std::vector<Flow>& flows() const { return flows_; }

  /// The flow prefix sums: size() + 1 entries with
  /// prefix_sums()[i] = sum of flows()[0..i-1]. Exposed so the replay
  /// arena (core/skeleton.h) can lay the ensemble's prefix arrays out
  /// flat without re-deriving them.
  const std::vector<double>& prefix_sums() const { return prefix_; }

  /// Sum of flows over the inclusive index range [i, j]; 0 if i > j.
  Flow FlowSum(size_t i, size_t j) const {
    if (i > j || j >= size()) return 0.0;
    return prefix_[j + 1] - prefix_[i];
  }

  /// Sum of flows over the half-open index range [first, limit); 0 when
  /// the range is empty. With first = LowerBound(lo) and
  /// limit = UpperBound(hi) this equals FlowInClosed(lo, hi) bit for bit
  /// — it is the O(1) `flow([tj,ti],k)` of Eq. 2 once the DP's window
  /// cursor has the bounds as indices. `limit` must be <= size().
  Flow FlowInIndexRange(size_t first, size_t limit) const {
    return first < limit ? prefix_[limit] - prefix_[first] : 0.0;
  }

  /// First index i >= from with time(i) >= t (== size() if none). A
  /// galloping advance: O(log gap) in the distance moved, so the
  /// sliding-window cursors pay O(1)-ish per window when consecutive
  /// windows overlap (the common case) yet never worse than a binary
  /// search when the first window of a match sits deep into the series.
  size_t AdvanceLowerBound(size_t from, Timestamp t) const;

  /// First index i >= from with time(i) > t (== size() if none).
  size_t AdvanceUpperBound(size_t from, Timestamp t) const;

  /// Total flow of the whole series.
  Flow TotalFlow() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// Index of the first element with time >= t (== size() if none).
  size_t LowerBound(Timestamp t) const;

  /// Index of the first element with time > t (== size() if none).
  size_t UpperBound(Timestamp t) const;

  /// Sum of flows of elements with lo < time <= hi (half-open window used
  /// by the enumerator's recursion) — 0 when the range is empty.
  Flow FlowInOpenClosed(Timestamp lo, Timestamp hi) const;

  /// Sum of flows of elements with lo <= time <= hi (closed window used by
  /// the DP module's Eq. 2).
  Flow FlowInClosed(Timestamp lo, Timestamp hi) const;

  /// True iff some element has lo < time <= hi.
  bool HasElementInOpenClosed(Timestamp lo, Timestamp hi) const;

  /// Replaces the flow values in place and rebuilds the prefix sums.
  /// Only the owned flow storage is touched — the shared timestamps (and
  /// any views over them) are unaffected. `new_flows.size()` must equal
  /// size().
  void ReplaceFlows(const std::vector<Flow>& new_flows);

 private:
  void RebuildPrefix();

  /// Re-derives the cached raw view (times_data_, num_elements_) from
  /// times_. Call after every assignment to times_.
  void SyncTimesView() {
    times_data_ = times_->data();
    num_elements_ = times_->size();
  }

  // Immutable after construction; shared with WithFlows views.
  std::shared_ptr<const std::vector<Timestamp>> times_;
  // Epoch at which times_ was created; part of timestamp_identity().
  EpochId storage_epoch_ = 0;
  // Cached raw view of *times_ so the hot paths (time(), the galloping
  // cursors, the binary searches) pay no shared_ptr double indirection —
  // the storage split must not tax the recursion-bound workloads that
  // never touch a permutation view. Always kept in sync with times_.
  const Timestamp* times_data_ = nullptr;
  size_t num_elements_ = 0;
  // Owned per series/view.
  std::vector<Flow> flows_;
  std::vector<double> prefix_;  // prefix_[i] = sum of flows_[0..i-1]
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_EDGE_SERIES_H_
