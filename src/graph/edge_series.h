#ifndef FLOWMOTIF_GRAPH_EDGE_SERIES_H_
#define FLOWMOTIF_GRAPH_EDGE_SERIES_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace flowmotif {

/// The interaction time series R(u, v) on one edge of the time-series
/// graph: all (t, f) elements from u to v, ordered by time.
///
/// Flow prefix sums are maintained so that the aggregated flow of any
/// contiguous index range — the quantity `flow([tj, ti], k)` of Eq. 2 and
/// the phi-checks of Algorithm 1 — costs O(1) after an O(log n) binary
/// search by time.
class EdgeSeries {
 public:
  EdgeSeries() = default;

  /// Builds from interactions; sorts them by (time, flow).
  explicit EdgeSeries(std::vector<Interaction> interactions);

  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  Timestamp time(size_t i) const { return times_[i]; }
  Flow flow(size_t i) const { return flows_[i]; }
  Interaction at(size_t i) const { return {times_[i], flows_[i]}; }

  const std::vector<Timestamp>& times() const { return times_; }
  const std::vector<Flow>& flows() const { return flows_; }

  /// Sum of flows over the inclusive index range [i, j]; 0 if i > j.
  Flow FlowSum(size_t i, size_t j) const {
    if (i > j || j >= size()) return 0.0;
    return prefix_[j + 1] - prefix_[i];
  }

  /// Sum of flows over the half-open index range [first, limit); 0 when
  /// the range is empty. With first = LowerBound(lo) and
  /// limit = UpperBound(hi) this equals FlowInClosed(lo, hi) bit for bit
  /// — it is the O(1) `flow([tj,ti],k)` of Eq. 2 once the DP's window
  /// cursor has the bounds as indices. `limit` must be <= size().
  Flow FlowInIndexRange(size_t first, size_t limit) const {
    return first < limit ? prefix_[limit] - prefix_[first] : 0.0;
  }

  /// First index i >= from with time(i) >= t (== size() if none). A
  /// galloping advance: O(log gap) in the distance moved, so the
  /// sliding-window cursors pay O(1)-ish per window when consecutive
  /// windows overlap (the common case) yet never worse than a binary
  /// search when the first window of a match sits deep into the series.
  size_t AdvanceLowerBound(size_t from, Timestamp t) const;

  /// First index i >= from with time(i) > t (== size() if none).
  size_t AdvanceUpperBound(size_t from, Timestamp t) const;

  /// Total flow of the whole series.
  Flow TotalFlow() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// Index of the first element with time >= t (== size() if none).
  size_t LowerBound(Timestamp t) const;

  /// Index of the first element with time > t (== size() if none).
  size_t UpperBound(Timestamp t) const;

  /// Sum of flows of elements with lo < time <= hi (half-open window used
  /// by the enumerator's recursion) — 0 when the range is empty.
  Flow FlowInOpenClosed(Timestamp lo, Timestamp hi) const;

  /// Sum of flows of elements with lo <= time <= hi (closed window used by
  /// the DP module's Eq. 2).
  Flow FlowInClosed(Timestamp lo, Timestamp hi) const;

  /// True iff some element has lo < time <= hi.
  bool HasElementInOpenClosed(Timestamp lo, Timestamp hi) const;

  /// Replaces the flow values (used by the significance module's flow
  /// permutation, which keeps structure and timestamps fixed) and rebuilds
  /// the prefix sums. `new_flows.size()` must equal size().
  void ReplaceFlows(const std::vector<Flow>& new_flows);

 private:
  void RebuildPrefix();

  std::vector<Timestamp> times_;
  std::vector<Flow> flows_;
  std::vector<double> prefix_;  // prefix_[i] = sum of flows_[0..i-1]
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_EDGE_SERIES_H_
