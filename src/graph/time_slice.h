#ifndef FLOWMOTIF_GRAPH_TIME_SLICE_H_
#define FLOWMOTIF_GRAPH_TIME_SLICE_H_

#include <vector>

#include "graph/time_series_graph.h"
#include "graph/types.h"

namespace flowmotif {

/// Returns the sub-graph containing only interactions with
/// t <= `max_time` (vertex set unchanged). This realizes the paper's
/// time-prefix samples B1..B5 / F1..F5 / T1..T4 for the scalability
/// experiment (Sec. 6.2.4, Fig. 13).
TimeSeriesGraph SliceByMaxTime(const TimeSeriesGraph& graph,
                               Timestamp max_time);

/// Cut points that split [min_time, max_time] of `graph` into `k`
/// prefixes of equal time coverage; element i is the max_time of prefix
/// sample i+1 (the last equals the full span).
std::vector<Timestamp> EqualTimePrefixes(const TimeSeriesGraph& graph, int k);

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_TIME_SLICE_H_
