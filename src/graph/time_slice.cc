#include "graph/time_slice.h"

#include "graph/interaction_graph.h"
#include "util/logging.h"

namespace flowmotif {

TimeSeriesGraph SliceByMaxTime(const TimeSeriesGraph& graph,
                               Timestamp max_time) {
  InteractionGraph multigraph;
  multigraph.EnsureVertices(graph.num_vertices());
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      if (pe.series.time(i) > max_time) break;  // series sorted by time
      Status s =
          multigraph.AddEdge(pe.src, pe.dst, pe.series.time(i),
                             pe.series.flow(i));
      FLOWMOTIF_CHECK(s.ok()) << s.ToString();
    }
  }
  return TimeSeriesGraph::Build(multigraph);
}

std::vector<Timestamp> EqualTimePrefixes(const TimeSeriesGraph& graph,
                                         int k) {
  FLOWMOTIF_CHECK_GT(k, 0);
  TimeSeriesGraph::Stats stats = graph.ComputeStats();
  std::vector<Timestamp> cuts;
  cuts.reserve(static_cast<size_t>(k));
  const Timestamp span = stats.max_time - stats.min_time;
  for (int i = 1; i <= k; ++i) {
    cuts.push_back(stats.min_time + span * i / k);
  }
  return cuts;
}

}  // namespace flowmotif
