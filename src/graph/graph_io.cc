#include "graph/graph_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace flowmotif {

namespace {

/// Splits on runs of spaces/tabs (the edge-list format allows either).
std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

}  // namespace

StatusOr<InteractionGraph> LoadInteractionGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  InteractionGraph graph;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 4) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) +
          ": expected 'src dst time flow', got " +
          std::to_string(tokens.size()) + " fields");
    }
    char* end = nullptr;
    long long src = std::strtoll(tokens[0].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad src '" + tokens[0] + "'");
    }
    long long dst = std::strtoll(tokens[1].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad dst '" + tokens[1] + "'");
    }
    long long t = std::strtoll(tokens[2].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad time '" + tokens[2] + "'");
    }
    double f = std::strtod(tokens[3].c_str(), &end);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad flow '" + tokens[3] + "'");
    }
    Status s = graph.AddEdge(static_cast<VertexId>(src),
                             static_cast<VertexId>(dst),
                             static_cast<Timestamp>(t), f);
    if (!s.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + s.message());
    }
  }
  return graph;
}

namespace {

void AppendFlow(std::ostream& os, Flow f) {
  // Integral flows print without a decimal point so files stay compact and
  // byte-stable across round trips. The magnitude guard keeps the
  // double->int64 cast defined for absurdly large flows.
  if (std::abs(f) < 9e15 &&
      f == static_cast<double>(static_cast<int64_t>(f))) {
    os << static_cast<int64_t>(f);
  } else {
    os << f;
  }
}

}  // namespace

Status SaveInteractionGraph(const InteractionGraph& graph,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# flowmotif edge list: src dst time flow\n";
  for (const InteractionGraph::Edge& e : graph.edges()) {
    out << e.src << ' ' << e.dst << ' ' << e.t << ' ';
    AppendFlow(out, e.f);
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failure: " + path);
  return Status::OK();
}

Status SaveTimeSeriesGraph(const TimeSeriesGraph& graph,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# flowmotif edge list: src dst time flow\n";
  for (const TimeSeriesGraph::PairEdge& pe : graph.pairs()) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      out << pe.src << ' ' << pe.dst << ' ' << pe.series.time(i) << ' ';
      AppendFlow(out, pe.series.flow(i));
      out << '\n';
    }
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failure: " + path);
  return Status::OK();
}

}  // namespace flowmotif
