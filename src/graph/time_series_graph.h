#ifndef FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_
#define FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_series.h"
#include "graph/interaction_graph.h"
#include "graph/types.h"
#include "util/random.h"

namespace flowmotif {

/// Immutable time-series graph GT(V, ET): all multigraph edges between an
/// ordered vertex pair are merged into one edge carrying the interaction
/// time series R(u, v) (paper Sec. 4, Fig. 5).
///
/// Layout is CSR-like: pair edges are stored sorted by (src, dst) with a
/// per-vertex offset table, so out-neighbor scans are contiguous and pair
/// lookup is a binary search within the source's range.
///
/// Storage is split along the flow/structure axis: the CSR index tables
/// and every series' timestamp array are immutable shared storage, while
/// flow values (and their prefix sums) are owned per graph. Copying a
/// graph — and in particular WithPermutedFlows, the Sec. 6.3 null-model
/// randomization — therefore shares the structure and timestamps by
/// identity and duplicates only the flow arrays. A whole significance
/// ensemble stores one copy of the timestamps plus N flow arrays, and
/// timestamp-keyed caches (SharedWindowCache) stay warm across all N+1
/// graphs.
///
/// The class is immutable after Build and therefore safe for concurrent
/// readers.
class TimeSeriesGraph {
 public:
  /// One edge of GT with its time series.
  struct PairEdge {
    VertexId src;
    VertexId dst;
    EdgeSeries series;
  };

  /// Aggregate statistics (Table 3 of the paper).
  struct Stats {
    int64_t num_vertices = 0;
    int64_t num_connected_pairs = 0;  // |ET|
    int64_t num_interactions = 0;     // |E| of the multigraph
    double avg_flow_per_edge = 0.0;   // mean interaction flow
    Timestamp min_time = 0;
    Timestamp max_time = 0;
  };

  TimeSeriesGraph();

  /// Builds from a multigraph. Groups edges by (src, dst), sorts each
  /// series by time, and assembles the CSR index.
  static TimeSeriesGraph Build(const InteractionGraph& multigraph);

  /// Extends `base` with `new_edges`, producing the graph that Build
  /// would return on the union multigraph with `num_vertices` vertices —
  /// byte-identical series and CSR layout — while sharing as much of
  /// `base`'s immutable storage as possible. Series of pairs untouched
  /// by `new_edges` keep their timestamp storage and identity (so
  /// window-cache entries and skeleton traces recorded against them
  /// stay valid); dirty pairs get fresh storage stamped with `epoch`.
  /// The CSR index is shared by identity unless `new_edges` introduces
  /// a new (src, dst) pair or `num_vertices` grows, in which case it is
  /// rebuilt under `epoch`. This is the seal step of graph/epoch_log.h.
  /// Requires num_vertices >= base.num_vertices().
  static TimeSeriesGraph ExtendWith(
      const TimeSeriesGraph& base,
      std::vector<InteractionGraph::Edge> new_edges, int64_t num_vertices,
      EpochId epoch);

  int64_t num_vertices() const {
    return static_cast<int64_t>(
        index_->out_begin.empty() ? 0 : index_->out_begin.size() - 1);
  }
  int64_t num_pairs() const { return static_cast<int64_t>(pairs_.size()); }

  /// All pair edges, sorted by (src, dst).
  const std::vector<PairEdge>& pairs() const { return pairs_; }
  const PairEdge& pair(size_t i) const { return pairs_[i]; }

  /// Index range [OutBegin(v), OutEnd(v)) of pair edges with source v.
  size_t OutBegin(VertexId v) const { return index_->out_begin[v]; }
  size_t OutEnd(VertexId v) const { return index_->out_begin[v + 1]; }
  int64_t OutDegree(VertexId v) const {
    return static_cast<int64_t>(OutEnd(v) - OutBegin(v));
  }

  /// Reverse adjacency: for k in [InBegin(v), InEnd(v)),
  /// pair(InPairIndex(k)) is an edge with destination v, ordered by
  /// source. Used by the general-motif matcher to bind a new source
  /// vertex of a fan-in edge.
  size_t InBegin(VertexId v) const { return index_->in_begin[v]; }
  size_t InEnd(VertexId v) const { return index_->in_begin[v + 1]; }
  size_t InPairIndex(size_t k) const { return index_->in_index[k]; }
  int64_t InDegree(VertexId v) const {
    return static_cast<int64_t>(InEnd(v) - InBegin(v));
  }

  /// The series from u to v, or nullptr if the pair is not connected.
  const EdgeSeries* FindSeries(VertexId u, VertexId v) const;

  /// Index of the pair edge (u, v) in pairs(), or -1.
  int64_t FindPairIndex(VertexId u, VertexId v) const;

  /// Dataset statistics (Table 3).
  Stats ComputeStats() const;

  /// Returns a *flow-permutation view*: same structure and timestamps —
  /// shared by identity, not copied — with the multiset of flow values
  /// randomly permuted across all interactions, the randomization used
  /// for the significance analysis (Sec. 6.3). The view owns only its
  /// flow arrays (plus prefix sums); every series reports the same
  /// timestamp_identity() as the original, so timestamp-keyed window
  /// caches built on the real graph are warm for the view. The original
  /// graph is never modified. The RNG stream consumed is identical to
  /// the pre-view (deep-copying) implementation, so a seed reproduces
  /// the same flows.
  TimeSeriesGraph WithPermutedFlows(Rng* rng) const;

  /// Deep copy with freshly owned timestamp and topology storage: every
  /// series gets a new timestamp_identity(), so no timestamp-keyed cache
  /// entry can alias the source graph. The pre-refactor copying
  /// semantics, retained for the significance equivalence reference and
  /// for callers that need storage-independent graphs.
  TimeSeriesGraph DeepCopy() const;

  /// Stable identity of the shared CSR topology storage: equal for this
  /// graph and every WithPermutedFlows view of it — and for every
  /// ExtendWith epoch that adds no new pair or vertex — distinct for
  /// separately built (or deep-copied) graphs and for epochs that
  /// changed the topology. Exposed for tests and skeleton replay.
  StorageIdentity topology_identity() const {
    return StorageIdentity{index_.get(), topology_epoch_};
  }

  /// Human-readable one-line summary for logs.
  std::string DebugString() const;

 private:
  /// CSR index tables; immutable after Build and shared with
  /// flow-permutation views.
  struct Index {
    std::vector<size_t> out_begin;  // size num_vertices()+1
    std::vector<size_t> in_index;   // pair indices sorted by (dst, src)
    std::vector<size_t> in_begin;   // size num_vertices()+1
  };

  /// Assembles the CSR forward/reverse offset tables over `pairs`
  /// (sorted by (src, dst)) for an `n`-vertex graph.
  static Index BuildIndex(const std::vector<PairEdge>& pairs, int64_t n);

  std::vector<PairEdge> pairs_;  // sorted by (src, dst)
  std::shared_ptr<const Index> index_;  // never null
  // Epoch at which index_ was created; part of topology_identity().
  EpochId topology_epoch_ = 0;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_
