#ifndef FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_
#define FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_series.h"
#include "graph/interaction_graph.h"
#include "graph/types.h"
#include "util/random.h"

namespace flowmotif {

/// Immutable time-series graph GT(V, ET): all multigraph edges between an
/// ordered vertex pair are merged into one edge carrying the interaction
/// time series R(u, v) (paper Sec. 4, Fig. 5).
///
/// Layout is CSR-like: pair edges are stored sorted by (src, dst) with a
/// per-vertex offset table, so out-neighbor scans are contiguous and pair
/// lookup is a binary search within the source's range.
///
/// The class is immutable after Build and therefore safe for concurrent
/// readers.
class TimeSeriesGraph {
 public:
  /// One edge of GT with its time series.
  struct PairEdge {
    VertexId src;
    VertexId dst;
    EdgeSeries series;
  };

  /// Aggregate statistics (Table 3 of the paper).
  struct Stats {
    int64_t num_vertices = 0;
    int64_t num_connected_pairs = 0;  // |ET|
    int64_t num_interactions = 0;     // |E| of the multigraph
    double avg_flow_per_edge = 0.0;   // mean interaction flow
    Timestamp min_time = 0;
    Timestamp max_time = 0;
  };

  TimeSeriesGraph() = default;

  /// Builds from a multigraph. Groups edges by (src, dst), sorts each
  /// series by time, and assembles the CSR index.
  static TimeSeriesGraph Build(const InteractionGraph& multigraph);

  int64_t num_vertices() const {
    return static_cast<int64_t>(out_begin_.empty() ? 0
                                                   : out_begin_.size() - 1);
  }
  int64_t num_pairs() const { return static_cast<int64_t>(pairs_.size()); }

  /// All pair edges, sorted by (src, dst).
  const std::vector<PairEdge>& pairs() const { return pairs_; }
  const PairEdge& pair(size_t i) const { return pairs_[i]; }

  /// Index range [OutBegin(v), OutEnd(v)) of pair edges with source v.
  size_t OutBegin(VertexId v) const { return out_begin_[v]; }
  size_t OutEnd(VertexId v) const { return out_begin_[v + 1]; }
  int64_t OutDegree(VertexId v) const {
    return static_cast<int64_t>(OutEnd(v) - OutBegin(v));
  }

  /// Reverse adjacency: for k in [InBegin(v), InEnd(v)),
  /// pair(InPairIndex(k)) is an edge with destination v, ordered by
  /// source. Used by the general-motif matcher to bind a new source
  /// vertex of a fan-in edge.
  size_t InBegin(VertexId v) const { return in_begin_[v]; }
  size_t InEnd(VertexId v) const { return in_begin_[v + 1]; }
  size_t InPairIndex(size_t k) const { return in_index_[k]; }
  int64_t InDegree(VertexId v) const {
    return static_cast<int64_t>(InEnd(v) - InBegin(v));
  }

  /// The series from u to v, or nullptr if the pair is not connected.
  const EdgeSeries* FindSeries(VertexId u, VertexId v) const;

  /// Index of the pair edge (u, v) in pairs(), or -1.
  int64_t FindPairIndex(VertexId u, VertexId v) const;

  /// Dataset statistics (Table 3).
  Stats ComputeStats() const;

  /// Returns a copy with the same structure and timestamps but with the
  /// multiset of flow values randomly permuted across all interactions —
  /// the randomization used for the significance analysis (Sec. 6.3).
  TimeSeriesGraph WithPermutedFlows(Rng* rng) const;

  /// Human-readable one-line summary for logs.
  std::string DebugString() const;

 private:
  std::vector<PairEdge> pairs_;       // sorted by (src, dst)
  std::vector<size_t> out_begin_;     // size num_vertices()+1
  std::vector<size_t> in_index_;      // pair indices sorted by (dst, src)
  std::vector<size_t> in_begin_;      // size num_vertices()+1
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_TIME_SERIES_GRAPH_H_
