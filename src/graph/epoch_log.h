#ifndef FLOWMOTIF_GRAPH_EPOCH_LOG_H_
#define FLOWMOTIF_GRAPH_EPOCH_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace flowmotif {

/// Append-friendly front end over the immutable TimeSeriesGraph: an
/// epoch-stamped immutable snapshot plus a mutable append tail.
///
/// `Append` buffers edges in the tail; `SealEpoch` folds the tail into a
/// new immutable snapshot (TimeSeriesGraph::ExtendWith) and publishes it
/// atomically. Readers holding an older snapshot keep a fully valid
/// graph: snapshots are shared_ptr-owned and immutable, series untouched
/// by a seal keep their timestamp storage and StorageIdentity across
/// epochs (so window caches and skeleton traces recorded against them
/// stay warm), and dirty series get fresh storage stamped with the new
/// epoch.
///
/// The byte-identity contract of the whole streaming subsystem rests on
/// one property of the seal: the snapshot after sealing appends
/// e_1..e_n is byte-identical to TimeSeriesGraph::Build on the seed
/// multigraph plus e_1..e_n. Queries against any epoch therefore answer
/// exactly as a batch run on the equivalent static prefix graph.
///
/// Threading: one writer (Append/SealEpoch); any number of concurrent
/// Snapshot readers.
///
/// The stream contract is monotone time: every appended edge must carry
/// a timestamp >= every timestamp already in the log (checked). This is
/// what lets downstream maintenance split δ-windows into settled
/// (end < watermark: no future edge can join) and hot regions, and ages
/// matches out of a sliding horizon with a ring buffer.
class EpochLog {
 public:
  /// Outcome of one SealEpoch: the published snapshot plus the delta
  /// description downstream incremental maintenance needs.
  struct SealInfo {
    EpochId epoch = 0;
    std::shared_ptr<const TimeSeriesGraph> graph;
    /// (src, dst) pairs whose series changed in this seal, sorted,
    /// deduplicated. Empty when the tail was empty.
    std::vector<std::pair<VertexId, VertexId>> dirty_pairs;
    /// Pairs of dirty_pairs that did not exist before this epoch (new
    /// topology); subset of dirty_pairs, sorted.
    std::vector<std::pair<VertexId, VertexId>> new_pairs;
    /// Smallest timestamp among the sealed edges (meaningless when
    /// num_appended == 0).
    Timestamp min_new_time = 0;
    /// Largest timestamp in the whole log after the seal.
    Timestamp watermark = 0;
    size_t num_appended = 0;
    bool topology_changed = false;
  };

  /// An empty log: epoch 0 is the empty graph.
  EpochLog();

  /// Seeds epoch 0 with a static multigraph snapshot.
  explicit EpochLog(const InteractionGraph& seed);

  /// Seeds epoch 0 with an already-built snapshot, adopting it without
  /// a rebuild (the serving layer fronts a caller-provided graph this
  /// way). The graph's own epoch stamps are preserved.
  explicit EpochLog(TimeSeriesGraph seed);

  /// Buffers one edge in the mutable tail. Vertices grow on demand.
  /// Ingest is an untrusted boundary, so bad edges are rejected with
  /// InvalidArgument — negative vertex ids, non-positive flow, or a
  /// timestamp that precedes one already in the log (the stream
  /// contract is monotone time) — and the tail is left unchanged: the
  /// log stays valid and later well-formed appends still succeed.
  Status Append(VertexId src, VertexId dst, Timestamp t, Flow f);
  Status Append(const InteractionGraph::Edge& edge) {
    return Append(edge.src, edge.dst, edge.t, edge.f);
  }

  /// Folds the tail into a new immutable snapshot and publishes it.
  /// With an empty tail this is a no-op returning the current epoch
  /// (num_appended == 0, no new snapshot).
  SealInfo SealEpoch();

  /// The latest published snapshot; never null, safe to hold across
  /// later appends and seals.
  std::shared_ptr<const TimeSeriesGraph> Snapshot() const;

  /// Epoch id of the latest published snapshot (0 = seed).
  EpochId epoch() const { return epoch_; }

  /// Number of buffered (unsealed) edges.
  size_t tail_size() const { return tail_.size(); }

  /// Largest timestamp in the log (published or buffered); the settled /
  /// hot boundary of the monotone stream. Timestamp minimum when empty.
  Timestamp watermark() const { return watermark_; }

  int64_t num_vertices() const { return num_vertices_; }

 private:
  // Writer state (single writer).
  std::vector<InteractionGraph::Edge> tail_;
  int64_t num_vertices_ = 0;
  Timestamp watermark_;
  EpochId epoch_ = 0;
  bool empty_ = true;  // no edge published or buffered yet

  // Published snapshot; guarded for concurrent readers.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const TimeSeriesGraph> snapshot_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_EPOCH_LOG_H_
