#ifndef FLOWMOTIF_GRAPH_GRAPH_IO_H_
#define FLOWMOTIF_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/status.h"

namespace flowmotif {

/// Text edge-list format, one interaction per line:
///
///   src dst timestamp flow
///
/// separated by whitespace; '#'-prefixed lines are comments. This is the
/// on-disk interchange format for all example programs and benches.

/// Loads a multigraph from `path`.
StatusOr<InteractionGraph> LoadInteractionGraph(const std::string& path);

/// Saves the multigraph to `path` (one line per interaction).
Status SaveInteractionGraph(const InteractionGraph& graph,
                            const std::string& path);

/// Saves a time-series graph by expanding each series back to interaction
/// lines. Round-trips through LoadInteractionGraph + Build.
Status SaveTimeSeriesGraph(const TimeSeriesGraph& graph,
                           const std::string& path);

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_GRAPH_IO_H_
