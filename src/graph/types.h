#ifndef FLOWMOTIF_GRAPH_TYPES_H_
#define FLOWMOTIF_GRAPH_TYPES_H_

#include <cstdint>
#include <ostream>

namespace flowmotif {

/// Vertex identifier. Vertices of a graph are dense: 0 .. num_vertices-1.
using VertexId = int32_t;

/// Interaction timestamp. The paper's time domain is continuous; we use
/// 64-bit integer ticks (e.g. seconds) for exact, platform-independent
/// comparisons. Duration constraints (delta) use the same unit.
using Timestamp = int64_t;

/// Flow transferred by one interaction (money, messages, passengers, ...).
/// Always positive.
using Flow = double;

/// One timestamped flow transfer on an edge: the (t, f) element of the
/// paper (Sec. 3).
struct Interaction {
  Timestamp t = 0;
  Flow f = 0.0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.t == b.t && a.f == b.f;
  }
  /// Orders by time, breaking ties by flow so sorting is deterministic.
  friend bool operator<(const Interaction& a, const Interaction& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.f < b.f;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interaction& x) {
  return os << "(" << x.t << "," << x.f << ")";
}

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_TYPES_H_
