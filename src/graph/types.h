#ifndef FLOWMOTIF_GRAPH_TYPES_H_
#define FLOWMOTIF_GRAPH_TYPES_H_

#include <cstdint>
#include <ostream>

namespace flowmotif {

/// Vertex identifier. Vertices of a graph are dense: 0 .. num_vertices-1.
using VertexId = int32_t;

/// Interaction timestamp. The paper's time domain is continuous; we use
/// 64-bit integer ticks (e.g. seconds) for exact, platform-independent
/// comparisons. Duration constraints (delta) use the same unit.
using Timestamp = int64_t;

/// Flow transferred by one interaction (money, messages, passengers, ...).
/// Always positive.
using Flow = double;

/// Epoch counter of an append-friendly graph (graph/epoch_log.h): epoch 0
/// is the seed snapshot, each SealEpoch publishes the next.
using EpochId = uint32_t;

/// Identity of one piece of immutable shared storage (a timestamp array,
/// a CSR index): the storage address *stamped with the epoch at which the
/// storage was created*. Equal identities guarantee identical contents —
/// a series and its flow-permutation views share one identity, and every
/// timestamp-derived artifact (window lists, skeleton traces) may be
/// cached under it.
///
/// The epoch stamp is what makes the identity safe across an appending
/// stream: when an epoch seal rewrites a dirty series, its old storage
/// may be freed and the allocator may later reuse the address. A bare
/// pointer key could then alias a stale cache entry onto unrelated new
/// storage (ABA); the (storage, epoch) pair cannot, because the reused
/// address carries a strictly newer creation epoch. Static graphs all
/// carry epoch 0, where the pair degenerates to the PR 5 pointer key.
struct StorageIdentity {
  const void* storage = nullptr;
  EpochId epoch = 0;

  friend bool operator==(const StorageIdentity& a, const StorageIdentity& b) {
    return a.storage == b.storage && a.epoch == b.epoch;
  }
  friend bool operator!=(const StorageIdentity& a, const StorageIdentity& b) {
    return !(a == b);
  }
};

inline std::ostream& operator<<(std::ostream& os, const StorageIdentity& id) {
  return os << "{" << id.storage << "@e" << id.epoch << "}";
}

/// One timestamped flow transfer on an edge: the (t, f) element of the
/// paper (Sec. 3).
struct Interaction {
  Timestamp t = 0;
  Flow f = 0.0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.t == b.t && a.f == b.f;
  }
  /// Orders by time, breaking ties by flow so sorting is deterministic.
  friend bool operator<(const Interaction& a, const Interaction& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.f < b.f;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interaction& x) {
  return os << "(" << x.t << "," << x.f << ")";
}

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_TYPES_H_
