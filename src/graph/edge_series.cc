#include "graph/edge_series.h"

#include <algorithm>

#include "util/logging.h"

namespace flowmotif {

EdgeSeries::EdgeSeries(std::vector<Interaction> interactions) {
  std::sort(interactions.begin(), interactions.end());
  times_.reserve(interactions.size());
  flows_.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    FLOWMOTIF_CHECK_GT(x.f, 0.0) << "flows must be positive";
    times_.push_back(x.t);
    flows_.push_back(x.f);
  }
  RebuildPrefix();
}

void EdgeSeries::RebuildPrefix() {
  prefix_.assign(times_.size() + 1, 0.0);
  for (size_t i = 0; i < flows_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + flows_[i];
  }
}

size_t EdgeSeries::LowerBound(Timestamp t) const {
  return static_cast<size_t>(
      std::lower_bound(times_.begin(), times_.end(), t) - times_.begin());
}

size_t EdgeSeries::UpperBound(Timestamp t) const {
  return static_cast<size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

size_t EdgeSeries::AdvanceLowerBound(size_t from, Timestamp t) const {
  const size_t n = times_.size();
  if (from >= n || times_[from] >= t) return from;
  // Gallop: double the step while the probe is still < t, keeping the
  // invariant times_[low] < t, then binary-search the bracket. Cost is
  // O(log gap), so tight window-to-window slides stay ~constant and a
  // first window deep into the series costs no more than LowerBound.
  size_t low = from;
  size_t step = 1;
  while (low + step < n && times_[low + step] < t) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(n, low + step);
  return static_cast<size_t>(
      std::lower_bound(times_.begin() + static_cast<ptrdiff_t>(low) + 1,
                       times_.begin() + static_cast<ptrdiff_t>(high), t) -
      times_.begin());
}

size_t EdgeSeries::AdvanceUpperBound(size_t from, Timestamp t) const {
  const size_t n = times_.size();
  if (from >= n || times_[from] > t) return from;
  size_t low = from;  // invariant: times_[low] <= t
  size_t step = 1;
  while (low + step < n && times_[low + step] <= t) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(n, low + step);
  return static_cast<size_t>(
      std::upper_bound(times_.begin() + static_cast<ptrdiff_t>(low) + 1,
                       times_.begin() + static_cast<ptrdiff_t>(high), t) -
      times_.begin());
}

Flow EdgeSeries::FlowInOpenClosed(Timestamp lo, Timestamp hi) const {
  if (lo >= hi) return 0.0;
  size_t first = UpperBound(lo);
  size_t last = UpperBound(hi);
  if (first >= last) return 0.0;
  return prefix_[last] - prefix_[first];
}

Flow EdgeSeries::FlowInClosed(Timestamp lo, Timestamp hi) const {
  if (lo > hi) return 0.0;
  size_t first = LowerBound(lo);
  size_t last = UpperBound(hi);
  if (first >= last) return 0.0;
  return prefix_[last] - prefix_[first];
}

bool EdgeSeries::HasElementInOpenClosed(Timestamp lo, Timestamp hi) const {
  if (lo >= hi) return false;
  size_t first = UpperBound(lo);
  return first < size() && times_[first] <= hi;
}

void EdgeSeries::ReplaceFlows(const std::vector<Flow>& new_flows) {
  FLOWMOTIF_CHECK_EQ(new_flows.size(), flows_.size());
  for (Flow f : new_flows) FLOWMOTIF_CHECK_GT(f, 0.0);
  flows_ = new_flows;
  RebuildPrefix();
}

}  // namespace flowmotif
