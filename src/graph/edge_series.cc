#include "graph/edge_series.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace flowmotif {

namespace {

/// All default-constructed series share one empty timestamp array. The
/// identity collision is benign: identical timestamps imply identical
/// window lists, which is the only property the cache key relies on.
const std::shared_ptr<const std::vector<Timestamp>>& EmptyTimes() {
  static const std::shared_ptr<const std::vector<Timestamp>>* const kEmpty =
      new std::shared_ptr<const std::vector<Timestamp>>(
          std::make_shared<const std::vector<Timestamp>>());
  return *kEmpty;
}

}  // namespace

EdgeSeries::EdgeSeries() : times_(EmptyTimes()) {
  SyncTimesView();
  RebuildPrefix();
}

EdgeSeries::EdgeSeries(std::vector<Interaction> interactions, EpochId epoch)
    : storage_epoch_(epoch) {
  std::sort(interactions.begin(), interactions.end());
  std::vector<Timestamp> times;
  times.reserve(interactions.size());
  flows_.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    FLOWMOTIF_CHECK_GT(x.f, 0.0) << "flows must be positive";
    times.push_back(x.t);
    flows_.push_back(x.f);
  }
  times_ = std::make_shared<const std::vector<Timestamp>>(std::move(times));
  SyncTimesView();
  RebuildPrefix();
}

EdgeSeries EdgeSeries::WithFlows(std::vector<Flow> new_flows) const {
  FLOWMOTIF_CHECK_EQ(new_flows.size(), flows_.size());
  for (Flow f : new_flows) FLOWMOTIF_CHECK_GT(f, 0.0);
  EdgeSeries view;
  view.times_ = times_;  // shared storage, same identity
  view.storage_epoch_ = storage_epoch_;
  view.SyncTimesView();
  view.flows_ = std::move(new_flows);
  view.RebuildPrefix();
  return view;
}

EdgeSeries EdgeSeries::DeepCopy() const {
  EdgeSeries copy = *this;
  copy.times_ = std::make_shared<const std::vector<Timestamp>>(*times_);
  copy.SyncTimesView();
  return copy;
}

EdgeSeries EdgeSeries::WithAppended(std::vector<Interaction> tail,
                                    EpochId epoch) const {
  // Concatenate and hand to the sorting constructor: byte identity with
  // a from-scratch build of the union holds by construction. The input
  // is two sorted runs, which std::sort handles near-linearly, so the
  // seal cost of a dirty series stays close to one merge pass.
  std::vector<Interaction> all;
  all.reserve(size() + tail.size());
  for (size_t i = 0; i < num_elements_; ++i) all.push_back(at(i));
  all.insert(all.end(), tail.begin(), tail.end());
  return EdgeSeries(std::move(all), epoch);
}

void EdgeSeries::RebuildPrefix() {
  prefix_.assign(num_elements_ + 1, 0.0);
  for (size_t i = 0; i < flows_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + flows_[i];
  }
}

size_t EdgeSeries::LowerBound(Timestamp t) const {
  return static_cast<size_t>(
      std::lower_bound(times_data_, times_data_ + num_elements_, t) -
      times_data_);
}

size_t EdgeSeries::UpperBound(Timestamp t) const {
  return static_cast<size_t>(
      std::upper_bound(times_data_, times_data_ + num_elements_, t) -
      times_data_);
}

size_t EdgeSeries::AdvanceLowerBound(size_t from, Timestamp t) const {
  const Timestamp* const times = times_data_;
  const size_t n = num_elements_;
  if (from >= n || times[from] >= t) return from;
  // Gallop: double the step while the probe is still < t, keeping the
  // invariant times[low] < t, then binary-search the bracket. Cost is
  // O(log gap), so tight window-to-window slides stay ~constant and a
  // first window deep into the series costs no more than LowerBound.
  size_t low = from;
  size_t step = 1;
  while (low + step < n && times[low + step] < t) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(n, low + step);
  return static_cast<size_t>(
      std::lower_bound(times + low + 1, times + high, t) - times);
}

size_t EdgeSeries::AdvanceUpperBound(size_t from, Timestamp t) const {
  const Timestamp* const times = times_data_;
  const size_t n = num_elements_;
  if (from >= n || times[from] > t) return from;
  size_t low = from;  // invariant: times[low] <= t
  size_t step = 1;
  while (low + step < n && times[low + step] <= t) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(n, low + step);
  return static_cast<size_t>(
      std::upper_bound(times + low + 1, times + high, t) - times);
}

Flow EdgeSeries::FlowInOpenClosed(Timestamp lo, Timestamp hi) const {
  if (lo >= hi) return 0.0;
  size_t first = UpperBound(lo);
  size_t last = UpperBound(hi);
  if (first >= last) return 0.0;
  return prefix_[last] - prefix_[first];
}

Flow EdgeSeries::FlowInClosed(Timestamp lo, Timestamp hi) const {
  if (lo > hi) return 0.0;
  size_t first = LowerBound(lo);
  size_t last = UpperBound(hi);
  if (first >= last) return 0.0;
  return prefix_[last] - prefix_[first];
}

bool EdgeSeries::HasElementInOpenClosed(Timestamp lo, Timestamp hi) const {
  if (lo >= hi) return false;
  size_t first = UpperBound(lo);
  return first < size() && times_data_[first] <= hi;
}

void EdgeSeries::ReplaceFlows(const std::vector<Flow>& new_flows) {
  FLOWMOTIF_CHECK_EQ(new_flows.size(), flows_.size());
  for (Flow f : new_flows) FLOWMOTIF_CHECK_GT(f, 0.0);
  flows_ = new_flows;
  RebuildPrefix();
}

}  // namespace flowmotif
