#include "graph/time_series_graph.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace flowmotif {

// A default-constructed graph owns a small empty index so the accessors
// never have to null-check index_.
TimeSeriesGraph::TimeSeriesGraph()
    : index_(std::make_shared<const Index>()) {}

TimeSeriesGraph TimeSeriesGraph::Build(const InteractionGraph& multigraph) {
  TimeSeriesGraph graph;
  const int64_t n = multigraph.num_vertices();

  // Sort raw edges by (src, dst, t, f) and slice into per-pair series.
  std::vector<InteractionGraph::Edge> edges = multigraph.edges();
  std::sort(edges.begin(), edges.end(),
            [](const InteractionGraph::Edge& a,
               const InteractionGraph::Edge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.t != b.t) return a.t < b.t;
              return a.f < b.f;
            });

  graph.pairs_.clear();
  size_t i = 0;
  while (i < edges.size()) {
    size_t j = i;
    std::vector<Interaction> series;
    while (j < edges.size() && edges[j].src == edges[i].src &&
           edges[j].dst == edges[i].dst) {
      series.push_back(Interaction{edges[j].t, edges[j].f});
      ++j;
    }
    graph.pairs_.push_back(
        PairEdge{edges[i].src, edges[i].dst, EdgeSeries(std::move(series))});
    i = j;
  }

  graph.index_ =
      std::make_shared<const Index>(BuildIndex(graph.pairs_, n));
  return graph;
}

TimeSeriesGraph::Index TimeSeriesGraph::BuildIndex(
    const std::vector<PairEdge>& pairs, int64_t n) {
  Index index;

  // CSR offsets over the sorted pair list.
  index.out_begin.assign(static_cast<size_t>(n) + 1, 0);
  for (const PairEdge& pe : pairs) {
    ++index.out_begin[static_cast<size_t>(pe.src) + 1];
  }
  for (size_t v = 1; v < index.out_begin.size(); ++v) {
    index.out_begin[v] += index.out_begin[v - 1];
  }

  // Reverse index: pair indices grouped by destination (counting sort;
  // the (dst, src) order follows from the stable pass over pairs sorted
  // by (src, dst)).
  index.in_begin.assign(static_cast<size_t>(n) + 1, 0);
  for (const PairEdge& pe : pairs) {
    ++index.in_begin[static_cast<size_t>(pe.dst) + 1];
  }
  for (size_t v = 1; v < index.in_begin.size(); ++v) {
    index.in_begin[v] += index.in_begin[v - 1];
  }
  index.in_index.assign(pairs.size(), 0);
  std::vector<size_t> cursor(index.in_begin.begin(),
                             index.in_begin.end() - 1);
  for (size_t p = 0; p < pairs.size(); ++p) {
    index.in_index[cursor[static_cast<size_t>(pairs[p].dst)]++] = p;
  }
  return index;
}

TimeSeriesGraph TimeSeriesGraph::ExtendWith(
    const TimeSeriesGraph& base,
    std::vector<InteractionGraph::Edge> new_edges, int64_t num_vertices,
    EpochId epoch) {
  FLOWMOTIF_CHECK_GE(num_vertices, base.num_vertices());
  std::sort(new_edges.begin(), new_edges.end(),
            [](const InteractionGraph::Edge& a,
               const InteractionGraph::Edge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.t != b.t) return a.t < b.t;
              return a.f < b.f;
            });

  // Merge base.pairs_ with the (src, dst)-grouped new edges, keeping the
  // sorted pair order Build produces. Untouched pairs are copied as-is —
  // their series share the base's timestamp storage and keep its
  // identity — while dirty and brand-new pairs get fresh storage stamped
  // with the sealing epoch.
  TimeSeriesGraph out;
  out.pairs_.reserve(base.pairs_.size());
  bool topology_changed = num_vertices != base.num_vertices();
  size_t bi = 0;
  size_t ni = 0;
  while (bi < base.pairs_.size() || ni < new_edges.size()) {
    bool take_new = bi >= base.pairs_.size();
    if (!take_new && ni < new_edges.size()) {
      const PairEdge& bp = base.pairs_[bi];
      const InteractionGraph::Edge& ne = new_edges[ni];
      take_new =
          ne.src < bp.src || (ne.src == bp.src && ne.dst < bp.dst);
    }
    if (take_new) {
      // A pair with no series in the base graph.
      const VertexId src = new_edges[ni].src;
      const VertexId dst = new_edges[ni].dst;
      std::vector<Interaction> series;
      while (ni < new_edges.size() && new_edges[ni].src == src &&
             new_edges[ni].dst == dst) {
        series.push_back(Interaction{new_edges[ni].t, new_edges[ni].f});
        ++ni;
      }
      out.pairs_.push_back(
          PairEdge{src, dst, EdgeSeries(std::move(series), epoch)});
      topology_changed = true;
      continue;
    }
    const PairEdge& bp = base.pairs_[bi];
    std::vector<Interaction> tail;
    while (ni < new_edges.size() && new_edges[ni].src == bp.src &&
           new_edges[ni].dst == bp.dst) {
      tail.push_back(Interaction{new_edges[ni].t, new_edges[ni].f});
      ++ni;
    }
    if (tail.empty()) {
      out.pairs_.push_back(bp);  // shared storage, same identity
    } else {
      out.pairs_.push_back(PairEdge{
          bp.src, bp.dst, bp.series.WithAppended(std::move(tail), epoch)});
    }
    ++bi;
  }

  if (topology_changed) {
    out.index_ = std::make_shared<const Index>(
        BuildIndex(out.pairs_, num_vertices));
    out.topology_epoch_ = epoch;
  } else {
    out.index_ = base.index_;  // shared topology, same identity
    out.topology_epoch_ = base.topology_epoch_;
  }
  return out;
}

const EdgeSeries* TimeSeriesGraph::FindSeries(VertexId u, VertexId v) const {
  int64_t idx = FindPairIndex(u, v);
  return idx < 0 ? nullptr : &pairs_[static_cast<size_t>(idx)].series;
}

int64_t TimeSeriesGraph::FindPairIndex(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices()) return -1;
  size_t lo = OutBegin(u);
  size_t hi = OutEnd(u);
  // Binary search for dst == v within u's contiguous out-range.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (pairs_[mid].dst < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < OutEnd(u) && pairs_[lo].dst == v) return static_cast<int64_t>(lo);
  return -1;
}

TimeSeriesGraph::Stats TimeSeriesGraph::ComputeStats() const {
  Stats stats;
  stats.num_vertices = num_vertices();
  stats.num_connected_pairs = num_pairs();
  double total_flow = 0.0;
  Timestamp min_t = std::numeric_limits<Timestamp>::max();
  Timestamp max_t = std::numeric_limits<Timestamp>::min();
  for (const PairEdge& pe : pairs_) {
    stats.num_interactions += static_cast<int64_t>(pe.series.size());
    total_flow += pe.series.TotalFlow();
    if (!pe.series.empty()) {
      min_t = std::min(min_t, pe.series.time(0));
      max_t = std::max(max_t, pe.series.time(pe.series.size() - 1));
    }
  }
  if (stats.num_interactions > 0) {
    stats.avg_flow_per_edge =
        total_flow / static_cast<double>(stats.num_interactions);
    stats.min_time = min_t;
    stats.max_time = max_t;
  }
  return stats;
}

TimeSeriesGraph TimeSeriesGraph::WithPermutedFlows(Rng* rng) const {
  FLOWMOTIF_CHECK(rng != nullptr);
  // Collect every flow value in deterministic (pair, index) order, shuffle
  // the multiset, and write it back in the same order. Structure and
  // timestamps are untouched, exactly as in Sec. 6.3 — and since they are
  // immutable shared storage, the view references them instead of copying:
  // only the permuted flow arrays (and their prefix sums) are allocated.
  std::vector<Flow> all_flows;
  for (const PairEdge& pe : pairs_) {
    for (size_t i = 0; i < pe.series.size(); ++i) {
      all_flows.push_back(pe.series.flow(i));
    }
  }
  rng->Shuffle(&all_flows);

  TimeSeriesGraph out;
  out.index_ = index_;  // shared topology, same identity
  out.topology_epoch_ = topology_epoch_;
  out.pairs_.reserve(pairs_.size());
  size_t cursor = 0;
  for (const PairEdge& pe : pairs_) {
    std::vector<Flow> new_flows(pe.series.size());
    for (size_t i = 0; i < new_flows.size(); ++i) {
      new_flows[i] = all_flows[cursor++];
    }
    out.pairs_.push_back(
        PairEdge{pe.src, pe.dst, pe.series.WithFlows(std::move(new_flows))});
  }
  FLOWMOTIF_CHECK_EQ(cursor, all_flows.size());
  return out;
}

TimeSeriesGraph TimeSeriesGraph::DeepCopy() const {
  TimeSeriesGraph out;
  out.index_ = std::make_shared<const Index>(*index_);
  out.topology_epoch_ = topology_epoch_;
  out.pairs_.reserve(pairs_.size());
  for (const PairEdge& pe : pairs_) {
    out.pairs_.push_back(PairEdge{pe.src, pe.dst, pe.series.DeepCopy()});
  }
  return out;
}

std::string TimeSeriesGraph::DebugString() const {
  Stats s = ComputeStats();
  std::ostringstream os;
  os << "TimeSeriesGraph{vertices=" << s.num_vertices
     << " pairs=" << s.num_connected_pairs
     << " interactions=" << s.num_interactions
     << " avg_flow=" << s.avg_flow_per_edge << "}";
  return os.str();
}

}  // namespace flowmotif
