#ifndef FLOWMOTIF_GRAPH_INTERACTION_GRAPH_H_
#define FLOWMOTIF_GRAPH_INTERACTION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace flowmotif {

/// Mutable builder for an interaction network: the directed temporal
/// multigraph G(V, E) of the paper. Collect edges with AddEdge, then
/// convert to the immutable, query-friendly TimeSeriesGraph (the graph GT
/// of Sec. 4, Fig. 5) with TimeSeriesGraph::Build.
class InteractionGraph {
 public:
  /// One raw multigraph edge: u --(t, f)--> v.
  struct Edge {
    VertexId src;
    VertexId dst;
    Timestamp t;
    Flow f;
  };

  InteractionGraph() = default;

  /// Adds an interaction. Flow must be positive; vertex ids must be
  /// non-negative. Self-loops are accepted (they can occur in real data,
  /// e.g. taxi trips within one zone) but never participate in motif
  /// instances since motif vertices map injectively.
  Status AddEdge(VertexId src, VertexId dst, Timestamp t, Flow f);

  /// Ensures the graph has at least `n` vertices (ids 0..n-1) even if some
  /// have no incident edges.
  void EnsureVertices(int64_t n);

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_interactions() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  int64_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GRAPH_INTERACTION_GRAPH_H_
