#ifndef FLOWMOTIF_STREAM_STREAMING_MONITOR_H_
#define FLOWMOTIF_STREAM_STREAMING_MONITOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/enumerator.h"
#include "core/motif.h"
#include "core/sliding_window.h"
#include "core/topk.h"
#include "graph/epoch_log.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "graph/types.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace flowmotif {

/// Configuration of one continuous motif query (StreamingMotifMonitor).
struct StreamOptions {
  /// Maximum time difference between any two interactions of an
  /// instance (Def. 3.1).
  Timestamp delta = 0;

  /// Minimum aggregated flow per motif edge; 0 disables flow pruning.
  /// Counts, top-k, and alerts are all over phi-passing instances.
  Flow phi = 0.0;

  /// Top-k size maintained live.
  int64_t k = 10;

  /// Sliding time horizon: LiveInstances() counts instances whose last
  /// interaction is younger than watermark - horizon. 0 = unbounded
  /// (live == total, and no expiry bookkeeping is kept).
  Timestamp horizon = 0;

  /// Fire an alert when an instance *settles* (its window can no longer
  /// change) with flow >= this bound. Default: no alerts.
  Flow alert_min_flow = std::numeric_limits<Flow>::infinity();
};

/// A continuous flow-motif query over an appending interaction stream:
/// owns an EpochLog, and on every SealEpoch incrementally maintains the
/// motif's instance count, top-k, and sliding-horizon live count —
/// byte-identical, at every epoch, to a batch run on the equivalently
/// built static graph.
///
/// The incremental decomposition rests on the stream's monotone-time
/// contract. Each structural match carries a persistent WindowScanState;
/// a seal advances it (AdvanceProcessedWindows), splitting the match's
/// processed windows at the stream watermark into a **settled** prefix —
/// final forever; enumerated exactly once, feeding the cumulative count,
/// the bounded settled top-k pool, the horizon ring buffer, and
/// exactly-once alerts — and a **hot** suffix that is re-enumerated on
/// each revisit. A seal revisits only the matches that can have changed:
/// those bound to a pair the seal appended to (via a pair -> matches
/// index), those whose earliest hot window fell behind the new watermark
/// (via a min-hot-end queue), and newly created structural matches.
///
/// Topology-changing seals (new pairs or vertices) re-derive the match
/// list. P1's enumeration order is append-stable — origins in vertex
/// order, neighbors in CSR order, and inserting pairs/vertices never
/// reorders existing entries — so the old match list is an in-order
/// subsequence of the new one: a two-pointer diff keeps every existing
/// MatchState (and its scan position) and creates states only for the
/// genuinely new matches. Path motifs restrict the rescan to origin
/// work units from which a new pair is forward-reachable within
/// num_edges - 1 hops (reverse BFS); general motifs re-run P1 in full.
///
/// Single-threaded writer; not thread-safe.
class StreamingMotifMonitor {
 public:
  /// One settled instance that crossed alert_min_flow.
  struct Alert {
    EpochId epoch = 0;
    Flow flow = 0.0;
    Timestamp end_time = 0;
    MotifInstance instance;
  };
  using AlertCallback = std::function<void(const Alert&)>;

  /// Per-seal maintenance summary.
  struct EpochStats {
    EpochId epoch = 0;
    size_t num_appended = 0;
    size_t num_matches_total = 0;
    size_t num_matches_revisited = 0;
    size_t num_new_matches = 0;
    int64_t num_instances_settled = 0;
    int64_t num_alerts = 0;
    /// True when a topology change forced a full P1 re-run (general
    /// motifs); path motifs rescan only affected origin units.
    bool full_rescan = false;
    /// Lifecycle outcome of the seal (DESIGN.md Sec. 10). When not
    /// complete(), the seal stopped mid-revisit: the revisits already
    /// applied are final (RevisitMatch is per-match atomic) and the
    /// deferred ones are queued for the next seal, so aggregates lag
    /// the snapshot only on the deferred matches and catch up exactly
    /// once a later seal drains the queue.
    Termination termination;
    /// Revisits deferred to the next seal by a mid-seal stop.
    int64_t num_revisits_deferred = 0;
  };

  /// A monitor over an initially empty stream.
  StreamingMotifMonitor(const Motif& motif, const StreamOptions& options);

  /// A monitor whose epoch 0 is a static seed snapshot; the monitor
  /// state starts byte-identical to a batch run on the seed.
  StreamingMotifMonitor(const Motif& motif, const StreamOptions& options,
                        const InteractionGraph& seed);

  void SetAlertCallback(AlertCallback callback) {
    alert_callback_ = std::move(callback);
  }

  /// Buffers one edge. Ingest is an untrusted boundary: a malformed
  /// edge (negative ids, non-positive flow, or a timestamp violating
  /// the stream's monotone-time contract) is rejected with
  /// InvalidArgument and the monitor is unchanged — later well-formed
  /// appends still succeed.
  Status Append(VertexId src, VertexId dst, Timestamp t, Flow f) {
    return log_.Append(src, dst, t, f);
  }
  Status Append(const InteractionGraph::Edge& edge) {
    return log_.Append(edge);
  }

  /// Seals the buffered edges into a new epoch and brings every live
  /// aggregate up to date with the new snapshot. Arms a QueryControl
  /// only when a failpoint is armed (MakeQueryControl), so the normal
  /// path is unchanged.
  EpochStats SealEpoch();

  /// SealEpoch under an optional lifecycle control (may be null).
  /// Checked once per match revisit (site "stream.revisit"); on stop
  /// the remaining revisits are deferred — queued and merged into the
  /// next seal's revisit set (an empty-tail seal with a non-empty
  /// queue still runs, revisit-only). Each applied revisit is atomic,
  /// so a truncated seal followed by a clean drain leaves state
  /// byte-identical to a never-truncated run.
  EpochStats SealEpoch(QueryControl* control);

  /// Cumulative number of phi-passing instances on the current snapshot
  /// — equals a batch kCount run on the equivalently built static graph.
  int64_t TotalInstances() const { return settled_instances_ + hot_instances_; }

  /// Instances whose last interaction lies within the sliding horizon
  /// (EndTime > watermark - horizon); TotalInstances() when horizon = 0.
  int64_t LiveInstances() const;

  /// The k highest-flow instances on the current snapshot, ordered by
  /// (flow descending, discovery rank ascending) — with phi = 0, equals
  /// a batch kTopK run on the equivalently built static graph.
  std::vector<TopKEntry> TopK() const;

  EpochId epoch() const { return log_.epoch(); }
  Timestamp watermark() const { return log_.watermark(); }
  std::shared_ptr<const TimeSeriesGraph> Snapshot() const {
    return snapshot_;
  }
  size_t num_matches() const { return matches_.size(); }
  const StreamOptions& options() const { return options_; }

 private:
  /// One enumerated instance of a hot (not yet settled) window, kept
  /// materialized so top-k/horizon queries need no re-enumeration.
  struct HotInstance {
    Flow flow;
    Timestamp end;
    int64_t emit_index;
    MotifInstance instance;
  };

  /// Persistent per-structural-match streaming state.
  struct MatchState {
    MatchBinding binding;
    WindowScanState scan;
    std::vector<Window> hot_windows;  // recomputed on revisit
    int64_t settled_emits = 0;  // emissions settled so far (= next index)
    std::vector<HotInstance> hot;
  };

  /// Entry of the bounded settled top-k pool. A settled instance
  /// displaced by k better settled instances can never re-enter any
  /// future top-k: its comparands are permanent, and discovery-rank
  /// comparisons are stable because topology growth never reorders
  /// existing matches.
  struct SettledEntry {
    Flow flow;
    size_t match_id;
    int64_t emit_index;
    Timestamp end;
    MotifInstance instance;
  };

  /// One sealed epoch's settled instance end-times — the ring-buffer
  /// horizon: segments are popped whole once max_end ages out, live
  /// counts binary-search the survivors.
  struct HorizonSegment {
    Timestamp max_end;
    std::vector<Timestamp> ends;  // sorted
  };

  static int64_t PairKey(VertexId src, VertexId dst) {
    return (static_cast<int64_t>(src) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(dst));
  }

  void InitializeFromSnapshot();
  size_t CreateMatch(const MatchBinding& b);
  void RebuildCanonicalPos();
  VertexId OriginOf(size_t id) const {
    return matches_[id].binding[static_cast<size_t>(motif_.path().front())];
  }
  void RefreshMatchesFull(const TimeSeriesGraph& graph,
                          std::vector<size_t>* new_ids);
  void RefreshMatchesPath(const TimeSeriesGraph& graph,
                          const EpochLog::SealInfo& info,
                          std::vector<size_t>* new_ids);
  void RevisitMatch(size_t id, const FlowMotifEnumerator& enumerator,
                    Timestamp settle_before, EpochId epoch, EpochStats* stats,
                    std::vector<Timestamp>* new_settled_ends);
  /// (flow desc, discovery rank asc) under current canonical positions.
  bool EntryOutranks(Flow a_flow, size_t a_match, int64_t a_emit, Flow b_flow,
                     size_t b_match, int64_t b_emit) const;
  void OfferSettled(Flow flow, size_t match_id, int64_t emit_index,
                    Timestamp end, const InstanceView& view);

  Motif motif_;
  StreamOptions options_;
  AlertCallback alert_callback_;
  EpochLog log_;
  std::shared_ptr<const TimeSeriesGraph> snapshot_;

  std::vector<MatchState> matches_;          // id = index, append-only
  std::vector<size_t> canonical_ids_;        // ids in P1 order
  std::vector<size_t> canonical_pos_;        // id -> P1 position
  std::unordered_map<int64_t, std::vector<size_t>> matches_by_pair_;
  std::set<std::pair<Timestamp, size_t>> hot_queue_;  // (min hot end, id)

  int64_t settled_instances_ = 0;
  int64_t hot_instances_ = 0;
  std::vector<SettledEntry> settled_topk_;  // <= k best settled
  std::deque<HorizonSegment> horizon_;

  std::vector<Window> settled_windows_scratch_;
  EnumerationResult enum_stats_;  // cumulative enumeration counters

  /// Match ids whose revisit a stopped seal deferred; drained (merged
  /// into the revisit set) by the next seal. Ids stay valid across
  /// seals because matches_ is append-only.
  std::vector<size_t> pending_revisit_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_STREAM_STREAMING_MONITOR_H_
