#include "stream/streaming_monitor.h"

#include <algorithm>
#include <queue>

#include "core/structural_match.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace flowmotif {

namespace {

/// Last interaction time of an instance, straight off the view's slices
/// (every slice of an emitted instance is non-empty).
Timestamp InstanceEndFromView(const InstanceView& view) {
  Timestamp end = std::numeric_limits<Timestamp>::min();
  for (const EdgeSlice& slice : *view.slices) {
    end = std::max(end, slice.series->time(slice.end - 1));
  }
  return end;
}

}  // namespace

StreamingMotifMonitor::StreamingMotifMonitor(const Motif& motif,
                                             const StreamOptions& options)
    : motif_(motif), options_(options) {
  FLOWMOTIF_CHECK_GE(options.delta, 0) << "delta must be non-negative";
  FLOWMOTIF_CHECK_GE(options.phi, 0.0) << "phi must be non-negative";
  snapshot_ = log_.Snapshot();
}

StreamingMotifMonitor::StreamingMotifMonitor(const Motif& motif,
                                             const StreamOptions& options,
                                             const InteractionGraph& seed)
    : motif_(motif), options_(options), log_(seed) {
  FLOWMOTIF_CHECK_GE(options.delta, 0) << "delta must be non-negative";
  FLOWMOTIF_CHECK_GE(options.phi, 0.0) << "phi must be non-negative";
  snapshot_ = log_.Snapshot();
  InitializeFromSnapshot();
}

void StreamingMotifMonitor::InitializeFromSnapshot() {
  const TimeSeriesGraph& graph = *snapshot_;
  StructuralMatcher matcher(graph, motif_);
  matcher.FindAll([&](const MatchBinding& binding) {
    canonical_ids_.push_back(CreateMatch(binding));
    return true;
  });
  RebuildCanonicalPos();
  if (matches_.empty()) return;

  // The seed is entirely behind the watermark except for interactions at
  // the watermark itself; windows reaching it stay hot so later appends
  // at the same timestamp land inside them correctly.
  EnumerationOptions eopts;
  eopts.delta = options_.delta;
  eopts.phi = options_.phi;
  const FlowMotifEnumerator enumerator(graph, motif_, eopts);
  EpochStats stats;
  std::vector<Timestamp> new_ends;
  for (const size_t id : canonical_ids_) {
    RevisitMatch(id, enumerator, log_.watermark(), 0, &stats, &new_ends);
  }
  if (!new_ends.empty()) {
    std::sort(new_ends.begin(), new_ends.end());
    horizon_.push_back(HorizonSegment{new_ends.back(), std::move(new_ends)});
  }
}

size_t StreamingMotifMonitor::CreateMatch(const MatchBinding& binding) {
  const size_t id = matches_.size();
  matches_.emplace_back();
  matches_.back().binding = binding;
  for (int e = 0; e < motif_.num_edges(); ++e) {
    const auto [src, dst] = motif_.edge(e);
    auto& bucket = matches_by_pair_[PairKey(
        binding[static_cast<size_t>(src)], binding[static_cast<size_t>(dst)])];
    // A motif can bind the same graph pair through several edges; one
    // registration suffices.
    if (bucket.empty() || bucket.back() != id) bucket.push_back(id);
  }
  return id;
}

void StreamingMotifMonitor::RebuildCanonicalPos() {
  canonical_pos_.assign(matches_.size(), 0);
  for (size_t pos = 0; pos < canonical_ids_.size(); ++pos) {
    canonical_pos_[canonical_ids_[pos]] = pos;
  }
}

void StreamingMotifMonitor::RefreshMatchesFull(const TimeSeriesGraph& graph,
                                               std::vector<size_t>* new_ids) {
  // P1 order is append-stable, so the old canonical list is an in-order
  // subsequence of the fresh enumeration; the greedy two-pointer diff is
  // exact because a binding occurs at most once in P1 output.
  StructuralMatcher matcher(graph, motif_);
  std::vector<size_t> fresh;
  fresh.reserve(canonical_ids_.size());
  size_t old_i = 0;
  matcher.FindAll([&](const MatchBinding& binding) {
    if (old_i < canonical_ids_.size() &&
        matches_[canonical_ids_[old_i]].binding == binding) {
      fresh.push_back(canonical_ids_[old_i++]);
    } else {
      const size_t id = CreateMatch(binding);
      fresh.push_back(id);
      new_ids->push_back(id);
    }
    return true;
  });
  FLOWMOTIF_CHECK_EQ(old_i, canonical_ids_.size())
      << "P1 enumeration order was not append-stable";
  canonical_ids_ = std::move(fresh);
  RebuildCanonicalPos();
}

void StreamingMotifMonitor::RefreshMatchesPath(const TimeSeriesGraph& graph,
                                               const EpochLog::SealInfo& info,
                                               std::vector<size_t>* new_ids) {
  // A path-motif match uses every motif edge as a forward step of the
  // spanning walk, so a match can involve a new pair (u, v) only if its
  // origin reaches u within num_edges() - 1 forward hops — equivalently,
  // u reaches the origin within that many *reverse* hops. BFS the
  // reverse adjacency from each new pair's source to collect the
  // affected origins; every other origin's work unit is untouched and
  // its old match segment is copied through verbatim.
  const int64_t n = graph.num_vertices();
  std::vector<char> affected(static_cast<size_t>(n), 0);
  {
    std::vector<char> seen(static_cast<size_t>(n), 0);
    std::queue<std::pair<VertexId, int>> queue;  // (vertex, reverse depth)
    for (const auto& [src, dst] : info.new_pairs) {
      if (!seen[static_cast<size_t>(src)]) {
        seen[static_cast<size_t>(src)] = 1;
        queue.push({src, 0});
      }
    }
    const int max_depth = motif_.num_edges() - 1;
    while (!queue.empty()) {
      const auto [v, depth] = queue.front();
      queue.pop();
      affected[static_cast<size_t>(v)] = 1;
      if (depth == max_depth) continue;
      for (size_t k = graph.InBegin(v); k < graph.InEnd(v); ++k) {
        const VertexId u = graph.pair(graph.InPairIndex(k)).src;
        if (!seen[static_cast<size_t>(u)]) {
          seen[static_cast<size_t>(u)] = 1;
          queue.push({u, depth + 1});
        }
      }
    }
  }

  StructuralMatcher matcher(graph, motif_);
  std::vector<size_t> fresh;
  fresh.reserve(canonical_ids_.size());
  const size_t old_n = canonical_ids_.size();
  size_t old_i = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!affected[static_cast<size_t>(v)]) {
      // Untouched origin: its old segment is final; copy it through.
      while (old_i < old_n && OriginOf(canonical_ids_[old_i]) == v) {
        fresh.push_back(canonical_ids_[old_i++]);
      }
      continue;
    }
    matcher.FindInUnits(v, v + 1, [&](const MatchBinding& binding) {
      if (old_i < old_n && OriginOf(canonical_ids_[old_i]) == v &&
          matches_[canonical_ids_[old_i]].binding == binding) {
        fresh.push_back(canonical_ids_[old_i++]);
      } else {
        const size_t id = CreateMatch(binding);
        fresh.push_back(id);
        new_ids->push_back(id);
      }
      return true;
    });
    FLOWMOTIF_CHECK(old_i >= old_n || OriginOf(canonical_ids_[old_i]) != v)
        << "affected-origin rescan lost an existing match";
  }
  FLOWMOTIF_CHECK_EQ(old_i, old_n)
      << "path-motif origin rescan left old matches unconsumed";
  canonical_ids_ = std::move(fresh);
  RebuildCanonicalPos();
}

StreamingMotifMonitor::EpochStats StreamingMotifMonitor::SealEpoch() {
  // A control exists only when a failpoint is armed; the normal path
  // hands a nullptr through and pays nothing per revisit.
  const std::unique_ptr<QueryControl> control =
      MakeQueryControl(nullptr, QueryDeadline(), WorkBudget());
  return SealEpoch(control.get());
}

StreamingMotifMonitor::EpochStats StreamingMotifMonitor::SealEpoch(
    QueryControl* control) {
  const EpochLog::SealInfo info = log_.SealEpoch();
  EpochStats stats;
  stats.epoch = info.epoch;
  stats.num_appended = info.num_appended;
  if (info.num_appended == 0 && pending_revisit_.empty()) {
    stats.num_matches_total = matches_.size();
    if (control != nullptr) stats.termination = control->Finish(0);
    return stats;
  }
  // An empty-tail seal with a non-empty deferred queue proceeds
  // revisit-only against the unchanged snapshot.
  if (info.num_appended > 0) snapshot_ = info.graph;
  const TimeSeriesGraph& graph = *snapshot_;
  const Timestamp settle_before = info.watermark;

  std::vector<size_t> new_ids;
  if (info.topology_changed) {
    if (motif_.is_path()) {
      RefreshMatchesPath(graph, info, &new_ids);
    } else {
      RefreshMatchesFull(graph, &new_ids);
      stats.full_rescan = true;
    }
  }
  stats.num_new_matches = new_ids.size();
  stats.num_matches_total = matches_.size();

  // The revisit set: matches bound to a dirty pair, matches whose
  // earliest hot window just settled, brand-new matches, and revisits a
  // stopped earlier seal deferred. Everything else is provably
  // unchanged — its series are untouched and its hot windows (if any)
  // still end at or past the new watermark.
  std::vector<char> marked(matches_.size(), 0);
  std::vector<size_t> revisit;
  const auto mark = [&](size_t id) {
    if (!marked[id]) {
      marked[id] = 1;
      revisit.push_back(id);
    }
  };
  for (const auto& [src, dst] : info.dirty_pairs) {
    const auto it = matches_by_pair_.find(PairKey(src, dst));
    if (it == matches_by_pair_.end()) continue;
    for (const size_t id : it->second) mark(id);
  }
  for (auto it = hot_queue_.begin();
       it != hot_queue_.end() && it->first < settle_before; ++it) {
    mark(it->second);
  }
  for (const size_t id : new_ids) mark(id);
  for (const size_t id : pending_revisit_) mark(id);
  pending_revisit_.clear();
  std::sort(revisit.begin(), revisit.end(), [&](size_t a, size_t b) {
    return canonical_pos_[a] < canonical_pos_[b];
  });

  EnumerationOptions eopts;
  eopts.delta = options_.delta;
  eopts.phi = options_.phi;
  const FlowMotifEnumerator enumerator(graph, motif_, eopts);
  std::vector<Timestamp> new_ends;
  size_t applied = 0;
  for (size_t i = 0; i < revisit.size(); ++i) {
    if (control != nullptr && control->CheckAt(failpoint::kStreamRevisit)) {
      // Each RevisitMatch already applied is final; defer the rest to
      // the next seal. A revisit is idempotent against an unchanged
      // snapshot, so re-running a deferred id later is safe even if it
      // meanwhile re-enters the set through a dirty pair.
      pending_revisit_.assign(revisit.begin() + static_cast<long>(i),
                              revisit.end());
      stats.num_revisits_deferred =
          static_cast<int64_t>(revisit.size() - i);
      break;
    }
    RevisitMatch(revisit[i], enumerator, settle_before, info.epoch, &stats,
                 &new_ends);
    ++applied;
  }
  stats.num_matches_revisited = applied;
  if (control != nullptr) {
    stats.termination = control->Finish(static_cast<int64_t>(applied));
  }

  if (options_.horizon > 0) {
    if (!new_ends.empty()) {
      std::sort(new_ends.begin(), new_ends.end());
      horizon_.push_back(
          HorizonSegment{new_ends.back(), std::move(new_ends)});
    }
    // Expire whole segments that aged out of the horizon. max_end is not
    // monotone across segments (an instance hot for many epochs can
    // settle with an old end time), so this pops a prefix only; live
    // counts binary-search inside survivors either way.
    const Timestamp watermark = log_.watermark();
    while (!horizon_.empty() &&
           horizon_.front().max_end <= watermark - options_.horizon) {
      horizon_.pop_front();
    }
  }
  return stats;
}

void StreamingMotifMonitor::RevisitMatch(
    size_t id, const FlowMotifEnumerator& enumerator, Timestamp settle_before,
    EpochId epoch, EpochStats* stats,
    std::vector<Timestamp>* new_settled_ends) {
  MatchState& m = matches_[id];
  const TimeSeriesGraph& graph = *snapshot_;

  if (!m.hot_windows.empty()) {
    hot_queue_.erase({m.hot_windows.front().end, id});
  }
  hot_instances_ -= static_cast<int64_t>(m.hot.size());

  const auto [f_src, f_dst] = motif_.edge(0);
  const auto [l_src, l_dst] = motif_.edge(motif_.num_edges() - 1);
  const EdgeSeries* first =
      graph.FindSeries(m.binding[static_cast<size_t>(f_src)],
                       m.binding[static_cast<size_t>(f_dst)]);
  const EdgeSeries* last =
      graph.FindSeries(m.binding[static_cast<size_t>(l_src)],
                       m.binding[static_cast<size_t>(l_dst)]);
  FLOWMOTIF_CHECK(first != nullptr && last != nullptr)
      << "structural match lost its series";

  settled_windows_scratch_.clear();
  AdvanceProcessedWindows(*first, *last, options_.delta, settle_before,
                          &m.scan, &settled_windows_scratch_, &m.hot_windows);

  if (!settled_windows_scratch_.empty()) {
    const InstanceVisitor visitor = [&](const InstanceView& view) {
      const Timestamp end = InstanceEndFromView(view);
      const int64_t emit = m.settled_emits++;
      ++settled_instances_;
      ++stats->num_instances_settled;
      OfferSettled(view.flow, id, emit, end, view);
      if (options_.horizon > 0) new_settled_ends->push_back(end);
      if (view.flow >= options_.alert_min_flow) {
        ++stats->num_alerts;
        if (alert_callback_) {
          Alert alert;
          alert.epoch = epoch;
          alert.flow = view.flow;
          alert.end_time = end;
          alert.instance = view.Materialize();
          alert_callback_(alert);
        }
      }
      return true;
    };
    enumerator.EnumerateMatchWindows(
        m.binding, settled_windows_scratch_.data(),
        settled_windows_scratch_.data() + settled_windows_scratch_.size(),
        visitor, &enum_stats_);
  }

  m.hot.clear();
  if (!m.hot_windows.empty()) {
    // Hot instances are re-derived from scratch each revisit; their emit
    // indices continue the match's settled numbering, so the combined
    // (settled, hot) sequence carries exactly the batch discovery ranks.
    int64_t hot_emit = m.settled_emits;
    const InstanceVisitor visitor = [&](const InstanceView& view) {
      m.hot.push_back(HotInstance{view.flow, InstanceEndFromView(view),
                                  hot_emit++, view.Materialize()});
      return true;
    };
    enumerator.EnumerateMatchWindows(
        m.binding, m.hot_windows.data(),
        m.hot_windows.data() + m.hot_windows.size(), visitor, &enum_stats_);
    hot_queue_.insert({m.hot_windows.front().end, id});
  }
  hot_instances_ += static_cast<int64_t>(m.hot.size());
}

bool StreamingMotifMonitor::EntryOutranks(Flow a_flow, size_t a_match,
                                          int64_t a_emit, Flow b_flow,
                                          size_t b_match,
                                          int64_t b_emit) const {
  if (a_flow != b_flow) return a_flow > b_flow;
  const size_t a_pos = canonical_pos_[a_match];
  const size_t b_pos = canonical_pos_[b_match];
  if (a_pos != b_pos) return a_pos < b_pos;
  return a_emit < b_emit;
}

void StreamingMotifMonitor::OfferSettled(Flow flow, size_t match_id,
                                         int64_t emit_index, Timestamp end,
                                         const InstanceView& view) {
  if (options_.k <= 0) return;
  if (static_cast<int64_t>(settled_topk_.size()) < options_.k) {
    settled_topk_.push_back(
        SettledEntry{flow, match_id, emit_index, end, view.Materialize()});
    return;
  }
  // Pool full: replace the worst entry iff the newcomer outranks it.
  // Dropping the loser is final — its comparands (flow, discovery rank)
  // never change, so it can never re-enter a future top-k.
  size_t worst = 0;
  for (size_t i = 1; i < settled_topk_.size(); ++i) {
    if (EntryOutranks(settled_topk_[worst].flow, settled_topk_[worst].match_id,
                      settled_topk_[worst].emit_index, settled_topk_[i].flow,
                      settled_topk_[i].match_id,
                      settled_topk_[i].emit_index)) {
      worst = i;
    }
  }
  if (EntryOutranks(flow, match_id, emit_index, settled_topk_[worst].flow,
                    settled_topk_[worst].match_id,
                    settled_topk_[worst].emit_index)) {
    settled_topk_[worst] =
        SettledEntry{flow, match_id, emit_index, end, view.Materialize()};
  }
}

int64_t StreamingMotifMonitor::LiveInstances() const {
  if (options_.horizon <= 0) return TotalInstances();
  const Timestamp watermark = log_.watermark();
  // An instance is live while EndTime > watermark - horizon. Guard the
  // subtraction: an empty log's watermark is the Timestamp minimum.
  const Timestamp cutoff =
      watermark < std::numeric_limits<Timestamp>::min() + options_.horizon
          ? std::numeric_limits<Timestamp>::min()
          : watermark - options_.horizon;
  int64_t live = 0;
  for (const HorizonSegment& segment : horizon_) {
    if (segment.max_end <= cutoff) continue;
    live += segment.ends.end() - std::upper_bound(segment.ends.begin(),
                                                  segment.ends.end(), cutoff);
  }
  for (const auto& [min_end, id] : hot_queue_) {
    for (const HotInstance& hot : matches_[id].hot) {
      if (hot.end > cutoff) ++live;
    }
  }
  return live;
}

std::vector<TopKEntry> StreamingMotifMonitor::TopK() const {
  struct Candidate {
    Flow flow;
    size_t pos;
    int64_t emit;
    const MotifInstance* instance;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(settled_topk_.size());
  for (const SettledEntry& e : settled_topk_) {
    candidates.push_back(
        Candidate{e.flow, canonical_pos_[e.match_id], e.emit_index,
                  &e.instance});
  }
  for (const auto& [min_end, id] : hot_queue_) {
    for (const HotInstance& hot : matches_[id].hot) {
      candidates.push_back(
          Candidate{hot.flow, canonical_pos_[id], hot.emit_index,
                    &hot.instance});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.flow != b.flow) return a.flow > b.flow;
              if (a.pos != b.pos) return a.pos < b.pos;
              return a.emit < b.emit;
            });
  const size_t take = options_.k <= 0
                          ? 0
                          : std::min(candidates.size(),
                                     static_cast<size_t>(options_.k));
  std::vector<TopKEntry> result;
  result.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    result.push_back(TopKEntry{candidates[i].flow, *candidates[i].instance});
  }
  return result;
}

}  // namespace flowmotif
