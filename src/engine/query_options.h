#ifndef FLOWMOTIF_ENGINE_QUERY_OPTIONS_H_
#define FLOWMOTIF_ENGINE_QUERY_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/cancellation.h"

namespace flowmotif {

class SharedWindowCache;

/// The query modes unified behind QueryEngine — the paper's threshold
/// enumeration (Sec. 4), top-k and top-1 search (Sec. 5), significance
/// analysis (Sec. 6.3), plus the construction-free counting mode
/// (Sec. 7 future work).
enum class QueryMode {
  kEnumerate,     // all maximal instances with flow >= phi
  kCount,         // instance count only, memoized recursion
  kTopK,          // k largest-flow instances, floating threshold
  kTop1,          // single best instance, DP (Algorithm 2)
  kSignificance,  // z-score / p-value vs flow-permuted graphs
};

/// One options struct configuring every mode. Fields that do not apply
/// to the selected mode are ignored.
struct QueryOptions {
  QueryMode mode = QueryMode::kEnumerate;

  /// Def. 3.1 thresholds. `phi` applies to kEnumerate / kCount /
  /// kSignificance; kTopK runs with it as a static floor under the
  /// floating threshold (0 reproduces the paper's pure top-k).
  Timestamp delta = 0;
  Flow phi = 0.0;

  /// kTopK: number of results, >= 1.
  int64_t k = 10;

  /// kEnumerate: apply the Def. 3.3 strict-maximality post-filter.
  bool strict_maximality = false;

  /// kEnumerate: how many instances to materialize into
  /// QueryResult::instances, in serial discovery order. 0 collects
  /// nothing (counters only), -1 collects every instance.
  int64_t collect_limit = 0;

  /// kSignificance: number of flow-permuted graphs and RNG seed.
  int num_random_graphs = 20;
  uint64_t seed = 1;

  /// Worker threads for phase P2. 1 = serial reference path; 0 = one
  /// per hardware thread. Results are byte-identical for every value.
  int num_threads = 1;

  /// Structural matches per parallel batch; 0 derives a size that gives
  /// each thread several batches for load balancing.
  int64_t batch_size = 0;

  /// kSignificance and RunSweep: use record-once / replay-many
  /// enumeration skeletons (core/skeleton.h) where applicable. Counts
  /// and reports are identical either way (the equivalence tests lock
  /// this in); disable to force per-graph / per-cell enumeration. Both
  /// paths fall back on their own when recording is bypassed (trace
  /// budget exceeded).
  bool skeleton_replay = true;

  /// Cross-query window-cache tier (non-owning, may be null): a
  /// long-lived SharedWindowCache — bound to the SAME delta as this
  /// query — that the engine's per-query window caches fall through to
  /// on a miss (core/window_cursor.h). Processed-window lists computed
  /// by one query are then reused by every later query at that delta
  /// over the same edge storage. Results stay byte-identical: the tier
  /// only changes where a list is found, never its contents. Owned by
  /// the caller (typically serve/QueryService), which must keep it
  /// alive for the call and drop it when the graph changes identity.
  SharedWindowCache* shared_cache_tier = nullptr;

  /// Lifecycle controls (DESIGN.md Sec. 10). All default to inactive;
  /// when none is set the engine runs the zero-overhead path. The
  /// token is non-owning and must outlive the (synchronous) call.
  const CancellationToken* cancel_token = nullptr;
  QueryDeadline deadline;
  WorkBudget budget;
};

/// A delta x phi evaluation grid for QueryEngine::RunSweep — the shape
/// of the paper's Fig. 9 (counts vs delta) and Fig. 10 (counts vs phi)
/// curves. The whole grid is answered in one sweep: phase P1 runs once,
/// each delta's enumeration skeleton is recorded once, and every phi of
/// that delta is a replay of the recorded trace.
struct SweepQuery {
  std::vector<Timestamp> deltas;
  std::vector<Flow> phis;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_ENGINE_QUERY_OPTIONS_H_
