#include "engine/query_engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "core/counter.h"
#include "engine/batching.h"
#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

int ResolveThreads(const QueryOptions& options) {
  FLOWMOTIF_CHECK_GE(options.num_threads, 0);
  return options.num_threads == 0 ? ThreadPool::DefaultParallelism()
                                  : options.num_threads;
}

EnumerationOptions ToEnumerationOptions(const QueryOptions& options) {
  EnumerationOptions eopts;
  eopts.delta = options.delta;
  eopts.phi = options.phi;
  eopts.strict_maximality = options.strict_maximality;
  return eopts;
}

}  // namespace

QueryResult QueryEngine::Run(const Motif& motif,
                             const QueryOptions& options) const {
  WallTimer wall;
  ThreadPool pool(ResolveThreads(options));

  if (options.mode == QueryMode::kSignificance) {
    QueryResult result;
    result.mode = options.mode;
    result.threads_used = pool.num_threads();
    RunSignificance(motif, options, &pool, &result);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  WallTimer p1_timer;
  const std::vector<MatchBinding> matches =
      StructuralMatcher(graph_, motif).FindAllMatches();
  const double phase1_seconds = p1_timer.ElapsedSeconds();

  QueryResult result = Dispatch(motif, matches, options, &pool);
  result.stats.phase1_seconds = phase1_seconds;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

QueryResult QueryEngine::RunOnMatches(const Motif& motif,
                                      const std::vector<MatchBinding>& matches,
                                      const QueryOptions& options) const {
  FLOWMOTIF_CHECK(options.mode != QueryMode::kSignificance)
      << "kSignificance computes and reuses its own matches; use Run()";
  WallTimer wall;
  ThreadPool pool(ResolveThreads(options));
  QueryResult result = Dispatch(motif, matches, options, &pool);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

QueryResult QueryEngine::Dispatch(const Motif& motif,
                                  const std::vector<MatchBinding>& matches,
                                  const QueryOptions& options,
                                  ThreadPool* pool) const {
  QueryResult result;
  result.mode = options.mode;
  result.threads_used = pool->num_threads();
  switch (options.mode) {
    case QueryMode::kEnumerate:
      RunEnumerate(motif, matches, options, pool, &result);
      break;
    case QueryMode::kCount:
      RunCount(motif, matches, options, pool, &result);
      break;
    case QueryMode::kTopK:
      RunTopK(motif, matches, options, pool, &result);
      break;
    case QueryMode::kTop1:
      RunTop1(motif, matches, options, pool, &result);
      break;
    case QueryMode::kSignificance:
      FLOWMOTIF_CHECK(false) << "handled by Run()";
      break;
  }
  return result;
}

void QueryEngine::RunEnumerate(const Motif& motif,
                               const std::vector<MatchBinding>& matches,
                               const QueryOptions& options, ThreadPool* pool,
                               QueryResult* result) const {
  const FlowMotifEnumerator enumerator(graph_, motif,
                                       ToEnumerationOptions(options));
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());
  const int64_t limit = options.collect_limit;

  struct BatchOutput {
    EnumerationResult stats;
    std::vector<MotifInstance> collected;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        WallTimer timer;
        InstanceVisitor visitor;
        if (limit != 0) {
          // Each batch keeps at most `limit` instances: the global first
          // `limit` (serial discovery order) are necessarily among the
          // first `limit` of their own batch, so the merge below can
          // truncate without losing any of them.
          visitor = [&out, limit](const InstanceView& view) {
            if (limit < 0 ||
                static_cast<int64_t>(out.collected.size()) < limit) {
              out.collected.push_back(view.Materialize());
            }
            return true;
          };
        }
        for (int64_t m = batches[static_cast<size_t>(b)].begin;
             m < batches[static_cast<size_t>(b)].end; ++m) {
          ++out.stats.num_structural_matches;
          enumerator.EnumerateMatch(matches[static_cast<size_t>(m)], visitor,
                                    &out.stats);
        }
        out.stats.phase2_seconds = timer.ElapsedSeconds();
      });

  for (BatchOutput& out : outputs) {
    result->stats.MergeFrom(out.stats);
    for (MotifInstance& instance : out.collected) {
      if (limit >= 0 &&
          static_cast<int64_t>(result->instances.size()) >= limit) {
        break;
      }
      result->instances.push_back(std::move(instance));
    }
  }
}

void QueryEngine::RunCount(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options, ThreadPool* pool,
                           QueryResult* result) const {
  const InstanceCounter counter(graph_, motif, options.delta, options.phi);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  struct BatchOutput {
    InstanceCounter::Result counts;
    double seconds = 0.0;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        WallTimer timer;
        for (int64_t m = batches[static_cast<size_t>(b)].begin;
             m < batches[static_cast<size_t>(b)].end; ++m) {
          ++out.counts.num_structural_matches;
          out.counts.num_instances += counter.CountMatch(
              matches[static_cast<size_t>(m)], &out.counts);
        }
        out.seconds = timer.ElapsedSeconds();
      });

  for (const BatchOutput& out : outputs) {
    result->stats.num_instances += out.counts.num_instances;
    result->stats.num_structural_matches += out.counts.num_structural_matches;
    result->stats.num_windows_processed += out.counts.num_windows;
    result->memo_hits += out.counts.memo_hits;
    result->stats.phase2_seconds += out.seconds;
  }
}

void QueryEngine::RunTopK(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryResult* result) const {
  FLOWMOTIF_CHECK_GE(options.k, 1);
  SharedFlowThreshold shared;
  EnumerationOptions eopts = ToEnumerationOptions(options);
  eopts.dynamic_min_flow_exclusive = [&shared]() {
    return shared.ExclusiveBound();
  };
  const FlowMotifEnumerator enumerator(graph_, motif, eopts);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  // Completed batches fold into one global collector so the shared
  // threshold tracks the true k-th best seen so far (small batches
  // alone would rarely fill a local collector). The fold order is
  // whatever order batches finish in — harmless, because the bounded
  // collector's contents are insertion-order-independent.
  TopKCollector global(options.k);
  std::mutex global_mu;
  std::vector<EnumerationResult> batch_stats(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        EnumerationResult& stats = batch_stats[static_cast<size_t>(b)];
        TopKCollector local(options.k);
        WallTimer timer;
        for (int64_t m = batches[static_cast<size_t>(b)].begin;
             m < batches[static_cast<size_t>(b)].end; ++m) {
          ++stats.num_structural_matches;
          int64_t emit_index = 0;
          enumerator.EnumerateMatch(
              matches[static_cast<size_t>(m)],
              [&local, &shared, m, &emit_index](const InstanceView& view) {
                local.Offer(view.flow, DiscoveryRank{m, emit_index++}, view);
                if (local.full()) {
                  shared.RaiseToKthBest(local.KthBestFlow());
                }
                return true;
              },
              &stats);
        }
        stats.phase2_seconds = timer.ElapsedSeconds();
        std::lock_guard<std::mutex> lock(global_mu);
        global.MergeFrom(std::move(local));
        if (global.full()) shared.RaiseToKthBest(global.KthBestFlow());
      });

  for (const EnumerationResult& stats : batch_stats) {
    result->stats.MergeFrom(stats);
  }
  result->topk = global.Drain();
}

void QueryEngine::RunTop1(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryResult* result) const {
  const MaxFlowDpSearcher searcher(graph_, motif, options.delta);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  std::vector<MaxFlowDpSearcher::Result> outputs(batches.size());
  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        outputs[static_cast<size_t>(b)] = searcher.RunOnMatches(
            matches.data() + batch.begin, matches.data() + batch.end);
      });

  MaxFlowDpSearcher::Result best;
  for (MaxFlowDpSearcher::Result& out : outputs) {
    best.num_windows += out.num_windows;
    best.seconds += out.seconds;
    // Strictly-greater keeps the earliest batch on flow ties — the same
    // rule the serial searcher applies per match, so the merged winner
    // is the serial winner.
    if (out.found && (!best.found || out.max_flow > best.max_flow)) {
      const int64_t num_windows = best.num_windows;
      const double seconds = best.seconds;
      best = std::move(out);
      best.num_windows = num_windows;
      best.seconds = seconds;
    }
  }
  result->stats.num_structural_matches =
      static_cast<int64_t>(matches.size());
  result->stats.num_windows_processed = best.num_windows;
  result->stats.phase2_seconds = best.seconds;
  if (best.found) result->stats.num_instances = 1;
  result->top1 = std::move(best);
}

void QueryEngine::RunSignificance(const Motif& motif,
                                  const QueryOptions& options,
                                  ThreadPool* pool,
                                  QueryResult* result) const {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
  SignificanceAnalyzer::Options sopts;
  sopts.num_random_graphs = options.num_random_graphs;
  sopts.seed = options.seed;
  sopts.delta = options.delta;
  sopts.phi = options.phi;
  sopts.reuse_matches = true;
  sopts.pool = pool;
  const SignificanceAnalyzer analyzer(graph_, sopts);
  result->significance = analyzer.Analyze(motif);
  result->stats.num_instances = result->significance.real_count;
}

}  // namespace flowmotif
