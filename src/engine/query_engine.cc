#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include "core/counter.h"
#include "core/skeleton.h"
#include "core/window_cursor.h"
#include "engine/batching.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

int ResolveThreads(const QueryOptions& options) {
  // num_threads >= 0 was validated at the engine entry point.
  return options.num_threads == 0 ? ThreadPool::DefaultParallelism()
                                  : options.num_threads;
}

/// Entry-point validation of untrusted options; a failure becomes a
/// kError termination, never a process abort.
Status ValidateQueryOptions(const QueryOptions& options) {
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.batch_size < 0) {
    return Status::InvalidArgument("batch_size must be >= 0");
  }
  if (options.delta < 0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  if (options.phi < 0.0) {
    return Status::InvalidArgument("phi must be non-negative");
  }
  if (options.mode == QueryMode::kTopK && options.k < 1) {
    return Status::InvalidArgument("kTopK requires k >= 1");
  }
  if (options.mode == QueryMode::kSignificance &&
      options.num_random_graphs <= 0) {
    return Status::InvalidArgument(
        "kSignificance requires num_random_graphs > 0");
  }
  if (options.shared_cache_tier != nullptr &&
      options.shared_cache_tier->delta() != options.delta) {
    return Status::InvalidArgument(
        "shared_cache_tier is bound to a different delta");
  }
  return Status::OK();
}

/// The kError termination of a run that never started.
Termination InvalidOptionsTermination(Status status) {
  Termination termination;
  termination.code = TerminationCode::kError;
  termination.stopped_at = failpoint::kEngineStart;
  termination.detail = "invalid options";
  termination.status = std::move(status);
  termination.work_completed = 0;
  return termination;
}

/// Surfaces the pool's first task exception (satellite of the lifecycle
/// work: a throwing task is recorded at the task boundary, the pool
/// stays serviceable, and the submitting query reports it here). A
/// thrown batch silently dropped its contribution, so on kError the
/// partial results are best-effort, not a canonical prefix.
void OverlayPoolError(ThreadPool* pool, Termination* termination) {
  Status error = pool->TakeFirstError();
  if (error.ok()) return;
  if (termination->code == TerminationCode::kCompleted) {
    termination->code = TerminationCode::kError;
    termination->stopped_at = "thread_pool";
    termination->detail = "worker task threw";
    termination->status = std::move(error);
  } else if (termination->status.ok()) {
    termination->status = std::move(error);
  }
}

EnumerationOptions ToEnumerationOptions(const QueryOptions& options,
                                        QueryControl* control) {
  EnumerationOptions eopts;
  eopts.delta = options.delta;
  eopts.phi = options.phi;
  eopts.strict_maximality = options.strict_maximality;
  eopts.query_control = control;
  return eopts;
}

/// Wires one per-query window cache into the query lifecycle: budget
/// charges go to `control`, and misses fall through to the caller's
/// cross-query tier when QueryOptions carries one (serve/QueryService).
void AttachWindowCache(SharedWindowCache* cache, QueryControl* control,
                       const QueryOptions& options) {
  cache->set_query_control(control);
  cache->set_fallback_tier(options.shared_cache_tier);
}

/// kTopK stat normalization, applied after the final collector drain:
/// num_instances becomes the number of returned entries (exact and
/// thread-count-invariant; under a hard stop, exact over the canonical
/// match prefix), while the raw threshold-dependent activity — how many
/// emissions survived the floating threshold plus how many prefixes the
/// phi/threshold bound cut — moves to num_pruning_probes, the one
/// counter documented as execution-dependent.
void FinalizeTopKStats(EnumerationResult* stats, size_t num_entries) {
  stats->num_pruning_probes = stats->num_instances + stats->num_phi_prunes;
  stats->num_instances = static_cast<int64_t>(num_entries);
  stats->num_phi_prunes = 0;
}

/// P2 batch cap of the streamed path. Batches are cut per released P1
/// shard, so the usual count-derived size is unavailable; a fixed cap
/// keeps batches small enough for load balancing and is
/// timing-independent, so the batch layout is deterministic.
constexpr int64_t kStreamedBatchCap = 256;

/// The per-match bodies below are shared by the barrier and streamed
/// execution paths, so their semantics (DiscoveryRank keys, counter
/// accounting, threshold feeding) cannot silently diverge.

/// Enumerates one contiguous run of matches, streaming instances to
/// `visitor` (which may be null for counters-only). `control` (may be
/// null) is checked per match at site "p2.batch"; a stop ends the run
/// after a leading prefix of its matches, so num_structural_matches <
/// (end - begin) marks the run incomplete.
EnumerationResult EnumerateRun(const FlowMotifEnumerator& enumerator,
                               const MatchBinding* begin,
                               const MatchBinding* end,
                               const InstanceVisitor& visitor,
                               QueryControl* control) {
  EnumerationResult stats;
  WallTimer timer;
  // Batch boundary: an unthrottled deadline read, so a fresh batch
  // never starts on an already-expired deadline — overshoot stays
  // bounded by one batch's throttle window, never a multiple of it.
  if (control != nullptr && control->CheckAtBoundary(failpoint::kP2Batch)) {
    stats.phase2_seconds = timer.ElapsedSeconds();
    return stats;
  }
  for (const MatchBinding* m = begin; m < end; ++m) {
    if (control != nullptr && control->CheckAt(failpoint::kP2Batch)) break;
    ++stats.num_structural_matches;
    enumerator.EnumerateMatch(*m, visitor, &stats);
  }
  stats.phase2_seconds = timer.ElapsedSeconds();
  return stats;
}

/// Top-k over one contiguous run of matches whose first serial index is
/// `first_match_index`: every emission is offered to a local bounded
/// collector under its DiscoveryRank and observed by the shared
/// threshold; the local collector then folds into `global` and the
/// run's counters into `total_stats`, both under `mu` (fold order is
/// irrelevant — the bounded collector is insertion-order-independent
/// and the counters are sums).
void ProcessTopKRun(const FlowMotifEnumerator& enumerator,
                    const MatchBinding* begin, const MatchBinding* end,
                    int64_t first_match_index, int64_t k,
                    SharedFlowThreshold* shared, TopKCollector* global,
                    EnumerationResult* total_stats, std::mutex* mu) {
  TopKCollector local(k);
  int64_t m_index = first_match_index;
  EnumerationResult stats;
  WallTimer timer;
  for (const MatchBinding* m = begin; m < end; ++m, ++m_index) {
    ++stats.num_structural_matches;
    int64_t emit_index = 0;
    enumerator.EnumerateMatch(
        *m,
        [&local, shared, m_index, &emit_index](const InstanceView& view) {
          local.Offer(view.flow, DiscoveryRank{m_index, emit_index++}, view);
          shared->Observe(view.flow);
          return true;
        },
        &stats);
  }
  stats.phase2_seconds = timer.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(*mu);
  global->MergeFrom(std::move(local));
  total_stats->MergeFrom(stats);
}

/// Control-active top-k over one run. Unlike ProcessTopKRun, both the
/// threshold and the collector are local to the run: a cross-run
/// Observe would let out-of-prefix emissions tighten pruning inside
/// prefix runs, and the fold of a run prefix would no longer be the
/// exact top-k over exactly those matches. The price is slower
/// threshold tightening (more surviving emissions), which changes
/// pruning counters but never result entries.
EnumerationResult TopKRunLocal(const TimeSeriesGraph& graph,
                               const Motif& motif,
                               const QueryOptions& options,
                               SharedWindowCache* cache,
                               const MatchBinding* begin,
                               const MatchBinding* end,
                               int64_t first_match_index,
                               QueryControl* control, TopKCollector* local) {
  SharedFlowThreshold threshold(options.k);
  EnumerationOptions eopts;
  eopts.delta = options.delta;
  eopts.phi = options.phi;
  eopts.strict_maximality = options.strict_maximality;
  eopts.shared_window_cache = cache;
  eopts.query_control = control;
  eopts.dynamic_min_flow_exclusive = [&threshold]() {
    return threshold.ExclusiveBound();
  };
  const FlowMotifEnumerator enumerator(graph, motif, eopts);
  EnumerationResult stats;
  WallTimer timer;
  // Batch boundary: unthrottled deadline read (see EnumerateRun).
  if (control->CheckAtBoundary(failpoint::kP2Batch)) {
    stats.phase2_seconds = timer.ElapsedSeconds();
    return stats;
  }
  int64_t m_index = first_match_index;
  for (const MatchBinding* m = begin; m < end; ++m, ++m_index) {
    if (control->CheckAt(failpoint::kP2Batch)) break;
    ++stats.num_structural_matches;
    int64_t emit_index = 0;
    enumerator.EnumerateMatch(
        *m,
        [local, &threshold, m_index, &emit_index](const InstanceView& view) {
          local->Offer(view.flow, DiscoveryRank{m_index, emit_index++}, view);
          threshold.Observe(view.flow);
          return true;
        },
        &stats);
  }
  stats.phase2_seconds = timer.ElapsedSeconds();
  return stats;
}

/// Counts one contiguous run of matches. The run-local window MRU
/// keeps consecutive same-pair matches cheap even when the shared
/// cache declines the pair (saturation or gated-off memoization).
InstanceCounter::Result CountRun(const InstanceCounter& counter,
                                 const MatchBinding* begin,
                                 const MatchBinding* end,
                                 QueryControl* control, double* seconds) {
  InstanceCounter::Result counts;
  WallTimer timer;
  WindowListMru window_mru;
  // Batch boundary: unthrottled deadline read (see EnumerateRun).
  if (control != nullptr && control->CheckAtBoundary(failpoint::kP2Batch)) {
    *seconds = timer.ElapsedSeconds();
    return counts;
  }
  for (const MatchBinding* m = begin; m < end; ++m) {
    if (control != nullptr && control->CheckAt(failpoint::kP2Batch)) break;
    ++counts.num_structural_matches;
    counts.num_instances += counter.CountMatch(*m, &counts, &window_mru);
  }
  *seconds = timer.ElapsedSeconds();
  return counts;
}

/// Folds one run's counting output into the result (all sums, so any
/// fold order reproduces the serial counters).
void AccumulateCounts(const InstanceCounter::Result& counts, double seconds,
                      QueryResult* result) {
  result->stats.num_instances += counts.num_instances;
  result->stats.num_structural_matches += counts.num_structural_matches;
  result->stats.num_windows_processed += counts.num_windows;
  result->memo_hits += counts.memo_hits;
  result->stats.phase2_seconds += seconds;
}

/// Checkout pool of DP scratches for the kTop1 paths: a P2 batch
/// borrows one for the duration of its RunOnMatches call, so a worker's
/// successive batches reuse the same timeline/table buffers instead of
/// reallocating per batch (window lists live in the per-query
/// SharedWindowCache, shared by every worker). Scratch contents never
/// influence results — only where the buffers live — so the checkout
/// order is free to vary with scheduling.
class DpScratchPool {
 public:
  std::unique_ptr<MaxFlowDpSearcher::Scratch> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
            std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<MaxFlowDpSearcher::Scratch>();
  }

  void Release(std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<MaxFlowDpSearcher::Scratch>> free_;
};

/// Folds per-batch DP incumbents, in serial batch order, with the
/// strictly-greater rule — the same rule the serial searcher applies
/// per match, so the merged winner is the serial winner (earliest batch
/// wins flow ties).
MaxFlowDpSearcher::Result MergeTop1Outputs(
    std::vector<MaxFlowDpSearcher::Result>* outputs) {
  MaxFlowDpSearcher::Result best;
  for (MaxFlowDpSearcher::Result& out : *outputs) {
    best.num_windows += out.num_windows;
    best.seconds += out.seconds;
    if (out.found && (!best.found || out.max_flow > best.max_flow)) {
      const int64_t num_windows = best.num_windows;
      const double seconds = best.seconds;
      best = std::move(out);
      best.num_windows = num_windows;
      best.seconds = seconds;
    }
  }
  return best;
}

}  // namespace

bool QueryEngine::CanStream(const QueryOptions& options) {
  switch (options.mode) {
    case QueryMode::kCount:
    case QueryMode::kTopK:
    case QueryMode::kTop1:
    case QueryMode::kEnumerate:
      // kEnumerate with a collect limit uses RunEnumerate's per-batch
      // truncation trick on the streamed batches too: batches arrive
      // keyed by their first serial match index, so the merge restores
      // serial order before truncating.
      return true;
    case QueryMode::kSignificance:
      return false;
  }
  return false;
}

QueryResult QueryEngine::Run(const Motif& motif,
                             const QueryOptions& options) const {
  WallTimer wall;
  QueryResult result;
  result.mode = options.mode;
  const Status valid = ValidateQueryOptions(options);
  if (!valid.ok()) {
    result.termination = InvalidOptionsTermination(valid);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  const std::unique_ptr<QueryControl> control_owner = MakeQueryControl(
      options.cancel_token, options.deadline, options.budget);
  QueryControl* const control = control_owner.get();
  ThreadPool pool(ResolveThreads(options));
  result.threads_used = pool.num_threads();

  if (control != nullptr && control->CheckAt(failpoint::kEngineStart)) {
    result.termination = control->Finish(0);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  if (options.mode == QueryMode::kSignificance) {
    RunSignificance(motif, options, &pool, control, &result);
  } else if (pool.num_threads() > 1 && CanStream(options) &&
             (control == nullptr || control->budget().max_matches < 0)) {
    // A match budget forces the barrier path: exact truncation at
    // max_matches needs the serial P1 scan of FindMatchesControlled.
    RunStreamed(motif, options, &pool, control, &result);
  } else {
    // Barrier path: materialize the full match list (serial on one
    // thread — the bit-for-bit reference — otherwise parallel over work
    // units with a deterministic merge), then dispatch P2 over it.
    WallTimer p1_timer;
    const std::vector<MatchBinding> matches =
        FindMatchesControlled(motif, &pool, control);
    const double phase1_seconds = p1_timer.ElapsedSeconds();
    Dispatch(motif, matches, options, &pool, control, &result);
    result.stats.phase1_seconds = phase1_seconds;
  }
  OverlayPoolError(&pool, &result.termination);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

QueryResult QueryEngine::RunOnMatches(const Motif& motif,
                                      const std::vector<MatchBinding>& matches,
                                      const QueryOptions& options) const {
  WallTimer wall;
  QueryResult result;
  result.mode = options.mode;
  Status valid = ValidateQueryOptions(options);
  if (valid.ok() && options.mode == QueryMode::kSignificance) {
    valid = Status::InvalidArgument(
        "kSignificance computes and reuses its own matches; use Run()");
  }
  if (!valid.ok()) {
    result.termination = InvalidOptionsTermination(valid);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }
  const std::unique_ptr<QueryControl> control_owner = MakeQueryControl(
      options.cancel_token, options.deadline, options.budget);
  QueryControl* const control = control_owner.get();
  ThreadPool pool(ResolveThreads(options));
  result.threads_used = pool.num_threads();
  if (control != nullptr && control->CheckAt(failpoint::kEngineStart)) {
    result.termination = control->Finish(0);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }
  Dispatch(motif, matches, options, &pool, control, &result);
  OverlayPoolError(&pool, &result.termination);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

std::vector<MatchBinding> QueryEngine::FindMatchesControlled(
    const Motif& motif, ThreadPool* pool, QueryControl* control) const {
  const StructuralMatcher matcher(graph_, motif);
  if (control == nullptr) {
    return pool->num_threads() == 1 ? matcher.FindAllMatches()
                                    : matcher.FindAllMatchesParallel(pool);
  }
  const int64_t num_units = matcher.NumWorkUnits();
  const int64_t max_matches = control->budget().max_matches;
  if (max_matches >= 0) {
    // Serial unit scan so the cut lands at exactly max_matches in
    // canonical order, independent of scheduling. A hit is a soft
    // truncation: P2 still runs, exactly, over the kept prefix.
    std::vector<MatchBinding> matches;
    bool hit_cap = false;
    for (int64_t u = 0; u < num_units && !hit_cap; ++u) {
      if (control->CheckAt(failpoint::kP1Unit)) break;
      matcher.FindInUnits(u, u + 1, [&](const MatchBinding& binding) {
        if (static_cast<int64_t>(matches.size()) >= max_matches) {
          hit_cap = true;
          return false;
        }
        matches.push_back(binding);
        return true;
      });
    }
    if (hit_cap) {
      control->MarkTruncated(TerminationCode::kBudgetExceeded,
                             failpoint::kP1Unit, "max_matches");
    }
    return matches;
  }
  // Parallel controlled scan: each range walks its units one at a time
  // with a per-unit check; a stopped range keeps the matches of its
  // leading units. The kept result is the longest canonical unit
  // prefix — full leading ranges plus the first incomplete range's
  // leading units; later ranges (even if they finished) are discarded
  // because their units are not contiguous with the prefix.
  const std::vector<MatchBatch> ranges =
      PartitionMatches(num_units, pool->num_threads(), /*batch_size=*/0);
  struct RangeOutput {
    std::vector<MatchBinding> matches;
    bool complete = false;
  };
  std::vector<RangeOutput> outputs(ranges.size());
  pool->ParallelFor(static_cast<int64_t>(ranges.size()), [&](int64_t r) {
    RangeOutput& out = outputs[static_cast<size_t>(r)];
    const MatchBatch& range = ranges[static_cast<size_t>(r)];
    for (int64_t u = range.begin; u < range.end; ++u) {
      if (control->CheckAt(failpoint::kP1Unit)) return;
      matcher.FindInUnits(u, u + 1, [&out](const MatchBinding& binding) {
        out.matches.push_back(binding);
        return true;
      });
    }
    out.complete = true;
  });
  std::vector<MatchBinding> matches;
  for (RangeOutput& out : outputs) {
    matches.insert(matches.end(),
                   std::make_move_iterator(out.matches.begin()),
                   std::make_move_iterator(out.matches.end()));
    if (!out.complete) break;
  }
  return matches;
}

SweepResult QueryEngine::RunSweep(const Motif& motif, const SweepQuery& sweep,
                                  const QueryOptions& options) const {
  WallTimer wall;
  SweepResult result;
  result.deltas = sweep.deltas;
  result.phis = sweep.phis;
  Status valid = Status::OK();
  if (options.num_threads < 0) {
    valid = Status::InvalidArgument("num_threads must be >= 0");
  } else if (options.batch_size < 0) {
    valid = Status::InvalidArgument("batch_size must be >= 0");
  } else if (sweep.deltas.empty()) {
    valid = Status::InvalidArgument("sweep needs at least one delta");
  } else if (sweep.phis.empty()) {
    valid = Status::InvalidArgument("sweep needs at least one phi");
  } else {
    for (const Timestamp delta : sweep.deltas) {
      if (delta < 0) {
        valid = Status::InvalidArgument("sweep deltas must be non-negative");
        break;
      }
    }
    for (const Flow phi : sweep.phis) {
      if (phi < 0.0) {
        valid = Status::InvalidArgument("sweep phis must be non-negative");
        break;
      }
    }
  }
  if (!valid.ok()) {
    result.termination = InvalidOptionsTermination(valid);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }
  result.counts.assign(sweep.deltas.size() * sweep.phis.size(), 0);
  result.cell_valid.assign(result.counts.size(), 0);

  const std::unique_ptr<QueryControl> control_owner = MakeQueryControl(
      options.cancel_token, options.deadline, options.budget);
  QueryControl* const control = control_owner.get();
  ThreadPool pool(ResolveThreads(options));
  result.threads_used = pool.num_threads();
  if (control != nullptr && control->CheckAt(failpoint::kEngineStart)) {
    result.termination = control->Finish(0);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  // Phase P1 once for the whole grid: structural matches depend on
  // neither delta nor phi, so per-point querying re-derives the same
  // list |grid| times.
  const std::vector<MatchBinding> matches =
      FindMatchesControlled(motif, &pool, control);
  result.num_structural_matches = static_cast<int64_t>(matches.size());
  if (control != nullptr && control->ShouldStop()) {
    // A hard stop during P1 left an incomplete match list; no cell
    // computed over it would equal its per-point kCount run, so all
    // cells stay invalid. (A soft max_matches truncation is different:
    // cells over the kept prefix are exact for that prefix.)
    result.termination = control->Finish(0);
    OverlayPoolError(&pool, &result.termination);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  // Deltas are recorded largest-first regardless of the caller's grid
  // order: RecordSweepDescending makes one pass over the match list,
  // recording every delta's skeleton while each match's series are hot
  // and cascading per-match viability (no phi = 0 completion at a
  // larger delta proves the match dead for all smaller ones — windows
  // shrink monotonically with delta and raising phi only removes
  // instances). On the Fig. 9 presets the bulk of structural matches
  // are dead, so the grid's tail costs O(|viable|), not O(|matches|).
  std::vector<size_t> order(sweep.deltas.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&sweep](size_t a, size_t b) {
    return sweep.deltas[a] > sweep.deltas[b];
  });

  std::vector<EnumerationSkeleton> skeletons;  // aligned with `order`
  if (options.skeleton_replay) {
    std::vector<Timestamp> descending(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      descending[i] = sweep.deltas[order[i]];
    }
    // A stop mid-recording abandons every skeleton (a partial trace
    // would replay wrong counts); the per-cell fallback below observes
    // the same stop and terminates promptly.
    EnumerationSkeleton::RecordSweepDescending(
        graph_, motif, descending, matches, EnumerationSkeleton::Options(),
        &skeletons, control);
  }

  int64_t valid_cells = 0;
  bool stopped = false;
  FlowPrefixArena arena;  // real-graph prefixes; filled once, delta-free
  for (size_t i = 0; i < order.size() && !stopped; ++i) {
    const size_t d = order[i];
    const Timestamp delta = sweep.deltas[d];
    int64_t* row = result.counts.data() + d * sweep.phis.size();
    uint8_t* row_valid = result.cell_valid.data() + d * sweep.phis.size();
    if (options.skeleton_replay && skeletons[i].recorded()) {
      // The recorded trace is phi-free: evaluate every slice flow once,
      // then each phi is one linear DP pass over the cached flows.
      if (arena.size() == 0) arena.FillFromGraph(graph_);
      SkeletonReplayer replayer(&skeletons[i]);
      replayer.EvaluateFlows(arena);
      for (size_t p = 0; p < sweep.phis.size(); ++p) {
        if (control != nullptr && control->CheckAt(failpoint::kSweepCell)) {
          stopped = true;
          break;
        }
        row[p] = replayer.CountWithFlows(sweep.phis[p]);
        row_valid[p] = 1;
        ++valid_cells;
      }
      if (!stopped) ++result.num_replayed_deltas;
      continue;
    }
    // Fallback (replay disabled, stopped, or this delta's recording
    // abandoned on budget): ordinary memoized counting per cell over
    // the shared match list — the per-point kCount path minus its
    // redundant P1 runs.
    for (size_t p = 0; p < sweep.phis.size(); ++p) {
      if (control != nullptr && control->CheckAt(failpoint::kSweepCell)) {
        stopped = true;
        break;
      }
      QueryOptions cell = options;
      cell.mode = QueryMode::kCount;
      cell.delta = delta;
      cell.phi = sweep.phis[p];
      QueryResult cell_result;
      RunCount(motif, matches, cell, &pool, control, &cell_result);
      if (control != nullptr && control->ShouldStop()) {
        // The cell itself was cut short; its count is partial.
        stopped = true;
        break;
      }
      row[p] = cell_result.stats.num_instances;
      row_valid[p] = 1;
      ++valid_cells;
      ++result.num_fallback_cells;
    }
  }
  if (control != nullptr) {
    result.termination = control->Finish(valid_cells);
  } else {
    result.termination.work_completed = valid_cells;
  }
  OverlayPoolError(&pool, &result.termination);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

void QueryEngine::Dispatch(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options, ThreadPool* pool,
                           QueryControl* control, QueryResult* result) const {
  result->mode = options.mode;
  result->threads_used = pool->num_threads();
  switch (options.mode) {
    case QueryMode::kEnumerate:
      RunEnumerate(motif, matches, options, pool, control, result);
      break;
    case QueryMode::kCount:
      RunCount(motif, matches, options, pool, control, result);
      break;
    case QueryMode::kTopK:
      RunTopK(motif, matches, options, pool, control, result);
      break;
    case QueryMode::kTop1:
      RunTop1(motif, matches, options, pool, control, result);
      break;
    case QueryMode::kSignificance:
      FLOWMOTIF_CHECK(false) << "rejected at the entry points";
      break;
  }
}

void QueryEngine::RunEnumerate(const Motif& motif,
                               const std::vector<MatchBinding>& matches,
                               const QueryOptions& options, ThreadPool* pool,
                               QueryControl* control,
                               QueryResult* result) const {
  // One shared window cache per query: every batch of every worker
  // reads per-match window lists through it (lock-free once built).
  SharedWindowCache window_cache(options.delta);
  AttachWindowCache(&window_cache, control, options);
  EnumerationOptions eopts = ToEnumerationOptions(options, control);
  eopts.shared_window_cache = &window_cache;
  const FlowMotifEnumerator enumerator(graph_, motif, eopts);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());
  const int64_t limit = options.collect_limit;

  struct BatchOutput {
    EnumerationResult stats;
    std::vector<MotifInstance> collected;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        InstanceVisitor visitor;
        if (limit != 0) {
          // Each batch keeps at most `limit` instances: the global first
          // `limit` (serial discovery order) are necessarily among the
          // first `limit` of their own batch, so the merge below can
          // truncate without losing any of them.
          visitor = [&out, limit](const InstanceView& view) {
            if (limit < 0 ||
                static_cast<int64_t>(out.collected.size()) < limit) {
              out.collected.push_back(view.Materialize());
            }
            return true;
          };
        }
        out.stats = EnumerateRun(enumerator, matches.data() + batch.begin,
                                 matches.data() + batch.end, visitor,
                                 control);
      });

  // Fold in serial batch order. Under a control the fold keeps the
  // longest contiguous run of complete batches plus the first
  // incomplete batch's (leading) partial output — the canonical match
  // prefix — and discards later batches even when they finished.
  int64_t matches_done = 0;
  for (size_t b = 0; b < outputs.size(); ++b) {
    BatchOutput& out = outputs[b];
    result->stats.MergeFrom(out.stats);
    matches_done += out.stats.num_structural_matches;
    for (MotifInstance& instance : out.collected) {
      if (limit >= 0 &&
          static_cast<int64_t>(result->instances.size()) >= limit) {
        break;
      }
      result->instances.push_back(std::move(instance));
    }
    if (control != nullptr &&
        out.stats.num_structural_matches != batches[b].end - batches[b].begin) {
      break;
    }
  }
  if (control != nullptr) {
    result->termination = control->Finish(matches_done);
  }
}

void QueryEngine::RunCount(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options, ThreadPool* pool,
                           QueryControl* control, QueryResult* result) const {
  SharedWindowCache window_cache(options.delta);
  AttachWindowCache(&window_cache, control, options);
  InstanceCounter counter(graph_, motif, options.delta, options.phi,
                          &window_cache);
  counter.set_query_control(control);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  struct BatchOutput {
    InstanceCounter::Result counts;
    double seconds = 0.0;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        out.counts = CountRun(counter, matches.data() + batch.begin,
                              matches.data() + batch.end, control,
                              &out.seconds);
      });

  // Serial-order prefix fold (see RunEnumerate).
  int64_t matches_done = 0;
  for (size_t b = 0; b < outputs.size(); ++b) {
    const BatchOutput& out = outputs[b];
    AccumulateCounts(out.counts, out.seconds, result);
    matches_done += out.counts.num_structural_matches;
    if (control != nullptr && out.counts.num_structural_matches !=
                                  batches[b].end - batches[b].begin) {
      break;
    }
  }
  if (control != nullptr) {
    result->termination = control->Finish(matches_done);
  }
}

void QueryEngine::RunTopK(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryControl* control, QueryResult* result) const {
  SharedWindowCache window_cache(options.delta);
  AttachWindowCache(&window_cache, control, options);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  if (control == nullptr) {
    // The shared threshold tracks the k-th best flow across *all*
    // workers' emissions (Observe), so it tightens before any single
    // collector fills and matches the serial searcher's pruning rate.
    SharedFlowThreshold shared(options.k);
    EnumerationOptions eopts = ToEnumerationOptions(options, control);
    eopts.dynamic_min_flow_exclusive = [&shared]() {
      return shared.ExclusiveBound();
    };
    eopts.shared_window_cache = &window_cache;
    const FlowMotifEnumerator enumerator(graph_, motif, eopts);

    // Completed batches fold into one global collector. The fold order
    // is whatever order batches finish in — harmless, because the
    // bounded collector's contents are insertion-order-independent and
    // the counters are sums.
    TopKCollector global(options.k);
    std::mutex global_mu;

    pool->ParallelFor(
        static_cast<int64_t>(batches.size()), [&](int64_t b) {
          const MatchBatch& batch = batches[static_cast<size_t>(b)];
          ProcessTopKRun(enumerator, matches.data() + batch.begin,
                         matches.data() + batch.end, batch.begin, options.k,
                         &shared, &global, &result->stats, &global_mu);
        });

    result->topk = global.Drain();
    FinalizeTopKStats(&result->stats, result->topk.size());
    return;
  }

  // Control active: batch-local thresholds and collectors
  // (TopKRunLocal) keep every pruning decision inside its batch, so
  // the serial-order prefix fold below yields the exact top-k over
  // exactly the prefix matches.
  struct BatchOutput {
    std::unique_ptr<TopKCollector> local;
    EnumerationResult stats;
  };
  std::vector<BatchOutput> outputs(batches.size());
  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        out.local = std::make_unique<TopKCollector>(options.k);
        out.stats = TopKRunLocal(graph_, motif, options, &window_cache,
                                 matches.data() + batch.begin,
                                 matches.data() + batch.end, batch.begin,
                                 control, out.local.get());
      });

  TopKCollector global(options.k);
  int64_t matches_done = 0;
  for (size_t b = 0; b < outputs.size(); ++b) {
    BatchOutput& out = outputs[b];
    if (out.local == nullptr) break;  // batch task died before starting
    global.MergeFrom(std::move(*out.local));
    result->stats.MergeFrom(out.stats);
    matches_done += out.stats.num_structural_matches;
    if (out.stats.num_structural_matches !=
        batches[b].end - batches[b].begin) {
      break;
    }
  }
  result->topk = global.Drain();
  FinalizeTopKStats(&result->stats, result->topk.size());
  result->termination = control->Finish(matches_done);
}

void QueryEngine::RunTop1(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryControl* control, QueryResult* result) const {
  SharedWindowCache window_cache(options.delta);
  AttachWindowCache(&window_cache, control, options);
  MaxFlowDpSearcher searcher(graph_, motif, options.delta, &window_cache);
  searcher.set_query_control(control);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  std::vector<MaxFlowDpSearcher::Result> outputs(batches.size());
  DpScratchPool scratch_pool;
  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
            scratch_pool.Acquire();
        outputs[static_cast<size_t>(b)] = searcher.RunOnMatches(
            matches.data() + batch.begin, matches.data() + batch.end,
            scratch.get(), control);
        scratch_pool.Release(std::move(scratch));
      });

  // Serial-order prefix fold (see RunEnumerate); the incumbent of a
  // batch covers exactly its matches_processed leading matches.
  int64_t matches_done = 0;
  std::vector<MaxFlowDpSearcher::Result> prefix;
  prefix.reserve(outputs.size());
  for (size_t b = 0; b < outputs.size(); ++b) {
    matches_done += outputs[b].matches_processed;
    const bool complete =
        outputs[b].matches_processed == batches[b].end - batches[b].begin;
    prefix.push_back(std::move(outputs[b]));
    if (control != nullptr && !complete) break;
  }
  MaxFlowDpSearcher::Result best = MergeTop1Outputs(&prefix);
  result->stats.num_structural_matches =
      control != nullptr ? matches_done
                         : static_cast<int64_t>(matches.size());
  result->stats.num_windows_processed = best.num_windows;
  result->stats.phase2_seconds = best.seconds;
  if (best.found) result->stats.num_instances = 1;
  result->top1 = std::move(best);
  if (control != nullptr) {
    result->termination = control->Finish(matches_done);
  }
}

QueryEngine::StreamStats QueryEngine::StreamTwoPhase(
    const Motif& motif, const QueryOptions& options, ThreadPool* pool,
    QueryControl* control, const StreamBatchFn& batch_fn) const {
  const StructuralMatcher matcher(graph_, motif);
  // P1 shards: contiguous work-unit ranges, several per worker so
  // dynamic scheduling absorbs the match-density skew across origins.
  const std::vector<MatchBatch> ranges = PartitionMatches(
      matcher.NumWorkUnits(), pool->num_threads(), /*batch_size=*/0);
  StreamStats stats;
  stats.stopped_shard_min = std::numeric_limits<int64_t>::max();
  if (ranges.empty()) return stats;
  const int64_t batch_cap =
      options.batch_size > 0 ? options.batch_size : kStreamedBatchCap;

  ShardPrefixMerger merger(static_cast<int64_t>(ranges.size()));
  // Outstanding P2 batches per shard: the last batch to finish frees
  // the shard's match buffer, so peak memory tracks the in-flight
  // window rather than the full match list. Stored before the shard's
  // batches are submitted (a batch may start on another worker
  // immediately).
  std::vector<std::atomic<int64_t>> pending_batches(ranges.size());
  std::mutex stats_mu;
  // Smallest shard whose P1 scan the control stopped; relaxed is
  // enough, the fold reads it after pool->Wait().
  std::atomic<int64_t> stopped_min{std::numeric_limits<int64_t>::max()};

  // Every task — P1 shard and P2 batch alike — goes through the one
  // pool's FIFO queue; a shard task that completes the release prefix
  // submits the P2 batches for every shard it released. Tasks never
  // block on each other, so the single Wait() below drains the whole
  // pipeline. All state outlives Wait(), so reference captures are
  // safe.
  for (size_t r = 0; r < ranges.size(); ++r) {
    pool->Submit([&, r] {
      WallTimer timer;
      std::vector<MatchBinding> shard;
      if (control == nullptr) {
        matcher.FindInUnits(ranges[r].begin, ranges[r].end,
                            [&shard](const MatchBinding& binding) {
                              shard.push_back(binding);
                              return true;
                            });
      } else {
        // Per-unit scan with a cancellation point; a stop keeps the
        // shard's leading units (a canonical prefix within the shard)
        // and records the shard so the caller's fold can discard every
        // later shard's batches.
        for (int64_t u = ranges[r].begin; u < ranges[r].end; ++u) {
          if (control->CheckAt(failpoint::kP1Unit)) {
            int64_t cur = stopped_min.load(std::memory_order_relaxed);
            while (static_cast<int64_t>(r) < cur &&
                   !stopped_min.compare_exchange_weak(
                       cur, static_cast<int64_t>(r),
                       std::memory_order_relaxed)) {
            }
            break;
          }
          matcher.FindInUnits(u, u + 1,
                              [&shard](const MatchBinding& binding) {
                                shard.push_back(binding);
                                return true;
                              });
        }
      }
      const double p1_seconds = timer.ElapsedSeconds();
      const std::vector<ShardPrefixMerger::ReleasedShardEntry> released =
          merger.Complete(static_cast<int64_t>(r), std::move(shard));
      int64_t new_batches = 0;
      for (const ShardPrefixMerger::ReleasedShardEntry& entry : released) {
        const ShardPrefixMerger::ReleasedShard& rs = entry.released;
        const int64_t n = static_cast<int64_t>(rs.matches->size());
        const int64_t shard_batches = (n + batch_cap - 1) / batch_cap;
        if (shard_batches == 0) {
          merger.FreeShard(entry.shard);
          continue;
        }
        pending_batches[static_cast<size_t>(entry.shard)].store(
            shard_batches, std::memory_order_relaxed);
        for (int64_t b = 0; b < n; b += batch_cap) {
          const int64_t len = std::min(batch_cap, n - b);
          const MatchBinding* data = rs.matches->data() + b;
          const int64_t first = rs.first_match_index + b;
          ++new_batches;
          // Front-of-queue: P2 batches must run ahead of the still-
          // queued P1 shard tasks, or FIFO order would finish all of
          // P1 (every shard buffer live at once) before P2 starts —
          // the batch/free cadence is what bounds in-flight memory.
          pool->SubmitFront([&batch_fn, &merger, &pending_batches,
                             shard_index = entry.shard, data, len, first] {
            batch_fn(first, shard_index, data, data + len);
            // acq_rel orders every batch's reads of the buffer before
            // the last decrementer's free.
            if (pending_batches[static_cast<size_t>(shard_index)].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
              merger.FreeShard(shard_index);
            }
          });
        }
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      stats.p1_cpu_seconds += p1_seconds;
      stats.num_batches += new_batches;
    });
  }
  pool->Wait();
  stats.num_matches = merger.num_released();
  stats.stopped_shard_min = stopped_min.load(std::memory_order_relaxed);
  return stats;
}

void QueryEngine::RunStreamed(const Motif& motif,
                              const QueryOptions& options, ThreadPool* pool,
                              QueryControl* control,
                              QueryResult* result) const {
  // Every mode defers per-batch entries keyed by (first serial match
  // index, shard) and folds them in serial order afterwards — never a
  // torn merge. Under a control the fold keeps the longest contiguous
  // run of batches that (a) starts at match 0, (b) comes from a shard
  // no later than the first P1-stopped one (later shards' matches are
  // not part of any canonical prefix), and (c) ends at the first batch
  // whose own P2 loop was cut short, whose leading partial output is
  // still included.
  switch (options.mode) {
    case QueryMode::kEnumerate: {
      SharedWindowCache window_cache(options.delta);
      AttachWindowCache(&window_cache, control, options);
      EnumerationOptions eopts = ToEnumerationOptions(options, control);
      eopts.shared_window_cache = &window_cache;
      const FlowMotifEnumerator enumerator(graph_, motif, eopts);
      const int64_t limit = options.collect_limit;
      std::mutex mu;
      struct Entry {
        int64_t first = 0;
        int64_t shard = 0;
        int64_t len = 0;
        EnumerationResult stats;
        std::vector<MotifInstance> collected;
      };
      // Each batch keeps at most `limit` instances, which necessarily
      // include every one of the global first `limit` that falls in
      // the batch, so the in-order fold can truncate without losing
      // any of them.
      std::vector<Entry> entries;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool, control,
          [&](int64_t first, int64_t shard, const MatchBinding* begin,
              const MatchBinding* end) {
            Entry e;
            e.first = first;
            e.shard = shard;
            e.len = end - begin;
            InstanceVisitor visitor;  // stays null when limit == 0
            if (limit != 0) {
              visitor = [&e, limit](const InstanceView& view) {
                if (limit < 0 ||
                    static_cast<int64_t>(e.collected.size()) < limit) {
                  e.collected.push_back(view.Materialize());
                }
                return true;
              };
            }
            e.stats = EnumerateRun(enumerator, begin, end, visitor, control);
            std::lock_guard<std::mutex> lock(mu);
            entries.push_back(std::move(e));
          });
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.first < b.first;
                });
      int64_t expected = 0;
      int64_t matches_done = 0;
      for (Entry& e : entries) {
        if (control != nullptr &&
            (e.first != expected || e.shard > stream.stopped_shard_min)) {
          break;
        }
        result->stats.MergeFrom(e.stats);
        matches_done += e.stats.num_structural_matches;
        for (MotifInstance& instance : e.collected) {
          if (limit >= 0 &&
              static_cast<int64_t>(result->instances.size()) >= limit) {
            break;
          }
          result->instances.push_back(std::move(instance));
        }
        if (control != nullptr && e.stats.num_structural_matches != e.len) {
          break;
        }
        expected = e.first + e.len;
      }
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      if (control != nullptr) {
        result->termination = control->Finish(matches_done);
      }
      return;
    }
    case QueryMode::kCount: {
      SharedWindowCache window_cache(options.delta);
      AttachWindowCache(&window_cache, control, options);
      InstanceCounter counter(graph_, motif, options.delta, options.phi,
                              &window_cache);
      counter.set_query_control(control);
      std::mutex mu;
      struct Entry {
        int64_t first = 0;
        int64_t shard = 0;
        int64_t len = 0;
        InstanceCounter::Result counts;
        double seconds = 0.0;
      };
      std::vector<Entry> entries;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool, control,
          [&](int64_t first, int64_t shard, const MatchBinding* begin,
              const MatchBinding* end) {
            Entry e;
            e.first = first;
            e.shard = shard;
            e.len = end - begin;
            e.counts = CountRun(counter, begin, end, control, &e.seconds);
            std::lock_guard<std::mutex> lock(mu);
            entries.push_back(std::move(e));
          });
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.first < b.first;
                });
      int64_t expected = 0;
      int64_t matches_done = 0;
      for (const Entry& e : entries) {
        if (control != nullptr &&
            (e.first != expected || e.shard > stream.stopped_shard_min)) {
          break;
        }
        AccumulateCounts(e.counts, e.seconds, result);
        matches_done += e.counts.num_structural_matches;
        if (control != nullptr && e.counts.num_structural_matches != e.len) {
          break;
        }
        expected = e.first + e.len;
      }
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      if (control != nullptr) {
        result->termination = control->Finish(matches_done);
      }
      return;
    }
    case QueryMode::kTopK: {
      SharedWindowCache window_cache(options.delta);
      AttachWindowCache(&window_cache, control, options);
      if (control == nullptr) {
        SharedFlowThreshold shared(options.k);
        EnumerationOptions eopts = ToEnumerationOptions(options, control);
        eopts.dynamic_min_flow_exclusive = [&shared]() {
          return shared.ExclusiveBound();
        };
        eopts.shared_window_cache = &window_cache;
        const FlowMotifEnumerator enumerator(graph_, motif, eopts);
        TopKCollector global(options.k);
        std::mutex mu;
        const StreamStats stream = StreamTwoPhase(
            motif, options, pool, control,
            [&](int64_t first, int64_t, const MatchBinding* begin,
                const MatchBinding* end) {
              ProcessTopKRun(enumerator, begin, end, first, options.k,
                             &shared, &global, &result->stats, &mu);
            });
        result->stats.phase1_seconds = stream.p1_cpu_seconds;
        result->num_batches = stream.num_batches;
        result->topk = global.Drain();
        FinalizeTopKStats(&result->stats, result->topk.size());
        return;
      }
      // Control active: batch-local thresholds/collectors
      // (TopKRunLocal) so the prefix fold is exact — see RunTopK.
      struct Entry {
        int64_t first = 0;
        int64_t shard = 0;
        int64_t len = 0;
        std::unique_ptr<TopKCollector> local;
        EnumerationResult stats;
      };
      std::vector<Entry> entries;
      std::mutex mu;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool, control,
          [&](int64_t first, int64_t shard, const MatchBinding* begin,
              const MatchBinding* end) {
            Entry e;
            e.first = first;
            e.shard = shard;
            e.len = end - begin;
            e.local = std::make_unique<TopKCollector>(options.k);
            e.stats = TopKRunLocal(graph_, motif, options, &window_cache,
                                   begin, end, first, control, e.local.get());
            std::lock_guard<std::mutex> lock(mu);
            entries.push_back(std::move(e));
          });
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.first < b.first;
                });
      TopKCollector global(options.k);
      int64_t expected = 0;
      int64_t matches_done = 0;
      for (Entry& e : entries) {
        if (e.first != expected || e.shard > stream.stopped_shard_min) break;
        global.MergeFrom(std::move(*e.local));
        result->stats.MergeFrom(e.stats);
        matches_done += e.stats.num_structural_matches;
        if (e.stats.num_structural_matches != e.len) break;
        expected = e.first + e.len;
      }
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      result->topk = global.Drain();
      FinalizeTopKStats(&result->stats, result->topk.size());
      result->termination = control->Finish(matches_done);
      return;
    }
    case QueryMode::kTop1: {
      SharedWindowCache window_cache(options.delta);
      AttachWindowCache(&window_cache, control, options);
      MaxFlowDpSearcher searcher(graph_, motif, options.delta,
                                 &window_cache);
      searcher.set_query_control(control);
      std::mutex mu;
      struct Entry {
        int64_t first = 0;
        int64_t shard = 0;
        int64_t len = 0;
        MaxFlowDpSearcher::Result out;
      };
      std::vector<Entry> entries;
      DpScratchPool scratch_pool;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool, control,
          [&](int64_t first, int64_t shard, const MatchBinding* begin,
              const MatchBinding* end) {
            std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
                scratch_pool.Acquire();
            Entry e;
            e.first = first;
            e.shard = shard;
            e.len = end - begin;
            e.out = searcher.RunOnMatches(begin, end, scratch.get(), control);
            scratch_pool.Release(std::move(scratch));
            std::lock_guard<std::mutex> lock(mu);
            entries.push_back(std::move(e));
          });
      // Restore serial batch order before folding so the "earliest
      // match wins flow ties" rule sees batches in match order.
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.first < b.first;
                });
      std::vector<MaxFlowDpSearcher::Result> ordered;
      ordered.reserve(entries.size());
      int64_t expected = 0;
      int64_t matches_done = 0;
      for (Entry& e : entries) {
        if (control != nullptr &&
            (e.first != expected || e.shard > stream.stopped_shard_min)) {
          break;
        }
        matches_done += e.out.matches_processed;
        const bool complete = e.out.matches_processed == e.len;
        ordered.push_back(std::move(e.out));
        if (control != nullptr && !complete) break;
        expected = e.first + e.len;
      }
      MaxFlowDpSearcher::Result best = MergeTop1Outputs(&ordered);
      result->stats.num_structural_matches =
          control != nullptr ? matches_done : stream.num_matches;
      result->stats.num_windows_processed = best.num_windows;
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->stats.phase2_seconds = best.seconds;
      result->num_batches = stream.num_batches;
      if (best.found) result->stats.num_instances = 1;
      result->top1 = std::move(best);
      if (control != nullptr) {
        result->termination = control->Finish(matches_done);
      }
      return;
    }
    case QueryMode::kSignificance:
      FLOWMOTIF_CHECK(false) << "kSignificance does not stream";
      return;
  }
}

std::unique_ptr<StreamingMotifMonitor> QueryEngine::OpenStream(
    const Motif& motif, const StreamOptions& options) const {
  // Flatten the immutable graph back into its multigraph form and seed
  // a fresh log with it: TimeSeriesGraph::Build on this multigraph
  // reproduces every series byte for byte (series are sorted by the
  // deterministic (t, f) order), so the monitor's epoch 0 matches the
  // engine's graph exactly.
  InteractionGraph seed;
  seed.EnsureVertices(graph_.num_vertices());
  for (const TimeSeriesGraph::PairEdge& pair : graph_.pairs()) {
    for (size_t i = 0; i < pair.series.size(); ++i) {
      const Interaction x = pair.series.at(i);
      const Status status = seed.AddEdge(pair.src, pair.dst, x.t, x.f);
      FLOWMOTIF_CHECK(status.ok()) << status;
    }
  }
  return std::make_unique<StreamingMotifMonitor>(motif, options, seed);
}

void QueryEngine::RunSignificance(const Motif& motif,
                                  const QueryOptions& options,
                                  ThreadPool* pool, QueryControl* control,
                                  QueryResult* result) const {
  // num_random_graphs > 0 was validated at the engine entry point.
  SignificanceAnalyzer::Options sopts;
  sopts.num_random_graphs = options.num_random_graphs;
  sopts.seed = options.seed;
  sopts.delta = options.delta;
  sopts.phi = options.phi;
  sopts.reuse_matches = true;
  sopts.skeleton_replay = options.skeleton_replay;
  sopts.pool = pool;
  sopts.control = control;
  // Unlike the other modes, the per-query window cache is owned by the
  // analyzer, not created here: the analyzer's cache is cross-graph
  // (keyed on timestamp-storage identity), so the window lists it
  // builds serve the real graph and every flow-permutation view of the
  // N+1-graph ensemble — one cache per Analyze, warm across the wave of
  // permuted counts for any motif shape.
  const SignificanceAnalyzer analyzer(graph_, sopts);
  result->significance = analyzer.Analyze(motif);
  result->stats.num_instances = result->significance.real_count;
  result->termination = result->significance.termination;
}

}  // namespace flowmotif
