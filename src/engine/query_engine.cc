#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "core/counter.h"
#include "core/skeleton.h"
#include "core/window_cursor.h"
#include "engine/batching.h"
#include "util/logging.h"
#include "util/timer.h"

namespace flowmotif {

namespace {

int ResolveThreads(const QueryOptions& options) {
  FLOWMOTIF_CHECK_GE(options.num_threads, 0);
  return options.num_threads == 0 ? ThreadPool::DefaultParallelism()
                                  : options.num_threads;
}

EnumerationOptions ToEnumerationOptions(const QueryOptions& options) {
  EnumerationOptions eopts;
  eopts.delta = options.delta;
  eopts.phi = options.phi;
  eopts.strict_maximality = options.strict_maximality;
  return eopts;
}

/// P2 batch cap of the streamed path. Batches are cut per released P1
/// shard, so the usual count-derived size is unavailable; a fixed cap
/// keeps batches small enough for load balancing and is
/// timing-independent, so the batch layout is deterministic.
constexpr int64_t kStreamedBatchCap = 256;

/// The per-match bodies below are shared by the barrier and streamed
/// execution paths, so their semantics (DiscoveryRank keys, counter
/// accounting, threshold feeding) cannot silently diverge.

/// Enumerates one contiguous run of matches, streaming instances to
/// `visitor` (which may be null for counters-only).
EnumerationResult EnumerateRun(const FlowMotifEnumerator& enumerator,
                               const MatchBinding* begin,
                               const MatchBinding* end,
                               const InstanceVisitor& visitor) {
  EnumerationResult stats;
  WallTimer timer;
  for (const MatchBinding* m = begin; m < end; ++m) {
    ++stats.num_structural_matches;
    enumerator.EnumerateMatch(*m, visitor, &stats);
  }
  stats.phase2_seconds = timer.ElapsedSeconds();
  return stats;
}

/// Top-k over one contiguous run of matches whose first serial index is
/// `first_match_index`: every emission is offered to a local bounded
/// collector under its DiscoveryRank and observed by the shared
/// threshold; the local collector then folds into `global` and the
/// run's counters into `total_stats`, both under `mu` (fold order is
/// irrelevant — the bounded collector is insertion-order-independent
/// and the counters are sums).
void ProcessTopKRun(const FlowMotifEnumerator& enumerator,
                    const MatchBinding* begin, const MatchBinding* end,
                    int64_t first_match_index, int64_t k,
                    SharedFlowThreshold* shared, TopKCollector* global,
                    EnumerationResult* total_stats, std::mutex* mu) {
  TopKCollector local(k);
  int64_t m_index = first_match_index;
  EnumerationResult stats;
  WallTimer timer;
  for (const MatchBinding* m = begin; m < end; ++m, ++m_index) {
    ++stats.num_structural_matches;
    int64_t emit_index = 0;
    enumerator.EnumerateMatch(
        *m,
        [&local, shared, m_index, &emit_index](const InstanceView& view) {
          local.Offer(view.flow, DiscoveryRank{m_index, emit_index++}, view);
          shared->Observe(view.flow);
          return true;
        },
        &stats);
  }
  stats.phase2_seconds = timer.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(*mu);
  global->MergeFrom(std::move(local));
  total_stats->MergeFrom(stats);
}

/// Counts one contiguous run of matches. The run-local window MRU
/// keeps consecutive same-pair matches cheap even when the shared
/// cache declines the pair (saturation or gated-off memoization).
InstanceCounter::Result CountRun(const InstanceCounter& counter,
                                 const MatchBinding* begin,
                                 const MatchBinding* end, double* seconds) {
  InstanceCounter::Result counts;
  WallTimer timer;
  WindowListMru window_mru;
  for (const MatchBinding* m = begin; m < end; ++m) {
    ++counts.num_structural_matches;
    counts.num_instances += counter.CountMatch(*m, &counts, &window_mru);
  }
  *seconds = timer.ElapsedSeconds();
  return counts;
}

/// Folds one run's counting output into the result (all sums, so any
/// fold order reproduces the serial counters).
void AccumulateCounts(const InstanceCounter::Result& counts, double seconds,
                      QueryResult* result) {
  result->stats.num_instances += counts.num_instances;
  result->stats.num_structural_matches += counts.num_structural_matches;
  result->stats.num_windows_processed += counts.num_windows;
  result->memo_hits += counts.memo_hits;
  result->stats.phase2_seconds += seconds;
}

/// Checkout pool of DP scratches for the kTop1 paths: a P2 batch
/// borrows one for the duration of its RunOnMatches call, so a worker's
/// successive batches reuse the same timeline/table buffers instead of
/// reallocating per batch (window lists live in the per-query
/// SharedWindowCache, shared by every worker). Scratch contents never
/// influence results — only where the buffers live — so the checkout
/// order is free to vary with scheduling.
class DpScratchPool {
 public:
  std::unique_ptr<MaxFlowDpSearcher::Scratch> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
            std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<MaxFlowDpSearcher::Scratch>();
  }

  void Release(std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<MaxFlowDpSearcher::Scratch>> free_;
};

/// Folds per-batch DP incumbents, in serial batch order, with the
/// strictly-greater rule — the same rule the serial searcher applies
/// per match, so the merged winner is the serial winner (earliest batch
/// wins flow ties).
MaxFlowDpSearcher::Result MergeTop1Outputs(
    std::vector<MaxFlowDpSearcher::Result>* outputs) {
  MaxFlowDpSearcher::Result best;
  for (MaxFlowDpSearcher::Result& out : *outputs) {
    best.num_windows += out.num_windows;
    best.seconds += out.seconds;
    if (out.found && (!best.found || out.max_flow > best.max_flow)) {
      const int64_t num_windows = best.num_windows;
      const double seconds = best.seconds;
      best = std::move(out);
      best.num_windows = num_windows;
      best.seconds = seconds;
    }
  }
  return best;
}

}  // namespace

bool QueryEngine::CanStream(const QueryOptions& options) {
  switch (options.mode) {
    case QueryMode::kCount:
    case QueryMode::kTopK:
    case QueryMode::kTop1:
    case QueryMode::kEnumerate:
      // kEnumerate with a collect limit uses RunEnumerate's per-batch
      // truncation trick on the streamed batches too: batches arrive
      // keyed by their first serial match index, so the merge restores
      // serial order before truncating.
      return true;
    case QueryMode::kSignificance:
      return false;
  }
  return false;
}

QueryResult QueryEngine::Run(const Motif& motif,
                             const QueryOptions& options) const {
  WallTimer wall;
  ThreadPool pool(ResolveThreads(options));

  if (options.mode == QueryMode::kSignificance) {
    QueryResult result;
    result.mode = options.mode;
    result.threads_used = pool.num_threads();
    RunSignificance(motif, options, &pool, &result);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  if (pool.num_threads() > 1 && CanStream(options)) {
    QueryResult result;
    result.mode = options.mode;
    result.threads_used = pool.num_threads();
    RunStreamed(motif, options, &pool, &result);
    result.wall_seconds = wall.ElapsedSeconds();
    return result;
  }

  // Barrier path: materialize the full match list (serial on one
  // thread — the bit-for-bit reference — otherwise parallel over work
  // units with a deterministic merge), then dispatch P2 over it.
  WallTimer p1_timer;
  const StructuralMatcher matcher(graph_, motif);
  const std::vector<MatchBinding> matches =
      pool.num_threads() == 1 ? matcher.FindAllMatches()
                              : matcher.FindAllMatchesParallel(&pool);
  const double phase1_seconds = p1_timer.ElapsedSeconds();

  QueryResult result = Dispatch(motif, matches, options, &pool);
  result.stats.phase1_seconds = phase1_seconds;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

QueryResult QueryEngine::RunOnMatches(const Motif& motif,
                                      const std::vector<MatchBinding>& matches,
                                      const QueryOptions& options) const {
  FLOWMOTIF_CHECK(options.mode != QueryMode::kSignificance)
      << "kSignificance computes and reuses its own matches; use Run()";
  WallTimer wall;
  ThreadPool pool(ResolveThreads(options));
  QueryResult result = Dispatch(motif, matches, options, &pool);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

SweepResult QueryEngine::RunSweep(const Motif& motif, const SweepQuery& sweep,
                                  const QueryOptions& options) const {
  FLOWMOTIF_CHECK(!sweep.deltas.empty()) << "sweep needs at least one delta";
  FLOWMOTIF_CHECK(!sweep.phis.empty()) << "sweep needs at least one phi";
  WallTimer wall;
  ThreadPool pool(ResolveThreads(options));
  SweepResult result;
  result.deltas = sweep.deltas;
  result.phis = sweep.phis;
  result.counts.assign(sweep.deltas.size() * sweep.phis.size(), 0);
  result.threads_used = pool.num_threads();

  // Phase P1 once for the whole grid: structural matches depend on
  // neither delta nor phi, so per-point querying re-derives the same
  // list |grid| times.
  const StructuralMatcher matcher(graph_, motif);
  const std::vector<MatchBinding> matches =
      pool.num_threads() == 1 ? matcher.FindAllMatches()
                              : matcher.FindAllMatchesParallel(&pool);
  result.num_structural_matches = static_cast<int64_t>(matches.size());

  // Deltas are recorded largest-first regardless of the caller's grid
  // order: RecordSweepDescending makes one pass over the match list,
  // recording every delta's skeleton while each match's series are hot
  // and cascading per-match viability (no phi = 0 completion at a
  // larger delta proves the match dead for all smaller ones — windows
  // shrink monotonically with delta and raising phi only removes
  // instances). On the Fig. 9 presets the bulk of structural matches
  // are dead, so the grid's tail costs O(|viable|), not O(|matches|).
  std::vector<size_t> order(sweep.deltas.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&sweep](size_t a, size_t b) {
    return sweep.deltas[a] > sweep.deltas[b];
  });
  for (const Timestamp delta : sweep.deltas) FLOWMOTIF_CHECK_GE(delta, 0);

  std::vector<EnumerationSkeleton> skeletons;  // aligned with `order`
  if (options.skeleton_replay) {
    std::vector<Timestamp> descending(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      descending[i] = sweep.deltas[order[i]];
    }
    EnumerationSkeleton::RecordSweepDescending(
        graph_, motif, descending, matches, EnumerationSkeleton::Options(),
        &skeletons);
  }

  FlowPrefixArena arena;  // real-graph prefixes; filled once, delta-free
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t d = order[i];
    const Timestamp delta = sweep.deltas[d];
    int64_t* row = result.counts.data() + d * sweep.phis.size();
    if (options.skeleton_replay && skeletons[i].recorded()) {
      // The recorded trace is phi-free: evaluate every slice flow once,
      // then each phi is one linear DP pass over the cached flows.
      if (arena.size() == 0) arena.FillFromGraph(graph_);
      SkeletonReplayer replayer(&skeletons[i]);
      replayer.EvaluateFlows(arena);
      for (size_t p = 0; p < sweep.phis.size(); ++p) {
        row[p] = replayer.CountWithFlows(sweep.phis[p]);
      }
      ++result.num_replayed_deltas;
      continue;
    }
    // Fallback (replay disabled or this delta's recording abandoned on
    // budget): ordinary memoized counting per cell over the shared
    // match list — the per-point kCount path minus its redundant P1
    // runs.
    for (size_t p = 0; p < sweep.phis.size(); ++p) {
      QueryOptions cell = options;
      cell.mode = QueryMode::kCount;
      cell.delta = delta;
      cell.phi = sweep.phis[p];
      QueryResult cell_result;
      RunCount(motif, matches, cell, &pool, &cell_result);
      row[p] = cell_result.stats.num_instances;
      ++result.num_fallback_cells;
    }
  }
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

QueryResult QueryEngine::Dispatch(const Motif& motif,
                                  const std::vector<MatchBinding>& matches,
                                  const QueryOptions& options,
                                  ThreadPool* pool) const {
  QueryResult result;
  result.mode = options.mode;
  result.threads_used = pool->num_threads();
  switch (options.mode) {
    case QueryMode::kEnumerate:
      RunEnumerate(motif, matches, options, pool, &result);
      break;
    case QueryMode::kCount:
      RunCount(motif, matches, options, pool, &result);
      break;
    case QueryMode::kTopK:
      RunTopK(motif, matches, options, pool, &result);
      break;
    case QueryMode::kTop1:
      RunTop1(motif, matches, options, pool, &result);
      break;
    case QueryMode::kSignificance:
      FLOWMOTIF_CHECK(false) << "handled by Run()";
      break;
  }
  return result;
}

void QueryEngine::RunEnumerate(const Motif& motif,
                               const std::vector<MatchBinding>& matches,
                               const QueryOptions& options, ThreadPool* pool,
                               QueryResult* result) const {
  // One shared window cache per query: every batch of every worker
  // reads per-match window lists through it (lock-free once built).
  SharedWindowCache window_cache(options.delta);
  EnumerationOptions eopts = ToEnumerationOptions(options);
  eopts.shared_window_cache = &window_cache;
  const FlowMotifEnumerator enumerator(graph_, motif, eopts);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());
  const int64_t limit = options.collect_limit;

  struct BatchOutput {
    EnumerationResult stats;
    std::vector<MotifInstance> collected;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        InstanceVisitor visitor;
        if (limit != 0) {
          // Each batch keeps at most `limit` instances: the global first
          // `limit` (serial discovery order) are necessarily among the
          // first `limit` of their own batch, so the merge below can
          // truncate without losing any of them.
          visitor = [&out, limit](const InstanceView& view) {
            if (limit < 0 ||
                static_cast<int64_t>(out.collected.size()) < limit) {
              out.collected.push_back(view.Materialize());
            }
            return true;
          };
        }
        out.stats = EnumerateRun(enumerator, matches.data() + batch.begin,
                                 matches.data() + batch.end, visitor);
      });

  for (BatchOutput& out : outputs) {
    result->stats.MergeFrom(out.stats);
    for (MotifInstance& instance : out.collected) {
      if (limit >= 0 &&
          static_cast<int64_t>(result->instances.size()) >= limit) {
        break;
      }
      result->instances.push_back(std::move(instance));
    }
  }
}

void QueryEngine::RunCount(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options, ThreadPool* pool,
                           QueryResult* result) const {
  SharedWindowCache window_cache(options.delta);
  const InstanceCounter counter(graph_, motif, options.delta, options.phi,
                                &window_cache);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  struct BatchOutput {
    InstanceCounter::Result counts;
    double seconds = 0.0;
  };
  std::vector<BatchOutput> outputs(batches.size());

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        BatchOutput& out = outputs[static_cast<size_t>(b)];
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        out.counts = CountRun(counter, matches.data() + batch.begin,
                              matches.data() + batch.end, &out.seconds);
      });

  for (const BatchOutput& out : outputs) {
    AccumulateCounts(out.counts, out.seconds, result);
  }
}

void QueryEngine::RunTopK(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryResult* result) const {
  FLOWMOTIF_CHECK_GE(options.k, 1);
  // The shared threshold tracks the k-th best flow across *all* workers'
  // emissions (Observe), so it tightens before any single collector
  // fills and matches the serial searcher's pruning rate.
  SharedFlowThreshold shared(options.k);
  SharedWindowCache window_cache(options.delta);
  EnumerationOptions eopts = ToEnumerationOptions(options);
  eopts.dynamic_min_flow_exclusive = [&shared]() {
    return shared.ExclusiveBound();
  };
  eopts.shared_window_cache = &window_cache;
  const FlowMotifEnumerator enumerator(graph_, motif, eopts);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  // Completed batches fold into one global collector. The fold order is
  // whatever order batches finish in — harmless, because the bounded
  // collector's contents are insertion-order-independent and the
  // counters are sums.
  TopKCollector global(options.k);
  std::mutex global_mu;

  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        ProcessTopKRun(enumerator, matches.data() + batch.begin,
                       matches.data() + batch.end, batch.begin, options.k,
                       &shared, &global, &result->stats, &global_mu);
      });

  result->topk = global.Drain();
}

void QueryEngine::RunTop1(const Motif& motif,
                          const std::vector<MatchBinding>& matches,
                          const QueryOptions& options, ThreadPool* pool,
                          QueryResult* result) const {
  SharedWindowCache window_cache(options.delta);
  const MaxFlowDpSearcher searcher(graph_, motif, options.delta,
                                   &window_cache);
  const std::vector<MatchBatch> batches = PartitionMatches(
      static_cast<int64_t>(matches.size()), pool->num_threads(),
      options.batch_size);
  result->num_batches = static_cast<int64_t>(batches.size());

  std::vector<MaxFlowDpSearcher::Result> outputs(batches.size());
  DpScratchPool scratch_pool;
  pool->ParallelFor(
      static_cast<int64_t>(batches.size()), [&](int64_t b) {
        const MatchBatch& batch = batches[static_cast<size_t>(b)];
        std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
            scratch_pool.Acquire();
        outputs[static_cast<size_t>(b)] = searcher.RunOnMatches(
            matches.data() + batch.begin, matches.data() + batch.end,
            scratch.get());
        scratch_pool.Release(std::move(scratch));
      });

  MaxFlowDpSearcher::Result best = MergeTop1Outputs(&outputs);
  result->stats.num_structural_matches =
      static_cast<int64_t>(matches.size());
  result->stats.num_windows_processed = best.num_windows;
  result->stats.phase2_seconds = best.seconds;
  if (best.found) result->stats.num_instances = 1;
  result->top1 = std::move(best);
}

QueryEngine::StreamStats QueryEngine::StreamTwoPhase(
    const Motif& motif, const QueryOptions& options, ThreadPool* pool,
    const StreamBatchFn& batch_fn) const {
  const StructuralMatcher matcher(graph_, motif);
  // P1 shards: contiguous work-unit ranges, several per worker so
  // dynamic scheduling absorbs the match-density skew across origins.
  const std::vector<MatchBatch> ranges = PartitionMatches(
      matcher.NumWorkUnits(), pool->num_threads(), /*batch_size=*/0);
  StreamStats stats;
  if (ranges.empty()) return stats;
  const int64_t batch_cap =
      options.batch_size > 0 ? options.batch_size : kStreamedBatchCap;

  ShardPrefixMerger merger(static_cast<int64_t>(ranges.size()));
  // Outstanding P2 batches per shard: the last batch to finish frees
  // the shard's match buffer, so peak memory tracks the in-flight
  // window rather than the full match list. Stored before the shard's
  // batches are submitted (a batch may start on another worker
  // immediately).
  std::vector<std::atomic<int64_t>> pending_batches(ranges.size());
  std::mutex stats_mu;

  // Every task — P1 shard and P2 batch alike — goes through the one
  // pool's FIFO queue; a shard task that completes the release prefix
  // submits the P2 batches for every shard it released. Tasks never
  // block on each other, so the single Wait() below drains the whole
  // pipeline. All state outlives Wait(), so reference captures are
  // safe.
  for (size_t r = 0; r < ranges.size(); ++r) {
    pool->Submit([&, r] {
      WallTimer timer;
      std::vector<MatchBinding> shard;
      matcher.FindInUnits(ranges[r].begin, ranges[r].end,
                          [&shard](const MatchBinding& binding) {
                            shard.push_back(binding);
                            return true;
                          });
      const double p1_seconds = timer.ElapsedSeconds();
      const std::vector<ShardPrefixMerger::ReleasedShardEntry> released =
          merger.Complete(static_cast<int64_t>(r), std::move(shard));
      int64_t new_batches = 0;
      for (const ShardPrefixMerger::ReleasedShardEntry& entry : released) {
        const ShardPrefixMerger::ReleasedShard& rs = entry.released;
        const int64_t n = static_cast<int64_t>(rs.matches->size());
        const int64_t shard_batches = (n + batch_cap - 1) / batch_cap;
        if (shard_batches == 0) {
          merger.FreeShard(entry.shard);
          continue;
        }
        pending_batches[static_cast<size_t>(entry.shard)].store(
            shard_batches, std::memory_order_relaxed);
        for (int64_t b = 0; b < n; b += batch_cap) {
          const int64_t len = std::min(batch_cap, n - b);
          const MatchBinding* data = rs.matches->data() + b;
          const int64_t first = rs.first_match_index + b;
          ++new_batches;
          // Front-of-queue: P2 batches must run ahead of the still-
          // queued P1 shard tasks, or FIFO order would finish all of
          // P1 (every shard buffer live at once) before P2 starts —
          // the batch/free cadence is what bounds in-flight memory.
          pool->SubmitFront([&batch_fn, &merger, &pending_batches,
                             shard_index = entry.shard, data, len, first] {
            batch_fn(first, data, data + len);
            // acq_rel orders every batch's reads of the buffer before
            // the last decrementer's free.
            if (pending_batches[static_cast<size_t>(shard_index)].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
              merger.FreeShard(shard_index);
            }
          });
        }
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      stats.p1_cpu_seconds += p1_seconds;
      stats.num_batches += new_batches;
    });
  }
  pool->Wait();
  stats.num_matches = merger.num_released();
  return stats;
}

void QueryEngine::RunStreamed(const Motif& motif,
                              const QueryOptions& options, ThreadPool* pool,
                              QueryResult* result) const {
  switch (options.mode) {
    case QueryMode::kEnumerate: {
      SharedWindowCache window_cache(options.delta);
      EnumerationOptions eopts = ToEnumerationOptions(options);
      eopts.shared_window_cache = &window_cache;
      const FlowMotifEnumerator enumerator(graph_, motif, eopts);
      const int64_t limit = options.collect_limit;
      std::mutex mu;
      // Per-batch collection, keyed by the batch's first serial match
      // index. Batches complete (and fold) in arbitrary order; the
      // counters are sums, and the collected runs are sorted back into
      // serial order below before the global truncation — each batch
      // keeps at most `limit` instances, which necessarily include every
      // one of the global first `limit` that falls in the batch.
      std::vector<std::pair<int64_t, std::vector<MotifInstance>>> collected;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool,
          [&](int64_t first, const MatchBinding* begin,
              const MatchBinding* end) {
            std::vector<MotifInstance> local_collected;
            InstanceVisitor visitor;  // stays null when limit == 0
            if (limit != 0) {
              visitor = [&local_collected, limit](const InstanceView& view) {
                if (limit < 0 ||
                    static_cast<int64_t>(local_collected.size()) < limit) {
                  local_collected.push_back(view.Materialize());
                }
                return true;
              };
            }
            const EnumerationResult local =
                EnumerateRun(enumerator, begin, end, visitor);
            std::lock_guard<std::mutex> lock(mu);
            result->stats.MergeFrom(local);
            if (!local_collected.empty()) {
              collected.emplace_back(first, std::move(local_collected));
            }
          });
      std::sort(collected.begin(), collected.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [first, run] : collected) {
        for (MotifInstance& instance : run) {
          if (limit >= 0 &&
              static_cast<int64_t>(result->instances.size()) >= limit) {
            break;
          }
          result->instances.push_back(std::move(instance));
        }
      }
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      return;
    }
    case QueryMode::kCount: {
      SharedWindowCache window_cache(options.delta);
      const InstanceCounter counter(graph_, motif, options.delta,
                                    options.phi, &window_cache);
      std::mutex mu;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool,
          [&](int64_t, const MatchBinding* begin, const MatchBinding* end) {
            double seconds = 0.0;
            const InstanceCounter::Result counts =
                CountRun(counter, begin, end, &seconds);
            std::lock_guard<std::mutex> lock(mu);
            AccumulateCounts(counts, seconds, result);
          });
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      return;
    }
    case QueryMode::kTopK: {
      FLOWMOTIF_CHECK_GE(options.k, 1);
      SharedFlowThreshold shared(options.k);
      SharedWindowCache window_cache(options.delta);
      EnumerationOptions eopts = ToEnumerationOptions(options);
      eopts.dynamic_min_flow_exclusive = [&shared]() {
        return shared.ExclusiveBound();
      };
      eopts.shared_window_cache = &window_cache;
      const FlowMotifEnumerator enumerator(graph_, motif, eopts);
      TopKCollector global(options.k);
      std::mutex mu;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool,
          [&](int64_t first, const MatchBinding* begin,
              const MatchBinding* end) {
            ProcessTopKRun(enumerator, begin, end, first, options.k,
                           &shared, &global, &result->stats, &mu);
          });
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->num_batches = stream.num_batches;
      result->topk = global.Drain();
      return;
    }
    case QueryMode::kTop1: {
      SharedWindowCache window_cache(options.delta);
      const MaxFlowDpSearcher searcher(graph_, motif, options.delta,
                                       &window_cache);
      std::mutex mu;
      std::vector<std::pair<int64_t, MaxFlowDpSearcher::Result>> outputs;
      DpScratchPool scratch_pool;
      const StreamStats stream = StreamTwoPhase(
          motif, options, pool,
          [&](int64_t first, const MatchBinding* begin,
              const MatchBinding* end) {
            std::unique_ptr<MaxFlowDpSearcher::Scratch> scratch =
                scratch_pool.Acquire();
            MaxFlowDpSearcher::Result out =
                searcher.RunOnMatches(begin, end, scratch.get());
            scratch_pool.Release(std::move(scratch));
            std::lock_guard<std::mutex> lock(mu);
            outputs.emplace_back(first, std::move(out));
          });
      // Restore serial batch order before folding so the "earliest
      // match wins flow ties" rule sees batches in match order.
      std::sort(outputs.begin(), outputs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<MaxFlowDpSearcher::Result> ordered;
      ordered.reserve(outputs.size());
      for (auto& entry : outputs) ordered.push_back(std::move(entry.second));
      MaxFlowDpSearcher::Result best = MergeTop1Outputs(&ordered);
      result->stats.num_structural_matches = stream.num_matches;
      result->stats.num_windows_processed = best.num_windows;
      result->stats.phase1_seconds = stream.p1_cpu_seconds;
      result->stats.phase2_seconds = best.seconds;
      result->num_batches = stream.num_batches;
      if (best.found) result->stats.num_instances = 1;
      result->top1 = std::move(best);
      return;
    }
    case QueryMode::kSignificance:
      FLOWMOTIF_CHECK(false) << "kSignificance does not stream";
      return;
  }
}

std::unique_ptr<StreamingMotifMonitor> QueryEngine::OpenStream(
    const Motif& motif, const StreamOptions& options) const {
  // Flatten the immutable graph back into its multigraph form and seed
  // a fresh log with it: TimeSeriesGraph::Build on this multigraph
  // reproduces every series byte for byte (series are sorted by the
  // deterministic (t, f) order), so the monitor's epoch 0 matches the
  // engine's graph exactly.
  InteractionGraph seed;
  seed.EnsureVertices(graph_.num_vertices());
  for (const TimeSeriesGraph::PairEdge& pair : graph_.pairs()) {
    for (size_t i = 0; i < pair.series.size(); ++i) {
      const Interaction x = pair.series.at(i);
      const Status status = seed.AddEdge(pair.src, pair.dst, x.t, x.f);
      FLOWMOTIF_CHECK(status.ok()) << status;
    }
  }
  return std::make_unique<StreamingMotifMonitor>(motif, options, seed);
}

void QueryEngine::RunSignificance(const Motif& motif,
                                  const QueryOptions& options,
                                  ThreadPool* pool,
                                  QueryResult* result) const {
  FLOWMOTIF_CHECK_GT(options.num_random_graphs, 0);
  SignificanceAnalyzer::Options sopts;
  sopts.num_random_graphs = options.num_random_graphs;
  sopts.seed = options.seed;
  sopts.delta = options.delta;
  sopts.phi = options.phi;
  sopts.reuse_matches = true;
  sopts.skeleton_replay = options.skeleton_replay;
  sopts.pool = pool;
  // Unlike the other modes, the per-query window cache is owned by the
  // analyzer, not created here: the analyzer's cache is cross-graph
  // (keyed on timestamp-storage identity), so the window lists it
  // builds serve the real graph and every flow-permutation view of the
  // N+1-graph ensemble — one cache per Analyze, warm across the wave of
  // permuted counts for any motif shape.
  const SignificanceAnalyzer analyzer(graph_, sopts);
  result->significance = analyzer.Analyze(motif);
  result->stats.num_instances = result->significance.real_count;
}

}  // namespace flowmotif
