#ifndef FLOWMOTIF_ENGINE_QUERY_ENGINE_H_
#define FLOWMOTIF_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/dp.h"
#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "core/significance.h"
#include "core/structural_match.h"
#include "core/topk.h"
#include "engine/query_options.h"
#include "graph/time_series_graph.h"
#include "stream/streaming_monitor.h"
#include "util/thread_pool.h"

namespace flowmotif {

/// Unified result of a QueryEngine run. `stats` carries the enumeration
/// counters every mode reports (instances, matches, windows, prunes);
/// the mode-specific payload lives in the field named after the mode.
struct QueryResult {
  QueryMode mode = QueryMode::kEnumerate;

  /// Unified counters. Timer semantics differ by execution path:
  /// phase2_seconds is aggregate CPU seconds across workers in every
  /// parallel run (see EnumerationResult::MergeFrom); phase1_seconds is
  /// the wall time of the P1 stage on the barrier path (serial or
  /// parallel) but aggregate CPU seconds of the P1 shard tasks on the
  /// streamed path, where the phases overlap and no per-phase wall time
  /// exists — so do not compare phase1_seconds across paths.
  /// wall_seconds below is always the end-to-end time. In kTopK mode
  /// num_instances is the number of returned entries (== topk.size())
  /// and num_phi_prunes is 0: the floating threshold makes the raw
  /// survivor/prune counts depend on how fast it tightened, so that
  /// execution-dependent activity is quarantined in num_pruning_probes
  /// and every other stat is deterministic at any thread count — under
  /// a hard stop, exact over the canonical match prefix. num_batches
  /// and num_pruning_probes may differ between the streamed and barrier
  /// execution paths and across thread counts (batch boundaries are an
  /// execution detail).
  EnumerationResult stats;

  /// kCount: memoization hits of the counting recursion.
  int64_t memo_hits = 0;

  /// kEnumerate: up to QueryOptions::collect_limit materialized
  /// instances, in serial discovery order for every thread count.
  std::vector<MotifInstance> instances;

  /// kTopK: entries sorted by decreasing flow, discovery order breaking
  /// ties. Byte-identical for every thread count.
  std::vector<TopKEntry> topk;

  /// kTop1: the DP searcher's best instance (earliest structural match
  /// wins flow ties, as in the serial searcher).
  MaxFlowDpSearcher::Result top1;

  /// kSignificance: the per-motif report.
  SignificanceAnalyzer::MotifReport significance;

  /// Execution footprint.
  int threads_used = 1;
  int64_t num_batches = 0;
  double wall_seconds = 0.0;

  /// Lifecycle outcome (DESIGN.md Sec. 10). When not complete(), the
  /// payload covers exactly the first `termination.work_completed`
  /// structural matches in canonical (serial discovery) order — a
  /// deterministic prefix for a given stop point, never a torn merge —
  /// except after kError (a worker task threw, or the options failed
  /// validation), where partial results are best-effort.
  Termination termination;
};

/// Result of QueryEngine::RunSweep: one instance count per cell of the
/// SweepQuery grid, row-major over (delta, phi). Cell (d, p) holds
/// exactly the num_instances a kCount Run at (deltas[d], phis[p]) would
/// report — the sweep equivalence tests lock this in.
struct SweepResult {
  std::vector<Timestamp> deltas;
  std::vector<Flow> phis;
  std::vector<int64_t> counts;  // counts[d * phis.size() + p]

  int64_t count(size_t d, size_t p) const {
    return counts[d * phis.size() + p];
  }

  /// Execution footprint: matches are computed once for the grid;
  /// each delta is either answered by one recording + |phis| replays
  /// (num_replayed_deltas) or by per-cell memoized counting
  /// (num_fallback_cells).
  int64_t num_structural_matches = 0;
  int64_t num_replayed_deltas = 0;
  int64_t num_fallback_cells = 0;
  int threads_used = 1;
  double wall_seconds = 0.0;

  /// Lifecycle outcome. When not complete(), only cells with
  /// cell_valid[i] != 0 were computed (work_completed counts them);
  /// the other counts entries are meaningless zeros. A budget-truncated
  /// match list (WorkBudget::max_matches) marks cells valid over that
  /// match prefix and reports kBudgetExceeded.
  Termination termination;
  std::vector<uint8_t> cell_valid;  // aligned with counts; 1 = computed
};

/// The single entry point for flow motif queries: one facade over the
/// four paper query modes (threshold enumeration, top-k, top-1 DP,
/// significance) plus construction-free counting, configured by one
/// QueryOptions struct.
///
/// Execution is the paper's two-phase algorithm, parallel in both
/// phases. Phase P1 decomposes into StructuralMatcher work units
/// (origins / first-edge images) whose per-shard match buffers merge in
/// canonical unit order; phase P2 partitions the match list into
/// contiguous batches. Both run on one worker pool. When no caller
/// needs the full match list materialized (kCount, kTopK, kTop1, and
/// kEnumerate with collect_limit == 0), released P1 shards stream
/// directly into P2 batches with no barrier between the phases. Every
/// worker fills thread-local state (an EnumerationResult, a bounded
/// top-k collector, a DP incumbent) which is merged deterministically
/// (by serial match order where order matters), so results are
/// byte-identical across thread counts — the parallel-vs-serial
/// equivalence property test locks this in.
///
/// Thread-compatible: one engine may serve concurrent Run calls, since
/// all mutable state is per-call. The engine itself is a stateless
/// view over the graph reference and so is cheap to construct — the
/// serving layer (DESIGN.md Sec. 11) builds one per admitted request
/// on the stack, bound to the epoch snapshot captured at admission, so
/// queries keep running against their snapshot while SealEpoch
/// publishes new ones. Per-query window caches fall through to the
/// cross-query tier named by QueryOptions::shared_cache_tier; when
/// that tier is generational, the per-query cache holds a TierLease
/// for its lifetime, so every pointer the tier served this query
/// outlives any concurrent rotation or post-seal sweep.
class QueryEngine {
 public:
  explicit QueryEngine(const TimeSeriesGraph& graph) : graph_(graph) {}
  // The engine keeps a reference to the graph: temporaries would dangle.
  explicit QueryEngine(TimeSeriesGraph&&) = delete;

  /// Full two-phase run of the selected mode.
  QueryResult Run(const Motif& motif, const QueryOptions& options) const;

  /// Phase P2 only, over externally computed structural matches (used
  /// by benchmarks that isolate P2). Not available for kSignificance,
  /// which owns its match reuse internally.
  QueryResult RunOnMatches(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options) const;

  /// Evaluates a whole delta x phi count grid in one pass (Fig. 9/10
  /// curves): phase P1 once, one skeleton recording per delta, one
  /// replay per phi — instead of one full two-phase query per cell.
  /// Cells equal per-point kCount runs byte-for-byte. QueryOptions
  /// supplies execution knobs (num_threads, skeleton_replay,
  /// batch_size); its mode/delta/phi fields are ignored.
  SweepResult RunSweep(const Motif& motif, const SweepQuery& sweep,
                       const QueryOptions& options) const;

  /// Opens a continuous query seeded with this engine's graph: a
  /// StreamingMotifMonitor (stream/streaming_monitor.h) whose epoch 0
  /// answers exactly as this engine would, and which stays batch-
  /// equivalent at every later SealEpoch. The monitor owns an
  /// independent EpochLog built from a copy of the graph's interactions;
  /// it does not alias the engine's graph, so the engine and the stream
  /// may be used (and dropped) independently.
  std::unique_ptr<StreamingMotifMonitor> OpenStream(
      const Motif& motif, const StreamOptions& options) const;

  const TimeSeriesGraph& graph() const { return graph_; }

 private:
  /// True when the mode can run with P1 shards streamed straight into
  /// P2 batches (nothing forces the full match list to exist at once).
  static bool CanStream(const QueryOptions& options);

  /// Phase P1 under an optional lifecycle control (may be null; null =
  /// the unchanged default paths). With WorkBudget::max_matches set the
  /// scan runs serially and truncates at exactly that many matches (a
  /// soft kBudgetExceeded: P2 still runs over the prefix); otherwise
  /// work units are scanned in parallel with a per-unit check (site
  /// "p1.unit") and a stop yields the canonical prefix — every fully
  /// scanned leading unit range plus the stopped range's leading units.
  std::vector<MatchBinding> FindMatchesControlled(const Motif& motif,
                                                  ThreadPool* pool,
                                                  QueryControl* control) const;

  void Dispatch(const Motif& motif, const std::vector<MatchBinding>& matches,
                const QueryOptions& options, ThreadPool* pool,
                QueryControl* control, QueryResult* result) const;

  /// The streamed two-phase executor: P1 work-unit shard tasks and the
  /// P2 match-batch tasks they spawn share `pool`; `batch_fn` is
  /// invoked concurrently for disjoint contiguous match runs, with
  /// `first_match_index` the serial-order index of `*begin` (the
  /// DiscoveryRank key) and `shard` the P1 shard the run came from.
  /// Under a control, a shard whose P1 scan stops contributes its
  /// partial (canonically leading) matches and records itself in
  /// stopped_shard_min; match runs from later shards are not part of
  /// any canonical prefix and must be discarded by the caller's fold.
  struct StreamStats {
    double p1_cpu_seconds = 0.0;  // aggregate across P1 shard tasks
    int64_t num_matches = 0;
    int64_t num_batches = 0;
    /// Smallest shard index whose P1 scan was stopped by the control;
    /// int64_t max when none was.
    int64_t stopped_shard_min = 0;
  };
  using StreamBatchFn = std::function<void(
      int64_t first_match_index, int64_t shard, const MatchBinding* begin,
      const MatchBinding* end)>;
  StreamStats StreamTwoPhase(const Motif& motif,
                             const QueryOptions& options, ThreadPool* pool,
                             QueryControl* control,
                             const StreamBatchFn& batch_fn) const;

  void RunStreamed(const Motif& motif, const QueryOptions& options,
                   ThreadPool* pool, QueryControl* control,
                   QueryResult* result) const;

  void RunEnumerate(const Motif& motif,
                    const std::vector<MatchBinding>& matches,
                    const QueryOptions& options, ThreadPool* pool,
                    QueryControl* control, QueryResult* result) const;
  void RunCount(const Motif& motif, const std::vector<MatchBinding>& matches,
                const QueryOptions& options, ThreadPool* pool,
                QueryControl* control, QueryResult* result) const;
  void RunTopK(const Motif& motif, const std::vector<MatchBinding>& matches,
               const QueryOptions& options, ThreadPool* pool,
               QueryControl* control, QueryResult* result) const;
  void RunTop1(const Motif& motif, const std::vector<MatchBinding>& matches,
               const QueryOptions& options, ThreadPool* pool,
               QueryControl* control, QueryResult* result) const;
  void RunSignificance(const Motif& motif, const QueryOptions& options,
                       ThreadPool* pool, QueryControl* control,
                       QueryResult* result) const;

  const TimeSeriesGraph& graph_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_ENGINE_QUERY_ENGINE_H_
