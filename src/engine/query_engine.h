#ifndef FLOWMOTIF_ENGINE_QUERY_ENGINE_H_
#define FLOWMOTIF_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/dp.h"
#include "core/enumerator.h"
#include "core/instance.h"
#include "core/motif.h"
#include "core/significance.h"
#include "core/structural_match.h"
#include "core/topk.h"
#include "engine/query_options.h"
#include "graph/time_series_graph.h"
#include "util/thread_pool.h"

namespace flowmotif {

/// Unified result of a QueryEngine run. `stats` carries the enumeration
/// counters every mode reports (instances, matches, windows, prunes);
/// the mode-specific payload lives in the field named after the mode.
struct QueryResult {
  QueryMode mode = QueryMode::kEnumerate;

  /// Unified counters. In parallel runs phase1/phase2_seconds are
  /// aggregate CPU seconds (see EnumerationResult::MergeFrom);
  /// wall_seconds below is the end-to-end time. In kTopK mode the
  /// pruning counters (num_phi_prunes, num_instances surviving the
  /// floating threshold) depend on how fast the threshold tightened and
  /// are the only fields that may differ across thread counts — the
  /// result entries never do.
  EnumerationResult stats;

  /// kCount: memoization hits of the counting recursion.
  int64_t memo_hits = 0;

  /// kEnumerate: up to QueryOptions::collect_limit materialized
  /// instances, in serial discovery order for every thread count.
  std::vector<MotifInstance> instances;

  /// kTopK: entries sorted by decreasing flow, discovery order breaking
  /// ties. Byte-identical for every thread count.
  std::vector<TopKEntry> topk;

  /// kTop1: the DP searcher's best instance (earliest structural match
  /// wins flow ties, as in the serial searcher).
  MaxFlowDpSearcher::Result top1;

  /// kSignificance: the per-motif report.
  SignificanceAnalyzer::MotifReport significance;

  /// Execution footprint.
  int threads_used = 1;
  int64_t num_batches = 0;
  double wall_seconds = 0.0;
};

/// The single entry point for flow motif queries: one facade over the
/// four paper query modes (threshold enumeration, top-k, top-1 DP,
/// significance) plus construction-free counting, configured by one
/// QueryOptions struct.
///
/// Execution is the paper's two-phase algorithm. Phase P1 (structural
/// matching) runs once on the calling thread; phase P2 is partitioned
/// into contiguous match batches executed on a worker pool. Every
/// worker fills thread-local state (an EnumerationResult, a bounded
/// top-k collector, a DP incumbent) which is merged in deterministic
/// batch order, so results are byte-identical across thread counts —
/// the parallel-vs-serial equivalence property test locks this in.
///
/// Thread-compatible: one engine may serve concurrent Run calls, since
/// all mutable state is per-call.
class QueryEngine {
 public:
  explicit QueryEngine(const TimeSeriesGraph& graph) : graph_(graph) {}
  // The engine keeps a reference to the graph: temporaries would dangle.
  explicit QueryEngine(TimeSeriesGraph&&) = delete;

  /// Full two-phase run of the selected mode.
  QueryResult Run(const Motif& motif, const QueryOptions& options) const;

  /// Phase P2 only, over externally computed structural matches (used
  /// by benchmarks that isolate P2). Not available for kSignificance,
  /// which owns its match reuse internally.
  QueryResult RunOnMatches(const Motif& motif,
                           const std::vector<MatchBinding>& matches,
                           const QueryOptions& options) const;

  const TimeSeriesGraph& graph() const { return graph_; }

 private:
  QueryResult Dispatch(const Motif& motif,
                       const std::vector<MatchBinding>& matches,
                       const QueryOptions& options, ThreadPool* pool) const;

  void RunEnumerate(const Motif& motif,
                    const std::vector<MatchBinding>& matches,
                    const QueryOptions& options, ThreadPool* pool,
                    QueryResult* result) const;
  void RunCount(const Motif& motif, const std::vector<MatchBinding>& matches,
                const QueryOptions& options, ThreadPool* pool,
                QueryResult* result) const;
  void RunTopK(const Motif& motif, const std::vector<MatchBinding>& matches,
               const QueryOptions& options, ThreadPool* pool,
               QueryResult* result) const;
  void RunTop1(const Motif& motif, const std::vector<MatchBinding>& matches,
               const QueryOptions& options, ThreadPool* pool,
               QueryResult* result) const;
  void RunSignificance(const Motif& motif, const QueryOptions& options,
                       ThreadPool* pool, QueryResult* result) const;

  const TimeSeriesGraph& graph_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_ENGINE_QUERY_ENGINE_H_
