#include "engine/batching.h"

#include <utility>

#include "util/logging.h"

namespace flowmotif {

ShardPrefixMerger::ShardPrefixMerger(int64_t num_shards)
    : shards_(static_cast<size_t>(num_shards)),
      complete_(static_cast<size_t>(num_shards), false) {
  FLOWMOTIF_CHECK_GE(num_shards, 0);
}

std::vector<ShardPrefixMerger::ReleasedShardEntry> ShardPrefixMerger::Complete(
    int64_t shard, std::vector<MatchBinding> matches) {
  std::lock_guard<std::mutex> lock(mu_);
  FLOWMOTIF_CHECK_GE(shard, 0);
  FLOWMOTIF_CHECK_LT(shard, static_cast<int64_t>(shards_.size()));
  FLOWMOTIF_CHECK(!complete_[static_cast<size_t>(shard)])
      << "shard " << shard << " completed twice";
  shards_[static_cast<size_t>(shard)] = std::move(matches);
  complete_[static_cast<size_t>(shard)] = true;

  std::vector<ReleasedShardEntry> released;
  while (next_unreleased_ < static_cast<int64_t>(shards_.size()) &&
         complete_[static_cast<size_t>(next_unreleased_)]) {
    const std::vector<MatchBinding>& buffer =
        shards_[static_cast<size_t>(next_unreleased_)];
    released.push_back({next_unreleased_, {released_matches_, &buffer}});
    released_matches_ += static_cast<int64_t>(buffer.size());
    ++next_unreleased_;
  }
  return released;
}

void ShardPrefixMerger::FreeShard(int64_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  FLOWMOTIF_CHECK_GE(shard, 0);
  FLOWMOTIF_CHECK_LT(shard, static_cast<int64_t>(shards_.size()));
  // Element addresses in shards_ stay stable; only this slot's buffer
  // is reclaimed.
  std::vector<MatchBinding>().swap(shards_[static_cast<size_t>(shard)]);
}

int64_t ShardPrefixMerger::num_released() const {
  std::lock_guard<std::mutex> lock(mu_);
  return released_matches_;
}

}  // namespace flowmotif
