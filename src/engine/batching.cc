#include "engine/batching.h"

#include <algorithm>

#include "util/logging.h"

namespace flowmotif {

namespace {
/// Target batches per thread when the size is derived: enough slack for
/// dynamic load balancing, few enough that per-batch bookkeeping (a
/// local result, a local top-k collector) stays negligible.
constexpr int64_t kBatchesPerThread = 8;
}  // namespace

std::vector<MatchBatch> PartitionMatches(int64_t num_matches,
                                         int num_threads,
                                         int64_t batch_size) {
  FLOWMOTIF_CHECK_GE(num_matches, 0);
  FLOWMOTIF_CHECK_GE(num_threads, 1);
  FLOWMOTIF_CHECK_GE(batch_size, 0);
  std::vector<MatchBatch> batches;
  if (num_matches == 0) return batches;
  if (num_threads == 1 && batch_size == 0) {
    batches.push_back({0, num_matches});
    return batches;
  }
  if (batch_size == 0) {
    const int64_t target = static_cast<int64_t>(num_threads) *
                           kBatchesPerThread;
    batch_size = std::max<int64_t>(1, (num_matches + target - 1) / target);
  }
  batches.reserve(
      static_cast<size_t>((num_matches + batch_size - 1) / batch_size));
  for (int64_t begin = 0; begin < num_matches; begin += batch_size) {
    batches.push_back({begin, std::min(begin + batch_size, num_matches)});
  }
  return batches;
}

}  // namespace flowmotif
