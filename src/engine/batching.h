#ifndef FLOWMOTIF_ENGINE_BATCHING_H_
#define FLOWMOTIF_ENGINE_BATCHING_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/motif.h"
#include "util/partition.h"

namespace flowmotif {

/// A contiguous range [begin, end) of structural-match indices processed
/// as one unit by a worker thread.
using MatchBatch = IndexRange;

/// Partitions [0, num_matches) into contiguous batches — the engine's
/// name for util/partition's shared chunking heuristic. With
/// `batch_size` == 0 the size is derived so each thread gets several
/// batches (dynamic scheduling then absorbs matches of very different
/// cost — phase-P2 work per match varies by orders of magnitude).
/// Batches are returned in index order; merging per-batch outputs in
/// that order reproduces serial processing order.
inline std::vector<MatchBatch> PartitionMatches(int64_t num_matches,
                                                int num_threads,
                                                int64_t batch_size = 0) {
  return PartitionIndexSpace(num_matches, num_threads, batch_size);
}

/// Coordinates the deterministic hand-off from parallel phase P1 to
/// phase P2 in the engine's streamed execution path. P1 shard tasks
/// (contiguous ranges of structural-match work units) complete in
/// arbitrary order; a shard's matches are released only once every
/// earlier shard has completed, so released matches always form a
/// contiguous prefix of the serial P1 order and each match's global
/// index — the DiscoveryRank key phase P2 needs — is known at release
/// time. Thread-safe; a released buffer stays valid until FreeShard
/// reclaims it (or the merger dies), so streamed runs free each
/// shard's matches as soon as its last P2 batch retires.
class ShardPrefixMerger {
 public:
  struct ReleasedShard {
    /// Global (serial-order) index of the shard's first match.
    int64_t first_match_index = 0;
    /// The shard's matches, in serial order. Owned by the merger.
    const std::vector<MatchBinding>* matches = nullptr;
  };

  explicit ShardPrefixMerger(int64_t num_shards);

  struct ReleasedShardEntry {
    int64_t shard = 0;  // pass back to FreeShard when fully consumed
    ReleasedShard released;
  };

  /// Records shard `shard` as complete with its match buffer and
  /// returns every shard this completion releases, in shard order —
  /// empty when an earlier shard is still outstanding. Each shard must
  /// complete exactly once.
  std::vector<ReleasedShardEntry> Complete(int64_t shard,
                                           std::vector<MatchBinding> matches);

  /// Frees a released shard's match buffer. Call only once no consumer
  /// still reads the buffer (the engine refcounts a shard's P2 batches
  /// and frees on the last one), so streamed runs hold just the
  /// in-flight window of matches instead of the full materialization.
  void FreeShard(int64_t shard);

  /// Matches released so far (equals the total once all shards
  /// completed). Intended for after-the-fact stats, not coordination.
  int64_t num_released() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<MatchBinding>> shards_;
  std::vector<bool> complete_;
  int64_t next_unreleased_ = 0;   // first shard not yet released
  int64_t released_matches_ = 0;  // total matches in released shards
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_ENGINE_BATCHING_H_
