#ifndef FLOWMOTIF_ENGINE_BATCHING_H_
#define FLOWMOTIF_ENGINE_BATCHING_H_

#include <cstdint>
#include <vector>

namespace flowmotif {

/// A contiguous range [begin, end) of structural-match indices processed
/// as one unit by a worker thread.
struct MatchBatch {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive

  int64_t size() const { return end - begin; }
};

/// Partitions [0, num_matches) into contiguous batches. With
/// `batch_size` == 0 the size is derived so each thread gets several
/// batches (dynamic scheduling then absorbs matches of very different
/// cost — phase-P2 work per match varies by orders of magnitude).
/// Batches are returned in index order; merging per-batch outputs in
/// that order reproduces serial processing order.
std::vector<MatchBatch> PartitionMatches(int64_t num_matches,
                                         int num_threads,
                                         int64_t batch_size = 0);

}  // namespace flowmotif

#endif  // FLOWMOTIF_ENGINE_BATCHING_H_
