#ifndef FLOWMOTIF_GEN_PASSENGER_GEN_H_
#define FLOWMOTIF_GEN_PASSENGER_GEN_H_

#include "gen/generator.h"
#include "graph/interaction_graph.h"

namespace flowmotif {

/// Synthetic stand-in for the paper's NYC yellow-taxi passenger flow
/// network (Sec. 6.1): a fixed set of zones (289 at scale 1), pair
/// selection by a gravity model (busy zones attract/emit more trips),
/// diurnal pickup times with a morning and an evening peak, and small
/// integer passenger counts with mean near the paper's 1.933.
///
/// Cascades here are trip chains (vehicles/passengers moving zone to
/// zone) with a low cycle bias: as the paper observes, acyclic motifs
/// dominate in passenger flow because trips rarely return to the origin
/// zone within a short window.
class PassengerLikeGenerator {
 public:
  explicit PassengerLikeGenerator(const GeneratorConfig& config)
      : config_(config) {}

  InteractionGraph Generate() const;

 private:
  GeneratorConfig config_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GEN_PASSENGER_GEN_H_
