#include "gen/facebook_gen.h"

#include <cmath>
#include <vector>

#include "util/random.h"

namespace flowmotif {

namespace {

/// Interaction counts per 30-second bin: small integers, mean ~3.
Flow SampleFacebookFlow(Rng* rng) {
  return static_cast<Flow>(1 + rng->Poisson(2.0));
}

}  // namespace

InteractionGraph FacebookLikeGenerator::Generate() const {
  Rng rng(config_.seed);
  const int64_t n = config_.num_vertices;
  Topology topology(n);

  // Friend groups are small *disjoint* dense pockets (complete digraphs:
  // everyone likes/messages everyone); group frequency decreases with
  // size, matching the paper's Facebook Table 4 shape (counts decreasing
  // with motif size, cycles as common as chains). A layered backbone of
  // poster -> amplifier -> lurker links supplies the 2-hop influence
  // chains that give M(3,2) its surplus.
  // Larger pockets are carved first so they are never starved of
  // vertices when the pool runs low.
  const int64_t pocket_budget = config_.num_pairs * 72 / 100;
  std::vector<VertexId> leftover = AddDisjointPockets(
      &topology,
      {
          PocketSpec{5, pocket_budget * 8 / 100 / 20, false},
          PocketSpec{4, pocket_budget * 22 / 100 / 12, false},
          PocketSpec{3, pocket_budget * 70 / 100 / 6, false},
      },
      &rng);
  AddLayeredBackbone(&topology, leftover,
                     config_.num_pairs - topology.num_pairs(), &rng);

  GeneratorConfig config = config_;
  config.integer_flows = true;
  return EmitInteractions(topology, config, SampleFacebookFlow,
                          UniformTimeSampler(config.time_span), &rng);
}

}  // namespace flowmotif
