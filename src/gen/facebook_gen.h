#ifndef FLOWMOTIF_GEN_FACEBOOK_GEN_H_
#define FLOWMOTIF_GEN_FACEBOOK_GEN_H_

#include "gen/generator.h"
#include "graph/interaction_graph.h"

namespace flowmotif {

/// Synthetic stand-in for the paper's Facebook interaction network
/// (Sec. 6.1): users grouped into communities with mostly intra-community
/// links and frequent reciprocation, roughly uniform (light-tailed)
/// degrees, ~3-4 interactions per connected pair (the paper aggregates
/// likes/messages into 30-second bins), and small integer flows with mean
/// near the paper's 3.014.
class FacebookLikeGenerator {
 public:
  explicit FacebookLikeGenerator(const GeneratorConfig& config)
      : config_(config) {}

  InteractionGraph Generate() const;

 private:
  GeneratorConfig config_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GEN_FACEBOOK_GEN_H_
