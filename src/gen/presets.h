#ifndef FLOWMOTIF_GEN_PRESETS_H_
#define FLOWMOTIF_GEN_PRESETS_H_

#include <string>
#include <vector>

#include "gen/generator.h"
#include "graph/time_series_graph.h"
#include "util/status.h"

namespace flowmotif {

/// The three evaluation datasets of the paper (Sec. 6.1).
enum class DatasetKind { kBitcoin, kFacebook, kPassenger };

/// A dataset preset bundles the generator configuration that stands in
/// for one of the paper's real networks together with the experiment
/// parameters the paper uses on it: the default delta / phi, the sweep
/// values of Figs. 9-10, and the number of time-prefix samples of
/// Fig. 13 (B1..B5, F1..F5, T1..T4).
struct DatasetPreset {
  DatasetKind kind;
  std::string name;                   // "bitcoin" | "facebook" | "passenger"
  GeneratorConfig config;             // scale-1 generator parameters
  Timestamp default_delta = 0;        // paper: 600 / 600 / 900 seconds
  Flow default_phi = 0.0;             // paper: 5 / 3 / 2
  std::vector<Timestamp> delta_sweep; // Fig. 9 x-axis
  std::vector<Flow> phi_sweep;        // Fig. 10 x-axis
  int num_time_samples = 5;           // Fig. 13 prefixes
};

/// Returns the preset for a dataset kind.
const DatasetPreset& GetPreset(DatasetKind kind);

/// All three presets in the paper's order.
const std::vector<DatasetPreset>& AllPresets();

/// Lookup by name ("bitcoin", "facebook", "passenger").
StatusOr<DatasetPreset> PresetByName(const std::string& name);

/// Generates the dataset at the given scale: vertex / pair / interaction
/// counts are multiplied by `scale` (the passenger zone count stays fixed
/// at its scale-1 value for scale >= 1 since the paper's zone set is
/// fixed; interactions still scale). Returns the built time-series graph.
TimeSeriesGraph GenerateDataset(const DatasetPreset& preset,
                                double scale = 1.0);

}  // namespace flowmotif

#endif  // FLOWMOTIF_GEN_PRESETS_H_
