#include "gen/passenger_gen.h"

#include <cmath>
#include <vector>

#include "util/random.h"

namespace flowmotif {

namespace {

constexpr Timestamp kSecondsPerDay = 86400;

/// Passengers per trip: small integers, mean ~1.9.
Flow SamplePassengerFlow(Rng* rng) {
  return static_cast<Flow>(1 + rng->Poisson(0.93));
}

/// Pickup times with a diurnal rhythm: a uniform day, then a time of day
/// drawn from a morning (8-10h) or evening (17-20h) rush with background
/// trips uniform across the day.
TimeSampler DiurnalTimeSampler(Timestamp time_span) {
  return [time_span](Rng* rng) {
    const int64_t days = std::max<Timestamp>(1, time_span / kSecondsPerDay);
    const Timestamp day =
        static_cast<Timestamp>(rng->NextBounded(static_cast<uint64_t>(days)));
    double second_of_day;
    const double u = rng->UniformDouble();
    if (u < 0.35) {
      second_of_day = rng->Normal(9.0 * 3600, 3600);   // morning rush
    } else if (u < 0.75) {
      second_of_day = rng->Normal(18.5 * 3600, 4500);  // evening rush
    } else {
      second_of_day = rng->UniformDouble(0, kSecondsPerDay);
    }
    if (second_of_day < 0) second_of_day = 0;
    if (second_of_day >= kSecondsPerDay) second_of_day = kSecondsPerDay - 1;
    Timestamp t = day * kSecondsPerDay + static_cast<Timestamp>(second_of_day);
    if (t >= time_span) t = time_span - 1;
    return t;
  };
}

}  // namespace

InteractionGraph PassengerLikeGenerator::Generate() const {
  Rng rng(config_.seed);
  const int64_t n = config_.num_vertices;
  Topology topology(n);

  // Traffic corridors: small *disjoint* dense zone pockets (downtown
  // clusters where trips run both ways between nearby zones) plus a
  // residential -> hub -> commercial layered backbone. Cyclic structural
  // matches exist inside the pockets, but cyclic *instances* stay rare
  // because trip cascades almost never return to the origin within a
  // window (cycle_closure is tiny and the diurnal time sampler spreads
  // flows) — matching the paper's finding that acyclic motifs dominate
  // passenger traffic. Pocket sizes tilt larger than the social
  // networks' so 4- and 5-node chain counts stay comparable to the
  // 3-node ones, like the paper's flat-ish passenger row in Table 4.
  const int64_t pocket_budget = config_.num_pairs * 75 / 100;
  std::vector<VertexId> leftover = AddDisjointPockets(
      &topology,
      {
          PocketSpec{5, pocket_budget * 45 / 100 / 20, false},
          PocketSpec{4, pocket_budget * 30 / 100 / 12, false},
          PocketSpec{3, pocket_budget * 25 / 100 / 6, false},
      },
      &rng);
  AddLayeredBackbone(&topology, leftover,
                     config_.num_pairs - topology.num_pairs(), &rng);

  GeneratorConfig config = config_;
  config.integer_flows = true;
  return EmitInteractions(topology, config, SamplePassengerFlow,
                          DiurnalTimeSampler(config.time_span), &rng);
}

}  // namespace flowmotif
