#ifndef FLOWMOTIF_GEN_BITCOIN_GEN_H_
#define FLOWMOTIF_GEN_BITCOIN_GEN_H_

#include "gen/generator.h"
#include "graph/interaction_graph.h"

namespace flowmotif {

/// Synthetic stand-in for the paper's Bitcoin user graph (Sec. 6.1):
/// a sparse digraph with heavy-tailed (Zipf-ranked) degrees, a minority of
/// deliberately cyclic "pockets" (cyclic money flow is common in Bitcoin,
/// per the paper's Table 4 / Fig. 14 discussion), rare multi-edges, and
/// Pareto-distributed transaction amounts with mean near the paper's
/// 4.845 BTC, truncated below at 0.0001 BTC like the paper's
/// preprocessing.
class BitcoinLikeGenerator {
 public:
  explicit BitcoinLikeGenerator(const GeneratorConfig& config)
      : config_(config) {}

  InteractionGraph Generate() const;

 private:
  GeneratorConfig config_;
};

}  // namespace flowmotif

#endif  // FLOWMOTIF_GEN_BITCOIN_GEN_H_
