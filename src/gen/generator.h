#ifndef FLOWMOTIF_GEN_GENERATOR_H_
#define FLOWMOTIF_GEN_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "graph/interaction_graph.h"
#include "graph/types.h"
#include "util/random.h"

namespace flowmotif {

/// Shared knobs of the synthetic interaction-network generators. The
/// three dataset generators (bitcoin / facebook / passenger-like) build a
/// dataset-specific *topology* (which ordered vertex pairs can interact)
/// and then emit timestamped flow events over it with the shared
/// machinery below.
///
/// Events come from two processes:
/// * *cascades* — short random walks along the topology where a flow
///   amount is forwarded hop by hop within small time gaps. Cascades are
///   what makes flow motifs appear: they create time-respecting chains
///   (and, with cycle bias, cycles) whose per-edge flows are aligned,
///   which a random flow permutation destroys — reproducing the
///   significance gap of Sec. 6.3;
/// * *background* noise — independent events on random topology pairs at
///   uniform times.
struct GeneratorConfig {
  int64_t num_vertices = 2000;
  int64_t num_pairs = 6000;          // approximate topology pair count
  int64_t num_interactions = 20000;  // total events to emit
  Timestamp time_span = 2592000;     // event horizon (30 days of seconds)
  Timestamp cascade_gap_mean = 100;  // mean time gap between cascade hops
  double cascade_fraction = 0.7;     // share of events born in cascades
  int max_cascade_length = 6;        // hops per cascade (1..max)
  double cycle_closure = 0.3;        // bias of walks returning to origin
  /// When true (count-valued datasets: facebook interactions, passenger
  /// counts) cascades forward the flow unchanged, keeping it integral;
  /// when false (bitcoin amounts) the forwarded flow decays slightly per
  /// hop.
  bool integer_flows = false;
  uint64_t seed = 42;
};

/// A directed simple-graph skeleton: the set of ordered pairs that can
/// carry interactions, with out-adjacency lists for walking.
class Topology {
 public:
  explicit Topology(int64_t num_vertices);

  /// Adds the ordered pair (u, v); duplicates and self-loops are ignored.
  /// Returns true if the pair was new.
  bool AddPair(VertexId u, VertexId v);

  bool HasPair(VertexId u, VertexId v) const;
  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_pairs() const { return static_cast<int64_t>(pairs_.size()); }
  const std::vector<std::pair<VertexId, VertexId>>& pairs() const {
    return pairs_;
  }
  const std::vector<VertexId>& OutNeighbors(VertexId v) const {
    return adjacency_[static_cast<size_t>(v)];
  }

 private:
  int64_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> pairs_;
  std::vector<std::vector<VertexId>> adjacency_;
  std::set<std::pair<VertexId, VertexId>> seen_;
};

/// Draws one interaction's flow value.
using FlowSampler = std::function<Flow(Rng*)>;

/// Draws the start time of a cascade or background event; defaults to
/// uniform over [0, time_span].
using TimeSampler = std::function<Timestamp(Rng*)>;

/// Emits interactions over a topology per the config. Deterministic given
/// the Rng state. `cascade_flow_sampler` (optional) draws the initial
/// flow of cascades; when null, `flow_sampler` is used for both cascades
/// and background events. Bitcoin-like data uses a heavier cascade
/// sampler: transfers that travel multi-hop carry larger amounts, which
/// is what lets long-chain instances clear the phi threshold.
InteractionGraph EmitInteractions(
    const Topology& topology, const GeneratorConfig& config,
    const FlowSampler& flow_sampler, const TimeSampler& time_sampler,
    Rng* rng, const FlowSampler& cascade_flow_sampler = nullptr);

/// Uniform time sampler over [0, time_span).
TimeSampler UniformTimeSampler(Timestamp time_span);

/// Sprinkles `count` directed cycle "pockets" of the given length into
/// the topology (all cycle edges among a random vertex tuple). Pockets
/// are what give cyclic motifs structural matches at a rate comparable to
/// chains, as observed on the paper's Bitcoin and Facebook graphs.
void AddCyclePockets(Topology* topology, int64_t count, int cycle_length,
                     Rng* rng);

/// Sprinkles `count` *dense* pockets of `size` vertices. When `acyclic`
/// is false every ordered pair inside the pocket is connected (a complete
/// digraph: chains and cycles of every shape match inside it); when true
/// only forward pairs along a random order are added (a transitive
/// tournament: many chains, no cycles — the passenger-network regime).
///
/// Structural-match counts in the paper's Table 4 *decrease* with motif
/// size while cyclic counts stay close to acyclic ones; a mixture of
/// small dense pockets whose frequency decreases with size reproduces
/// exactly that shape (a complete pocket of c vertices hosts c!/(c-n)!
/// matches of every n-node path motif and none with n > c).
void AddDensePockets(Topology* topology, int64_t count, int size,
                     bool acyclic, Rng* rng);

/// One pocket shape request for AddDisjointPockets.
struct PocketSpec {
  int size = 3;
  int64_t count = 0;
  bool acyclic = false;
};

/// Shuffles the vertex ids and carves *disjoint* pockets following the
/// specs in order, stopping early if the vertices run out. Returns the
/// unused vertices. Disjointness matters: overlapping pockets share
/// bridge vertices through which long paths thread combinatorially,
/// which would make longer-motif match counts explode instead of
/// decreasing as in the paper's datasets.
std::vector<VertexId> AddDisjointPockets(Topology* topology,
                                         const std::vector<PocketSpec>& specs,
                                         Rng* rng);

/// Adds a three-layer feed-forward backbone over `vertices` (split
/// 40/20/40): edges run layer1->layer2 and layer2->layer3 only, drawn
/// uniformly, stopping after `num_pairs` distinct pairs (or when the
/// attempt budget runs out). Backbone paths therefore have at most two
/// hops — they enrich 2-edge chain counts (the paper's M(3,2) surplus
/// over M(3,3)) without creating any longer-path blowup.
void AddLayeredBackbone(Topology* topology,
                        const std::vector<VertexId>& vertices,
                        int64_t num_pairs, Rng* rng);

}  // namespace flowmotif

#endif  // FLOWMOTIF_GEN_GENERATOR_H_
