#include "gen/bitcoin_gen.h"

#include <cmath>
#include <vector>

#include "util/random.h"

namespace flowmotif {

namespace {

/// Transaction amounts: Pareto(xmin=2, alpha=1.7) has mean
/// alpha*xmin/(alpha-1) ~ 4.86, matching the paper's 4.845 average;
/// amounts are rounded to 4 decimals (the paper drops dust below
/// 0.0001 BTC).
Flow SampleBitcoinFlow(Rng* rng) {
  const double raw = rng->Pareto(2.0, 1.7);
  const double rounded = std::floor(raw * 1e4) / 1e4;
  return rounded < 1e-4 ? 1e-4 : rounded;
}

}  // namespace

InteractionGraph BitcoinLikeGenerator::Generate() const {
  Rng rng(config_.seed);
  const int64_t n = config_.num_vertices;
  Topology topology(n);

  // Most pairs live in small *disjoint* dense "trading pockets"
  // (complete digraphs of 3..6 users) whose frequency decreases with
  // size. This reproduces the paper's Table 4 shape on Bitcoin:
  // structural-match counts that decrease smoothly with motif size and
  // cyclic motifs about as common as chains of the same size. A
  // three-layer feed-forward backbone over the remaining users adds the
  // short-chain surplus (M(3,2) > M(3,3)) without threading the pockets
  // into long combinatorial paths.
  const int64_t pocket_budget = config_.num_pairs * 80 / 100;
  std::vector<VertexId> leftover = AddDisjointPockets(
      &topology,
      {
          PocketSpec{6, pocket_budget * 3 / 100 / 30, false},
          PocketSpec{5, pocket_budget * 6 / 100 / 20, false},
          PocketSpec{4, pocket_budget * 19 / 100 / 12, false},
          PocketSpec{3, pocket_budget * 72 / 100 / 6, false},
      },
      &rng);
  AddLayeredBackbone(&topology, leftover,
                     config_.num_pairs - topology.num_pairs(), &rng);

  // Cascading (multi-hop) transfers carry notably larger amounts than
  // one-off background payments: min 4 BTC so that per-hop amounts clear
  // realistic phi thresholds even after hop-to-hop decay.
  const FlowSampler cascade_flow = [](Rng* r) {
    const double raw = 2.5 + r->Pareto(1.5, 1.6);
    return std::floor(raw * 1e4) / 1e4;
  };
  return EmitInteractions(topology, config_, SampleBitcoinFlow,
                          UniformTimeSampler(config_.time_span), &rng,
                          cascade_flow);
}

}  // namespace flowmotif
