#include "gen/presets.h"

#include <algorithm>

#include "gen/bitcoin_gen.h"
#include "gen/facebook_gen.h"
#include "gen/passenger_gen.h"
#include "util/logging.h"

namespace flowmotif {

namespace {

std::vector<DatasetPreset> BuildPresets() {
  std::vector<DatasetPreset> presets;

  {
    DatasetPreset p;
    p.kind = DatasetKind::kBitcoin;
    p.name = "bitcoin";
    p.config.num_vertices = 20000;
    p.config.num_pairs = 45000;
    p.config.num_interactions = 150000;
    p.config.time_span = 9LL * 30 * 86400;  // ~9 months (Feb..Nov 2014)
    p.config.cascade_gap_mean = 150;
    p.config.cascade_fraction = 0.75;
    p.config.max_cascade_length = 6;
    p.config.cycle_closure = 0.3;
    p.config.seed = 20140201;
    p.default_delta = 600;
    p.default_phi = 5.0;
    p.delta_sweep = {200, 400, 600, 800, 1000};
    p.phi_sweep = {5, 10, 15, 20, 25};
    p.num_time_samples = 5;  // B1..B5
    presets.push_back(p);
  }

  {
    DatasetPreset p;
    p.kind = DatasetKind::kFacebook;
    p.name = "facebook";
    p.config.num_vertices = 12000;
    p.config.num_pairs = 30000;
    p.config.num_interactions = 140000;
    p.config.time_span = 6LL * 30 * 86400;  // ~6 months (Apr..Oct 2015)
    p.config.cascade_gap_mean = 130;
    p.config.cascade_fraction = 0.7;
    p.config.max_cascade_length = 6;
    p.config.cycle_closure = 0.3;
    p.config.seed = 20150401;
    p.default_delta = 600;
    p.default_phi = 3.0;
    p.delta_sweep = {200, 400, 600, 800, 1000};
    p.phi_sweep = {3, 5, 7, 9, 11};
    p.num_time_samples = 5;  // F1..F5
    presets.push_back(p);
  }

  {
    DatasetPreset p;
    p.kind = DatasetKind::kPassenger;
    p.name = "passenger";
    p.config.num_vertices = 289;  // NYC taxi zones
    p.config.num_pairs = 1500;
    p.config.num_interactions = 14000;
    p.config.time_span = 31LL * 86400;  // January 2018
    p.config.cascade_gap_mean = 250;
    p.config.cascade_fraction = 0.75;
    p.config.max_cascade_length = 5;
    p.config.cycle_closure = 0.05;  // trips rarely loop back quickly
    p.config.seed = 20180101;
    p.default_delta = 900;
    p.default_phi = 2.0;
    p.delta_sweep = {300, 600, 900, 1200, 1500};
    p.phi_sweep = {1, 2, 3, 4, 5};
    p.num_time_samples = 4;  // T1..T4
    presets.push_back(p);
  }

  return presets;
}

}  // namespace

const std::vector<DatasetPreset>& AllPresets() {
  static const std::vector<DatasetPreset>* const kPresets =
      new std::vector<DatasetPreset>(BuildPresets());
  return *kPresets;
}

const DatasetPreset& GetPreset(DatasetKind kind) {
  for (const DatasetPreset& p : AllPresets()) {
    if (p.kind == kind) return p;
  }
  FLOWMOTIF_CHECK(false) << "unknown dataset kind";
  return AllPresets().front();  // unreachable
}

StatusOr<DatasetPreset> PresetByName(const std::string& name) {
  for (const DatasetPreset& p : AllPresets()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("no dataset preset named '" + name +
                          "' (expected bitcoin|facebook|passenger)");
}

TimeSeriesGraph GenerateDataset(const DatasetPreset& preset, double scale) {
  FLOWMOTIF_CHECK_GT(scale, 0.0);
  GeneratorConfig config = preset.config;
  auto scaled = [scale](int64_t v) {
    return std::max<int64_t>(1, static_cast<int64_t>(
                                    static_cast<double>(v) * scale));
  };
  // The passenger zone set is fixed; other datasets scale their vertex
  // sets. Downscaling below 1 shrinks every dimension so tests stay fast.
  if (preset.kind != DatasetKind::kPassenger || scale < 1.0) {
    config.num_vertices = scaled(config.num_vertices);
  }
  config.num_pairs = scaled(config.num_pairs);
  config.num_interactions = scaled(config.num_interactions);

  InteractionGraph multigraph;
  switch (preset.kind) {
    case DatasetKind::kBitcoin:
      multigraph = BitcoinLikeGenerator(config).Generate();
      break;
    case DatasetKind::kFacebook:
      multigraph = FacebookLikeGenerator(config).Generate();
      break;
    case DatasetKind::kPassenger:
      multigraph = PassengerLikeGenerator(config).Generate();
      break;
  }
  return TimeSeriesGraph::Build(multigraph);
}

}  // namespace flowmotif
