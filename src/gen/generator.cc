#include "gen/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace flowmotif {

Topology::Topology(int64_t num_vertices)
    : num_vertices_(num_vertices),
      adjacency_(static_cast<size_t>(num_vertices)) {
  FLOWMOTIF_CHECK_GT(num_vertices, 0);
}

bool Topology::AddPair(VertexId u, VertexId v) {
  if (u == v) return false;
  FLOWMOTIF_CHECK(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_);
  if (!seen_.insert({u, v}).second) return false;
  pairs_.push_back({u, v});
  adjacency_[static_cast<size_t>(u)].push_back(v);
  return true;
}

bool Topology::HasPair(VertexId u, VertexId v) const {
  return seen_.count({u, v}) > 0;
}

TimeSampler UniformTimeSampler(Timestamp time_span) {
  return [time_span](Rng* rng) {
    return static_cast<Timestamp>(
        rng->NextBounded(static_cast<uint64_t>(time_span)));
  };
}

void AddCyclePockets(Topology* topology, int64_t count, int cycle_length,
                     Rng* rng) {
  FLOWMOTIF_CHECK_GE(cycle_length, 2);
  const int64_t n = topology->num_vertices();
  if (n < cycle_length) return;
  for (int64_t i = 0; i < count; ++i) {
    // Draw `cycle_length` distinct vertices.
    std::vector<VertexId> ring;
    while (static_cast<int>(ring.size()) < cycle_length) {
      VertexId v = static_cast<VertexId>(rng->NextBounded(
          static_cast<uint64_t>(n)));
      if (std::find(ring.begin(), ring.end(), v) == ring.end()) {
        ring.push_back(v);
      }
    }
    for (int j = 0; j < cycle_length; ++j) {
      topology->AddPair(ring[static_cast<size_t>(j)],
                        ring[static_cast<size_t>((j + 1) % cycle_length)]);
    }
  }
}

void AddDensePockets(Topology* topology, int64_t count, int size,
                     bool acyclic, Rng* rng) {
  FLOWMOTIF_CHECK_GE(size, 2);
  const int64_t n = topology->num_vertices();
  if (n < size) return;
  for (int64_t i = 0; i < count; ++i) {
    std::vector<VertexId> members;
    while (static_cast<int>(members.size()) < size) {
      VertexId v = static_cast<VertexId>(
          rng->NextBounded(static_cast<uint64_t>(n)));
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        members.push_back(v);
      }
    }
    for (int a = 0; a < size; ++a) {
      for (int b = 0; b < size; ++b) {
        if (a == b) continue;
        if (acyclic && a > b) continue;  // forward pairs only
        topology->AddPair(members[static_cast<size_t>(a)],
                          members[static_cast<size_t>(b)]);
      }
    }
  }
}

std::vector<VertexId> AddDisjointPockets(Topology* topology,
                                         const std::vector<PocketSpec>& specs,
                                         Rng* rng) {
  const int64_t n = topology->num_vertices();
  std::vector<VertexId> pool(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pool[static_cast<size_t>(i)] = static_cast<VertexId>(i);
  }
  rng->Shuffle(&pool);

  size_t cursor = 0;
  for (const PocketSpec& spec : specs) {
    FLOWMOTIF_CHECK_GE(spec.size, 2);
    for (int64_t p = 0; p < spec.count; ++p) {
      if (cursor + static_cast<size_t>(spec.size) > pool.size()) break;
      for (int a = 0; a < spec.size; ++a) {
        for (int b = 0; b < spec.size; ++b) {
          if (a == b) continue;
          if (spec.acyclic && a > b) continue;
          topology->AddPair(pool[cursor + static_cast<size_t>(a)],
                            pool[cursor + static_cast<size_t>(b)]);
        }
      }
      cursor += static_cast<size_t>(spec.size);
    }
  }
  return std::vector<VertexId>(pool.begin() + static_cast<int64_t>(cursor),
                               pool.end());
}

void AddLayeredBackbone(Topology* topology,
                        const std::vector<VertexId>& vertices,
                        int64_t num_pairs, Rng* rng) {
  if (vertices.size() < 3 || num_pairs <= 0) return;
  const size_t l1 = vertices.size() * 2 / 5;
  const size_t l2 = vertices.size() / 5;
  const size_t l3 = vertices.size() - l1 - l2;
  if (l1 == 0 || l2 == 0 || l3 == 0) return;

  int64_t added = 0;
  int64_t attempts = 0;
  while (added < num_pairs && attempts < num_pairs * 20) {
    ++attempts;
    VertexId src;
    VertexId dst;
    if (rng->UniformDouble() < 0.5) {  // layer1 -> layer2
      src = vertices[rng->NextBounded(l1)];
      dst = vertices[l1 + rng->NextBounded(l2)];
    } else {  // layer2 -> layer3
      src = vertices[l1 + rng->NextBounded(l2)];
      dst = vertices[l1 + l2 + rng->NextBounded(l3)];
    }
    if (topology->AddPair(src, dst)) ++added;
  }
}

namespace {

/// Forwards one cascade along the topology; emits its events into `graph`.
/// Returns the number of events emitted.
int64_t EmitCascade(const Topology& topology, const GeneratorConfig& config,
                    const FlowSampler& flow_sampler,
                    const TimeSampler& time_sampler, Rng* rng,
                    InteractionGraph* graph) {
  const int64_t n = topology.num_vertices();
  // Find a start vertex with outgoing pairs (bounded retries: sparse
  // topologies can have many sinks).
  VertexId current = -1;
  for (int attempt = 0; attempt < 32; ++attempt) {
    VertexId v =
        static_cast<VertexId>(rng->NextBounded(static_cast<uint64_t>(n)));
    if (!topology.OutNeighbors(v).empty()) {
      current = v;
      break;
    }
  }
  if (current < 0) return 0;

  const VertexId origin = current;
  Flow flow = flow_sampler(rng);
  Timestamp t = time_sampler(rng);
  const int length =
      1 + static_cast<int>(rng->NextBounded(
              static_cast<uint64_t>(config.max_cascade_length)));

  std::vector<VertexId> visited{current};
  int64_t emitted = 0;
  for (int step = 0; step < length; ++step) {
    const std::vector<VertexId>& neighbors = topology.OutNeighbors(current);
    if (neighbors.empty()) break;
    VertexId next;
    if (step >= 1 && rng->UniformDouble() < config.cycle_closure &&
        topology.HasPair(current, origin) && origin != current) {
      next = origin;  // close the cycle back to the cascade origin
    } else {
      // Prefer onward movement: forwarded flow rarely bounces back to a
      // vertex it already passed (money mules, trip chains, reshares).
      std::vector<VertexId> unvisited;
      for (VertexId v : neighbors) {
        if (std::find(visited.begin(), visited.end(), v) == visited.end()) {
          unvisited.push_back(v);
        }
      }
      if (!unvisited.empty() && rng->UniformDouble() < 0.85) {
        next = unvisited[rng->NextBounded(unvisited.size())];
      } else {
        next = neighbors[rng->NextBounded(neighbors.size())];
      }
    }
    visited.push_back(next);
    if (t >= config.time_span) break;
    Status s = graph->AddEdge(current, next, t, flow);
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
    ++emitted;
    if (next == origin && step >= 1) break;  // cycle closed; cascade ends
    current = next;
    // Continuous flows decay slightly hop over hop; count-valued flows
    // are forwarded unchanged (the same passengers/messages move on).
    // Time advances by an exponential gap so consecutive hops usually
    // fit a delta window.
    if (!config.integer_flows) {
      flow = std::max(0.01, flow * rng->UniformDouble(0.75, 1.0));
    }
    t += 1 + static_cast<Timestamp>(rng->Exponential(
                 1.0 / static_cast<double>(config.cascade_gap_mean)));
  }
  return emitted;
}

}  // namespace

InteractionGraph EmitInteractions(const Topology& topology,
                                  const GeneratorConfig& config,
                                  const FlowSampler& flow_sampler,
                                  const TimeSampler& time_sampler, Rng* rng,
                                  const FlowSampler& cascade_flow_sampler) {
  InteractionGraph graph;
  graph.EnsureVertices(topology.num_vertices());
  if (topology.num_pairs() == 0) return graph;

  const FlowSampler& cascade_sampler =
      cascade_flow_sampler ? cascade_flow_sampler : flow_sampler;
  while (graph.num_interactions() < config.num_interactions) {
    if (rng->UniformDouble() < config.cascade_fraction) {
      if (EmitCascade(topology, config, cascade_sampler, time_sampler, rng,
                      &graph) > 0) {
        continue;
      }
      // Fall through to background if the cascade could not start.
    }
    const auto& [u, v] = topology.pairs()[rng->NextBounded(
        static_cast<uint64_t>(topology.num_pairs()))];
    const Timestamp t = time_sampler(rng);
    Status s = graph.AddEdge(u, v, t, flow_sampler(rng));
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
  }
  return graph;
}

}  // namespace flowmotif
