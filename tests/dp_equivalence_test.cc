// Byte-identical equivalence of the incremental sliding-window DP
// (core/dp.cc: per-match cursors, k-way merged timeline, O(1) offset
// lookups, flat tables) against a retained naive reference: the
// pre-rewrite per-window DP — fresh binary searches and a
// sort+unique timeline per window — driven by a brute-force window
// scan. Flows, tracebacks, windows, and bindings must match exactly
// (operator== on doubles: both sides compute identical min/max chains
// over identical prefix-sum subtractions), across ~100 seeded random
// graphs, every catalog motif plus a general fan-out motif, degenerate
// inputs, and engine thread counts {1, 2, 4, 8}.
#include "core/dp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "engine/query_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

// ---------------------------------------------------------------------------
// Naive reference: the pre-rewrite DP, kept verbatim in spirit — every
// window rebuilds the timeline with push-all + sort + unique and pays
// two binary searches per flow([tj,ti],k) via FlowInClosed. The argmax
// split selection (crossing binary search, {lo, lo-1} probe, strict >)
// is identical, so tracebacks must agree bit for bit.
// ---------------------------------------------------------------------------

/// Brute-force processed-window scan: for every anchor, test the
/// novelty rule by scanning the last series front to back.
std::vector<Window> BruteForceWindows(const EdgeSeries& first,
                                      const EdgeSeries& last,
                                      Timestamp delta) {
  std::vector<Window> windows;
  bool have_processed = false;
  Timestamp prev_end = 0;
  Timestamp prev_anchor = 0;
  for (size_t i = 0; i < first.size(); ++i) {
    const Timestamp anchor = first.time(i);
    if (have_processed && anchor == prev_anchor) continue;
    const Timestamp end = anchor + delta;
    bool has_new = false;
    for (size_t j = 0; j < last.size(); ++j) {
      const Timestamp t = last.time(j);
      has_new = have_processed ? (t > prev_end && t <= end)
                               : (t >= anchor && t <= end);
      if (has_new) break;
    }
    if (!has_new) continue;
    windows.push_back(Window{anchor, end});
    prev_end = end;
    prev_anchor = anchor;
    have_processed = true;
  }
  return windows;
}

std::vector<const EdgeSeries*> ResolveSeries(const TimeSeriesGraph& graph,
                                             const Motif& motif,
                                             const MatchBinding& binding) {
  std::vector<const EdgeSeries*> series(
      static_cast<size_t>(motif.num_edges()));
  for (int i = 0; i < motif.num_edges(); ++i) {
    const auto [src, dst] = motif.edge(i);
    const EdgeSeries* s = graph.FindSeries(binding[static_cast<size_t>(src)],
                                           binding[static_cast<size_t>(dst)]);
    if (s == nullptr) ADD_FAILURE() << "unresolvable binding";
    series[static_cast<size_t>(i)] = s;
  }
  return series;
}

Flow ReferenceDpOverWindow(const std::vector<const EdgeSeries*>& series,
                           const Motif& motif, const MatchBinding& binding,
                           const Window& window,
                           MaxFlowDpSearcher::Result* result) {
  {
    Flow bound = std::numeric_limits<Flow>::infinity();
    for (const EdgeSeries* s : series) {
      bound = std::min(bound, s->FlowInClosed(window.start, window.end));
    }
    if (bound <= result->max_flow) return 0.0;
  }

  std::vector<Timestamp> timeline;
  for (const EdgeSeries* s : series) {
    const size_t first = s->LowerBound(window.start);
    const size_t limit = s->UpperBound(window.end);
    for (size_t i = first; i < limit; ++i) timeline.push_back(s->time(i));
  }
  std::sort(timeline.begin(), timeline.end());
  timeline.erase(std::unique(timeline.begin(), timeline.end()),
                 timeline.end());
  const size_t tau = timeline.size();
  if (tau == 0) return 0.0;

  const int m = motif.num_edges();
  std::vector<std::vector<Flow>> flow_table(static_cast<size_t>(m));
  std::vector<std::vector<size_t>> choice(static_cast<size_t>(m));
  for (int k = 0; k < m; ++k) {
    flow_table[static_cast<size_t>(k)].assign(tau, 0.0);
    choice[static_cast<size_t>(k)].assign(tau, 0);
  }
  for (size_t i = 0; i < tau; ++i) {
    flow_table[0][i] = series[0]->FlowInClosed(timeline[0], timeline[i]);
  }
  for (int k = 1; k < m; ++k) {
    const EdgeSeries& sk = *series[static_cast<size_t>(k)];
    const auto& prev_row = flow_table[static_cast<size_t>(k) - 1];
    auto& row = flow_table[static_cast<size_t>(k)];
    auto& row_choice = choice[static_cast<size_t>(k)];
    for (size_t i = 1; i < tau; ++i) {
      size_t lo = 1;
      size_t hi = i;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (prev_row[mid - 1] >=
            sk.FlowInClosed(timeline[mid], timeline[i])) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      Flow best = 0.0;
      size_t best_j = 0;
      for (size_t j : {lo, lo - 1}) {
        if (j < 1 || j > i) continue;
        const Flow value =
            std::min(prev_row[j - 1],
                     sk.FlowInClosed(timeline[j], timeline[i]));
        if (value > best) {
          best = value;
          best_j = j;
        }
      }
      row[i] = best;
      row_choice[i] = best_j;
    }
  }

  const Flow window_best = flow_table[static_cast<size_t>(m) - 1][tau - 1];
  if (window_best <= 0.0 || window_best <= result->max_flow) {
    return window_best;
  }

  MotifInstance instance;
  instance.binding = binding;
  instance.edge_sets.assign(static_cast<size_t>(m), {});
  size_t i = tau - 1;
  for (int k = m - 1; k >= 1; --k) {
    const size_t j = choice[static_cast<size_t>(k)][i];
    EXPECT_GT(j, 0u);
    const EdgeSeries& sk = *series[static_cast<size_t>(k)];
    auto& set = instance.edge_sets[static_cast<size_t>(k)];
    const size_t first = sk.LowerBound(timeline[j]);
    const size_t limit = sk.UpperBound(timeline[i]);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(sk.at(idx));
    i = j - 1;
  }
  {
    const EdgeSeries& s0 = *series[0];
    auto& set = instance.edge_sets[0];
    const size_t first = s0.LowerBound(timeline[0]);
    const size_t limit = s0.UpperBound(timeline[i]);
    for (size_t idx = first; idx < limit; ++idx) set.push_back(s0.at(idx));
  }

  result->found = true;
  result->max_flow = window_best;
  result->best = std::move(instance);
  result->binding = binding;
  result->window = window;
  return window_best;
}

MaxFlowDpSearcher::Result ReferenceRunOnMatches(
    const TimeSeriesGraph& graph, const Motif& motif, Timestamp delta,
    const std::vector<MatchBinding>& matches) {
  MaxFlowDpSearcher::Result result;
  for (const MatchBinding& binding : matches) {
    const std::vector<const EdgeSeries*> series =
        ResolveSeries(graph, motif, binding);
    const std::vector<Window> windows =
        BruteForceWindows(*series.front(), *series.back(), delta);
    result.num_windows += static_cast<int64_t>(windows.size());
    for (const Window& window : windows) {
      ReferenceDpOverWindow(series, motif, binding, window, &result);
    }
  }
  return result;
}

std::vector<MaxFlowDpSearcher::WindowBest> ReferenceRunPerWindow(
    const TimeSeriesGraph& graph, const Motif& motif, Timestamp delta,
    const MatchBinding& binding) {
  const std::vector<const EdgeSeries*> series =
      ResolveSeries(graph, motif, binding);
  const std::vector<Window> windows =
      BruteForceWindows(*series.front(), *series.back(), delta);
  std::vector<MaxFlowDpSearcher::WindowBest> bests;
  for (const Window& window : windows) {
    MaxFlowDpSearcher::Result window_result;
    const Flow flow =
        ReferenceDpOverWindow(series, motif, binding, window, &window_result);
    bests.push_back(MaxFlowDpSearcher::WindowBest{window, flow > 0.0, flow});
  }
  return bests;
}

// ---------------------------------------------------------------------------
// Test drivers
// ---------------------------------------------------------------------------

/// Random small graph: dense enough that path and cyclic motifs match,
/// integer-quantized flows and a narrow time range so duplicate
/// timestamps and flow ties are common (the argmax tie-break paths).
TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(5));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

/// All motifs the equivalence sweep runs: the ten catalog presets plus
/// one general fan-out shape (per-first-edge P1 units, same DP).
std::vector<Motif> AllTestMotifs() {
  std::vector<Motif> motifs = MotifCatalog::All();
  motifs.push_back(*Motif::Parse("0>1,0>2", "fanout"));
  return motifs;
}

void ExpectResultsEqual(const MaxFlowDpSearcher::Result& actual,
                        const MaxFlowDpSearcher::Result& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.found, expected.found) << label;
  ASSERT_EQ(actual.num_windows, expected.num_windows) << label;
  if (!expected.found) return;
  // Exact double equality: both sides compute identical min/max chains
  // over identical prefix-sum subtractions.
  ASSERT_EQ(actual.max_flow, expected.max_flow) << label;
  ASSERT_EQ(actual.binding, expected.binding) << label;
  ASSERT_EQ(actual.window, expected.window) << label;
  ASSERT_EQ(actual.best, expected.best) << label;
}

void CheckGraphAllMotifs(const TimeSeriesGraph& graph, Timestamp delta,
                         const std::string& label) {
  for (const Motif& motif : AllTestMotifs()) {
    const StructuralMatcher matcher(graph, motif);
    const std::vector<MatchBinding> matches = matcher.FindAllMatches();
    const MaxFlowDpSearcher searcher(graph, motif, delta);
    const MaxFlowDpSearcher::Result actual = searcher.RunOnMatches(matches);
    const MaxFlowDpSearcher::Result expected =
        ReferenceRunOnMatches(graph, motif, delta, matches);
    ExpectResultsEqual(actual, expected,
                       label + " motif=" + motif.name() +
                           " delta=" + std::to_string(delta));
    if (testing::Test::HasFailure()) return;
  }
}

TEST(DpEquivalenceTest, RandomGraphsAllMotifPresets) {
  // ~100 seeded random graphs across a spread of densities and deltas.
  int graphs = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (const Timestamp delta : {Timestamp{3}, Timestamp{9}, Timestamp{25},
                                  Timestamp{0}}) {
      const int num_vertices = 4 + static_cast<int>(seed % 3);
      const int num_interactions = 40 + static_cast<int>(seed * 7 % 50);
      const TimeSeriesGraph graph =
          RandomGraph(seed * 1000003u + static_cast<uint64_t>(delta),
                      num_vertices, num_interactions, /*time_span=*/60);
      ++graphs;
      CheckGraphAllMotifs(graph, delta,
                          "seed=" + std::to_string(seed));
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_EQ(graphs, 100);
}

TEST(DpEquivalenceTest, PerWindowAgreesWithReference) {
  for (uint64_t seed = 50; seed < 55; ++seed) {
    const TimeSeriesGraph graph = RandomGraph(seed, 5, 60, 40);
    for (const Motif& motif : {*MotifCatalog::ByName("M(3,2)"),
                               *MotifCatalog::ByName("M(3,3)")}) {
      const StructuralMatcher matcher(graph, motif);
      const std::vector<MatchBinding> matches = matcher.FindAllMatches();
      const MaxFlowDpSearcher searcher(graph, motif, 10);
      for (const MatchBinding& binding : matches) {
        const std::vector<MaxFlowDpSearcher::WindowBest> actual =
            searcher.RunPerWindow(binding);
        const std::vector<MaxFlowDpSearcher::WindowBest> expected =
            ReferenceRunPerWindow(graph, motif, 10, binding);
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < actual.size(); ++i) {
          ASSERT_EQ(actual[i].window, expected[i].window);
          ASSERT_EQ(actual[i].found, expected[i].found);
          ASSERT_EQ(actual[i].max_flow, expected[i].max_flow);
        }
      }
    }
  }
}

TEST(DpEquivalenceTest, DuplicateTimestamps) {
  // Many interactions on the same instant: timeline dedup, UpperBound
  // vs LowerBound runs, and zero-length intervals all get exercised.
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 10, 2.0}, {0, 1, 10, 3.0}, {0, 1, 10, 1.0}, {0, 1, 12, 4.0},
      {1, 2, 10, 1.0}, {1, 2, 11, 2.0}, {1, 2, 11, 5.0}, {1, 2, 13, 1.0},
      {2, 0, 11, 3.0}, {2, 0, 13, 3.0}, {2, 0, 13, 2.0},
  });
  for (const Timestamp delta : {Timestamp{0}, Timestamp{1}, Timestamp{3},
                                Timestamp{10}}) {
    CheckGraphAllMotifs(graph, delta, "duplicate-timestamps");
    if (testing::Test::HasFailure()) return;
  }
}

TEST(DpEquivalenceTest, DeltaZero) {
  // delta = 0: every window is a single instant; only same-timestamp
  // elements are in range, and strict time-respecting order makes most
  // multi-edge instances impossible.
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 5, 2.0}, {0, 1, 7, 1.0},
      {1, 2, 5, 3.0}, {1, 2, 7, 2.0},
      {2, 0, 5, 1.0}, {2, 0, 9, 4.0},
  });
  CheckGraphAllMotifs(graph, 0, "delta-zero");
}

TEST(DpEquivalenceTest, SingleElementSeries) {
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 10, 2.0},
      {1, 2, 11, 3.0},
      {2, 0, 12, 4.0},
  });
  for (const Timestamp delta : {Timestamp{0}, Timestamp{1}, Timestamp{2},
                                Timestamp{5}}) {
    CheckGraphAllMotifs(graph, delta, "single-element");
    if (testing::Test::HasFailure()) return;
  }
}

TEST(DpEquivalenceTest, EngineTop1MatchesReferenceAcrossThreads) {
  // The engine's kTop1 paths (barrier and streamed, with the per-batch
  // scratch pool) must reproduce the naive reference for every thread
  // count.
  for (uint64_t seed : {7u, 21u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 90, 50);
    for (const char* name : {"M(3,2)", "M(3,3)", "M(4,3)"}) {
      const Motif motif = *MotifCatalog::ByName(name);
      const StructuralMatcher matcher(graph, motif);
      const MaxFlowDpSearcher::Result expected = ReferenceRunOnMatches(
          graph, motif, 12, matcher.FindAllMatches());
      QueryEngine engine(graph);
      QueryOptions options;
      options.mode = QueryMode::kTop1;
      options.delta = 12;
      for (int threads : {1, 2, 4, 8}) {
        options.num_threads = threads;
        const QueryResult result = engine.Run(motif, options);
        ExpectResultsEqual(result.top1, expected,
                           std::string(name) + " threads=" +
                               std::to_string(threads));
        if (testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(DpEquivalenceTest, ScratchReuseAcrossMatchRangesIsIdentical) {
  // One shared Scratch across many RunOnMatches calls (the engine's
  // batch pattern) vs fresh scratches: identical results. M(3,3) has no
  // interior node, so this also pins the memo-off path: the searcher
  // must not own a window cache at all.
  const TimeSeriesGraph graph = RandomGraph(33, 6, 90, 50);
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  if (matches.empty()) GTEST_SKIP() << "no matches in random graph";
  const MaxFlowDpSearcher searcher(graph, motif, 12);

  MaxFlowDpSearcher::Scratch shared;
  for (size_t split = 1; split < matches.size(); ++split) {
    const MaxFlowDpSearcher::Result left = searcher.RunOnMatches(
        matches.data(), matches.data() + split, &shared);
    const MaxFlowDpSearcher::Result right = searcher.RunOnMatches(
        matches.data() + split, matches.data() + matches.size(), &shared);
    const MaxFlowDpSearcher::Result left_fresh =
        searcher.RunOnMatches(matches.data(), matches.data() + split);
    ExpectResultsEqual(left, left_fresh, "left split=" + std::to_string(split));
    MaxFlowDpSearcher::Result right_fresh = searcher.RunOnMatches(
        matches.data() + split, matches.data() + matches.size());
    ExpectResultsEqual(right, right_fresh,
                       "right split=" + std::to_string(split));
    if (testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(searcher.window_cache(), nullptr)
      << "M(3,3) has no interior node; the window cache must stay off";
}

/// Complete-bipartite layers L0 -> L1 -> ... with one interaction per
/// pair edge (time = 10 * layer, so chains are time-respecting).
TimeSeriesGraph LayeredGraph(const std::vector<int>& layer_sizes) {
  InteractionGraph g;
  VertexId next = 0;
  std::vector<std::vector<VertexId>> layers;
  for (int size : layer_sizes) {
    std::vector<VertexId> layer;
    for (int i = 0; i < size; ++i) layer.push_back(next++);
    layers.push_back(layer);
  }
  for (size_t l = 0; l + 1 < layers.size(); ++l) {
    for (VertexId u : layers[l]) {
      for (VertexId v : layers[l + 1]) {
        const Status s = g.AddEdge(u, v, static_cast<Timestamp>(l) * 10,
                                   1.0 + static_cast<Flow>((u + v) % 3));
        EXPECT_TRUE(s.ok()) << s.ToString();
      }
    }
  }
  return TimeSeriesGraph::Build(g);
}

TEST(DpEquivalenceTest, WindowCacheHitsAndSaturationStayIdentical) {
  // M(5,4) (path 0-1-2-3-4) has an interior node, so the window cache
  // is live. The layered graph yields 6*6*2*6*6 = 2592 matches over
  // 36*36 = 1296 distinct (first, last) series pairs: more than the
  // 1024-entry default cap, so the saturation branch (Get -> nullptr,
  // caller computes locally) runs; each pair repeats (|L2| = 2 interior
  // choices), so hits happen, and the same injected cache carries
  // across chunked RunOnMatches calls and across searchers.
  const TimeSeriesGraph graph = LayeredGraph({6, 6, 2, 6, 6});
  const Motif motif = *MotifCatalog::ByName("M(5,4)");
  const StructuralMatcher matcher(graph, motif);
  const std::vector<MatchBinding> matches = matcher.FindAllMatches();
  ASSERT_EQ(matches.size(), 2592u);

  const MaxFlowDpSearcher::Result expected =
      ReferenceRunOnMatches(graph, motif, 40, matches);
  ASSERT_TRUE(expected.found);

  SharedWindowCache cache(/*delta=*/40);
  const MaxFlowDpSearcher searcher(graph, motif, 40, &cache);
  ASSERT_EQ(searcher.window_cache(), &cache);

  MaxFlowDpSearcher::Scratch shared;
  ExpectResultsEqual(
      searcher.RunOnMatches(matches.data(),
                            matches.data() + matches.size(), &shared),
      expected, "shared pass 1");
  // Second full pass reads the warm (saturated) cache.
  ExpectResultsEqual(
      searcher.RunOnMatches(matches.data(),
                            matches.data() + matches.size(), &shared),
      expected, "shared pass 2 (warm cache)");
  // The cap must have saturated the cache below the 1296 distinct
  // pairs, and saturation must never evict (pointers stay valid).
  EXPECT_EQ(cache.size(), cache.max_entries());

  // A drastically smaller cap — almost every lookup falls back to the
  // local buffer — still yields identical results.
  SharedWindowCache tiny_cache(/*delta=*/40, /*max_entries=*/16);
  const MaxFlowDpSearcher tiny_searcher(graph, motif, 40, &tiny_cache);
  ExpectResultsEqual(tiny_searcher.RunOnMatches(matches), expected,
                     "tiny cache");
  EXPECT_LE(tiny_cache.size(), 16u);

  // Chunked calls on the same Scratch vs fresh scratches per chunk.
  constexpr size_t kChunk = 500;
  for (size_t begin = 0; begin < matches.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, matches.size());
    const MaxFlowDpSearcher::Result chunk_shared = searcher.RunOnMatches(
        matches.data() + begin, matches.data() + end, &shared);
    const MaxFlowDpSearcher::Result chunk_fresh = searcher.RunOnMatches(
        matches.data() + begin, matches.data() + end);
    ExpectResultsEqual(chunk_shared, chunk_fresh,
                       "chunk at " + std::to_string(begin));
    if (testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace flowmotif
