#include "core/counter.h"

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "gen/presets.h"
#include "graph/interaction_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

int64_t EnumeratedCount(const TimeSeriesGraph& g, const Motif& motif,
                        Timestamp delta, Flow phi) {
  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  return FlowMotifEnumerator(g, motif, options).Run().num_instances;
}

TEST(CounterTest, MatchesEnumeratorOnPaperGraphs) {
  for (Flow phi : {0.0, 5.0, 7.0}) {
    {
      TimeSeriesGraph g = PaperFig2Graph();
      InstanceCounter counter(g, M33(), 10, phi);
      EXPECT_EQ(counter.Run().num_instances,
                EnumeratedCount(g, M33(), 10, phi))
          << "fig2 phi=" << phi;
    }
    {
      TimeSeriesGraph g = PaperFig7Graph();
      InstanceCounter counter(g, M33(), 10, phi);
      EXPECT_EQ(counter.Run().num_instances,
                EnumeratedCount(g, M33(), 10, phi))
          << "fig7 phi=" << phi;
    }
  }
}

TEST(CounterTest, MatchesEnumeratorAcrossCatalogOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    InteractionGraph mg;
    mg.EnsureVertices(8);
    for (int i = 0; i < 150; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(8));
      VertexId v = static_cast<VertexId>(rng.NextBounded(8));
      if (u == v) continue;
      (void)mg.AddEdge(u, v, static_cast<Timestamp>(rng.NextBounded(120)),
                       1.0 + static_cast<Flow>(rng.NextBounded(9)));
    }
    TimeSeriesGraph g = TimeSeriesGraph::Build(mg);
    for (const Motif& motif : MotifCatalog::All()) {
      for (Flow phi : {0.0, 4.0}) {
        InstanceCounter counter(g, motif, 30, phi);
        EXPECT_EQ(counter.Run().num_instances,
                  EnumeratedCount(g, motif, 30, phi))
            << motif.name() << " seed=" << seed << " phi=" << phi;
      }
    }
  }
}

TEST(CounterTest, CountsOnGeneratedDataset) {
  TimeSeriesGraph g = GenerateDataset(GetPreset(DatasetKind::kPassenger),
                                      0.2);
  Motif motif = *MotifCatalog::ByName("M(4,3)");
  InstanceCounter counter(g, motif, 900, 2.0);
  InstanceCounter::Result result = counter.Run();
  EXPECT_EQ(result.num_instances, EnumeratedCount(g, motif, 900, 2.0));
  EXPECT_GT(result.num_structural_matches, 0);
  EXPECT_GT(result.num_windows, 0);
}

TEST(CounterTest, MemoizationActuallyHits) {
  // Memo hits need depth >= 4: two different e1 prefixes reach distinct
  // e2 states whose own prefixes overlap, so the same e3 state is
  // requested twice (the last edge is a closed-form base case and is
  // never memoized).
  InteractionGraph mg;
  for (int i = 0; i < 10; ++i) {
    (void)mg.AddEdge(0, 1, i * 10, 1.0);
    (void)mg.AddEdge(1, 2, i * 10 + 3, 1.0);
    (void)mg.AddEdge(2, 3, i * 10 + 5, 1.0);
    (void)mg.AddEdge(3, 4, i * 10 + 7, 1.0);
  }
  TimeSeriesGraph g = TimeSeriesGraph::Build(mg);
  Motif chain = *Motif::FromSpanningPath({0, 1, 2, 3, 4});
  InstanceCounter counter(g, chain, 100, 0.0);
  InstanceCounter::Result result = counter.Run();
  EXPECT_EQ(result.num_instances, EnumeratedCount(g, chain, 100, 0.0));
  EXPECT_GT(result.memo_hits, 0);
}

TEST(CounterTest, RunOnMatchesSubset) {
  TimeSeriesGraph g = PaperFig7Graph();
  InstanceCounter counter(g, M33(), 10, 0.0);
  InstanceCounter::Result result = counter.RunOnMatches({{2, 1, 0}});
  EXPECT_EQ(result.num_instances, 4);  // the Fig. 7 hand-traced count
  EXPECT_EQ(result.num_structural_matches, 1);
}

TEST(CounterTest, CountMatchSingle) {
  TimeSeriesGraph g = PaperFig2Graph();
  InstanceCounter counter(g, M33(), 10, 7.0);
  InstanceCounter::Result scratch;
  EXPECT_EQ(counter.CountMatch({2, 0, 1}, &scratch), 1);  // Fig. 4(a)
  EXPECT_EQ(counter.CountMatch({0, 1, 2}, &scratch), 0);
}

TEST(CounterDeathTest, NegativeParametersAbort) {
  TimeSeriesGraph g = PaperFig2Graph();
  EXPECT_DEATH(InstanceCounter(g, M33(), -1, 0.0), "Check failed");
  EXPECT_DEATH(InstanceCounter(g, M33(), 10, -1.0), "Check failed");
}

}  // namespace
}  // namespace flowmotif
