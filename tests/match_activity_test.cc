#include "core/match_activity.h"

#include <gtest/gtest.h>

#include "core/motif.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

EnumerationOptions Opts(Timestamp delta, Flow phi) {
  EnumerationOptions o;
  o.delta = delta;
  o.phi = phi;
  return o;
}

TEST(MatchActivityTest, TopMatchesOnFig7) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  std::vector<MatchActivityAnalyzer::MatchActivity> top =
      analyzer.TopMatches(10);
  // Three rotations of the one triangle; all have instances (4, 1, 1).
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].binding, (MatchBinding{2, 1, 0}));
  EXPECT_EQ(top[0].instance_count, 4);
  EXPECT_EQ(top[1].instance_count, 1);
  EXPECT_EQ(top[2].instance_count, 1);
}

TEST(MatchActivityTest, ActivityAggregatesAreConsistent) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  for (const auto& activity : analyzer.TopMatches(0)) {
    EXPECT_GT(activity.instance_count, 0);
    EXPECT_GT(activity.max_instance_flow, 0.0);
    EXPECT_GE(activity.total_instance_flow, activity.max_instance_flow);
    EXPECT_LE(activity.first_window_start, activity.last_window_start);
  }
}

TEST(MatchActivityTest, TopNTruncates) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  EXPECT_EQ(analyzer.TopMatches(1).size(), 1u);
  EXPECT_EQ(analyzer.TopMatches(2).size(), 2u);
  // 0 means "all".
  EXPECT_EQ(analyzer.TopMatches(0).size(), 3u);
}

TEST(MatchActivityTest, MatchesWithoutInstancesAreDropped) {
  // On Fig. 2 with phi=7, only two matches have instances (Fig. 4 and the
  // second triangle's canonical rotation).
  TimeSeriesGraph graph = PaperFig2Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 7.0));
  std::vector<MatchActivityAnalyzer::MatchActivity> top =
      analyzer.TopMatches(0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].instance_count, 1);
  EXPECT_EQ(top[1].instance_count, 1);
}

TEST(MatchActivityTest, TimelineBucketsCoverInstances) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  MatchActivityAnalyzer::TimelineHistogram histogram = analyzer.Timeline(10);
  int64_t total = 0;
  for (int64_t c : histogram.counts) total += c;
  EXPECT_EQ(total, 6);  // all instances across the three rotations
  EXPECT_EQ(histogram.bucket_width, 10);
}

TEST(MatchActivityTest, TimelineRespectsBucketWidth) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  MatchActivityAnalyzer::TimelineHistogram fine = analyzer.Timeline(1);
  MatchActivityAnalyzer::TimelineHistogram coarse = analyzer.Timeline(1000);
  int64_t fine_total = 0;
  for (int64_t c : fine.counts) fine_total += c;
  int64_t coarse_total = 0;
  for (int64_t c : coarse.counts) coarse_total += c;
  EXPECT_EQ(fine_total, coarse_total);
  EXPECT_EQ(coarse.counts.size(), 1u);
}

TEST(MatchActivityDeathTest, BadBucketWidthAborts) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MatchActivityAnalyzer analyzer(graph, M33(), Opts(10, 0.0));
  EXPECT_DEATH(analyzer.Timeline(0), "Check failed");
}

}  // namespace
}  // namespace flowmotif
