// Byte-identical equivalence of the cursor-based counting path
// (core/counter.cc: per-level window cursors from the shared
// core/window_cursor layer, galloping next-edge advances, reused memo
// maps, SharedWindowCache window lists) against a retained naive
// reference: the pre-rewrite counting recursion — a fresh
// UpperBound(window.end) per recursion call, LowerBound(window.start)
// per window, two binary searches per prefix-domination probe, and a
// window list recomputed per match. Counts, window counts, and memo
// hits must match exactly across ~100 seeded random graphs, every
// catalog motif plus a general fan-out motif, degenerate inputs, and
// engine thread counts {1, 2, 4, 8}.
#include "core/counter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/motif_catalog.h"
#include "core/sliding_window.h"
#include "core/structural_match.h"
#include "engine/query_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

// ---------------------------------------------------------------------------
// Naive reference: the pre-rewrite counter, kept verbatim — every
// recursion call re-derives the window limit with UpperBound, the
// domination rule probes HasElementInOpenClosed, each window allocates
// fresh memo maps, and each match recomputes its window list.
// ---------------------------------------------------------------------------

struct ReferenceWindowCounter {
  const std::vector<const EdgeSeries*>* series;
  Window window;
  Flow phi;
  int num_edges;
  std::vector<std::unordered_map<size_t, int64_t>> memo;
  int64_t memo_hits = 0;

  int64_t Count(int level, size_t first) {
    const EdgeSeries& s = *(*series)[static_cast<size_t>(level)];
    const size_t limit = s.UpperBound(window.end);
    if (first >= limit) return 0;

    if (level == num_edges - 1) {
      return s.FlowSum(first, limit - 1) >= phi ? 1 : 0;
    }

    auto& level_memo = memo[static_cast<size_t>(level)];
    if (auto it = level_memo.find(first); it != level_memo.end()) {
      ++memo_hits;
      return it->second;
    }

    const EdgeSeries& next = *(*series)[static_cast<size_t>(level) + 1];
    int64_t total = 0;
    Flow prefix_flow = 0.0;
    for (size_t j = first; j < limit; ++j) {
      prefix_flow += s.flow(j);
      const Timestamp t_j = s.time(j);
      if (j + 1 < limit) {
        const Timestamp t_next = s.time(j + 1);
        if (!next.HasElementInOpenClosed(t_j, t_next)) continue;
      }
      if (prefix_flow < phi) continue;
      total += Count(level + 1, next.UpperBound(t_j));
    }
    level_memo.emplace(first, total);
    return total;
  }
};

std::vector<const EdgeSeries*> ResolveSeries(const TimeSeriesGraph& graph,
                                             const Motif& motif,
                                             const MatchBinding& binding) {
  std::vector<const EdgeSeries*> series(
      static_cast<size_t>(motif.num_edges()));
  for (int i = 0; i < motif.num_edges(); ++i) {
    const auto [src, dst] = motif.edge(i);
    const EdgeSeries* s = graph.FindSeries(binding[static_cast<size_t>(src)],
                                           binding[static_cast<size_t>(dst)]);
    if (s == nullptr) ADD_FAILURE() << "unresolvable binding";
    series[static_cast<size_t>(i)] = s;
  }
  return series;
}

InstanceCounter::Result ReferenceRunOnMatches(
    const TimeSeriesGraph& graph, const Motif& motif, Timestamp delta,
    Flow phi, const std::vector<MatchBinding>& matches) {
  InstanceCounter::Result result;
  for (const MatchBinding& binding : matches) {
    ++result.num_structural_matches;
    const std::vector<const EdgeSeries*> series =
        ResolveSeries(graph, motif, binding);
    const std::vector<Window> windows =
        ComputeProcessedWindows(*series.front(), *series.back(), delta);
    result.num_windows += static_cast<int64_t>(windows.size());
    for (const Window& window : windows) {
      ReferenceWindowCounter counter;
      counter.series = &series;
      counter.window = window;
      counter.phi = phi;
      counter.num_edges = motif.num_edges();
      counter.memo.assign(static_cast<size_t>(motif.num_edges()), {});
      result.num_instances +=
          counter.Count(0, series[0]->LowerBound(window.start));
      result.memo_hits += counter.memo_hits;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Test drivers
// ---------------------------------------------------------------------------

/// Random small graph, the same recipe as dp_equivalence_test.cc:
/// integer-quantized flows and a narrow time range so duplicate
/// timestamps and phi boundary cases are common.
TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(5));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

/// All motifs the equivalence sweep runs: the ten catalog presets plus
/// one general fan-out shape (per-first-edge P1 units, same recursion).
std::vector<Motif> AllTestMotifs() {
  std::vector<Motif> motifs = MotifCatalog::All();
  motifs.push_back(*Motif::Parse("0>1,0>2", "fanout"));
  return motifs;
}

void ExpectResultsEqual(const InstanceCounter::Result& actual,
                        const InstanceCounter::Result& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.num_instances, expected.num_instances) << label;
  ASSERT_EQ(actual.num_structural_matches, expected.num_structural_matches)
      << label;
  ASSERT_EQ(actual.num_windows, expected.num_windows) << label;
  // The cursor port keeps the recursion and memo structure unchanged,
  // so even the memo hit counter must agree.
  ASSERT_EQ(actual.memo_hits, expected.memo_hits) << label;
}

void CheckGraphAllMotifs(const TimeSeriesGraph& graph, Timestamp delta,
                         Flow phi, const std::string& label) {
  for (const Motif& motif : AllTestMotifs()) {
    const StructuralMatcher matcher(graph, motif);
    const std::vector<MatchBinding> matches = matcher.FindAllMatches();
    const InstanceCounter counter(graph, motif, delta, phi);
    const InstanceCounter::Result actual = counter.RunOnMatches(matches);
    const InstanceCounter::Result expected =
        ReferenceRunOnMatches(graph, motif, delta, phi, matches);
    ExpectResultsEqual(actual, expected,
                       label + " motif=" + motif.name() +
                           " delta=" + std::to_string(delta) +
                           " phi=" + std::to_string(phi));
    if (testing::Test::HasFailure()) return;
  }
}

TEST(CounterEquivalenceTest, RandomGraphsAllMotifPresets) {
  // ~100 seeded random graphs across a spread of densities and deltas;
  // phi alternates between off and binding so both prune paths run.
  int graphs = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (const Timestamp delta : {Timestamp{3}, Timestamp{9}, Timestamp{25},
                                  Timestamp{0}}) {
      const int num_vertices = 4 + static_cast<int>(seed % 3);
      const int num_interactions = 40 + static_cast<int>(seed * 7 % 50);
      const TimeSeriesGraph graph =
          RandomGraph(seed * 1000003u + static_cast<uint64_t>(delta),
                      num_vertices, num_interactions, /*time_span=*/60);
      ++graphs;
      const Flow phi = seed % 2 == 0 ? 0.0 : 6.0;
      CheckGraphAllMotifs(graph, delta, phi, "seed=" + std::to_string(seed));
      if (testing::Test::HasFailure()) return;
    }
  }
  EXPECT_EQ(graphs, 100);
}

TEST(CounterEquivalenceTest, DuplicateTimestamps) {
  // Many interactions on the same instant: zero-length windows,
  // UpperBound vs LowerBound runs, and duplicate anchors all get
  // exercised, with and without a binding phi.
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 10, 2.0}, {0, 1, 10, 3.0}, {0, 1, 10, 1.0}, {0, 1, 12, 4.0},
      {1, 2, 10, 1.0}, {1, 2, 11, 2.0}, {1, 2, 11, 5.0}, {1, 2, 13, 1.0},
      {2, 0, 11, 3.0}, {2, 0, 13, 3.0}, {2, 0, 13, 2.0},
  });
  for (const Timestamp delta : {Timestamp{0}, Timestamp{1}, Timestamp{3},
                                Timestamp{10}}) {
    for (const Flow phi : {Flow{0.0}, Flow{4.0}}) {
      CheckGraphAllMotifs(graph, delta, phi, "duplicate-timestamps");
      if (testing::Test::HasFailure()) return;
    }
  }
}

TEST(CounterEquivalenceTest, DeltaZero) {
  // delta = 0: every window is a single instant; only same-timestamp
  // elements are in range, and strict time-respecting order makes most
  // multi-edge instances impossible.
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 5, 2.0}, {0, 1, 7, 1.0},
      {1, 2, 5, 3.0}, {1, 2, 7, 2.0},
      {2, 0, 5, 1.0}, {2, 0, 9, 4.0},
  });
  CheckGraphAllMotifs(graph, 0, 0.0, "delta-zero");
}

TEST(CounterEquivalenceTest, SingleElementSeries) {
  const TimeSeriesGraph graph = MakeGraph({
      {0, 1, 10, 2.0},
      {1, 2, 11, 3.0},
      {2, 0, 12, 4.0},
  });
  for (const Timestamp delta : {Timestamp{0}, Timestamp{1}, Timestamp{2},
                                Timestamp{5}}) {
    CheckGraphAllMotifs(graph, delta, 0.0, "single-element");
    if (testing::Test::HasFailure()) return;
  }
}

TEST(CounterEquivalenceTest, EngineCountMatchesReferenceAcrossThreads) {
  // The engine's kCount paths — barrier and streamed, both reading
  // window lists through the per-query SharedWindowCache from
  // concurrent workers — must reproduce the naive reference for every
  // thread count.
  for (uint64_t seed : {7u, 21u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 6, 90, 50);
    for (const char* name : {"M(3,2)", "M(3,3)", "M(4,3)", "M(5,4)"}) {
      const Motif motif = *MotifCatalog::ByName(name);
      const StructuralMatcher matcher(graph, motif);
      const InstanceCounter::Result expected = ReferenceRunOnMatches(
          graph, motif, 12, 3.0, matcher.FindAllMatches());
      QueryEngine engine(graph);
      QueryOptions options;
      options.mode = QueryMode::kCount;
      options.delta = 12;
      options.phi = 3.0;
      for (int threads : {1, 2, 4, 8}) {
        options.num_threads = threads;
        const QueryResult result = engine.Run(motif, options);
        const std::string label =
            std::string(name) + " threads=" + std::to_string(threads);
        ASSERT_EQ(result.stats.num_instances, expected.num_instances)
            << label;
        ASSERT_EQ(result.stats.num_structural_matches,
                  expected.num_structural_matches)
            << label;
        ASSERT_EQ(result.stats.num_windows_processed, expected.num_windows)
            << label;
        ASSERT_EQ(result.memo_hits, expected.memo_hits) << label;
        if (testing::Test::HasFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace flowmotif
