#include "core/significance.h"

#include <gtest/gtest.h>

#include "core/motif.h"
#include "core/motif_catalog.h"
#include "gen/presets.h"
#include "test_util.h"

namespace flowmotif {
namespace {

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }

SignificanceAnalyzer::Options SmallOptions() {
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 8;
  options.seed = 7;
  options.delta = 10;
  options.phi = 7.0;
  return options;
}

TEST(SignificanceTest, ReportFieldsArePopulated) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  SignificanceAnalyzer analyzer(g, SmallOptions());
  SignificanceAnalyzer::MotifReport report = analyzer.Analyze(M33());
  EXPECT_EQ(report.motif_name, "M(3,3)");
  EXPECT_EQ(report.real_count, 2);  // the two Fig. 4 instances
  EXPECT_EQ(report.random_counts.size(), 8u);
  EXPECT_EQ(report.random_summary.count, 8u);
  EXPECT_GE(report.p_value, 0.0);
  EXPECT_LE(report.p_value, 1.0);
}

TEST(SignificanceTest, DeterministicGivenSeed) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  SignificanceAnalyzer analyzer(g, SmallOptions());
  SignificanceAnalyzer::MotifReport a = analyzer.Analyze(M33());
  SignificanceAnalyzer::MotifReport b = analyzer.Analyze(M33());
  EXPECT_EQ(a.random_counts, b.random_counts);
  EXPECT_EQ(a.z_score, b.z_score);
}

TEST(SignificanceTest, MatchReuseDoesNotChangeCounts) {
  // Structural matches are flow-independent, so reusing them must give
  // identical counts to recomputing P1 on each permuted graph.
  TimeSeriesGraph g = GenerateDataset(GetPreset(DatasetKind::kPassenger),
                                      /*scale=*/0.1);
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 3;
  options.seed = 11;
  options.delta = 900;
  options.phi = 2.0;

  options.reuse_matches = true;
  SignificanceAnalyzer with_reuse(g, options);
  options.reuse_matches = false;
  SignificanceAnalyzer without_reuse(g, options);

  SignificanceAnalyzer::MotifReport a = with_reuse.Analyze(M33());
  SignificanceAnalyzer::MotifReport b = without_reuse.Analyze(M33());
  EXPECT_EQ(a.real_count, b.real_count);
  EXPECT_EQ(a.random_counts, b.random_counts);
}

TEST(SignificanceTest, RealExceedsRandomOnCascadeData) {
  // The generators emit flow-conserving cascades, so real flow motifs
  // should out-count the flow-permuted graphs (the Fig. 14 effect).
  TimeSeriesGraph g = GenerateDataset(GetPreset(DatasetKind::kFacebook),
                                      /*scale=*/0.08);
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 5;
  options.seed = 3;
  options.delta = 600;
  options.phi = 3.0;
  SignificanceAnalyzer analyzer(g, options);
  SignificanceAnalyzer::MotifReport report =
      analyzer.Analyze(*MotifCatalog::ByName("M(3,2)"));
  EXPECT_GT(report.real_count, 0);
  EXPECT_GT(report.z_score, 0.0);
  EXPECT_GT(static_cast<double>(report.real_count),
            report.random_summary.mean);
}

TEST(SignificanceTest, AnalyzeAllCoversMotifSet) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  SignificanceAnalyzer analyzer(g, SmallOptions());
  std::vector<Motif> motifs{*MotifCatalog::ByName("M(3,2)"), M33()};
  std::vector<SignificanceAnalyzer::MotifReport> reports =
      analyzer.AnalyzeAll(motifs);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].motif_name, "M(3,2)");
  EXPECT_EQ(reports[1].motif_name, "M(3,3)");
}

TEST(SignificanceTest, PermutationCountsAreBoundedByStructure) {
  // With phi = 0, flow permutation cannot change the instance count at
  // all (the paper: "putting aside the flow constraint, the motif
  // instances in the two graphs will be the same").
  TimeSeriesGraph g = testing_util::PaperFig7Graph();
  SignificanceAnalyzer::Options options;
  options.num_random_graphs = 4;
  options.seed = 13;
  options.delta = 10;
  options.phi = 0.0;
  SignificanceAnalyzer analyzer(g, options);
  SignificanceAnalyzer::MotifReport report = analyzer.Analyze(M33());
  for (double count : report.random_counts) {
    EXPECT_EQ(count, static_cast<double>(report.real_count));
  }
  EXPECT_EQ(report.z_score, 0.0);
}

}  // namespace
}  // namespace flowmotif
