#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.h"

namespace flowmotif {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitTasksBeforeWait) {
  // The engine's streamed P1→P2 pipeline has worker tasks submit
  // follow-up tasks mid-execution; Wait() must cover those too (the
  // chained Submit raises in_flight before its parent task retires).
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran, &pool] {
      ran.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 16 * 5);
}

TEST(ThreadPoolTest, SubmitFrontRunsEveryTaskAndInline) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    // Mixed front/back submission must still run everything exactly
    // once and be covered by Wait().
    if (i % 2 == 0) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    } else {
      pool.SubmitFront([&ran] { ran.fetch_add(1); });
    }
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 32);

  ThreadPool inline_pool(1);
  bool ran_inline = false;
  inline_pool.SubmitFront([&ran_inline] { ran_inline = true; });
  EXPECT_TRUE(ran_inline);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  pool.Submit([&observed] { observed = std::this_thread::get_id(); });
  // Inline mode: the task already ran on the submitting thread.
  EXPECT_EQ(observed, caller);
  pool.Wait();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(kN, [&hits](int64_t i) { hits[i].fetch_add(1); });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller, so a plain int is safe.
  pool.ParallelFor(1, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(10, [&sum](int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * 45);
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

TEST(ThreadPoolTest, TaskExceptionIsCaughtAndSurfacedOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    pool.Submit([] { throw std::runtime_error("first failure"); });
    pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Submit([] { throw std::logic_error("second failure"); });
    pool.Wait();
    // Later tasks still ran: the throw is contained at the task boundary.
    EXPECT_EQ(ran.load(), 1) << "threads " << threads;

    const Status err = pool.TakeFirstError();
    EXPECT_EQ(err.code(), StatusCode::kInternal) << "threads " << threads;
    EXPECT_NE(err.message().find("failure"), std::string::npos);
    // Take clears: a second read is OK.
    EXPECT_TRUE(pool.TakeFirstError().ok());

    // The pool stays serviceable for a clean follow-up round.
    pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), 2);
    EXPECT_TRUE(pool.TakeFirstError().ok());
  }
}

TEST(ThreadPoolTest, ParallelForDrainsAfterThrow) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    // The throwing iteration drives the cursor to n, so ParallelFor
    // returns without running every index — but it must return, and the
    // error must land in TakeFirstError().
    pool.ParallelFor(1000, [&ran](int64_t i) {
      if (i == 3) throw std::runtime_error("iteration failed");
      ran.fetch_add(1);
    });
    EXPECT_EQ(pool.TakeFirstError().code(), StatusCode::kInternal)
        << "threads " << threads;
    EXPECT_LT(ran.load(), 1000);

    // Serviceable afterwards: a clean ParallelFor covers everything.
    std::atomic<int> clean{0};
    pool.ParallelFor(100, [&clean](int64_t) { clean.fetch_add(1); });
    EXPECT_EQ(clean.load(), 100);
    EXPECT_TRUE(pool.TakeFirstError().ok());
  }
}

TEST(ThreadPoolTest, NonExceptionThrowIsRecorded) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });  // not derived from std::exception
  pool.Wait();
  EXPECT_EQ(pool.TakeFirstError().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace flowmotif
