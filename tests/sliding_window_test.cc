#include "core/sliding_window.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

namespace flowmotif {
namespace {

EdgeSeries Series(std::vector<Timestamp> times) {
  std::vector<Interaction> interactions;
  for (Timestamp t : times) interactions.push_back({t, 1.0});
  return EdgeSeries(interactions);
}

TEST(SlidingWindowTest, PaperFig7WindowPositions) {
  // e1 anchors: 10, 13, 15, 18; e3 elements: 14, 19, 24, 25; delta = 10.
  // The paper processes [10,20], skips [13,23] (no new e3 element in
  // (20,23]), processes [15,25], and [18,28] adds nothing new.
  EdgeSeries first = Series({10, 13, 15, 18});
  EdgeSeries last = Series({14, 19, 24, 25});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (Window{10, 20}));
  EXPECT_EQ(windows[1], (Window{15, 25}));
}

TEST(SlidingWindowTest, FirstWindowNeedsSomeLastEdgeElement) {
  EdgeSeries first = Series({10, 20});
  EdgeSeries last = Series({35});
  // [10,20] has no e_m element; [20,30] has none either.
  EXPECT_TRUE(ComputeProcessedWindows(first, last, 10).empty());
  // With delta 15, [20,35] catches 35.
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 15);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (Window{20, 35}));
}

TEST(SlidingWindowTest, ElementAtAnchorCountsForFirstWindow) {
  // Single-edge motifs: first == last; the anchor element itself must
  // satisfy the novelty rule of the first window.
  EdgeSeries series = Series({5, 9});
  std::vector<Window> windows = ComputeProcessedWindows(series, series, 3);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (Window{5, 8}));
  EXPECT_EQ(windows[1], (Window{9, 12}));
}

TEST(SlidingWindowTest, DuplicateAnchorsProduceOneWindow) {
  EdgeSeries first = Series({10, 10, 12});
  EdgeSeries last = Series({11, 21, 22});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (Window{10, 20}));
  EXPECT_EQ(windows[1], (Window{12, 22}));
}

TEST(SlidingWindowTest, EveryAnchorNovelWhenLastEdgeDense) {
  EdgeSeries first = Series({0, 10, 20});
  EdgeSeries last = Series({5, 15, 25});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (Window{0, 10}));
  EXPECT_EQ(windows[1], (Window{10, 20}));
  EXPECT_EQ(windows[2], (Window{20, 30}));
}

TEST(SlidingWindowTest, EmptySeriesYieldNoWindows) {
  EdgeSeries empty;
  EdgeSeries some = Series({1, 2, 3});
  EXPECT_TRUE(ComputeProcessedWindows(empty, some, 10).empty());
  EXPECT_TRUE(ComputeProcessedWindows(some, empty, 10).empty());
}

TEST(SlidingWindowTest, ZeroDeltaWindows) {
  // delta = 0: a window is a single instant; only anchors coinciding
  // with a last-edge element qualify.
  EdgeSeries first = Series({10, 20});
  EdgeSeries last = Series({10, 30});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (Window{10, 10}));
}

TEST(SlidingWindowTest, MinimumTimestampAnchorIsProcessed) {
  // Regression: a first anchor at numeric_limits<Timestamp>::min()
  // collided with the old "previous anchor" sentinel and was dropped as
  // a duplicate, and its `anchor - 1` novelty probe underflowed.
  const Timestamp kMin = std::numeric_limits<Timestamp>::min();
  EdgeSeries first = Series({kMin});
  EdgeSeries last = Series({kMin + 5});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (Window{kMin, kMin + 10}));
}

TEST(SlidingWindowTest, MinimumTimestampAnchorElementCountsForNovelty) {
  // The last-edge element at exactly the minimum anchor must satisfy
  // the first window's closed-interval novelty rule (single-edge motif:
  // first == last).
  const Timestamp kMin = std::numeric_limits<Timestamp>::min();
  EdgeSeries series = Series({kMin});
  std::vector<Window> windows = ComputeProcessedWindows(series, series, 0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (Window{kMin, kMin}));
}

TEST(SlidingWindowTest, MaximumTimestampAnchorSaturatesWindowEnd) {
  // The mirror of the min-sentinel underflow: an anchor near
  // numeric_limits<Timestamp>::max() must not signed-overflow when the
  // window end is computed — the end saturates at the axis maximum
  // (such a window cannot gain later elements anyway).
  const Timestamp kMax = std::numeric_limits<Timestamp>::max();
  EdgeSeries first = Series({kMax - 2, kMax});
  EdgeSeries last = Series({kMax - 1, kMax});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (Window{kMax - 2, kMax}));

  std::vector<Window> all = ComputeAllWindows(first, 10);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (Window{kMax - 2, kMax}));
  EXPECT_EQ(all[1], (Window{kMax, kMax}));
}

TEST(SlidingWindowTest, MinimumTimestampDuplicateAnchorsProduceOneWindow) {
  const Timestamp kMin = std::numeric_limits<Timestamp>::min();
  EdgeSeries first = Series({kMin, kMin, kMin + 3});
  EdgeSeries last = Series({kMin + 1, kMin + 12});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 10);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (Window{kMin, kMin + 10}));
  EXPECT_EQ(windows[1], (Window{kMin + 3, kMin + 13}));
}

TEST(SlidingWindowTest, MultiDeltaScanMatchesSingleDeltaScans) {
  // ComputeProcessedWindowsMulti promises element-for-element identity
  // with the per-delta scan, for any delta ordering (including
  // duplicates and delta = 0) and any overlap of the two series.
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t fn = rng() % 12;
    const size_t ln = 1 + rng() % 12;
    std::vector<Timestamp> ft, lt;
    Timestamp t = rng() % 50;
    for (size_t i = 0; i < fn; ++i) ft.push_back(t += rng() % 7);
    t = rng() % 50;
    for (size_t i = 0; i < ln; ++i) lt.push_back(t += rng() % 7);
    EdgeSeries first = Series(ft.empty() ? std::vector<Timestamp>{1} : ft);
    EdgeSeries last = Series(lt);
    std::vector<Timestamp> deltas;
    const size_t nd = 1 + rng() % 6;
    for (size_t d = 0; d < nd; ++d) deltas.push_back(rng() % 40);
    std::vector<std::vector<Window>> multi;
    ComputeProcessedWindowsMulti(first, last, deltas, &multi);
    ASSERT_EQ(multi.size(), deltas.size());
    for (size_t d = 0; d < deltas.size(); ++d) {
      EXPECT_EQ(multi[d], ComputeProcessedWindows(first, last, deltas[d]))
          << "trial " << trial << " delta " << deltas[d];
    }
  }
}

TEST(SlidingWindowTest, MultiDeltaScanHandlesEmptyDeltaList) {
  EdgeSeries first = Series({10, 13, 15, 18});
  EdgeSeries last = Series({14, 19, 24, 25});
  std::vector<std::vector<Window>> multi{{Window{1, 2}}};
  ComputeProcessedWindowsMulti(first, last, {}, &multi);
  EXPECT_TRUE(multi.empty());
}

TEST(SlidingWindowTest, WindowsAreOrderedAndNonRedundant) {
  EdgeSeries first = Series({1, 2, 3, 4, 5, 6, 7, 8});
  EdgeSeries last = Series({3, 9, 12});
  std::vector<Window> windows = ComputeProcessedWindows(first, last, 4);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_LT(windows[i - 1].start, windows[i].start);
    // Each processed window must contain a last-edge element after the
    // previous window's end.
    EdgeSeries last_copy = Series({3, 9, 12});
    EXPECT_TRUE(last_copy.HasElementInOpenClosed(windows[i - 1].end,
                                                 windows[i].end));
  }
}

}  // namespace
}  // namespace flowmotif
