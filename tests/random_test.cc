#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace flowmotif {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) {
    ++seen[static_cast<size_t>(rng.NextBounded(5))];
  }
  for (int count : seen) {
    EXPECT_GT(count, 100);  // roughly uniform: expectation 200
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);  // mean = 1/rate
}

TEST(RngTest, ParetoRespectsMinimumAndMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Pareto(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.15);  // alpha*xmin/(alpha-1) = 2
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.Zipf(10, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    ++counts[static_cast<size_t>(v - 1)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  // Rank-1 frequency should be near 1/H_10 ~ 0.341.
  EXPECT_NEAR(counts[0] / 20000.0, 0.341, 0.03);
}

TEST(RngTest, ZipfCacheHandlesParameterChange) {
  Rng rng(21);
  EXPECT_LE(rng.Zipf(5, 1.0), 5);
  EXPECT_LE(rng.Zipf(3, 0.5), 3);  // different (n, s) rebuilds the CDF
  EXPECT_LE(rng.Zipf(5, 1.0), 5);
}

TEST(RngTest, PoissonMatchesMeanSmallAndLarge) {
  Rng rng(23);
  double sum_small = 0.0;
  double sum_large = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum_small += static_cast<double>(rng.Poisson(2.5));
    sum_large += static_cast<double>(rng.Poisson(80.0));  // normal approx
  }
  EXPECT_NEAR(sum_small / n, 2.5, 0.1);
  EXPECT_NEAR(sum_large / n, 80.0, 0.5);
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ShufflePreservesElementsAndPermutes) {
  Rng rng(31);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingle) {
  Rng rng(33);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace flowmotif
