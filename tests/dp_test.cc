#include "core/dp.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/motif.h"
#include "core/topk.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;
using testing_util::PaperFig2Graph;
using testing_util::PaperFig7Graph;

Motif M33() { return *Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)"); }
Motif Chain3() { return *Motif::FromSpanningPath({0, 1, 2}); }

MatchBinding Fig7Binding() { return {2, 1, 0}; }

TEST(DpTest, Table2Top1FlowIsFive) {
  // Sec. 5.1 / Table 2: the best instance of the Fig. 7 match within
  // window [10,20] has flow 5.
  TimeSeriesGraph graph = PaperFig7Graph();
  MaxFlowDpSearcher searcher(graph, M33(), 10);
  MaxFlowDpSearcher::Result result = searcher.RunOnMatch(Fig7Binding());
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.max_flow, 5.0);
}

TEST(DpTest, Table2TracebackReconstructsTheBoldInstance) {
  // The argmax instance is [e1<-{(10,5)}, e2<-{(11,3),(16,3)},
  // e3<-{(19,6)}] (the bold cells of Table 2).
  TimeSeriesGraph graph = PaperFig7Graph();
  MaxFlowDpSearcher searcher(graph, M33(), 10);
  MaxFlowDpSearcher::Result result = searcher.RunOnMatch(Fig7Binding());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.edge_sets[0],
            (std::vector<Interaction>{{10, 5.0}}));
  EXPECT_EQ(result.best.edge_sets[1],
            (std::vector<Interaction>{{11, 3.0}, {16, 3.0}}));
  EXPECT_EQ(result.best.edge_sets[2],
            (std::vector<Interaction>{{19, 6.0}}));
  EXPECT_EQ(result.window, (Window{10, 20}));
  EXPECT_DOUBLE_EQ(result.best.InstanceFlow(), 5.0);
}

TEST(DpTest, BestInstanceIsValid) {
  TimeSeriesGraph g = PaperFig7Graph();
  Motif m = M33();
  MaxFlowDpSearcher searcher(g, m, 10);
  MaxFlowDpSearcher::Result result = searcher.Run();
  ASSERT_TRUE(result.found);
  Status s = ValidateInstance(g, m, result.best, 10, 0.0);
  EXPECT_TRUE(s.ok()) << s << " " << result.best.ToString();
}

TEST(DpTest, GlobalRunAgreesWithTopK1) {
  // The DP module must find the same maximum flow as the general top-k
  // algorithm with k = 1 (they search the same space).
  for (TimeSeriesGraph (*graph_fn)() : {&PaperFig7Graph, &PaperFig2Graph}) {
    TimeSeriesGraph g = graph_fn();
    MaxFlowDpSearcher dp(g, M33(), 10);
    TopKSearcher topk(g, M33(), 10, 1);
    MaxFlowDpSearcher::Result dp_result = dp.Run();
    TopKSearcher::Result topk_result = topk.Run();
    ASSERT_EQ(dp_result.found, !topk_result.entries.empty());
    if (dp_result.found) {
      EXPECT_DOUBLE_EQ(dp_result.max_flow, topk_result.entries[0].flow);
    }
  }
}

TEST(DpTest, Fig2GlobalTop1IsTen) {
  TimeSeriesGraph graph = PaperFig2Graph();
  MaxFlowDpSearcher searcher(graph, M33(), 10);
  MaxFlowDpSearcher::Result result = searcher.Run();
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.max_flow, 10.0);
  EXPECT_EQ(result.binding, (MatchBinding{2, 0, 1}));
}

TEST(DpTest, NoInstanceMeansNotFound) {
  // Order can never be satisfied: e2 precedes e1 everywhere.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 5, 1.0}});
  MaxFlowDpSearcher searcher(g, Chain3(), 100);
  MaxFlowDpSearcher::Result result = searcher.Run();
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.max_flow, 0.0);
}

TEST(DpTest, SingleEdgeMotif) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0},
                                 {0, 1, 30, 4.0}});
  Motif edge = *Motif::FromSpanningPath({0, 1});
  MaxFlowDpSearcher searcher(g, edge, 5);
  MaxFlowDpSearcher::Result result = searcher.Run();
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.max_flow, 4.0);  // window [30,35]
}

TEST(DpTest, RunPerWindowExposesEachPosition) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MaxFlowDpSearcher searcher(graph, M33(), 10);
  std::vector<MaxFlowDpSearcher::WindowBest> bests =
      searcher.RunPerWindow(Fig7Binding());
  ASSERT_EQ(bests.size(), 2u);  // [10,20] and [15,25]
  EXPECT_EQ(bests[0].window, (Window{10, 20}));
  EXPECT_TRUE(bests[0].found);
  EXPECT_DOUBLE_EQ(bests[0].max_flow, 5.0);
  EXPECT_EQ(bests[1].window, (Window{15, 25}));
  EXPECT_TRUE(bests[1].found);
  EXPECT_DOUBLE_EQ(bests[1].max_flow, 3.0);  // hand-traced
}

TEST(DpTest, RunOnMatchesMatchesRun) {
  TimeSeriesGraph g = PaperFig2Graph();
  MaxFlowDpSearcher searcher(g, M33(), 10);
  StructuralMatcher matcher(g, M33());
  MaxFlowDpSearcher::Result via_matches =
      searcher.RunOnMatches(matcher.FindAllMatches());
  MaxFlowDpSearcher::Result via_run = searcher.Run();
  EXPECT_EQ(via_matches.found, via_run.found);
  EXPECT_DOUBLE_EQ(via_matches.max_flow, via_run.max_flow);
}

TEST(DpTest, WindowCountsReported) {
  TimeSeriesGraph graph = PaperFig7Graph();
  MaxFlowDpSearcher searcher(graph, M33(), 10);
  MaxFlowDpSearcher::Result result = searcher.RunOnMatch(Fig7Binding());
  EXPECT_EQ(result.num_windows, 2);
  EXPECT_GE(result.seconds, 0.0);
}

}  // namespace
}  // namespace flowmotif
