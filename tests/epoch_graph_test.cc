// Epoch-layer invariants of the append-friendly storage: ExtendWith /
// EpochLog seals produce graphs byte-identical to batch builds while
// sharing untouched storage by identity; time slices cut exactly at
// epoch segment boundaries; graph_io round-trips an epoched graph so a
// reloaded log can re-seal and continue the stream; and the incremental
// window scan equals the batch scan across any settle schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/sliding_window.h"
#include "graph/epoch_log.h"
#include "graph/graph_io.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "graph/time_slice.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

void ExpectSameGraph(const TimeSeriesGraph& a, const TimeSeriesGraph& b,
                     const std::string& label) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << label;
  ASSERT_EQ(a.num_pairs(), b.num_pairs()) << label;
  for (int64_t p = 0; p < a.num_pairs(); ++p) {
    ASSERT_EQ(a.pair(p).src, b.pair(p).src) << label;
    ASSERT_EQ(a.pair(p).dst, b.pair(p).dst) << label;
    ASSERT_EQ(a.pair(p).series.size(), b.pair(p).series.size())
        << label << " pair " << p;
    for (size_t i = 0; i < a.pair(p).series.size(); ++i) {
      ASSERT_EQ(a.pair(p).series.time(i), b.pair(p).series.time(i)) << label;
      ASSERT_EQ(a.pair(p).series.flow(i), b.pair(p).series.flow(i)) << label;
    }
  }
}

TEST(EpochGraphTest, ExtendWithEqualsBatchBuildAndSharesUntouchedStorage) {
  const TimeSeriesGraph base = MakeGraph({
      {0, 1, 5, 2.0}, {0, 1, 9, 1.0}, {1, 2, 7, 3.0}, {2, 0, 8, 4.0},
  });
  // Appends touch (0,1), add the new pair (2,3), and grow the universe.
  std::vector<InteractionGraph::Edge> tail = {
      {0, 1, 10, 5.0}, {2, 3, 11, 1.0}, {0, 1, 11, 2.0},
  };
  const TimeSeriesGraph extended = TimeSeriesGraph::ExtendWith(
      base, tail, /*num_vertices=*/4, /*epoch=*/1);

  const TimeSeriesGraph batch = MakeGraph({
      {0, 1, 5, 2.0}, {0, 1, 9, 1.0}, {1, 2, 7, 3.0}, {2, 0, 8, 4.0},
      {0, 1, 10, 5.0}, {2, 3, 11, 1.0}, {0, 1, 11, 2.0},
  });
  ExpectSameGraph(extended, batch, "extend vs batch");

  // Untouched series share timestamp storage with the base by identity;
  // dirty series get fresh storage stamped with the new epoch.
  const EdgeSeries* base_12 = base.FindSeries(1, 2);
  const EdgeSeries* ext_12 = extended.FindSeries(1, 2);
  ASSERT_EQ(base_12->timestamp_identity(), ext_12->timestamp_identity());
  const EdgeSeries* base_01 = base.FindSeries(0, 1);
  const EdgeSeries* ext_01 = extended.FindSeries(0, 1);
  ASSERT_NE(base_01->timestamp_identity(), ext_01->timestamp_identity());
  ASSERT_EQ(ext_01->timestamp_identity().epoch, 1u);
  // The new pair forced a topology rebuild under the new epoch.
  ASSERT_NE(extended.topology_identity(), base.topology_identity());
  ASSERT_EQ(extended.topology_identity().epoch, 1u);

  // Flow-only appends (no new pair, no new vertex) keep the topology
  // identity: caches keyed on it stay warm.
  const TimeSeriesGraph flow_only = TimeSeriesGraph::ExtendWith(
      base, {{0, 1, 12, 1.0}}, base.num_vertices(), /*epoch=*/1);
  ASSERT_EQ(flow_only.topology_identity(), base.topology_identity());
}

TEST(EpochGraphTest, SealedEpochsMatchBatchPrefixBuilds) {
  InteractionGraph seed;
  ASSERT_TRUE(seed.AddEdge(0, 1, 1, 2.0).ok());
  ASSERT_TRUE(seed.AddEdge(1, 2, 3, 1.0).ok());
  EpochLog log(seed);
  std::vector<InteractionGraph::Edge> all = {
      {0, 1, 1, 2.0}, {1, 2, 3, 1.0},
  };

  const std::vector<std::vector<InteractionGraph::Edge>> epochs = {
      {{2, 0, 4, 5.0}, {0, 1, 4, 1.0}},   // dirty + new pair, same time
      {{1, 2, 6, 2.0}},                   // dirty only
      {{3, 0, 9, 4.0}, {0, 3, 9, 4.0}},   // new vertex
  };
  for (size_t e = 0; e < epochs.size(); ++e) {
    for (const InteractionGraph::Edge& edge : epochs[e]) {
      log.Append(edge);
      all.push_back(edge);
    }
    const EpochLog::SealInfo info = log.SealEpoch();
    ASSERT_EQ(info.epoch, e + 1);
    ASSERT_EQ(info.num_appended, epochs[e].size());
    InteractionGraph prefix;
    for (const InteractionGraph::Edge& edge : all) {
      ASSERT_TRUE(prefix.AddEdge(edge.src, edge.dst, edge.t, edge.f).ok());
    }
    ExpectSameGraph(*info.graph, TimeSeriesGraph::Build(prefix),
                    "epoch " + std::to_string(e + 1));
  }

  // Empty tail: sealing is a no-op that republishes the same snapshot.
  const std::shared_ptr<const TimeSeriesGraph> before = log.Snapshot();
  const EpochLog::SealInfo noop = log.SealEpoch();
  ASSERT_EQ(noop.num_appended, 0u);
  ASSERT_EQ(noop.epoch, log.epoch());
  ASSERT_EQ(log.Snapshot().get(), before.get());

  // Ingest is an untrusted boundary: a non-monotone timestamp, a
  // negative vertex id, or a non-positive flow is rejected with
  // InvalidArgument, the tail stays unchanged, and later well-formed
  // appends (and seals) still succeed.
  const Timestamp watermark_before = log.watermark();
  EXPECT_EQ(log.Append(0, 1, 0, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append(-1, 1, 20, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append(0, -2, 20, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append(0, 1, 20, 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append(0, 1, 20, -1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.tail_size(), 0u);
  EXPECT_EQ(log.watermark(), watermark_before);
  ASSERT_TRUE(log.Append(0, 1, 20, 1.0).ok());
  const EpochLog::SealInfo after = log.SealEpoch();
  EXPECT_EQ(after.num_appended, 1u);
  EXPECT_EQ(after.watermark, 20);
}

TEST(EpochGraphTest, TimeSlicesCutExactlyAtEpochBoundaries) {
  // Seal epochs at times 5, 10, 15; slicing the final snapshot at each
  // epoch's watermark must reproduce that epoch's snapshot exactly
  // (including a slice inside a series whose storage the later epochs
  // replaced).
  EpochLog log;
  std::vector<std::shared_ptr<const TimeSeriesGraph>> snapshots;
  std::vector<Timestamp> watermarks;
  const std::vector<std::vector<InteractionGraph::Edge>> epochs = {
      {{0, 1, 2, 1.0}, {1, 2, 5, 2.0}},
      {{0, 1, 7, 3.0}, {2, 0, 10, 1.0}},
      {{1, 2, 12, 2.0}, {0, 1, 15, 4.0}},
  };
  for (const std::vector<InteractionGraph::Edge>& epoch : epochs) {
    for (const InteractionGraph::Edge& edge : epoch) log.Append(edge);
    const EpochLog::SealInfo info = log.SealEpoch();
    snapshots.push_back(info.graph);
    watermarks.push_back(info.watermark);
  }
  const TimeSeriesGraph& final_graph = *snapshots.back();
  for (size_t e = 0; e < snapshots.size(); ++e) {
    const TimeSeriesGraph slice = SliceByMaxTime(final_graph, watermarks[e]);
    // Vertex universes may differ (slices keep all vertices; earlier
    // epochs had fewer), so compare the pair/series content only.
    ASSERT_EQ(slice.num_pairs(), snapshots[e]->num_pairs()) << e;
    for (int64_t p = 0; p < slice.num_pairs(); ++p) {
      const EdgeSeries& a = slice.pair(p).series;
      const EdgeSeries& b = snapshots[e]->pair(p).series;
      ASSERT_EQ(a.size(), b.size()) << "epoch " << e << " pair " << p;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.time(i), b.time(i));
        ASSERT_EQ(a.flow(i), b.flow(i));
      }
    }
  }
}

TEST(EpochGraphTest, SaveReloadAndResealContinuesTheStream) {
  // An epoched graph written with graph_io, reloaded into a fresh log,
  // and re-sealed with more appends must equal the batch build of the
  // whole edge set — the crash-recovery path of a streaming deployment.
  EpochLog log;
  log.Append(0, 1, 3, 2.0);
  log.Append(1, 2, 5, 1.0);
  log.SealEpoch();
  log.Append(2, 0, 8, 4.0);
  const EpochLog::SealInfo sealed = log.SealEpoch();

  const std::string path = ::testing::TempDir() + "/epoched_graph.txt";
  ASSERT_TRUE(SaveTimeSeriesGraph(*sealed.graph, path).ok());
  StatusOr<InteractionGraph> reloaded = LoadInteractionGraph(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  std::remove(path.c_str());

  ExpectSameGraph(TimeSeriesGraph::Build(*reloaded), *sealed.graph,
                  "reload");

  EpochLog resumed(*reloaded);
  ASSERT_EQ(resumed.watermark(), sealed.watermark);
  resumed.Append(0, 1, 9, 5.0);
  resumed.Append(3, 1, 11, 1.0);
  const EpochLog::SealInfo resealed = resumed.SealEpoch();
  const TimeSeriesGraph batch = MakeGraph({
      {0, 1, 3, 2.0}, {1, 2, 5, 1.0}, {2, 0, 8, 4.0},
      {0, 1, 9, 5.0}, {3, 1, 11, 1.0},
  });
  ExpectSameGraph(*resealed.graph, batch, "reseal");
}

TEST(EpochGraphTest, AdvanceProcessedWindowsEqualsBatchScanOnAnySchedule) {
  // Random series pairs and random settle schedules: the concatenated
  // settled output plus the final hot list must equal the batch window
  // scan element for element, at every intermediate step.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a full edge timeline, then reveal prefixes in random steps.
    std::vector<Interaction> first_all;
    std::vector<Interaction> last_all;
    Timestamp t = 0;
    const size_t nf = 1 + rng() % 12;
    const size_t nl = 1 + rng() % 12;
    for (size_t i = 0; i < nf; ++i) {
      t += static_cast<Timestamp>(rng() % 3);
      first_all.push_back({t, 1.0});
    }
    t = 0;
    for (size_t i = 0; i < nl; ++i) {
      t += static_cast<Timestamp>(rng() % 3);
      last_all.push_back({t, 1.0});
    }
    const Timestamp delta = static_cast<Timestamp>(rng() % 6);

    // Watermark steps: reveal every element with time < w, settle
    // windows with end < w — the exact seal semantics.
    std::vector<Timestamp> watermarks;
    for (Timestamp w = 1; w <= t + delta + 2;
         w += 1 + static_cast<Timestamp>(rng() % 3)) {
      watermarks.push_back(w);
    }
    watermarks.push_back(std::numeric_limits<Timestamp>::max());

    WindowScanState state;
    std::vector<Window> settled_all;
    std::vector<Window> hot;
    for (const Timestamp w : watermarks) {
      std::vector<Interaction> f_vis, l_vis;
      for (const Interaction& x : first_all) {
        if (x.t < w) f_vis.push_back(x);
      }
      for (const Interaction& x : last_all) {
        if (x.t < w) l_vis.push_back(x);
      }
      const EdgeSeries first(f_vis);
      const EdgeSeries last(l_vis);
      std::vector<Window> settled;
      AdvanceProcessedWindows(first, last, delta, w, &state, &settled, &hot);
      settled_all.insert(settled_all.end(), settled.begin(), settled.end());

      // Invariant at every step: settled-so-far + hot == batch scan of
      // the currently visible series.
      std::vector<Window> batch = ComputeProcessedWindows(first, last, delta);
      std::vector<Window> incremental = settled_all;
      incremental.insert(incremental.end(), hot.begin(), hot.end());
      ASSERT_EQ(incremental.size(), batch.size())
          << "trial " << trial << " watermark " << w;
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(incremental[i], batch[i])
            << "trial " << trial << " watermark " << w << " window " << i;
      }
    }
    // Terminal watermark: everything settled, nothing hot.
    ASSERT_TRUE(hot.empty()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace flowmotif
