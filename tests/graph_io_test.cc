#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_util.h"

namespace flowmotif {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "graph_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(GraphIoTest, SaveLoadRoundTripInteractionGraph) {
  InteractionGraph g;
  ASSERT_TRUE(g.AddEdge(0, 1, 13, 5).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 15, 7.25).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 10, 10).ok());
  ASSERT_TRUE(SaveInteractionGraph(g, path_).ok());

  StatusOr<InteractionGraph> loaded = LoadInteractionGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_interactions(), 3);
  EXPECT_EQ(loaded->num_vertices(), 3);
  EXPECT_EQ(loaded->edges()[1].t, 15);
  EXPECT_DOUBLE_EQ(loaded->edges()[1].f, 7.25);
}

TEST_F(GraphIoTest, SaveTimeSeriesGraphRoundTripsThroughBuild) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  ASSERT_TRUE(SaveTimeSeriesGraph(g, path_).ok());

  StatusOr<InteractionGraph> loaded = LoadInteractionGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  TimeSeriesGraph rebuilt = TimeSeriesGraph::Build(*loaded);

  ASSERT_EQ(rebuilt.num_pairs(), g.num_pairs());
  for (size_t i = 0; i < static_cast<size_t>(g.num_pairs()); ++i) {
    EXPECT_EQ(rebuilt.pair(i).src, g.pair(i).src);
    EXPECT_EQ(rebuilt.pair(i).dst, g.pair(i).dst);
    ASSERT_EQ(rebuilt.pair(i).series.size(), g.pair(i).series.size());
    for (size_t j = 0; j < g.pair(i).series.size(); ++j) {
      EXPECT_EQ(rebuilt.pair(i).series.at(j), g.pair(i).series.at(j));
    }
  }
}

TEST_F(GraphIoTest, LoadSkipsCommentsAndWhitespaceVariants) {
  {
    std::ofstream out(path_);
    out << "# comment line\n";
    out << "0 1 10 2.5\n";
    out << "\n";
    out << "1\t2\t20\t3\n";     // tabs
    out << "2  3   30   4\n";   // multiple spaces
  }
  StatusOr<InteractionGraph> loaded = LoadInteractionGraph(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_interactions(), 3);
}

TEST_F(GraphIoTest, LoadRejectsMalformedRows) {
  {
    std::ofstream out(path_);
    out << "0 1 10\n";  // missing flow
  }
  EXPECT_FALSE(LoadInteractionGraph(path_).ok());

  {
    std::ofstream out(path_);
    out << "0 1 ten 1.0\n";  // bad time
  }
  EXPECT_FALSE(LoadInteractionGraph(path_).ok());

  {
    std::ofstream out(path_);
    out << "0 1 10 -3\n";  // negative flow
  }
  EXPECT_FALSE(LoadInteractionGraph(path_).ok());

  {
    std::ofstream out(path_);
    out << "a 1 10 1\n";  // bad vertex
  }
  EXPECT_FALSE(LoadInteractionGraph(path_).ok());
}

TEST_F(GraphIoTest, ErrorMessagesIncludeLineNumbers) {
  {
    std::ofstream out(path_);
    out << "0 1 10 1\n";
    out << "0 1 bad 1\n";
  }
  StatusOr<InteractionGraph> loaded = LoadInteractionGraph(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos);
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  StatusOr<InteractionGraph> loaded =
      LoadInteractionGraph("/nonexistent/nowhere.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, IntegralFlowsWrittenWithoutDecimalPoint) {
  InteractionGraph g;
  ASSERT_TRUE(g.AddEdge(0, 1, 5, 3.0).ok());
  ASSERT_TRUE(SaveInteractionGraph(g, path_).ok());
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);  // header comment
  std::getline(in, line);
  EXPECT_EQ(line, "0 1 5 3");
}

}  // namespace
}  // namespace flowmotif
