// Property suite: on randomly generated interaction graphs, the two-phase
// enumerator (Sec. 4), the join baseline (Sec. 6.2.1) and the DP module
// (Sec. 5.1) must agree:
//  * two-phase and join produce identical instance sets;
//  * DP top-1 flow equals top-k(k=1) flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/dp.h"
#include "core/enumerator.h"
#include "core/join_baseline.h"
#include "core/motif_catalog.h"
#include "core/topk.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/random.h"

namespace flowmotif {
namespace {

/// A small dense-ish random temporal multigraph: few vertices so cycles
/// and repeats occur, many interactions so multi-edge runs occur.
InteractionGraph RandomMultigraph(uint64_t seed, int num_vertices,
                                  int num_interactions, Timestamp horizon) {
  Rng rng(seed);
  InteractionGraph g;
  g.EnsureVertices(num_vertices);
  for (int i = 0; i < num_interactions; ++i) {
    VertexId u = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (u == v) continue;
    Timestamp t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(horizon)));
    Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(9));
    (void)g.AddEdge(u, v, t, f);
  }
  return g;
}

using Param = std::tuple<uint64_t /*seed*/, int /*motif index*/,
                         Timestamp /*delta*/, Flow /*phi*/>;

class EquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(EquivalenceTest, TwoPhaseEqualsJoinBaseline) {
  const auto& [seed, motif_index, delta, phi] = GetParam();
  TimeSeriesGraph g = TimeSeriesGraph::Build(
      RandomMultigraph(seed, 8, 120, 100));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  FlowMotifEnumerator two_phase(g, motif, options);
  std::vector<MotifInstance> a = two_phase.CollectAll();

  JoinMotifEnumerator join(g, motif, delta, phi);
  std::vector<MotifInstance> b;
  join.Run([&b](const MotifInstance& instance) {
    b.push_back(instance);
    return true;
  });

  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  ASSERT_EQ(a.size(), b.size()) << motif.name() << " delta=" << delta
                                << " phi=" << phi;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "instance " << i << ": " << a[i].ToString()
                          << " vs " << b[i].ToString();
  }
}

TEST_P(EquivalenceTest, DpTop1EqualsTopK1) {
  const auto& [seed, motif_index, delta, phi] = GetParam();
  (void)phi;  // top-1 search ignores phi
  TimeSeriesGraph g = TimeSeriesGraph::Build(
      RandomMultigraph(seed ^ 0x5a5a, 8, 120, 100));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  MaxFlowDpSearcher dp(g, motif, delta);
  TopKSearcher topk(g, motif, delta, 1);
  MaxFlowDpSearcher::Result dp_result = dp.Run();
  TopKSearcher::Result topk_result = topk.Run();

  ASSERT_EQ(dp_result.found, !topk_result.entries.empty()) << motif.name();
  if (dp_result.found) {
    EXPECT_DOUBLE_EQ(dp_result.max_flow, topk_result.entries[0].flow)
        << motif.name() << " delta=" << delta;
    // The DP's reconstructed instance achieves the reported flow.
    EXPECT_DOUBLE_EQ(dp_result.best.InstanceFlow(), dp_result.max_flow);
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto& [seed, motif_index, delta, phi] = info.param;
  std::string name = MotifCatalog::All()[static_cast<size_t>(motif_index)]
                         .name();
  // Sanitize "M(3,3)A" style names for gtest.
  std::string clean;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) clean.push_back(c);
  }
  return "s" + std::to_string(seed) + "_" + clean + "_d" +
         std::to_string(delta) + "_p" + std::to_string(static_cast<int>(phi));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(0, 1, 3, 4, 6),  // motif indices
                       ::testing::Values<Timestamp>(10, 30),
                       ::testing::Values<Flow>(0.0, 4.0)),
    ParamName);

// Denser time-wise graphs push multi-element runs through every edge.
INSTANTIATE_TEST_SUITE_P(
    DenseTime, EquivalenceTest,
    ::testing::Combine(::testing::Values<uint64_t>(11, 12),
                       ::testing::Values(1, 2, 5, 9),
                       ::testing::Values<Timestamp>(50),
                       ::testing::Values<Flow>(0.0, 8.0)),
    ParamName);

}  // namespace
}  // namespace flowmotif
