#include "graph/time_slice.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;

TEST(TimeSliceTest, SliceKeepsOnlyEarlyInteractions) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph sliced = SliceByMaxTime(g, 15);

  TimeSeriesGraph::Stats stats = sliced.ComputeStats();
  // Interactions at t <= 15: (13,5),(15,7),(10,10),(1,2),(3,5),(11,10).
  EXPECT_EQ(stats.num_interactions, 6);
  EXPECT_EQ(stats.max_time, 15);
  // Vertex set is preserved even if some vertices lose all edges.
  EXPECT_EQ(sliced.num_vertices(), g.num_vertices());
}

TEST(TimeSliceTest, SliceDropsEmptyPairs) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph sliced = SliceByMaxTime(g, 15);
  EXPECT_EQ(sliced.FindSeries(1, 2), nullptr);   // u2->u3 was at t=18
  EXPECT_NE(sliced.FindSeries(0, 1), nullptr);   // u1->u2 kept
}

TEST(TimeSliceTest, SliceAtMaxTimeIsIdentity) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph sliced = SliceByMaxTime(g, 23);
  EXPECT_EQ(sliced.ComputeStats().num_interactions, 10);
  EXPECT_EQ(sliced.num_pairs(), g.num_pairs());
}

TEST(TimeSliceTest, SliceBeforeEverythingIsEmpty) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph sliced = SliceByMaxTime(g, 0);
  EXPECT_EQ(sliced.ComputeStats().num_interactions, 0);
  EXPECT_EQ(sliced.num_pairs(), 0);
}

TEST(TimeSliceTest, PartialSeriesTruncated) {
  TimeSeriesGraph g = PaperFig2Graph();
  TimeSeriesGraph sliced = SliceByMaxTime(g, 13);
  const EdgeSeries* series = sliced.FindSeries(0, 1);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 1u);  // only (13,5); (15,7) is cut
  EXPECT_EQ(series->time(0), 13);
}

TEST(TimeSliceTest, EqualTimePrefixesSpanTheTimeline) {
  TimeSeriesGraph g = PaperFig2Graph();  // times 1..23
  std::vector<Timestamp> cuts = EqualTimePrefixes(g, 4);
  ASSERT_EQ(cuts.size(), 4u);
  EXPECT_LT(cuts[0], cuts[1]);
  EXPECT_LT(cuts[1], cuts[2]);
  EXPECT_LT(cuts[2], cuts[3]);
  EXPECT_EQ(cuts[3], 23);  // last prefix covers everything
}

TEST(TimeSliceTest, PrefixSampleSizesAreMonotone) {
  TimeSeriesGraph g = PaperFig2Graph();
  std::vector<Timestamp> cuts = EqualTimePrefixes(g, 4);
  int64_t prev = -1;
  for (Timestamp cut : cuts) {
    int64_t count = SliceByMaxTime(g, cut).ComputeStats().num_interactions;
    EXPECT_GE(count, prev);
    prev = count;
  }
  EXPECT_EQ(prev, 10);
}

}  // namespace
}  // namespace flowmotif
