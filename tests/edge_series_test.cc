#include "graph/edge_series.h"

#include <gtest/gtest.h>

#include <vector>

namespace flowmotif {
namespace {

EdgeSeries MakeSeries() {
  return EdgeSeries({{10, 5.0}, {13, 2.0}, {15, 3.0}, {18, 7.0}});
}

TEST(EdgeSeriesTest, EmptySeries) {
  EdgeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.TotalFlow(), 0.0);
  EXPECT_EQ(s.LowerBound(0), 0u);
}

TEST(EdgeSeriesTest, SortsUnorderedInput) {
  EdgeSeries s({{15, 3.0}, {10, 5.0}, {18, 7.0}, {13, 2.0}});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.time(0), 10);
  EXPECT_EQ(s.time(1), 13);
  EXPECT_EQ(s.time(2), 15);
  EXPECT_EQ(s.time(3), 18);
  EXPECT_DOUBLE_EQ(s.flow(0), 5.0);
}

TEST(EdgeSeriesTest, AtReturnsInteraction) {
  EdgeSeries s = MakeSeries();
  EXPECT_EQ(s.at(1), (Interaction{13, 2.0}));
}

TEST(EdgeSeriesTest, FlowSumInclusiveRanges) {
  EdgeSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.FlowSum(0, 3), 17.0);
  EXPECT_DOUBLE_EQ(s.FlowSum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.FlowSum(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(s.FlowSum(3, 3), 7.0);
}

TEST(EdgeSeriesTest, FlowSumDegenerateRanges) {
  EdgeSeries s = MakeSeries();
  EXPECT_EQ(s.FlowSum(2, 1), 0.0);   // inverted
  EXPECT_EQ(s.FlowSum(0, 10), 0.0);  // j out of range
}

TEST(EdgeSeriesTest, TotalFlow) {
  EXPECT_DOUBLE_EQ(MakeSeries().TotalFlow(), 17.0);
}

TEST(EdgeSeriesTest, LowerAndUpperBound) {
  EdgeSeries s = MakeSeries();
  EXPECT_EQ(s.LowerBound(10), 0u);
  EXPECT_EQ(s.LowerBound(11), 1u);
  EXPECT_EQ(s.LowerBound(13), 1u);
  EXPECT_EQ(s.LowerBound(19), 4u);
  EXPECT_EQ(s.UpperBound(10), 1u);
  EXPECT_EQ(s.UpperBound(9), 0u);
  EXPECT_EQ(s.UpperBound(18), 4u);
}

TEST(EdgeSeriesTest, BoundsWithDuplicateTimestamps) {
  EdgeSeries s({{10, 1.0}, {10, 2.0}, {12, 3.0}});
  EXPECT_EQ(s.LowerBound(10), 0u);
  EXPECT_EQ(s.UpperBound(10), 2u);
  EXPECT_DOUBLE_EQ(s.FlowInClosed(10, 10), 3.0);
}

TEST(EdgeSeriesTest, FlowInOpenClosed) {
  EdgeSeries s = MakeSeries();
  // (10, 15] -> elements at 13 and 15.
  EXPECT_DOUBLE_EQ(s.FlowInOpenClosed(10, 15), 5.0);
  // (9, 18] -> everything.
  EXPECT_DOUBLE_EQ(s.FlowInOpenClosed(9, 18), 17.0);
  // (15, 17] -> nothing.
  EXPECT_EQ(s.FlowInOpenClosed(15, 17), 0.0);
  // Empty interval.
  EXPECT_EQ(s.FlowInOpenClosed(15, 15), 0.0);
  EXPECT_EQ(s.FlowInOpenClosed(16, 15), 0.0);
}

TEST(EdgeSeriesTest, FlowInClosed) {
  EdgeSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.FlowInClosed(10, 15), 10.0);
  EXPECT_DOUBLE_EQ(s.FlowInClosed(11, 14), 2.0);
  EXPECT_DOUBLE_EQ(s.FlowInClosed(10, 10), 5.0);
  EXPECT_EQ(s.FlowInClosed(11, 12), 0.0);
  EXPECT_EQ(s.FlowInClosed(19, 10), 0.0);
}

TEST(EdgeSeriesTest, HasElementInOpenClosed) {
  EdgeSeries s = MakeSeries();
  EXPECT_TRUE(s.HasElementInOpenClosed(10, 13));
  EXPECT_TRUE(s.HasElementInOpenClosed(17, 18));
  EXPECT_FALSE(s.HasElementInOpenClosed(15, 17));
  EXPECT_FALSE(s.HasElementInOpenClosed(18, 30));
  EXPECT_FALSE(s.HasElementInOpenClosed(13, 13));
}

TEST(EdgeSeriesTest, ReplaceFlowsRebuildsPrefixSums) {
  EdgeSeries s = MakeSeries();
  s.ReplaceFlows({1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.TotalFlow(), 4.0);
  EXPECT_DOUBLE_EQ(s.FlowSum(1, 2), 2.0);
  EXPECT_EQ(s.time(0), 10);  // timestamps untouched
}

TEST(EdgeSeriesDeathTest, NonPositiveFlowRejected) {
  EXPECT_DEATH(EdgeSeries({{1, 0.0}}), "positive");
  EXPECT_DEATH(EdgeSeries({{1, -2.0}}), "positive");
}

TEST(EdgeSeriesDeathTest, ReplaceFlowsSizeMismatchAborts) {
  EdgeSeries s = MakeSeries();
  std::vector<Flow> wrong_size{1.0, 2.0};
  EXPECT_DEATH(s.ReplaceFlows(wrong_size), "Check failed");
}

TEST(EdgeSeriesTest, PrefixSumsMatchNaiveSummation) {
  std::vector<Interaction> interactions;
  for (int i = 0; i < 200; ++i) {
    interactions.push_back({i * 3, 1.0 + (i % 7)});
  }
  EdgeSeries s(interactions);
  for (size_t i = 0; i < s.size(); i += 17) {
    for (size_t j = i; j < s.size(); j += 13) {
      double naive = 0.0;
      for (size_t k = i; k <= j; ++k) naive += s.flow(k);
      EXPECT_DOUBLE_EQ(s.FlowSum(i, j), naive);
    }
  }
}

TEST(EdgeSeriesTest, FlowInIndexRangeMatchesFlowInClosed) {
  EdgeSeries s = MakeSeries();  // times 10, 13, 15, 18
  for (Timestamp lo = 8; lo <= 20; ++lo) {
    for (Timestamp hi = lo; hi <= 20; ++hi) {
      EXPECT_EQ(s.FlowInIndexRange(s.LowerBound(lo), s.UpperBound(hi)),
                s.FlowInClosed(lo, hi))
          << "lo=" << lo << " hi=" << hi;
    }
  }
  EXPECT_EQ(s.FlowInIndexRange(2, 2), 0.0);
  EXPECT_EQ(s.FlowInIndexRange(3, 1), 0.0);
}

TEST(EdgeSeriesTest, GallopingAdvanceMatchesBinarySearch) {
  // The cursor advances must agree with the plain binary searches from
  // every valid starting position — including duplicate-timestamp runs,
  // gap timestamps, and the past-the-end position.
  std::vector<Interaction> interactions;
  for (int i = 0; i < 60; ++i) {
    interactions.push_back({(i / 3) * 5, 1.0 + (i % 4)});  // triples, gaps
  }
  EdgeSeries s(interactions);
  for (Timestamp t = -2; t <= s.time(s.size() - 1) + 3; ++t) {
    const size_t lower = s.LowerBound(t);
    const size_t upper = s.UpperBound(t);
    for (size_t from = 0; from <= s.size(); ++from) {
      if (from <= lower) {
        EXPECT_EQ(s.AdvanceLowerBound(from, t), lower)
            << "t=" << t << " from=" << from;
      }
      if (from <= upper) {
        EXPECT_EQ(s.AdvanceUpperBound(from, t), upper)
            << "t=" << t << " from=" << from;
      }
    }
    // A cursor already past the target stays put (monotone contract).
    EXPECT_EQ(s.AdvanceLowerBound(s.size(), t), s.size());
    EXPECT_EQ(s.AdvanceUpperBound(s.size(), t), s.size());
  }
}

}  // namespace
}  // namespace flowmotif
