// Cross-checks the rewritten join baseline (core/join_baseline.cc:
// cursor-built quintuple tables, binary-searched canonical-start
// groups, SharedWindowCache anchor novelty) against the two-phase
// engine, so the Fig. 8 "join vs two-phase" comparisons stay
// apples-to-apples: both sides must produce the identical instance
// set, hence identical counts (kCount) and identical top-k flows
// (kTopK), on a corpus of seeded random graphs, for every engine
// thread count and for injected and run-local window caches alike.
#include "core/join_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/motif_catalog.h"
#include "engine/query_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;

/// Random small graph, the same recipe as the other equivalence
/// corpora.
TimeSeriesGraph RandomGraph(uint64_t seed, int num_vertices,
                            int num_interactions, Timestamp time_span) {
  Rng rng(seed);
  InteractionGraph g;
  for (int i = 0; i < num_interactions; ++i) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (dst == src) dst = (dst + 1) % num_vertices;
    const auto t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(time_span)));
    const Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(5));
    const Status s = g.AddEdge(src, dst, t, f);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(g);
}

/// The join baseline is defined for spanning-path motifs (Sec. 6.2.1).
std::vector<Motif> PathTestMotifs() {
  return {*MotifCatalog::ByName("M(3,2)"), *MotifCatalog::ByName("M(3,3)"),
          *MotifCatalog::ByName("M(4,3)"), *MotifCatalog::ByName("M(5,4)")};
}

/// All instance flows the join baseline materializes, descending.
std::vector<Flow> JoinInstanceFlowsDescending(const TimeSeriesGraph& graph,
                                              const Motif& motif,
                                              Timestamp delta, Flow phi) {
  const JoinMotifEnumerator join(graph, motif, delta, phi);
  std::vector<Flow> flows;
  join.Run([&flows](const MotifInstance& instance) {
    flows.push_back(instance.InstanceFlow());
    return true;
  });
  std::sort(flows.begin(), flows.end(), std::greater<Flow>());
  return flows;
}

TEST(JoinEquivalenceTest, CountMatchesEngineOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (const Timestamp delta : {Timestamp{4}, Timestamp{12},
                                  Timestamp{0}}) {
      const TimeSeriesGraph graph =
          RandomGraph(seed * 7919u + static_cast<uint64_t>(delta),
                      4 + static_cast<int>(seed % 3),
                      40 + static_cast<int>(seed * 5 % 40),
                      /*time_span=*/50);
      const Flow phi = seed % 2 == 0 ? 0.0 : 5.0;
      for (const Motif& motif : PathTestMotifs()) {
        const JoinMotifEnumerator join(graph, motif, delta, phi);
        const JoinMotifEnumerator::Result join_result = join.Run();

        QueryEngine engine(graph);
        QueryOptions options;
        options.mode = QueryMode::kCount;
        options.delta = delta;
        options.phi = phi;
        for (int threads : {1, 2, 4, 8}) {
          options.num_threads = threads;
          const QueryResult counted = engine.Run(motif, options);
          ASSERT_EQ(join_result.num_instances, counted.stats.num_instances)
              << "seed=" << seed << " delta=" << delta << " phi=" << phi
              << " motif=" << motif.name() << " threads=" << threads;
          if (testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

TEST(JoinEquivalenceTest, TopKFlowsMatchEngineOnRandomGraphs) {
  // The engine's kTopK entries are sorted by decreasing flow; the k
  // best join-instance flows must be the same multiset (both sides
  // compute flows as identical prefix-sum subtractions, so exact
  // double comparison is correct).
  constexpr int64_t kK = 5;
  for (uint64_t seed : {3u, 8u, 15u, 27u}) {
    const TimeSeriesGraph graph = RandomGraph(seed, 5, 60, 40);
    for (const Timestamp delta : {Timestamp{6}, Timestamp{15}}) {
      for (const Motif& motif : PathTestMotifs()) {
        const std::vector<Flow> join_flows =
            JoinInstanceFlowsDescending(graph, motif, delta, /*phi=*/0.0);

        QueryEngine engine(graph);
        QueryOptions options;
        options.mode = QueryMode::kTopK;
        options.delta = delta;
        options.k = kK;
        for (int threads : {1, 4}) {
          options.num_threads = threads;
          const QueryResult result = engine.Run(motif, options);
          const std::string label = "seed=" + std::to_string(seed) +
                                    " delta=" + std::to_string(delta) +
                                    " motif=" + motif.name() +
                                    " threads=" + std::to_string(threads);
          const size_t expect_n = std::min<size_t>(
              static_cast<size_t>(kK), join_flows.size());
          ASSERT_EQ(result.topk.size(), expect_n) << label;
          for (size_t i = 0; i < expect_n; ++i) {
            ASSERT_EQ(result.topk[i].flow, join_flows[i])
                << label << " entry=" << i;
          }
          if (testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

TEST(JoinEquivalenceTest, InjectedCacheMatchesRunLocalCache) {
  // The join must produce the identical result whether it builds a
  // run-local window cache, shares an injected per-query cache (warm
  // or cold), or runs against a saturated cache that declines every
  // new pair.
  const TimeSeriesGraph graph = RandomGraph(42, 5, 80, 50);
  const Motif motif = *MotifCatalog::ByName("M(4,3)");
  constexpr Timestamp kDelta = 10;
  const JoinMotifEnumerator plain(graph, motif, kDelta, /*phi=*/2.0);
  const JoinMotifEnumerator::Result expected = plain.Run();

  SharedWindowCache cache(kDelta);
  const JoinMotifEnumerator cached(graph, motif, kDelta, /*phi=*/2.0,
                                   &cache);
  for (int pass = 0; pass < 2; ++pass) {  // cold, then warm
    const JoinMotifEnumerator::Result got = cached.Run();
    EXPECT_EQ(got.num_instances, expected.num_instances) << pass;
    EXPECT_EQ(got.num_quintuples, expected.num_quintuples) << pass;
    EXPECT_EQ(got.num_partials, expected.num_partials) << pass;
  }

  SharedWindowCache tiny(kDelta, /*max_entries=*/1);
  const JoinMotifEnumerator saturated(graph, motif, kDelta, /*phi=*/2.0,
                                      &tiny);
  const JoinMotifEnumerator::Result got = saturated.Run();
  EXPECT_EQ(got.num_instances, expected.num_instances);
  EXPECT_LE(tiny.size(), 1u);
}

TEST(JoinEquivalenceTest, PaperGraphAgreesWithEngine) {
  // The running example of the paper (Fig. 2): triangle motif over the
  // bitcoin user graph, a fixed point the suite can eyeball.
  const TimeSeriesGraph graph = PaperFig2Graph();
  const Motif motif = *MotifCatalog::ByName("M(3,3)");
  for (const Timestamp delta : {Timestamp{5}, Timestamp{10}, Timestamp{20}}) {
    const JoinMotifEnumerator join(graph, motif, delta, 0.0);
    QueryEngine engine(graph);
    QueryOptions options;
    options.mode = QueryMode::kCount;
    options.delta = delta;
    const QueryResult counted = engine.Run(motif, options);
    EXPECT_EQ(join.Run().num_instances, counted.stats.num_instances)
        << "delta=" << delta;
  }
}

}  // namespace
}  // namespace flowmotif
