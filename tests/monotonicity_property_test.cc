// Property suite for the parameter-sensitivity shapes of Figs. 9-11:
//  * the instance count is non-decreasing in delta;
//  * the instance count is non-increasing in phi;
//  * the k-th best flow is non-increasing in k and the top-k floating
//    threshold never changes which flows are reported (top-k(k) is a
//    prefix of top-k(k+1)).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "core/topk.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/random.h"

namespace flowmotif {
namespace {

InteractionGraph RandomMultigraph(uint64_t seed, int num_vertices,
                                  int num_interactions, Timestamp horizon) {
  Rng rng(seed);
  InteractionGraph g;
  g.EnsureVertices(num_vertices);
  for (int i = 0; i < num_interactions; ++i) {
    VertexId u = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (u == v) continue;
    Timestamp t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(horizon)));
    Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(9));
    (void)g.AddEdge(u, v, t, f);
  }
  return g;
}

int64_t Count(const TimeSeriesGraph& g, const Motif& motif, Timestamp delta,
              Flow phi) {
  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  return FlowMotifEnumerator(g, motif, options).Run().num_instances;
}

using Param = std::tuple<uint64_t, int>;

class MonotonicityTest : public ::testing::TestWithParam<Param> {};

TEST_P(MonotonicityTest, CountNonIncreasingInPhi) {
  const auto& [seed, motif_index] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];
  int64_t prev = Count(g, motif, 25, 0.0);
  for (Flow phi : {2.0, 4.0, 8.0, 16.0}) {
    int64_t current = Count(g, motif, 25, phi);
    EXPECT_LE(current, prev) << "phi=" << phi;
    prev = current;
  }
}

TEST_P(MonotonicityTest, PhiZeroIsStructuralUpperBound) {
  const auto& [seed, motif_index] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed ^ 0x77, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];
  // Any phi yields a subset of the phi=0 instances.
  EXPECT_LE(Count(g, motif, 25, 100.0), Count(g, motif, 25, 0.0));
}

TEST_P(MonotonicityTest, TopKFlowsNonIncreasingAndPrefixStable) {
  const auto& [seed, motif_index] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed ^ 0x99, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  std::vector<Flow> previous_flows;
  for (int64_t k : {1, 2, 5, 10}) {
    TopKSearcher searcher(g, motif, 25, k);
    TopKSearcher::Result result = searcher.Run();
    // Sorted non-increasing.
    for (size_t i = 1; i < result.entries.size(); ++i) {
      EXPECT_GE(result.entries[i - 1].flow, result.entries[i].flow);
    }
    // Flow-prefix property: the flows of top-k extend top-k' for k' < k.
    for (size_t i = 0;
         i < previous_flows.size() && i < result.entries.size(); ++i) {
      EXPECT_DOUBLE_EQ(previous_flows[i], result.entries[i].flow) << i;
    }
    previous_flows.clear();
    for (const auto& e : result.entries) previous_flows.push_back(e.flow);
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto& [seed, motif_index] = info.param;
  std::string name;
  for (char c :
       MotifCatalog::All()[static_cast<size_t>(motif_index)].name()) {
    if (std::isalnum(static_cast<unsigned char>(c))) name.push_back(c);
  }
  return "s" + std::to_string(seed) + "_" + name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonotonicityTest,
    ::testing::Combine(::testing::Values<uint64_t>(21, 22, 23),
                       ::testing::Values(0, 1, 3, 5, 6, 8)),
    ParamName);

// Delta monotonicity holds for the *total reachable instance volume* in
// the sense of Fig. 9. Because window anchoring redraws instance
// boundaries when delta changes, exact per-delta set containment is not
// guaranteed; the paper measures counts, which grow because each window
// admits more combinations. We check the count trend on aggregate over
// several seeds rather than per seed to avoid flakiness on tiny graphs.
TEST(DeltaTrendTest, CountTrendsUpwardWithDelta) {
  const Motif& motif = MotifCatalog::All()[1];  // M(3,3)
  int64_t total_small = 0;
  int64_t total_large = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TimeSeriesGraph g =
        TimeSeriesGraph::Build(RandomMultigraph(seed, 8, 150, 120));
    total_small += Count(g, motif, 10, 0.0);
    total_large += Count(g, motif, 60, 0.0);
  }
  EXPECT_GE(total_large, total_small);
}

}  // namespace
}  // namespace flowmotif
