#include "core/enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/motif.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::MakeGraph;

Motif Chain2() { return *Motif::FromSpanningPath({0, 1}); }
Motif Chain3() { return *Motif::FromSpanningPath({0, 1, 2}); }

EnumerationOptions Opts(Timestamp delta, Flow phi) {
  EnumerationOptions o;
  o.delta = delta;
  o.phi = phi;
  return o;
}

std::vector<MotifInstance> Collect(const TimeSeriesGraph& g,
                                   const Motif& motif, Timestamp delta,
                                   Flow phi) {
  FlowMotifEnumerator enumerator(g, motif, Opts(delta, phi));
  std::vector<MotifInstance> out = enumerator.CollectAll();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EnumeratorTest, SingleEdgeMotifTakesWholeWindow) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0},
                                 {0, 1, 30, 4.0}});
  std::vector<MotifInstance> instances = Collect(g, Chain2(), 5, 0.0);
  // Window [10,15] -> {(10,1),(12,2)}; window [12,17] adds no new last-
  // edge element -> skipped; window [30,35] -> {(30,4)}.
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 1.0}, {12, 2.0}}));
  EXPECT_EQ(instances[1].edge_sets[0],
            (std::vector<Interaction>{{30, 4.0}}));
}

TEST(EnumeratorTest, SingleEdgePhiFiltersWindows) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0},
                                 {0, 1, 30, 4.0}});
  std::vector<MotifInstance> instances = Collect(g, Chain2(), 5, 3.5);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{30, 4.0}}));
}

TEST(EnumeratorTest, ChainRequiresStrictTimeOrder) {
  // e2's only element is before e1's -> no instance.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 5, 1.0}});
  EXPECT_TRUE(Collect(g, Chain3(), 100, 0.0).empty());

  // Equal timestamps are not strictly after -> no instance.
  TimeSeriesGraph g2 = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 10, 1.0}});
  EXPECT_TRUE(Collect(g2, Chain3(), 100, 0.0).empty());

  TimeSeriesGraph g3 = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 11, 1.0}});
  EXPECT_EQ(Collect(g3, Chain3(), 100, 0.0).size(), 1u);
}

TEST(EnumeratorTest, DeltaBoundsInstanceSpan) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {1, 2, 25, 1.0}});
  EXPECT_TRUE(Collect(g, Chain3(), 10, 0.0).empty());
  EXPECT_EQ(Collect(g, Chain3(), 15, 0.0).size(), 1u);
}

TEST(EnumeratorTest, MultipleSplitsEnumerated) {
  // e1: (10,1),(12,1); e2: (11,1),(13,1). Two canonical instances:
  // split after 10 -> e1={10}, e2={11,13}; split after 12 -> e1={10,12},
  // e2={13}.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 1.0},
                                 {1, 2, 11, 1.0}, {1, 2, 13, 1.0}});
  std::vector<MotifInstance> instances = Collect(g, Chain3(), 10, 0.0);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 1.0}}));
  EXPECT_EQ(instances[0].edge_sets[1],
            (std::vector<Interaction>{{11, 1.0}, {13, 1.0}}));
  EXPECT_EQ(instances[1].edge_sets[0],
            (std::vector<Interaction>{{10, 1.0}, {12, 1.0}}));
  EXPECT_EQ(instances[1].edge_sets[1],
            (std::vector<Interaction>{{13, 1.0}}));
}

TEST(EnumeratorTest, DominationRuleSkipsRedundantPrefix) {
  // e1: (10,1),(12,1); e2: (13,1) only. The prefix e1={10} would give
  // e2={13}, a strict sub-instance of e1={10,12}, e2={13} -> skipped.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 1.0},
                                 {1, 2, 13, 1.0}});
  std::vector<MotifInstance> instances = Collect(g, Chain3(), 10, 0.0);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 1.0}, {12, 1.0}}));

  FlowMotifEnumerator enumerator(g, Chain3(), Opts(10, 0.0));
  EnumerationResult result = enumerator.Run();
  EXPECT_EQ(result.num_instances, 1);
  EXPECT_GE(result.num_domination_skips, 1);
}

TEST(EnumeratorTest, PhiPrunesPrefixes) {
  // e1 prefix {10} has flow 1 < phi=2 but {10,12} has 2.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 1.0},
                                 {1, 2, 11, 5.0}, {1, 2, 13, 5.0}});
  std::vector<MotifInstance> instances = Collect(g, Chain3(), 10, 2.0);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].edge_sets[0],
            (std::vector<Interaction>{{10, 1.0}, {12, 1.0}}));
  EXPECT_EQ(instances[0].edge_sets[1],
            (std::vector<Interaction>{{13, 5.0}}));

  FlowMotifEnumerator enumerator(g, Chain3(), Opts(10, 2.0));
  EnumerationResult result = enumerator.Run();
  EXPECT_GE(result.num_phi_prunes, 1);
}

TEST(EnumeratorTest, InstanceFlowIsMinimumEdgeFlow) {
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 7.0}, {1, 2, 12, 3.0}});
  FlowMotifEnumerator enumerator(g, Chain3(), Opts(10, 0.0));
  std::vector<Flow> flows;
  enumerator.Run([&flows](const InstanceView& view) {
    flows.push_back(view.flow);
    return true;
  });
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0], 3.0);
}

TEST(EnumeratorTest, VisitorEarlyStop) {
  TimeSeriesGraph g = testing_util::PaperFig7Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  FlowMotifEnumerator enumerator(g, m33, Opts(10, 0.0));
  int seen = 0;
  EnumerationResult result = enumerator.Run([&seen](const InstanceView&) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(result.num_instances, 1);
}

TEST(EnumeratorTest, EveryEmittedInstanceIsValid) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  const Timestamp delta = 10;
  const Flow phi = 5.0;
  FlowMotifEnumerator enumerator(g, m33, Opts(delta, phi));
  enumerator.Run([&](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    Status s = ValidateInstance(g, m33, instance, delta, phi);
    EXPECT_TRUE(s.ok()) << s << " for " << instance.ToString();
    EXPECT_DOUBLE_EQ(instance.InstanceFlow(), view.flow);
    return true;
  });
}

TEST(EnumeratorTest, RunOnMatchesAgreesWithRun) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  FlowMotifEnumerator enumerator(g, m33, Opts(10, 5.0));

  StructuralMatcher matcher(g, m33);
  EnumerationResult via_matches =
      enumerator.RunOnMatches(matcher.FindAllMatches());
  EnumerationResult via_run = enumerator.Run();
  EXPECT_EQ(via_matches.num_instances, via_run.num_instances);
  EXPECT_EQ(via_matches.num_windows_processed,
            via_run.num_windows_processed);
}

TEST(EnumeratorTest, StrictMaximalityOnlyEmitsMaximalInstances) {
  TimeSeriesGraph g = testing_util::PaperFig7Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  EnumerationOptions options = Opts(10, 0.0);
  options.strict_maximality = true;
  FlowMotifEnumerator enumerator(g, m33, options);
  enumerator.Run([&](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    EXPECT_TRUE(IsMaximalInstance(g, m33, instance, 10))
        << instance.ToString();
    return true;
  });
}

TEST(EnumeratorTest, CountersArePopulated) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif m33 = *Motif::FromSpanningPath({0, 1, 2, 0});
  FlowMotifEnumerator enumerator(g, m33, Opts(10, 7.0));
  EnumerationResult result = enumerator.Run();
  EXPECT_EQ(result.num_structural_matches, 6);
  EXPECT_GT(result.num_windows_processed, 0);
  EXPECT_GE(result.phase1_seconds, 0.0);
  EXPECT_GE(result.phase2_seconds, 0.0);
}

TEST(EnumeratorTest, EmptyEdgeSliceFlowSumIsZero) {
  // Regression: begin == end used to call EdgeSeries::FlowSum(begin,
  // end - 1) with a wrapped index and only returned 0 by luck of the
  // series' own range check.
  TimeSeriesGraph g = MakeGraph({{0, 1, 10, 1.0}, {0, 1, 12, 2.0}});
  const EdgeSeries* series = g.FindSeries(0, 1);
  ASSERT_NE(series, nullptr);

  EdgeSlice empty_at_zero{series, 0, 0};
  EXPECT_EQ(empty_at_zero.size(), 0u);
  EXPECT_DOUBLE_EQ(empty_at_zero.FlowSum(), 0.0);

  EdgeSlice empty_mid{series, 1, 1};
  EXPECT_DOUBLE_EQ(empty_mid.FlowSum(), 0.0);

  EdgeSlice empty_at_end{series, 2, 2};
  EXPECT_DOUBLE_EQ(empty_at_end.FlowSum(), 0.0);

  EdgeSlice whole{series, 0, 2};
  EXPECT_DOUBLE_EQ(whole.FlowSum(), 3.0);
}

TEST(EnumeratorDeathTest, NegativeDeltaAborts) {
  TimeSeriesGraph g = testing_util::PaperFig2Graph();
  Motif m = *Motif::FromSpanningPath({0, 1});
  EXPECT_DEATH(FlowMotifEnumerator(g, m, Opts(-1, 0.0)), "delta");
}

}  // namespace
}  // namespace flowmotif
