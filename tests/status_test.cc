#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace flowmotif {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, OkWithMessageNormalizesToPlainOk) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  StatusOr<NoDefault> v = NoDefault(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->x, 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = *std::move(v);
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FLOWMOTIF_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    FLOWMOTIF_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace flowmotif
