#include "graph/interaction_graph.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

TEST(InteractionGraphTest, StartsEmpty) {
  InteractionGraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_interactions(), 0);
}

TEST(InteractionGraphTest, AddEdgeTracksVertices) {
  InteractionGraph g;
  ASSERT_TRUE(g.AddEdge(0, 5, 10, 1.5).ok());
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_interactions(), 1);
  ASSERT_TRUE(g.AddEdge(7, 2, 11, 2.0).ok());
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_interactions(), 2);
}

TEST(InteractionGraphTest, EdgeFieldsStored) {
  InteractionGraph g;
  ASSERT_TRUE(g.AddEdge(1, 2, 42, 3.25).ok());
  const auto& e = g.edges()[0];
  EXPECT_EQ(e.src, 1);
  EXPECT_EQ(e.dst, 2);
  EXPECT_EQ(e.t, 42);
  EXPECT_DOUBLE_EQ(e.f, 3.25);
}

TEST(InteractionGraphTest, RejectsNegativeVertices) {
  InteractionGraph g;
  EXPECT_EQ(g.AddEdge(-1, 2, 0, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(1, -2, 0, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.num_interactions(), 0);
}

TEST(InteractionGraphTest, RejectsNonPositiveFlow) {
  InteractionGraph g;
  EXPECT_FALSE(g.AddEdge(0, 1, 0, 0.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 1, 0, -1.0).ok());
}

TEST(InteractionGraphTest, AcceptsSelfLoops) {
  InteractionGraph g;
  EXPECT_TRUE(g.AddEdge(3, 3, 5, 1.0).ok());
  EXPECT_EQ(g.num_interactions(), 1);
}

TEST(InteractionGraphTest, AcceptsMultiEdgesAndNegativeTimes) {
  InteractionGraph g;
  EXPECT_TRUE(g.AddEdge(0, 1, -10, 1.0).ok());  // time domain is arbitrary
  EXPECT_TRUE(g.AddEdge(0, 1, -10, 2.0).ok());
  EXPECT_TRUE(g.AddEdge(0, 1, 3, 2.0).ok());
  EXPECT_EQ(g.num_interactions(), 3);
}

TEST(InteractionGraphTest, EnsureVerticesGrowsOnly) {
  InteractionGraph g;
  g.EnsureVertices(10);
  EXPECT_EQ(g.num_vertices(), 10);
  g.EnsureVertices(4);
  EXPECT_EQ(g.num_vertices(), 10);
  ASSERT_TRUE(g.AddEdge(0, 1, 0, 1.0).ok());
  EXPECT_EQ(g.num_vertices(), 10);
}

}  // namespace
}  // namespace flowmotif
