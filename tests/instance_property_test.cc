// Property suite: every instance the enumerator emits on random graphs
// satisfies Def. 3.2 (validity) under the query's delta / phi; in strict
// mode it also satisfies Def. 3.3 (maximality); and the reported flow
// equals Eq. 1. Instances are also pairwise distinct.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "core/enumerator.h"
#include "core/motif_catalog.h"
#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/random.h"

namespace flowmotif {
namespace {

InteractionGraph RandomMultigraph(uint64_t seed, int num_vertices,
                                  int num_interactions, Timestamp horizon) {
  Rng rng(seed);
  InteractionGraph g;
  g.EnsureVertices(num_vertices);
  for (int i = 0; i < num_interactions; ++i) {
    VertexId u = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    VertexId v = static_cast<VertexId>(
        rng.NextBounded(static_cast<uint64_t>(num_vertices)));
    if (u == v) continue;
    Timestamp t = static_cast<Timestamp>(
        rng.NextBounded(static_cast<uint64_t>(horizon)));
    Flow f = 1.0 + static_cast<Flow>(rng.NextBounded(9));
    (void)g.AddEdge(u, v, t, f);
  }
  return g;
}

using Param = std::tuple<uint64_t, int, Timestamp, Flow>;

class InstancePropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(InstancePropertyTest, EmittedInstancesAreValidAndDistinct) {
  const auto& [seed, motif_index, delta, phi] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  FlowMotifEnumerator enumerator(g, motif, options);

  std::set<std::string> fingerprints;
  int64_t count = 0;
  enumerator.Run([&](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    ++count;

    Status valid = ValidateInstance(g, motif, instance, delta, phi);
    EXPECT_TRUE(valid.ok()) << valid << " " << instance.ToString();

    EXPECT_DOUBLE_EQ(instance.InstanceFlow(), view.flow);
    EXPECT_GE(view.flow, phi);

    // Window invariant: everything inside [window.start, window.end] and
    // the first edge-set anchored at the window start.
    EXPECT_GE(instance.StartTime(), view.window.start);
    EXPECT_LE(instance.EndTime(), view.window.end);
    EXPECT_EQ(instance.edge_sets.front().front().t, view.window.start);

    std::string fp = std::to_string(instance.binding[0]);
    for (size_t i = 1; i < instance.binding.size(); ++i) {
      fp += "," + std::to_string(instance.binding[i]);
    }
    fp += "|" + instance.ToString();
    EXPECT_TRUE(fingerprints.insert(fp).second)
        << "duplicate instance " << fp;
    return true;
  });
  EXPECT_EQ(count, static_cast<int64_t>(fingerprints.size()));
}

TEST_P(InstancePropertyTest, StrictModeInstancesAreMaximal) {
  const auto& [seed, motif_index, delta, phi] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed ^ 0xbeef, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  options.strict_maximality = true;
  FlowMotifEnumerator enumerator(g, motif, options);

  enumerator.Run([&](const InstanceView& view) {
    MotifInstance instance = view.Materialize();
    EXPECT_TRUE(IsMaximalInstance(g, motif, instance, delta))
        << instance.ToString();
    return true;
  });
}

TEST_P(InstancePropertyTest, StrictModeIsSubsetOfFaithfulMode) {
  const auto& [seed, motif_index, delta, phi] = GetParam();
  TimeSeriesGraph g =
      TimeSeriesGraph::Build(RandomMultigraph(seed ^ 0xcafe, 8, 150, 120));
  const Motif& motif = MotifCatalog::All()[static_cast<size_t>(motif_index)];

  EnumerationOptions options;
  options.delta = delta;
  options.phi = phi;
  FlowMotifEnumerator faithful(g, motif, options);
  options.strict_maximality = true;
  FlowMotifEnumerator strict(g, motif, options);

  EnumerationResult faithful_result = faithful.Run();
  EnumerationResult strict_result = strict.Run();
  EXPECT_LE(strict_result.num_instances, faithful_result.num_instances);
  EXPECT_EQ(strict_result.num_instances + strict_result.num_strict_rejects,
            faithful_result.num_instances);
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto& [seed, motif_index, delta, phi] = info.param;
  std::string name;
  for (char c :
       MotifCatalog::All()[static_cast<size_t>(motif_index)].name()) {
    if (std::isalnum(static_cast<unsigned char>(c))) name.push_back(c);
  }
  return "s" + std::to_string(seed) + "_" + name + "_d" +
         std::to_string(delta) + "_p" + std::to_string(static_cast<int>(phi));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InstancePropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(5, 6, 7),
                       ::testing::Values(0, 1, 2, 4, 7),
                       ::testing::Values<Timestamp>(15, 40),
                       ::testing::Values<Flow>(0.0, 5.0)),
    ParamName);

}  // namespace
}  // namespace flowmotif
