#ifndef FLOWMOTIF_TESTS_TEST_UTIL_H_
#define FLOWMOTIF_TESTS_TEST_UTIL_H_

#include <tuple>
#include <vector>

#include "graph/interaction_graph.h"
#include "graph/time_series_graph.h"
#include "util/logging.h"

namespace flowmotif {
namespace testing_util {

/// Builds a TimeSeriesGraph from (src, dst, t, f) tuples.
inline TimeSeriesGraph MakeGraph(
    const std::vector<std::tuple<VertexId, VertexId, Timestamp, Flow>>&
        edges) {
  InteractionGraph multigraph;
  for (const auto& [src, dst, t, f] : edges) {
    Status s = multigraph.AddEdge(src, dst, t, f);
    FLOWMOTIF_CHECK(s.ok()) << s.ToString();
  }
  return TimeSeriesGraph::Build(multigraph);
}

/// The paper's running-example bitcoin user graph (Fig. 2 / Fig. 5).
/// Vertices: u1=0, u2=1, u3=2, u4=3. It contains exactly two directed
/// triangles — u1->u2->u3->u1 and u2->u3->u4->u2 — so M(3,3) has exactly
/// six structural matches (Fig. 6).
inline TimeSeriesGraph PaperFig2Graph() {
  return MakeGraph({
      {0, 1, 13, 5}, {0, 1, 15, 7},             // u1 -> u2
      {1, 2, 18, 20},                           // u2 -> u3
      {2, 0, 10, 10},                           // u3 -> u1
      {2, 3, 19, 5}, {2, 3, 21, 4},             // u3 -> u4
      {3, 1, 23, 7},                            // u4 -> u2
      {3, 0, 1, 2},  {3, 0, 3, 5},              // u4 -> u1
      {3, 2, 11, 10},                           // u4 -> u3
  });
}

/// The structural match of Fig. 7 / Table 2 as a 3-vertex graph.
/// Vertices: u1=0, u2=1, u3=2. The motif M(3,3) mapped with
/// node0->u3, node1->u2, node2->u1 has e1 = u3->u2, e2 = u2->u1,
/// e3 = u1->u3.
inline TimeSeriesGraph PaperFig7Graph() {
  return MakeGraph({
      {2, 1, 10, 5}, {2, 1, 13, 2}, {2, 1, 15, 3}, {2, 1, 18, 7},  // e1
      {1, 0, 9, 4},  {1, 0, 11, 3}, {1, 0, 16, 3},                 // e2
      {0, 2, 14, 4}, {0, 2, 19, 6}, {0, 2, 24, 3}, {0, 2, 25, 2},  // e3
  });
}

}  // namespace testing_util
}  // namespace flowmotif

#endif  // FLOWMOTIF_TESTS_TEST_UTIL_H_
