#include "core/motif.h"

#include <gtest/gtest.h>

namespace flowmotif {
namespace {

TEST(MotifTest, ChainBasics) {
  StatusOr<Motif> m = Motif::FromSpanningPath({0, 1, 2});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->num_nodes(), 3);
  EXPECT_EQ(m->num_edges(), 2);
  EXPECT_EQ(m->edge(0), std::make_pair(0, 1));
  EXPECT_EQ(m->edge(1), std::make_pair(1, 2));
  EXPECT_FALSE(m->HasCycle());
  EXPECT_EQ(m->PathString(), "0-1-2");
  EXPECT_EQ(m->name(), "0-1-2");  // defaults to the path notation
}

TEST(MotifTest, CycleDetection) {
  StatusOr<Motif> cycle = Motif::FromSpanningPath({0, 1, 2, 0});
  ASSERT_TRUE(cycle.ok());
  EXPECT_TRUE(cycle->HasCycle());
  EXPECT_EQ(cycle->num_nodes(), 3);
  EXPECT_EQ(cycle->num_edges(), 3);

  StatusOr<Motif> tailed = Motif::FromSpanningPath({0, 1, 2, 3, 1});
  ASSERT_TRUE(tailed.ok());
  EXPECT_TRUE(tailed->HasCycle());
  EXPECT_EQ(tailed->num_nodes(), 4);
}

TEST(MotifTest, SingleEdgeMotif) {
  StatusOr<Motif> m = Motif::FromSpanningPath({0, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_edges(), 1);
  EXPECT_EQ(m->num_nodes(), 2);
}

TEST(MotifTest, CustomName) {
  StatusOr<Motif> m = Motif::FromSpanningPath({0, 1, 2, 0}, "M(3,3)");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->name(), "M(3,3)");
  EXPECT_EQ(m->PathString(), "0-1-2-0");
}

TEST(MotifTest, RejectsTooShortPath) {
  EXPECT_FALSE(Motif::FromSpanningPath({0}).ok());
  EXPECT_FALSE(Motif::FromSpanningPath({}).ok());
}

TEST(MotifTest, RejectsSelfLoopEdges) {
  EXPECT_FALSE(Motif::FromSpanningPath({0, 0}).ok());
  EXPECT_FALSE(Motif::FromSpanningPath({0, 1, 1}).ok());
}

TEST(MotifTest, RejectsRepeatedEdges) {
  // 0->1 appears twice: edge labels must identify distinct edges.
  EXPECT_FALSE(Motif::FromSpanningPath({0, 1, 0, 1}).ok());
}

TEST(MotifTest, RejectsNegativeAndSparseIds) {
  EXPECT_FALSE(Motif::FromSpanningPath({0, -1}).ok());
  // Node 1 is missing: ids must be dense.
  EXPECT_FALSE(Motif::FromSpanningPath({0, 2}).ok());
}

TEST(MotifTest, AllowsRevisitingNodesWithDistinctEdges) {
  // 0->1->2->0->3: node 0 appears twice, all edges distinct.
  StatusOr<Motif> m = Motif::FromSpanningPath({0, 1, 2, 0, 3});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->num_nodes(), 4);
  EXPECT_EQ(m->num_edges(), 4);
}

TEST(MotifTest, ParseRoundTrip) {
  StatusOr<Motif> m = Motif::Parse("0-1-2-0");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->PathString(), "0-1-2-0");
  EXPECT_EQ(m->num_edges(), 3);
}

TEST(MotifTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Motif::Parse("").ok());
  EXPECT_FALSE(Motif::Parse("0-").ok());
  EXPECT_FALSE(Motif::Parse("0-x-2").ok());
  EXPECT_FALSE(Motif::Parse("0--1").ok());
}

TEST(MotifTest, EqualityIsPathEquality) {
  Motif a = *Motif::FromSpanningPath({0, 1, 2}, "A");
  Motif b = *Motif::FromSpanningPath({0, 1, 2}, "B");
  Motif c = *Motif::FromSpanningPath({0, 1, 2, 0});
  EXPECT_EQ(a, b);  // names do not matter
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace flowmotif
