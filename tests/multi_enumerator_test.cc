#include "core/multi_enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/motif_catalog.h"
#include "gen/presets.h"
#include "test_util.h"

namespace flowmotif {
namespace {

using testing_util::PaperFig2Graph;

EnumerationOptions Opts(Timestamp delta, Flow phi) {
  EnumerationOptions o;
  o.delta = delta;
  o.phi = phi;
  return o;
}

TEST(MultiEnumeratorTest, CountsMatchPerMotifRunsOnPaperGraph) {
  TimeSeriesGraph g = PaperFig2Graph();
  StatusOr<MultiMotifEnumerator> multi =
      MultiMotifEnumerator::Create(g, MotifCatalog::All(), Opts(10, 7.0));
  ASSERT_TRUE(multi.ok()) << multi.status();
  std::vector<EnumerationResult> results = multi->Run();
  ASSERT_EQ(results.size(), MotifCatalog::All().size());

  for (size_t i = 0; i < MotifCatalog::All().size(); ++i) {
    FlowMotifEnumerator single(g, MotifCatalog::All()[i], Opts(10, 7.0));
    EnumerationResult expected = single.Run();
    EXPECT_EQ(results[i].num_instances, expected.num_instances)
        << MotifCatalog::All()[i].name();
    EXPECT_EQ(results[i].num_structural_matches,
              expected.num_structural_matches)
        << MotifCatalog::All()[i].name();
  }
}

TEST(MultiEnumeratorTest, InstancesMatchPerMotifRunsOnGeneratedData) {
  TimeSeriesGraph g =
      GenerateDataset(GetPreset(DatasetKind::kPassenger), 0.15);
  std::vector<Motif> motifs{*MotifCatalog::ByName("M(3,2)"),
                            *MotifCatalog::ByName("M(3,3)"),
                            *MotifCatalog::ByName("M(4,3)")};
  StatusOr<MultiMotifEnumerator> multi =
      MultiMotifEnumerator::Create(g, motifs, Opts(900, 2.0));
  ASSERT_TRUE(multi.ok());

  std::map<size_t, std::vector<MotifInstance>> shared;
  multi->Run([&shared](size_t idx, const InstanceView& view) {
    shared[idx].push_back(view.Materialize());
    return true;
  });

  for (size_t i = 0; i < motifs.size(); ++i) {
    FlowMotifEnumerator single(g, motifs[i], Opts(900, 2.0));
    std::vector<MotifInstance> expected = single.CollectAll();
    std::sort(expected.begin(), expected.end());
    std::sort(shared[i].begin(), shared[i].end());
    EXPECT_EQ(shared[i], expected) << motifs[i].name();
  }
}

TEST(MultiEnumeratorTest, VisitorEarlyStopEndsWholeSearch) {
  TimeSeriesGraph g = PaperFig2Graph();
  StatusOr<MultiMotifEnumerator> multi =
      MultiMotifEnumerator::Create(g, MotifCatalog::All(), Opts(10, 0.0));
  ASSERT_TRUE(multi.ok());
  int seen = 0;
  multi->Run([&seen](size_t, const InstanceView&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST(MultiEnumeratorTest, RejectsUnsupportedMotifSets) {
  TimeSeriesGraph g = PaperFig2Graph();
  Motif fan = *Motif::FromEdgeList({{0, 1}, {0, 2}});
  EXPECT_FALSE(MultiMotifEnumerator::Create(g, {fan}, Opts(10, 0.0)).ok());
  EXPECT_FALSE(MultiMotifEnumerator::Create(g, {}, Opts(10, 0.0)).ok());
}

TEST(MultiEnumeratorTest, TimingFieldsPopulated) {
  TimeSeriesGraph g = PaperFig2Graph();
  StatusOr<MultiMotifEnumerator> multi =
      MultiMotifEnumerator::Create(g, MotifCatalog::All(), Opts(10, 0.0));
  ASSERT_TRUE(multi.ok());
  for (const EnumerationResult& r : multi->Run()) {
    EXPECT_GE(r.phase1_seconds, 0.0);
    EXPECT_GE(r.phase2_seconds, 0.0);
  }
}

}  // namespace
}  // namespace flowmotif
